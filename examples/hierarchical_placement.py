"""Hierarchical placement with layout constraints (sections III, Figs. 2-5).

Places the Fig.-2-style design — a top level plus sub-circuits carrying
hierarchical symmetry, common-centroid and proximity constraints — with
the HB*-tree placer, and verifies every constraint on the result:

* the symmetry island (ASF-B*-tree) is exactly mirrored;
* the common-centroid arrays have coinciding device centroids;
* the proximity cluster is a single connected region.

Run:  python examples/hierarchical_placement.py
"""

from repro.analysis import render_placement
from repro.bstar import BStarPlacerConfig, HierarchicalPlacer
from repro.circuit import fig2_design


def main() -> None:
    circuit = fig2_design()
    print(circuit.summary())
    print("\nhierarchy:")
    _print_tree(circuit.hierarchy)

    placer = HierarchicalPlacer(
        circuit, BStarPlacerConfig(seed=5, alpha=0.92, steps_per_epoch=50)
    )
    result = placer.run()
    placement = result.placement

    print("\nplacement:")
    print(render_placement(placement, width=70, height=22))
    print(f"\narea usage {100 * placement.area_usage():.1f}%, "
          f"{result.stats.steps} annealing steps")

    constraints = circuit.constraints()
    for group in constraints.symmetry:
        print(f"symmetry {group.name}: error {group.symmetry_error(placement):.2e}")
    for group in constraints.common_centroid:
        print(f"common-centroid {group.name}: centroid error "
              f"{group.centroid_error(placement):.2e}")
    for group in constraints.proximity:
        status = "connected" if group.is_satisfied(placement) else "SPLIT"
        print(f"proximity {group.name}: {status}")


def _print_tree(node, indent: str = "  ") -> None:
    kind = node.constraint_kind.value
    mods = ", ".join(m.name for m in node.modules) or "-"
    print(f"{indent}{node.name} [{kind}] modules: {mods}")
    for child in node.children:
        _print_tree(child, indent + "  ")


if __name__ == "__main__":
    main()
