"""Symmetric-feasible sequence-pairs on the paper's own example (Fig. 1).

Reproduces, step by step, the section-II walkthrough:

* checks property (1) for the sequence-pair (EBAFCDG, EBCDFAG) and the
  symmetry group gamma = {(C, D), (B, G), A, F};
* rebuilds the Fig. 1 placement from the code;
* quotes the search-space reduction lemma (35,280 of 25,401,600 codes);
* then anneals over S-F codes only and shows the improved placement.

Run:  python examples/symmetric_placement.py
"""

from repro.analysis import render_placement, sequence_pair_report
from repro.circuit import fig1_modules, fig1_sequence_pair
from repro.seqpair import (
    PlacerConfig,
    SequencePair,
    SequencePairPlacer,
    is_symmetric_feasible,
    pack_symmetric,
)


def main() -> None:
    modules, group = fig1_modules()
    alpha, beta = fig1_sequence_pair()
    sp = SequencePair(alpha, beta)

    print(f"sequence-pair: alpha={''.join(alpha)}  beta={''.join(beta)}")
    print(f"symmetry group {group.name}: pairs={group.pairs} "
          f"self-symmetric={group.self_symmetric}")
    print(f"symmetric-feasible (property (1)): {is_symmetric_feasible(sp, [group])}")

    placement = pack_symmetric(sp, modules, [group])
    print("\nplacement built from the S-F code (the paper's Fig. 1):")
    print(render_placement(placement, width=56, height=15))
    print(f"symmetry error: {group.symmetry_error(placement):.2e} "
          f"(axis x = {group.axis_of(placement):.2f})")

    print("\nsearch-space reduction lemma:")
    print("  " + sequence_pair_report(len(modules), [group]).describe())

    print("\nannealing over S-F codes only...")
    placer = SequencePairPlacer(
        modules, (group,), config=PlacerConfig(seed=11, alpha=0.9, steps_per_epoch=50)
    )
    result = placer.run()
    print(render_placement(result.placement, width=56, height=15))
    print(f"area usage {100 * result.placement.area_usage():.1f}%  "
          f"symmetry error {group.symmetry_error(result.placement):.2e}")


if __name__ == "__main__":
    main()
