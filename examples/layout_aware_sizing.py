"""Layout-aware sizing of a folded-cascode amplifier (section V, Fig. 10).

Runs both flows of the Fig.-10 experiment:

* (a) electrical sizing with no geometrical or parasitic considerations:
  specs pass in the optimizer's own (parasitic-free) view but fail once
  layout parasitics are extracted, and the template degenerates into a
  very tall layout;
* (b) layout-aware sizing with folding factors as design variables and
  template generation + extraction inside every cost evaluation: all
  specs hold post-extraction and the layout is compact and square.

Run:  python examples/layout_aware_sizing.py
"""

from repro.analysis import render_placement
from repro.sizing import electrical_sizing, layout_aware_sizing


def main() -> None:
    print("=== flow (a): electrical-only sizing ===")
    plain = electrical_sizing(seed=1)
    print(plain.report())
    nominal_fails = plain.specs.violations(plain.nominal.as_dict())
    print(f"\nspec failures in the flow's own (no-parasitics) view: "
          f"{nominal_fails or 'none'}")
    print(f"spec failures after extraction: {plain.extracted_violations()}")

    print("\n=== flow (b): layout-aware sizing ===")
    aware = layout_aware_sizing(seed=1)
    print(aware.report())
    print(f"\nspec failures after extraction: "
          f"{aware.extracted_violations() or 'none'}")

    print("\n=== comparison (the paper's Fig. 10) ===")
    print(f"(a) {plain.layout.width:7.1f} x {plain.layout.height:7.1f} um  "
          f"area {plain.layout.area:9.0f} um^2  aspect {plain.layout.aspect_ratio:5.2f}")
    print(f"(b) {aware.layout.width:7.1f} x {aware.layout.height:7.1f} um  "
          f"area {aware.layout.area:9.0f} um^2  aspect {aware.layout.aspect_ratio:5.2f}")
    print(f"area ratio (a)/(b): {plain.layout.area / aware.layout.area:.2f}")
    print(f"extraction share of layout-aware runtime: "
          f"{100 * aware.extraction_fraction:.0f}%")

    print("\nlayout-aware template instance:")
    print(render_placement(aware.layout.placement(), width=60, height=18))


if __name__ == "__main__":
    main()
