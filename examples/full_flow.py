"""The complete analog synthesis flow across all four paper sections.

1. **Size** the folded-cascode amplifier with the layout-aware flow
   (section V) — all specs met including layout parasitics.
2. Turn the sized devices into a placement problem (symmetry groups per
   differential pair) and **place** it with the hierarchical B*-tree
   placer (section III) — competing against the fixed template.
3. Fan the same problem out as a **multi-start portfolio**
   (``docs/parallel.md``): several walks across engines and seeds, a
   leaderboard, and the best placement of the lot.
4. **Route** the placed netlist with the two-layer maze router, with
   the differential output pair routed mirrored (section II).

Every annealing loop below runs on the incremental evaluation engine
(``docs/perf.md``): in-place perturbations with commit/rollback,
dirty-suffix B*-tree repacking and delta-HPWL — bit-identical costs to
a full repack, several times the steps/s.

Run:  python examples/full_flow.py
"""

import time

from repro.analysis import render_placement
from repro.bstar import BStarPlacerConfig, HierarchicalPlacer
from repro.parallel import PortfolioRunner
from repro.route import Router
from repro.sizing import layout_aware_sizing, sizing_to_circuit


def main() -> None:
    # -- 1. layout-aware sizing (section V) ---------------------------------
    print("=== 1. layout-aware sizing ===")
    flow = layout_aware_sizing(seed=1)
    print(f"specs met post-extraction: {not flow.extracted_violations()}")
    print(f"template layout: {flow.layout.width:.1f} x {flow.layout.height:.1f} um "
          f"({flow.layout.area:.0f} um^2)")

    # -- 2. topological placement of the sized devices (section III) --------
    print("\n=== 2. hierarchical placement of the sized devices ===")
    circuit = sizing_to_circuit(flow.sizing)
    print(circuit.summary())
    placer = HierarchicalPlacer(
        circuit, BStarPlacerConfig(seed=7, alpha=0.92, steps_per_epoch=50)
    )
    t0 = time.perf_counter()
    result = placer.run()
    elapsed = time.perf_counter() - t0
    placement = result.placement
    print(
        f"annealed {result.stats.steps:,} steps in {elapsed:.2f}s "
        f"({result.stats.steps / elapsed:,.0f} steps/s on the incremental engine, "
        f"{100 * result.stats.acceptance_ratio:.0f}% accepted)"
    )
    print(render_placement(placement, width=64, height=18))
    print(f"placed area {placement.area:.0f} um^2 "
          f"(template {flow.layout.area:.0f} um^2), "
          f"area usage {100 * placement.area_usage():.1f}%")
    violations = circuit.constraints().violations(placement)
    print(f"constraint violations: {violations or 'none'}")

    # -- 2b. the same problem as a multi-start portfolio ----------------------
    print("\n=== 3. multi-start placement portfolio ===")
    # the sized circuit is in the registry as "sized_folded_cascode"
    # (spawn-safe: portfolio workers rebuild it by name); workers=0
    # runs in-process — pass e.g. workers=4 on a multicore machine for
    # the same leaderboard, faster
    portfolio = PortfolioRunner(
        "sized_folded_cascode",
        ("hbtree", "seqpair"),
        starts=4,
        workers=0,
        base_seed=7,
        budget=4 * result.stats.steps,
    ).run()
    print(portfolio.summary())
    if portfolio.leaderboard[0].ref_cost < portfolio.leaderboard[-1].ref_cost:
        spread = portfolio.leaderboard[-1].ref_cost - portfolio.leaderboard[0].ref_cost
        print(f"portfolio spread (worst - best ref cost): {spread:.4f}")
    best = portfolio.winner
    print(
        f"portfolio winner: {best.spec.engine} seed {best.spec.seed} "
        f"-> area usage {100 * best.placement.area_usage():.1f}%"
    )
    if best.placement.area_usage() > placement.area_usage():
        placement = best.placement
        print("portfolio beat the single hierarchical run; routing its winner")

    # -- 3. routing (section II substrate) ------------------------------------
    print("\n=== 4. routing ===")
    router = Router(placement, circuit.nets, pitch=0.5)
    result = router.route_all(retries=10)
    print(result.summary())
    for name, net in sorted(result.routed.items()):
        print(f"  {name:14s} wl {net.wirelength:7.1f} um  {net.vias:2d} vias  "
              f"C {net.capacitance:6.2f} fF")


if __name__ == "__main__":
    main()
