"""Quickstart: place a small analog circuit three ways.

Runs the paper's three placement engines on the Miller op amp of Fig. 6:

1. sequence-pair simulated annealing with symmetric-feasible codes (§II);
2. hierarchical B*-tree annealing with symmetry islands (§III);
3. deterministic enumeration with enhanced shape functions (§IV);

and prints the resulting layouts side by side.

Run:  python examples/quickstart.py
"""

from repro.analysis import render_placement
from repro.bstar import BStarPlacerConfig, HierarchicalPlacer
from repro.circuit import miller_opamp
from repro.seqpair import PlacerConfig, SequencePairPlacer
from repro.shapes import DeterministicConfig, DeterministicPlacer


def main() -> None:
    circuit = miller_opamp()
    print(circuit.summary())
    constraints = circuit.constraints()

    print("\n=== 1. sequence-pair annealing (section II) ===")
    sp_placer = SequencePairPlacer.for_circuit(
        circuit, PlacerConfig(seed=7, alpha=0.9, steps_per_epoch=40)
    )
    sp_result = sp_placer.run()
    _show(sp_result.placement, constraints)

    print("\n=== 2. hierarchical B*-tree annealing (section III) ===")
    hb_placer = HierarchicalPlacer(
        circuit, BStarPlacerConfig(seed=7, alpha=0.9, steps_per_epoch=40)
    )
    hb_result = hb_placer.run()
    _show(hb_result.placement, constraints)

    print("\n=== 3. deterministic enhanced-shape-function placement (section IV) ===")
    det_result = DeterministicPlacer(circuit, DeterministicConfig(enhanced=True)).run()
    _show(det_result.placement, constraints)


def _show(placement, constraints) -> None:
    print(render_placement(placement, width=64, height=16))
    print(
        f"area usage {100 * placement.area_usage():.1f}%  "
        f"bounding box {placement.width:.1f} x {placement.height:.1f}  "
        f"constraint violations: {constraints.violations(placement) or 'none'}"
    )


if __name__ == "__main__":
    main()
