"""Symmetric routing and thermal balance (the section-II motivations).

Places the Miller op amp with the symmetry-aware sequence-pair placer,
routes all nets with the two-layer maze router, routes the differential
input net pair *mirrored* about the symmetry axis, and finally shows the
thermal field with the pair mismatch metrics — the full "matched
parasitics in the two halves" story of section II.

Run:  python examples/symmetric_routing.py
"""

from repro.analysis import ThermalModel, render_field, render_placement
from repro.circuit import miller_opamp
from repro.geometry import Net
from repro.route import Router, route_symmetric_pair
from repro.seqpair import PlacerConfig, SequencePairPlacer


def main() -> None:
    circuit = miller_opamp()
    placer = SequencePairPlacer.for_circuit(
        circuit, PlacerConfig(seed=3, alpha=0.9, steps_per_epoch=40)
    )
    placement = placer.run().placement
    print("placement:")
    print(render_placement(placement, width=60, height=16))

    # -- full-netlist routing -------------------------------------------------
    router = Router(placement, circuit.nets, pitch=0.25)
    result = router.route_all(retries=10)
    print(f"\nrouting: {result.summary()}")
    for name, net in sorted(result.routed.items()):
        print(f"  {name:12s} wl {net.wirelength:7.1f} um  {net.vias:2d} vias  "
              f"C {net.capacitance:6.2f} fF  R {net.resistance:6.2f} ohm")

    # -- mirrored differential pair -----------------------------------------------
    dp = next(g for g in circuit.constraints().symmetry if g.name == "sym-DP")
    axis = dp.axis_of(placement)
    router2 = Router(placement, circuit.nets, pitch=0.25)
    sig_l = Net("route-l", ("P1", "N3"))
    sig_r = Net("route-r", ("P2", "N4"))
    router3 = Router(placement, (sig_l, sig_r), pitch=0.25)
    try:
        pair = route_symmetric_pair(router3, sig_l, sig_r, axis_x=axis)
        print(f"\ndifferential pair routed mirrored: {pair.mirrored}")
        print(f"  wirelength mismatch: {pair.wirelength_mismatch:.2f} um")
        print(f"  capacitance mismatch: {pair.capacitance_mismatch:.3f} fF")
    except Exception as exc:  # axis off-grid for this seed
        print(f"\nmirrored routing unavailable here: {exc}")
    del router2

    # -- thermal balance ------------------------------------------------------------
    model = ThermalModel(power={"N8": 15.0, "P7": 5.0})
    print("\nthermal field (N8 and P7 radiate):")
    print(render_field(model, placement, width=56, height=12))
    for group in circuit.constraints().symmetry:
        mm = model.group_mismatch(group, placement)
        print(f"  {group.name}: worst pair dT = {mm:.4f} C")


if __name__ == "__main__":
    main()
