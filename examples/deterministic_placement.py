"""Deterministic placement with enhanced shape functions (section IV).

Runs the ESF and RSF flows on one of the Table-I circuits, prints the
Table-I row (area usage, runtime, improvement) and the Fig.-8-style
staircase comparison of the two root shape functions.

Run:  python examples/deterministic_placement.py [circuit]
      circuit in {miller_v2, comparator_v2, folded_cascode, buffer,
                  biasynth, lnamixbias}; default folded_cascode
"""

import sys

from repro.analysis import render_placement, render_shape_functions
from repro.circuit import table1_circuit
from repro.shapes import DeterministicConfig, DeterministicPlacer


def main() -> None:
    key = sys.argv[1] if len(sys.argv) > 1 else "folded_cascode"
    circuit = table1_circuit(key)
    print(circuit.summary())

    results = {}
    for label, enhanced in (("ESF", True), ("RSF", False)):
        placer = DeterministicPlacer(circuit, DeterministicConfig(enhanced=enhanced))
        results[label] = placer.run()

    esf, rsf = results["ESF"], results["RSF"]
    print(f"\n{'':14s}{'area usage':>12s}{'runtime':>10s}")
    print(f"{'ESF':14s}{100 * esf.area_usage:>11.2f}%{esf.runtime_s:>9.2f}s")
    print(f"{'RSF':14s}{100 * rsf.area_usage:>11.2f}%{rsf.runtime_s:>9.2f}s")
    print(f"area improvement: {100 * (rsf.area_usage - esf.area_usage):.2f} "
          f"percentage points (paper Table I reports 0.7-7.3)")

    print("\nroot shape functions (Fig. 8 style):")
    print(render_shape_functions(
        {"ESF": esf.shape_function, "RSF": rsf.shape_function}
    ))

    print("\nbest ESF placement:")
    print(render_placement(esf.placement, width=70, height=20))
    violations = circuit.constraints().violations(esf.placement)
    print(f"constraint violations: {violations or 'none'}")


if __name__ == "__main__":
    main()
