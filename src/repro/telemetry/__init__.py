"""Structured tracing, metrics, and a flight recorder.

Public surface of the telemetry subsystem (see
``docs/observability.md`` for the probe catalog and trace schema):

* :class:`TraceRecorder` — JSONL flight recorder (``repro/trace-v1``)
  with counters, gauges, histograms, and span-based tracing.
* :class:`NullRecorder` / :data:`NULL_RECORDER` — the strict no-op
  default; disabled runs pay ~zero cost.
* :class:`TraceConfig` — plain-data settings safe to ship to worker
  processes (carried on ``ChunkTask``).
* :func:`set_default_recorder` / :func:`get_default_recorder` /
  :func:`active_mode` — a process-wide default used by benchmark
  provenance stamping (``benchmarks/bench_perf_kernel.py`` records the
  active mode in every trajectory entry).
"""

from __future__ import annotations

from .recorder import (
    DEFAULT_SAMPLE_INTERVAL,
    NULL_RECORDER,
    NullRecorder,
    Span,
    TRACE_SCHEMA,
    TraceConfig,
    TraceRecorder,
)

__all__ = [
    "DEFAULT_SAMPLE_INTERVAL",
    "NULL_RECORDER",
    "NullRecorder",
    "Span",
    "TRACE_SCHEMA",
    "TraceConfig",
    "TraceRecorder",
    "active_mode",
    "get_default_recorder",
    "set_default_recorder",
]

_default = NULL_RECORDER


def set_default_recorder(recorder) -> None:
    """Install the process-wide default recorder (``None`` resets)."""
    global _default
    _default = recorder if recorder is not None else NULL_RECORDER


def get_default_recorder():
    """The process-wide default recorder (the null recorder unless a
    run installed one)."""
    return _default


def active_mode() -> str:
    """The process's telemetry mode: ``"off"`` or ``"sampled"``.

    Stamped into benchmark trajectory entries so recorded steps/s are
    never silently compared across telemetry modes.
    """
    return "sampled" if _default.enabled else "off"
