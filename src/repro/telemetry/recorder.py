"""The flight recorder: counters, gauges, histograms, spans, JSONL sink.

Two recorder families share one protocol:

* :class:`NullRecorder` — the strict no-op default.  ``enabled`` is
  ``False`` and every probe is a ``pass``; instrumented hot loops hoist
  the ``enabled`` check so a disabled run pays one attribute read per
  *chunk*, not per step (see ``docs/observability.md#sampling-model``).
* :class:`TraceRecorder` — appends versioned JSONL events
  (``repro/trace-v1``) to one stream file per process under a trace
  directory.  Coordinator events land in ``coordinator.jsonl``; each
  worker process writes ``worker-<pid>.jsonl``.

Every event splits **deterministic** content (``fields``: counters,
step indices, costs — byte-stable across same-seed runs) from
**volatile** content (``wall``: timestamps, sequence numbers, pids,
durations), mirroring how :func:`repro.analysis.sweep.matrix_bytes`
segregates timing fields.  The read side
(:mod:`repro.analysis.trace`) canonicalizes by dropping ``wall``.

Telemetry is observation only: recorders never touch the rng, never
perturb float arithmetic, and never change control flow — a traced run
is byte-identical to an untraced one (property-tested in
``tests/parallel/test_trace_identity.py``).
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass
from pathlib import Path

#: versioned trace schema stamped into every stream's header line
TRACE_SCHEMA = "repro/trace-v1"

#: default probe sampling stride for annealer step probes (one
#: ``anneal.sample`` event every N steps; chunk summaries are always
#: emitted).  Chosen so sampled-telemetry overhead stays within the
#: budget recorded by ``benchmarks/bench_telemetry.py``.
DEFAULT_SAMPLE_INTERVAL = 256


@dataclass(frozen=True)
class TraceConfig:
    """Plain-data trace settings, safe to cross process boundaries.

    Carried on :class:`repro.parallel.ChunkTask` so spawned and remote
    workers can open their own stream files — the recorder itself never
    travels through a pickle.
    """

    directory: str
    sample_interval: int = DEFAULT_SAMPLE_INTERVAL

    def __post_init__(self) -> None:
        if self.sample_interval < 1:
            raise ValueError(
                f"sample_interval must be >= 1, got {self.sample_interval}"
            )


class Span:
    """Context manager timing one named phase; emits on exit.

    The name and deterministic fields go to ``fields``; the measured
    duration is volatile and goes to ``wall.elapsed_s``.
    """

    __slots__ = ("_recorder", "_name", "_fields", "_t0")

    def __init__(self, recorder: "TraceRecorder", name: str, fields: dict):
        self._recorder = recorder
        self._name = name
        self._fields = fields
        self._t0 = 0.0

    def __enter__(self) -> "Span":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        elapsed = time.perf_counter() - self._t0
        self._recorder._emit(
            "span",
            self._name,
            dict(self._fields, ok=exc_type is None),
            wall={"elapsed_s": round(elapsed, 6)},
        )


class _NullSpan:
    """Span twin for the null recorder: enters and exits for free."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NullRecorder:
    """Strict no-op recorder — the default everywhere.

    ``enabled`` is ``False`` so instrumented code can hoist one check
    and skip all per-step work; the probe methods exist so call sites
    never need an ``is None`` guard.  ``bind`` returns ``self`` (no
    allocation).  The probe-count property test asserts the annealer
    makes **zero** calls into a disabled recorder per step.
    """

    __slots__ = ()

    enabled = False
    sample_interval = 0

    def count(self, name: str, value: int = 1, **fields) -> None:
        pass

    def gauge(self, name: str, value, **fields) -> None:
        pass

    def observe(self, name: str, value, **fields) -> None:
        pass

    def event(self, name: str, wall: dict | None = None, **fields) -> None:
        pass

    def span(self, name: str, **fields):
        return _NULL_SPAN

    def bind(self, **labels) -> "NullRecorder":
        return self

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass


#: the shared do-nothing singleton; attach this to disable telemetry
NULL_RECORDER = NullRecorder()


class TraceRecorder:
    """JSONL flight recorder writing one ``repro/trace-v1`` stream.

    Each line is one event::

        {"kind": "count" | "gauge" | "hist" | "event" | "span" | "header",
         "name": "<probe name>",
         "fields": {<deterministic labels + values>},
         "wall": {"t": <unix time>, "seq": <per-stream counter>,
                  "pid": <writer pid>, ...volatile extras}}

    The first line of every stream is a ``header`` event carrying the
    schema version and stream name — the reader refuses files whose
    header doesn't declare :data:`TRACE_SCHEMA`.

    ``bind(**labels)`` returns a lightweight view that stamps the given
    labels into every event's ``fields`` while sharing this stream's
    file handle and sequence counter — the idiom for per-walk /
    per-chunk scoping.
    """

    enabled = True

    def __init__(
        self,
        directory: str | Path,
        *,
        sample_interval: int = DEFAULT_SAMPLE_INTERVAL,
        stream: str | None = None,
        labels: dict | None = None,
    ):
        if sample_interval < 1:
            raise ValueError(f"sample_interval must be >= 1, got {sample_interval}")
        self.sample_interval = sample_interval
        self._dir = Path(directory)
        self._dir.mkdir(parents=True, exist_ok=True)
        self.stream = stream if stream is not None else f"worker-{os.getpid()}"
        self.path = self._dir / f"{self.stream}.jsonl"
        self._labels = dict(labels or {})
        self._lock = threading.Lock()
        self._seq = 0
        # line-buffered: every event hits the disk when its line is
        # written, so a terminated worker never loses flushed chunks
        self._fh = open(self.path, "a", buffering=1, encoding="utf-8")
        self._emit("header", "trace", {"schema": TRACE_SCHEMA, "stream": self.stream})

    # -- sink ---------------------------------------------------------------

    def _emit(
        self,
        kind: str,
        name: str,
        fields: dict,
        wall: dict | None = None,
        labels: dict | None = None,
    ) -> None:
        merged = dict(self._labels)
        if labels:
            merged.update(labels)
        merged.update(fields)
        with self._lock:
            volatile = {
                "t": round(time.time(), 6),
                "seq": self._seq,
                "pid": os.getpid(),
            }
            if wall:
                volatile.update(wall)
            self._seq += 1
            self._fh.write(
                json.dumps(
                    {"kind": kind, "name": name, "fields": merged, "wall": volatile},
                    sort_keys=True,
                    separators=(",", ":"),
                )
                + "\n"
            )

    # -- probe API ----------------------------------------------------------

    def count(self, name: str, value: int = 1, **fields) -> None:
        self._emit("count", name, dict(fields, value=value))

    def gauge(self, name: str, value, **fields) -> None:
        self._emit("gauge", name, dict(fields, value=value))

    def observe(self, name: str, value, **fields) -> None:
        self._emit("hist", name, dict(fields, value=value))

    def event(self, name: str, wall: dict | None = None, **fields) -> None:
        self._emit("event", name, fields, wall=wall)

    def span(self, name: str, **fields) -> Span:
        return Span(self, name, fields)

    def bind(self, **labels) -> "_BoundRecorder":
        return _BoundRecorder(self, labels)

    def flush(self) -> None:
        with self._lock:
            self._fh.flush()

    def close(self) -> None:
        with self._lock:
            if not self._fh.closed:
                self._fh.flush()
                self._fh.close()

    def __enter__(self) -> "TraceRecorder":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class _BoundRecorder:
    """A label-stamping view over a parent :class:`TraceRecorder`.

    Shares the parent's stream, lock, and sequence counter; adds its
    labels to every event.  ``bind`` composes (labels merge, inner
    wins).
    """

    __slots__ = ("_parent", "_labels", "sample_interval")

    enabled = True

    def __init__(self, parent: TraceRecorder, labels: dict):
        self._parent = parent
        self._labels = labels
        self.sample_interval = parent.sample_interval

    def count(self, name: str, value: int = 1, **fields) -> None:
        self._parent._emit("count", name, dict(fields, value=value), labels=self._labels)

    def gauge(self, name: str, value, **fields) -> None:
        self._parent._emit("gauge", name, dict(fields, value=value), labels=self._labels)

    def observe(self, name: str, value, **fields) -> None:
        self._parent._emit("hist", name, dict(fields, value=value), labels=self._labels)

    def event(self, name: str, wall: dict | None = None, **fields) -> None:
        self._parent._emit("event", name, fields, wall=wall, labels=self._labels)

    def span(self, name: str, **fields) -> Span:
        return Span(self, name, fields)

    def _emit(self, kind, name, fields, wall=None, labels=None):
        merged = dict(self._labels)
        if labels:
            merged.update(labels)
        self._parent._emit(kind, name, fields, wall=wall, labels=merged)

    def bind(self, **labels) -> "_BoundRecorder":
        return _BoundRecorder(self._parent, {**self._labels, **labels})

    def flush(self) -> None:
        self._parent.flush()

    def close(self) -> None:
        # closing a view is a no-op: the parent owns the stream
        pass
