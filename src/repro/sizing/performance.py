"""Analytical performance evaluation of the folded-cascode amplifier.

The model computes the performances the Fig. 10 experiment constrains:
dc gain, gain-bandwidth product, phase margin, slew rate, output swing
and power.  Evaluation takes an optional :class:`Parasitics`; without
it, the layout-dependent capacitances are simply absent — which is
precisely the optimistic evaluation a layout-blind sizing flow performs,
and the source of its post-layout failures.

Units: µA, V, fF internally; reported as dB, MHz, degrees, V/µs, V, mW.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .amplifier import LOAD_CAP_FF, FoldedCascodeSizing
from .mos import (
    MOS_TECH,
    gate_source_cap,
    output_conductance,
    overdrive,
    transconductance,
)
from .parasitics import Parasitics


@dataclass(frozen=True, slots=True)
class Performance:
    """Evaluated performances of one sizing point."""

    dc_gain_db: float
    gbw_mhz: float
    phase_margin_deg: float
    slew_rate_v_us: float
    swing_v: float
    power_mw: float

    def as_dict(self) -> dict[str, float]:
        return {
            "dc_gain_db": self.dc_gain_db,
            "gbw_mhz": self.gbw_mhz,
            "phase_margin_deg": self.phase_margin_deg,
            "slew_rate_v_us": self.slew_rate_v_us,
            "swing_v": self.swing_v,
            "power_mw": self.power_mw,
        }


@dataclass(frozen=True, slots=True)
class AcModel:
    """Two-pole small-signal model of the amplifier."""

    a0: float        # dc gain, V/V
    p1_mhz: float    # dominant pole (output node)
    p2_mhz: float    # non-dominant pole (folding node)

    def response(self, f_mhz: np.ndarray) -> np.ndarray:
        """Complex gain at the given frequencies (MHz)."""
        jf = 1j * np.asarray(f_mhz, dtype=float)
        return self.a0 / ((1.0 + jf / self.p1_mhz) * (1.0 + jf / self.p2_mhz))

    def unity_gain_crossover(self, *, points: int = 400) -> tuple[float, float]:
        """(f_unity_MHz, phase_margin_deg) found by numerical AC sweep.

        This is the library's stand-in for the paper's simulation-based
        evaluation: a log-frequency sweep of the transfer function with
        interpolation of the 0 dB crossing.
        """
        f = np.logspace(
            math.log10(self.p1_mhz) - 1.0,
            math.log10(max(self.p2_mhz, self.p1_mhz)) + 3.0,
            points,
        )
        h = self.response(f)
        mag = np.abs(h)
        below = np.nonzero(mag < 1.0)[0]
        if len(below) == 0:
            return float(f[-1]), 0.0
        i = below[0]
        if i == 0:
            return float(f[0]), 180.0 + float(np.degrees(np.angle(h[0])))
        # log-linear interpolation of the crossing
        m0, m1 = math.log10(mag[i - 1]), math.log10(mag[i])
        t = -m0 / (m1 - m0)
        f_unity = 10 ** (math.log10(f[i - 1]) * (1 - t) + math.log10(f[i]) * t)
        phase = math.degrees(
            -math.atan(f_unity / self.p1_mhz) - math.atan(f_unity / self.p2_mhz)
        )
        return float(f_unity), 180.0 + phase


def ac_model(sizing: FoldedCascodeSizing, parasitics: Parasitics | None = None) -> AcModel:
    """Build the two-pole AC model at the nominal bias point."""
    s = sizing
    p = parasitics or Parasitics.zero()
    gm_in = transconductance(s.i_in, s.w_in, s.l_in)
    gm_casc_p = transconductance(s.i_casc, s.w_casc_p, s.l_casc_p, pmos=True)
    gm_casc_n = transconductance(s.i_casc, s.w_casc_n, s.l_casc_n)
    gds_in = output_conductance(s.i_in, s.l_in)
    gds_src_p = output_conductance(s.i_in + s.i_casc, s.l_src_p)
    gds_casc_p = output_conductance(s.i_casc, s.l_casc_p)
    gds_casc_n = output_conductance(s.i_casc, s.l_casc_n)
    gds_sink_n = output_conductance(s.i_casc, s.l_sink_n)
    r_up = gm_casc_p / (gds_casc_p * (gds_in + gds_src_p))
    r_dn = gm_casc_n / (gds_casc_n * gds_sink_n)
    r_out = (r_up * r_dn) / (r_up + r_dn)
    c_out = LOAD_CAP_FF + p.c_out
    c_fold = gate_source_cap(s.w_casc_p, s.l_casc_p) + p.c_fold
    a0 = gm_in * r_out
    p1_mhz = 1.0 / (2.0 * math.pi * r_out * c_out) * 1e3
    p2_mhz = gm_casc_p / (2.0 * math.pi * c_fold) * 1e3
    return AcModel(a0=a0, p1_mhz=p1_mhz, p2_mhz=p2_mhz)


def evaluate(sizing: FoldedCascodeSizing, parasitics: Parasitics | None = None) -> Performance:
    """Small-signal + large-signal evaluation at the nominal bias point."""
    s = sizing
    p = parasitics or Parasitics.zero()

    model = ac_model(sizing, parasitics)
    dc_gain_db = 20.0 * math.log10(max(model.a0, 1e-12))
    # Numerical AC sweep for the unity-gain crossover and phase margin —
    # the reproduction's equivalent of the in-loop circuit simulation.
    gbw_mhz, phase_margin_deg = model.unity_gain_crossover()

    # Slew rate limited by the smaller of tail and cascode branch currents
    # (µA / fF = 1e9 V/s, hence the factor 1e3 to V/µs).
    c_out = LOAD_CAP_FF + p.c_out
    slew_rate_v_us = min(2.0 * s.i_in, 2.0 * s.i_casc) / c_out * 1e3

    vdd = MOS_TECH["vdd"]
    swing_v = vdd - (
        overdrive(s.i_in + s.i_casc, s.w_src_p, s.l_src_p, pmos=True)
        + overdrive(s.i_casc, s.w_casc_p, s.l_casc_p, pmos=True)
        + overdrive(s.i_casc, s.w_casc_n, s.l_casc_n)
        + overdrive(s.i_casc, s.w_sink_n, s.l_sink_n)
    )

    # Supply current: both PMOS source branches plus ~10% bias overhead.
    power_mw = vdd * 2.0 * (s.i_in + s.i_casc) * 1.1 * 1e-3

    return Performance(
        dc_gain_db=dc_gain_db,
        gbw_mhz=gbw_mhz,
        phase_margin_deg=phase_margin_deg,
        slew_rate_v_us=slew_rate_v_us,
        swing_v=swing_v,
        power_mw=power_mw,
    )
