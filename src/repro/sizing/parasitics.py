"""Parasitic extraction over template layouts.

Section V: "the values of layout parasitics are computed concurrently
with sizing, by using specific layout information (e.g., the possible
implementation style of a group of MOS transistors) and actual device
sizes."  Extraction here sums, per circuit node, the layout-dependent
junction capacitances (which depend on the folding factors) and the
wiring capacitance estimated from the template's net lengths.
"""

from __future__ import annotations

from dataclasses import dataclass

from .amplifier import FoldedCascodeSizing
from .mos import gate_drain_cap, junction_caps
from .template import TemplateLayout


@dataclass(frozen=True, slots=True)
class Parasitics:
    """Node capacitances added by the layout, fF (per half circuit).

    ``c_out``  — at the amplifier output (adds to the load);
    ``c_fold`` — at the folding node (source of the PMOS cascode), which
    sets the non-dominant pole and hence the phase margin.
    """

    c_out: float
    c_fold: float

    @classmethod
    def zero(cls) -> "Parasitics":
        return cls(0.0, 0.0)


def extract(sizing: FoldedCascodeSizing, layout: TemplateLayout) -> Parasitics:
    """Extract the performance-relevant node parasitics of one half.

    Output node: drain junctions + gate-drain overlaps of the two
    cascodes (M6, M8) plus the output net wiring.
    Folding node: drain junctions of the input device (M2) and the PMOS
    source (M4), the cascode's source junction, plus wiring.
    """
    cdb_casc_p, csb_casc_p = junction_caps(sizing.w_casc_p, sizing.nf_casc_p)
    cdb_casc_n, _ = junction_caps(sizing.w_casc_n, sizing.nf_casc_n)
    cdb_in, _ = junction_caps(sizing.w_in, sizing.nf_in)
    cdb_src_p, _ = junction_caps(sizing.w_src_p, sizing.nf_src_p)

    c_out = (
        cdb_casc_p
        + gate_drain_cap(sizing.w_casc_p)
        + cdb_casc_n
        + gate_drain_cap(sizing.w_casc_n)
        + layout.wire_cap("outp")
    )
    c_fold = (
        cdb_in
        + cdb_src_p
        + csb_casc_p
        + layout.wire_cap("foldp")
    )
    return Parasitics(c_out=c_out, c_fold=c_fold)
