"""Bridge from sizing to placement: a sized folded-cascode amplifier as
a placeable :class:`~repro.circuit.Circuit`.

The template of section V fixes the floorplan; this bridge instead hands
the *sized devices* to the topological placers of sections II-IV, with
the differential symmetry constraints the schematic implies.  Examples
use it to run the complete flow: size -> place -> route.
"""

from __future__ import annotations

from ..circuit import Circuit, HierarchyNode, SymmetryGroup
from ..geometry import Module, Net
from .amplifier import LOAD_CAP_FF, FoldedCascodeSizing
from .template import cap_footprint, device_footprint


def sizing_to_circuit(sizing: FoldedCascodeSizing, *, name: str = "folded-cascode") -> Circuit:
    """Build the placement problem for a sized amplifier.

    Devices become hard modules at their folded footprints; matched
    device pairs become symmetry groups; the hierarchy mirrors the
    schematic's basic module sets (input pair, PMOS sources, PMOS/NMOS
    cascodes, sinks, tail + loads).
    """
    modules: dict[str, Module] = {}
    for row in sizing.device_table():
        w, h = device_footprint(row["w"], row["l"], row["nf"])
        modules[row["name"]] = Module.hard(row["name"], w, h, rotatable=False)
    for cap in ("CL1", "CL2"):
        w, h = cap_footprint(LOAD_CAP_FF)
        modules[cap] = Module.hard(cap, w, h, rotatable=False)

    def sym_node(node_name: str, left: str, right: str) -> HierarchyNode:
        return HierarchyNode(
            node_name,
            modules=[modules[left], modules[right]],
            constraint=SymmetryGroup(f"sym-{node_name}", pairs=((left, right),)),
        )

    dp = sym_node("DP", "M1", "M2")
    src = sym_node("SRC", "M3", "M4")
    casc_p = sym_node("CASC-P", "M5", "M6")
    casc_n = sym_node("CASC-N", "M7", "M8")
    sink = sym_node("SINK", "M9", "M10")
    loads = sym_node("LOADS", "CL1", "CL2")
    core = HierarchyNode("CORE", children=[dp, src, casc_p, casc_n, sink])
    top = HierarchyNode(name.upper(), modules=[modules["M0"]], children=[core, loads])

    nets = (
        Net("inp", ("M1", "M2"), weight=2.0),
        Net("tail", ("M0", "M1", "M2")),
        Net("foldp", ("M2", "M4", "M6"), weight=2.0),
        Net("foldn", ("M1", "M3", "M5"), weight=2.0),
        Net("outp", ("M6", "M8", "CL1"), weight=2.0),
        Net("outn", ("M5", "M7", "CL2"), weight=2.0),
        Net("cascn-gate", ("M7", "M8")),
        Net("sink-gate", ("M9", "M10")),
        Net("sink-drain-p", ("M8", "M9")),
        Net("sink-drain-n", ("M7", "M10")),
    )
    return Circuit(name, top, nets=nets)
