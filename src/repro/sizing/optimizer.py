"""Simulation-based sizing optimization.

Section V: "the electrical sizing process is carried out by using a
simulation-based optimization approach ... thousands of different
circuit sizings are evaluated."  The optimizer is simulated annealing
over the sizing vector; the cost is a spec-penalty plus the design
objectives (power always; area and aspect ratio when the flow is
geometry-aware).
"""

from __future__ import annotations

import math
import random
import time
from dataclasses import dataclass, field
from typing import Callable

from ..anneal import Annealer, FunctionMoveSet, GeometricSchedule
from .amplifier import CONTINUOUS_BOUNDS, FOLD_BOUNDS, FoldedCascodeSizing
from .parasitics import Parasitics, extract
from .performance import Performance, evaluate
from .specs import SpecSet
from .template import TemplateLayout, generate_layout


@dataclass(frozen=True)
class OptimizerConfig:
    """Optimization parameters shared by both Fig.-10 flows."""

    seed: int = 0
    iterations_scale: int = 1  # multiplies the schedule length
    spec_weight: float = 60.0
    power_weight: float = 0.12
    area_weight: float = 0.0       # > 0 only in the geometry-aware flow
    aspect_weight: float = 0.0     # > 0 only in the geometry-aware flow
    target_aspect: float = 1.0
    t_initial: float = 1.0
    t_final: float = 5e-4
    alpha: float = 0.92
    steps_per_epoch: int = 80


@dataclass
class SizingOutcome:
    """Result of one optimization run."""

    sizing: FoldedCascodeSizing
    performance: Performance
    cost: float
    evaluations: int
    runtime_s: float
    extraction_s: float

    @property
    def extraction_fraction(self) -> float:
        """Share of runtime spent in parasitic extraction (the paper
        reports about 17% for cells of this size)."""
        return self.extraction_s / self.runtime_s if self.runtime_s else 0.0


class SizingOptimizer:
    """Anneal the sizing vector against a spec set.

    ``use_parasitics`` turns on in-loop layout generation + extraction
    (the parasitic-aware technique); ``use_geometry`` adds the folding
    factors to the move set and area/aspect terms to the cost (the
    geometrically-constrained technique).  The plain electrical flow of
    Fig. 10(a) uses neither.
    """

    def __init__(
        self,
        specs: SpecSet,
        config: OptimizerConfig | None = None,
        *,
        use_parasitics: bool,
        use_geometry: bool,
    ) -> None:
        self._specs = specs
        self._config = config or OptimizerConfig()
        self._use_parasitics = use_parasitics
        self._use_geometry = use_geometry
        self._evaluations = 0
        self._extraction_s = 0.0
        # Normalization for the area objective (µm²).
        self._area_scale = 40_000.0

    # -- evaluation ----------------------------------------------------------------

    def _layout_and_parasitics(
        self, sizing: FoldedCascodeSizing
    ) -> tuple[TemplateLayout, Parasitics]:
        start = time.perf_counter()
        layout = generate_layout(sizing)
        parasitics = extract(sizing, layout)
        self._extraction_s += time.perf_counter() - start
        return layout, parasitics

    def cost(self, sizing: FoldedCascodeSizing) -> float:
        cfg = self._config
        self._evaluations += 1
        layout: TemplateLayout | None = None
        if self._use_parasitics or self._use_geometry:
            layout, parasitics = self._layout_and_parasitics(sizing)
            perf = evaluate(sizing, parasitics if self._use_parasitics else None)
        else:
            perf = evaluate(sizing, None)
        cost = cfg.spec_weight * self._specs.penalty(perf.as_dict())
        cost += cfg.power_weight * perf.power_mw
        if self._use_geometry and layout is not None:
            if cfg.area_weight:
                cost += cfg.area_weight * layout.area / self._area_scale
            if cfg.aspect_weight:
                ratio = layout.aspect_ratio
                skew = max(ratio, 1.0 / ratio) / cfg.target_aspect
                cost += cfg.aspect_weight * max(0.0, skew - 1.0)
        return cost

    # -- moves ------------------------------------------------------------------

    def _propose(self, sizing: FoldedCascodeSizing, rng: random.Random) -> FoldedCascodeSizing:
        names = list(CONTINUOUS_BOUNDS)
        if self._use_geometry:
            names += list(FOLD_BOUNDS)
        name = rng.choice(names)
        if name in CONTINUOUS_BOUNDS:
            value = getattr(sizing, name) * math.exp(rng.gauss(0.0, 0.18))
            return sizing.with_values({name: value})
        step = rng.choice((-2, -1, 1, 2))
        return sizing.with_values({name: getattr(sizing, name) + step})

    # -- run --------------------------------------------------------------------

    def run(
        self, initial: FoldedCascodeSizing | None = None
    ) -> SizingOutcome:
        cfg = self._config
        rng = random.Random(cfg.seed)
        self._evaluations = 0
        self._extraction_s = 0.0
        start = time.perf_counter()

        schedule = GeometricSchedule(
            t_initial=cfg.t_initial,
            t_final=cfg.t_final,
            alpha=cfg.alpha,
            steps_per_epoch=cfg.steps_per_epoch * cfg.iterations_scale,
        )
        annealer = Annealer(self.cost, FunctionMoveSet(self._propose), schedule, rng)
        outcome = annealer.run((initial or FoldedCascodeSizing()).clamped())
        runtime = time.perf_counter() - start

        best = outcome.best_state
        if self._use_parasitics:
            _, parasitics = self._layout_and_parasitics(best)
            perf = evaluate(best, parasitics)
        else:
            perf = evaluate(best, None)
        return SizingOutcome(
            sizing=best,
            performance=perf,
            cost=outcome.best_cost,
            evaluations=self._evaluations,
            runtime_s=runtime,
            extraction_s=self._extraction_s,
        )
