"""Performance specifications.

The layout-aware sizing loop (section V) evaluates "thousands of
different circuit sizings ... to find the sizing that best fits all
performance specifications (like dc-gain higher than 50dB) and design
objectives (such as minimizing area and power consumption)".  This
module models specs with margins so optimizers can use smooth penalty
terms and reports can show pass/fail per spec.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Mapping


class Sense(Enum):
    """Whether a performance must stay above or below its bound."""

    AT_LEAST = ">="
    AT_MOST = "<="


@dataclass(frozen=True, slots=True)
class Spec:
    """One specification on a named performance."""

    performance: str
    sense: Sense
    bound: float
    unit: str = ""

    def margin(self, value: float) -> float:
        """Normalized signed margin: positive = satisfied.

        ``(value - bound) / |bound|`` for AT_LEAST, negated for AT_MOST.
        """
        scale = abs(self.bound) if self.bound else 1.0
        if self.sense is Sense.AT_LEAST:
            return (value - self.bound) / scale
        return (self.bound - value) / scale

    def is_met(self, value: float, *, tol: float = 0.0) -> bool:
        return self.margin(value) >= -tol

    def describe(self, value: float) -> str:
        status = "PASS" if self.is_met(value) else "FAIL"
        return (
            f"{self.performance:>12s} {self.sense.value} {self.bound:g} {self.unit:<6s}"
            f" measured {value:10.4g} {self.unit:<6s} [{status}]"
        )


@dataclass(frozen=True)
class SpecSet:
    """A collection of specs evaluated against a performance mapping."""

    specs: tuple[Spec, ...]

    def __iter__(self):
        return iter(self.specs)

    def __len__(self) -> int:
        return len(self.specs)

    def margins(self, performances: Mapping[str, float]) -> dict[str, float]:
        return {s.performance: s.margin(performances[s.performance]) for s in self.specs}

    def violations(self, performances: Mapping[str, float], *, tol: float = 0.0) -> list[str]:
        """Names of failed specs."""
        return [
            s.performance
            for s in self.specs
            if not s.is_met(performances[s.performance], tol=tol)
        ]

    def all_met(self, performances: Mapping[str, float], *, tol: float = 0.0) -> bool:
        return not self.violations(performances, tol=tol)

    def penalty(self, performances: Mapping[str, float]) -> float:
        """Sum of negative margins (0 when every spec is met) — the
        constraint part of the optimizer cost."""
        total = 0.0
        for s in self.specs:
            m = s.margin(performances[s.performance])
            if m < 0:
                total -= m
        return total

    def report(self, performances: Mapping[str, float]) -> str:
        return "\n".join(s.describe(performances[s.performance]) for s in self.specs)
