"""The fully-differential folded-cascode amplifier of Fig. 10.

Device roles (one half of the differential circuit; primes mirrored):

* ``M0``  — NMOS tail source, carries ``2 * i_in``;
* ``M1/M2`` — NMOS input pair, ``i_in`` each;
* ``M3/M4`` — PMOS current sources, ``i_in + i_casc`` each;
* ``M5/M6`` — PMOS cascodes, ``i_casc`` each;
* ``M7/M8`` — NMOS cascodes, ``i_casc`` each;
* ``M9/M10`` — NMOS current sinks, ``i_casc`` each;
* ``CL1/CL2`` — load capacitors.

The sizing vector holds per-role widths/lengths, the two branch
currents, and per-role folding factors (the *geometric* design variables
of the layout-aware flow).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Mapping

#: (low, high) bounds of the continuous sizing variables.
CONTINUOUS_BOUNDS: dict[str, tuple[float, float]] = {
    "w_in": (10.0, 600.0),
    "l_in": (0.35, 2.0),
    "w_tail": (10.0, 600.0),
    "l_tail": (0.5, 4.0),
    "w_src_p": (10.0, 800.0),
    "l_src_p": (0.5, 4.0),
    "w_casc_p": (10.0, 600.0),
    "l_casc_p": (0.35, 2.0),
    "w_casc_n": (5.0, 400.0),
    "l_casc_n": (0.35, 2.0),
    "w_sink_n": (10.0, 600.0),
    "l_sink_n": (0.5, 4.0),
    "i_in": (20.0, 500.0),
    "i_casc": (20.0, 500.0),
}

#: Folding-factor variables (geometric): role -> (low, high).
FOLD_BOUNDS: dict[str, tuple[int, int]] = {
    "nf_in": (1, 32),
    "nf_tail": (1, 32),
    "nf_src_p": (1, 32),
    "nf_casc_p": (1, 32),
    "nf_casc_n": (1, 32),
    "nf_sink_n": (1, 32),
}

#: Load capacitance per output, fF (a fixed requirement of the testbench).
LOAD_CAP_FF = 1000.0


@dataclass(frozen=True)
class FoldedCascodeSizing:
    """One point of the sizing space."""

    w_in: float = 120.0
    l_in: float = 0.5
    w_tail: float = 80.0
    l_tail: float = 1.0
    w_src_p: float = 160.0
    l_src_p: float = 1.0
    w_casc_p: float = 120.0
    l_casc_p: float = 0.5
    w_casc_n: float = 60.0
    l_casc_n: float = 0.5
    w_sink_n: float = 80.0
    l_sink_n: float = 1.0
    i_in: float = 100.0
    i_casc: float = 100.0
    nf_in: int = 1
    nf_tail: int = 1
    nf_src_p: int = 1
    nf_casc_p: int = 1
    nf_casc_n: int = 1
    nf_sink_n: int = 1

    def clamped(self) -> "FoldedCascodeSizing":
        """Project every variable into its bounds."""
        updates: dict[str, float | int] = {}
        for name, (lo, hi) in CONTINUOUS_BOUNDS.items():
            updates[name] = min(hi, max(lo, getattr(self, name)))
        for name, (lo, hi) in FOLD_BOUNDS.items():
            updates[name] = min(hi, max(lo, int(getattr(self, name))))
        return replace(self, **updates)

    def with_values(self, values: Mapping[str, float | int]) -> "FoldedCascodeSizing":
        return replace(self, **values).clamped()

    def as_dict(self) -> dict[str, float | int]:
        out: dict[str, float | int] = {}
        for name in CONTINUOUS_BOUNDS:
            out[name] = getattr(self, name)
        for name in FOLD_BOUNDS:
            out[name] = getattr(self, name)
        return out

    # -- derived per-device views -------------------------------------------------

    def device_table(self) -> list[dict]:
        """Rows of (name, role, pmos, w, l, nf, ids) for all 11 devices."""
        rows = []

        def add(name, role, pmos, w, l, nf, ids):
            rows.append(
                {"name": name, "role": role, "pmos": pmos, "w": w, "l": l, "nf": nf, "ids": ids}
            )

        add("M0", "tail", False, self.w_tail, self.l_tail, self.nf_tail, 2 * self.i_in)
        for m in ("M1", "M2"):
            add(m, "input", False, self.w_in, self.l_in, self.nf_in, self.i_in)
        for m in ("M3", "M4"):
            add(m, "src_p", True, self.w_src_p, self.l_src_p, self.nf_src_p, self.i_in + self.i_casc)
        for m in ("M5", "M6"):
            add(m, "casc_p", True, self.w_casc_p, self.l_casc_p, self.nf_casc_p, self.i_casc)
        for m in ("M7", "M8"):
            add(m, "casc_n", False, self.w_casc_n, self.l_casc_n, self.nf_casc_n, self.i_casc)
        for m in ("M9", "M10"):
            add(m, "sink_n", False, self.w_sink_n, self.l_sink_n, self.nf_sink_n, self.i_casc)
        return rows
