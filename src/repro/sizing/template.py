"""Procedural layout template for the folded-cascode amplifier.

Replaces the Cadence PCELLS / SKILL template generators of section V
with a pure-Python equivalent exposing the same interface: a sizing
vector (electrical + geometric parameters) maps to a placed layout in
well under a millisecond, so layout generation can run inside every
iteration of the sizing loop.

The template is row-based, mirroring typical analog op-amp templates:

    row 3 (top):    CL1  CL2                      (load capacitors)
    row 2:          M3   M5  |  M6   M4           (PMOS, mirrored)
    row 1:          M1   M7  |  M8   M2           (NMOS signal path)
    row 0 (bottom): M9   M0  M10                  (NMOS sinks + tail)

Rows are centered on a common vertical axis, so the differential halves
are symmetric by construction — the template encodes the expertise that
section V credits templates with ("very efficient at encapsulating
design expertise").
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..geometry import Module, PlacedModule, Placement, Rect
from .amplifier import LOAD_CAP_FF, FoldedCascodeSizing
from .mos import MOS_TECH

#: Inter-device spacing inside a row and between rows, µm.
DEVICE_SPACING = 2.0
ROW_SPACING = 3.0

#: Capacitor density, fF/µm² (poly-poly).
CAP_DENSITY = 1.0

#: Estimated wiring capacitance per µm of net length, fF/µm.
WIRE_CAP_PER_UM = 0.22

_ROWS: tuple[tuple[str, ...], ...] = (
    ("M9", "M0", "M10"),
    ("M1", "M7", "M8", "M2"),
    ("M3", "M5", "M6", "M4"),
    ("CL1", "CL2"),
)

#: Nets whose wiring parasitics matter for the performance model.
TEMPLATE_NETS: dict[str, tuple[str, ...]] = {
    "outp": ("M6", "M8", "CL1"),
    "outn": ("M5", "M7", "CL2"),
    "foldp": ("M2", "M4", "M6"),
    "foldn": ("M1", "M3", "M5"),
    "tail": ("M0", "M1", "M2"),
}


def device_footprint(w: float, l: float, nf: int) -> tuple[float, float]:
    """MOS footprint under folding: ``nf`` gate fingers side by side.

    Width grows with fingers (gate + contact pitch per finger), height is
    the finger strip length plus diffusion/well surround.
    """
    if nf < 1:
        raise ValueError("nf must be >= 1")
    finger_pitch = l + 1.6
    width = nf * finger_pitch + 1.0
    height = w / nf + 3.2
    return width, height


def cap_footprint(value_ff: float) -> tuple[float, float]:
    side = math.sqrt(value_ff / CAP_DENSITY)
    return side, side


@dataclass(frozen=True)
class TemplateLayout:
    """A generated layout instance.

    Geometry (footprints and lower-left positions) is computed eagerly
    and cheaply; the full :class:`Placement` object is materialized
    lazily, since the sizing loop only needs the bounding box and net
    lengths (thousands of instantiations per optimization run).
    """

    width: float
    height: float
    net_lengths: dict[str, float]
    rects: dict[str, Rect]
    _cache: list = field(default_factory=list, compare=False, repr=False)

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def aspect_ratio(self) -> float:
        return self.height / self.width if self.width else float("inf")

    def wire_cap(self, net: str) -> float:
        """Estimated wiring capacitance of a template net, fF."""
        return self.net_lengths[net] * WIRE_CAP_PER_UM

    def placement(self) -> Placement:
        """Materialize (and cache) the placement for rendering/analysis."""
        if self._cache:
            return self._cache[0]
        placed = [
            PlacedModule(Module.hard(name, r.width, r.height, rotatable=False), r)
            for name, r in self.rects.items()
        ]
        built = Placement.of(placed)
        self._cache.append(built)
        return built


def generate_layout(sizing: FoldedCascodeSizing) -> TemplateLayout:
    """Instantiate the template for a sizing vector."""
    footprints: dict[str, tuple[float, float]] = {}
    for row in sizing.device_table():
        footprints[row["name"]] = device_footprint(row["w"], row["l"], row["nf"])
    footprints["CL1"] = cap_footprint(LOAD_CAP_FF)
    footprints["CL2"] = cap_footprint(LOAD_CAP_FF)

    rects: dict[str, Rect] = {}
    centers: dict[str, tuple[float, float]] = {}
    y = 0.0
    total_width = max(
        sum(footprints[n][0] for n in row) + DEVICE_SPACING * (len(row) - 1)
        for row in _ROWS
    )
    for row in _ROWS:
        row_width = sum(footprints[n][0] for n in row) + DEVICE_SPACING * (len(row) - 1)
        row_height = max(footprints[n][1] for n in row)
        x = (total_width - row_width) / 2.0  # center the row on the axis
        for name in row:
            w, h = footprints[name]
            rects[name] = Rect.from_size(x, y, w, h)
            centers[name] = (x + w / 2.0, y + h / 2.0)
            x += w + DEVICE_SPACING
        y += row_height + ROW_SPACING
    height = y - ROW_SPACING

    net_lengths = {}
    for net, pins in TEMPLATE_NETS.items():
        xs = [centers[p][0] for p in pins]
        ys = [centers[p][1] for p in pins]
        net_lengths[net] = (max(xs) - min(xs)) + (max(ys) - min(ys))

    return TemplateLayout(
        width=total_width,
        height=height,
        net_lengths=net_lengths,
        rects=rects,
    )
