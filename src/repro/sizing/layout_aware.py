"""The two Fig.-10 flows: plain electrical sizing vs. layout-aware sizing.

* :func:`electrical_sizing` — optimizes the electrical variables only,
  evaluating performances *without* layout parasitics (the optimistic
  pre-layout view).  The layout is generated once afterwards; the
  returned result includes the post-extraction performances, which is
  where the spec failures of Fig. 10(a) appear.
* :func:`layout_aware_sizing` — includes the geometric variables
  (folding factors) in the optimization, generates the template and
  extracts parasitics inside every cost evaluation, and optimizes area
  and aspect ratio alongside the electrical objectives (Fig. 10(b)).
"""

from __future__ import annotations

from dataclasses import dataclass

from .amplifier import FoldedCascodeSizing
from .optimizer import OptimizerConfig, SizingOptimizer
from .parasitics import Parasitics, extract
from .performance import Performance, evaluate
from .specs import Sense, Spec, SpecSet
from .template import TemplateLayout, generate_layout


def default_specs() -> SpecSet:
    """The spec set of the reproduction's Fig.-10 experiment."""
    return SpecSet(
        (
            Spec("dc_gain_db", Sense.AT_LEAST, 68.0, "dB"),
            Spec("gbw_mhz", Sense.AT_LEAST, 60.0, "MHz"),
            Spec("phase_margin_deg", Sense.AT_LEAST, 60.0, "deg"),
            Spec("slew_rate_v_us", Sense.AT_LEAST, 60.0, "V/us"),
            Spec("swing_v", Sense.AT_LEAST, 1.5, "V"),
            Spec("power_mw", Sense.AT_MOST, 2.2, "mW"),
        )
    )


@dataclass
class FlowResult:
    """Everything the Fig.-10 comparison reports for one flow."""

    name: str
    sizing: FoldedCascodeSizing
    layout: TemplateLayout
    parasitics: Parasitics
    nominal: Performance            # as the flow itself evaluated it
    extracted: Performance          # with layout parasitics included
    specs: SpecSet
    evaluations: int
    runtime_s: float
    extraction_s: float

    @property
    def extraction_fraction(self) -> float:
        return self.extraction_s / self.runtime_s if self.runtime_s else 0.0

    def extracted_violations(self) -> list[str]:
        return self.specs.violations(self.extracted.as_dict())

    def meets_specs_post_layout(self) -> bool:
        return not self.extracted_violations()

    def report(self) -> str:
        lines = [
            f"flow: {self.name}",
            f"layout: {self.layout.width:.1f} x {self.layout.height:.1f} um "
            f"(area {self.layout.area:.0f} um^2, aspect {self.layout.aspect_ratio:.2f})",
            f"evaluations: {self.evaluations}, runtime {self.runtime_s:.2f}s, "
            f"extraction {100 * self.extraction_fraction:.0f}% of runtime",
            "post-extraction performances:",
            self.specs.report(self.extracted.as_dict()),
        ]
        return "\n".join(lines)


def electrical_sizing(
    specs: SpecSet | None = None, *, seed: int = 0, iterations_scale: int = 1
) -> FlowResult:
    """Fig. 10(a): sizing with no geometrical or parasitic considerations."""
    specs = specs or default_specs()
    config = OptimizerConfig(seed=seed, iterations_scale=iterations_scale)
    optimizer = SizingOptimizer(specs, config, use_parasitics=False, use_geometry=False)
    outcome = optimizer.run()
    layout = generate_layout(outcome.sizing)
    parasitics = extract(outcome.sizing, layout)
    return FlowResult(
        name="electrical-only",
        sizing=outcome.sizing,
        layout=layout,
        parasitics=parasitics,
        nominal=outcome.performance,
        extracted=evaluate(outcome.sizing, parasitics),
        specs=specs,
        evaluations=outcome.evaluations,
        runtime_s=outcome.runtime_s,
        extraction_s=outcome.extraction_s,
    )


def layout_aware_sizing(
    specs: SpecSet | None = None, *, seed: int = 0, iterations_scale: int = 1
) -> FlowResult:
    """Fig. 10(b): parasitic-aware + geometrically-constrained sizing."""
    specs = specs or default_specs()
    config = OptimizerConfig(
        seed=seed,
        iterations_scale=iterations_scale,
        area_weight=0.5,
        aspect_weight=0.8,
    )
    optimizer = SizingOptimizer(specs, config, use_parasitics=True, use_geometry=True)
    outcome = optimizer.run()
    layout = generate_layout(outcome.sizing)
    parasitics = extract(outcome.sizing, layout)
    return FlowResult(
        name="layout-aware",
        sizing=outcome.sizing,
        layout=layout,
        parasitics=parasitics,
        nominal=outcome.performance,
        extracted=evaluate(outcome.sizing, parasitics),
        specs=specs,
        evaluations=outcome.evaluations,
        runtime_s=outcome.runtime_s,
        extraction_s=outcome.extraction_s,
    )
