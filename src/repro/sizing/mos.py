"""Simplified MOS transistor model.

This is the *simulated substrate* replacing SPICE in the layout-aware
sizing flow (section V): a long-channel square-law model with channel
length modulation and layout-dependent junction capacitances.  The model
deliberately exposes the terms the layout-aware technique exploits —
"different foldings change the junction capacitances of a MOS
transistor" — while staying analytic and fast.

Units: µm, µA, V, fF, MHz-compatible (1/(2π·R[MΩ]·C[fF]) ≈ GHz·1e3 —
we keep everything in µA/V/fF and convert where needed).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: Synthetic 0.35 µm-class technology constants.
MOS_TECH = {
    "kp_n": 170.0,      # µA/V², NMOS transconductance factor
    "kp_p": 58.0,       # µA/V², PMOS
    "vth_n": 0.50,      # V
    "vth_p": 0.55,      # V
    "lambda0": 0.06,    # 1/V per µm of L (channel-length modulation ∝ 1/L)
    "cox": 4.5,         # fF/µm², gate oxide capacitance
    "cj": 0.90,         # fF/µm², junction area capacitance
    "cjsw": 0.25,       # fF/µm, junction sidewall capacitance
    "l_diff": 0.85,     # µm, source/drain diffusion length
    "vdd": 3.3,         # V supply
}


@dataclass(frozen=True, slots=True)
class MosOperatingPoint:
    """Small-signal quantities of one MOS device at a bias point."""

    gm: float      # µA/V
    gds: float     # µA/V
    vov: float     # V, overdrive
    cgs: float     # fF
    cgd: float     # fF
    cdb: float     # fF
    csb: float     # fF


def overdrive(ids: float, w: float, l: float, *, pmos: bool = False) -> float:
    """Overdrive voltage ``V_ov = sqrt(2 I_D / (k' W/L))``."""
    if ids <= 0 or w <= 0 or l <= 0:
        raise ValueError("ids, w, l must be positive")
    kp = MOS_TECH["kp_p"] if pmos else MOS_TECH["kp_n"]
    return math.sqrt(2.0 * ids / (kp * w / l))


def transconductance(ids: float, w: float, l: float, *, pmos: bool = False) -> float:
    """``gm = sqrt(2 k' (W/L) I_D)`` in µA/V."""
    kp = MOS_TECH["kp_p"] if pmos else MOS_TECH["kp_n"]
    return math.sqrt(2.0 * kp * (w / l) * ids)


def output_conductance(ids: float, l: float) -> float:
    """``gds = lambda I_D`` with ``lambda = lambda0 / L`` (µA/V)."""
    return MOS_TECH["lambda0"] / l * ids


def gate_source_cap(w: float, l: float) -> float:
    """Saturation-region ``C_gs = (2/3) W L C_ox`` (fF)."""
    return (2.0 / 3.0) * w * l * MOS_TECH["cox"]


def gate_drain_cap(w: float) -> float:
    """Overlap capacitance ``C_gd ≈ 0.35 fF/µm · W`` (fF)."""
    return 0.35 * w


def junction_caps(w: float, fingers: int) -> tuple[float, float]:
    """(C_db, C_sb) in fF for a device of width ``w`` folded into
    ``fingers`` fingers.

    A folded device has ``fingers + 1`` diffusion stripes of width
    ``w / fingers``; alternating stripes are drains and sources, and
    interior stripes are *shared* between two fingers.  Folding therefore
    cuts the drain junction capacitance roughly in half per doubling —
    the layout effect that parasitic-aware sizing trades against the
    wider footprint of more fingers.
    """
    if fingers < 1:
        raise ValueError("fingers must be >= 1")
    strip_w = w / fingers
    ld = MOS_TECH["l_diff"]
    cj, cjsw = MOS_TECH["cj"], MOS_TECH["cjsw"]
    n_drain = fingers // 2 + fingers % 2  # drains: ceil(nf / 2) stripes
    n_source = fingers // 2 + 1           # sources: floor(nf / 2) + 1 stripes
    area = strip_w * ld
    perim = 2.0 * (strip_w + ld)
    cdb = n_drain * (area * cj + perim * cjsw)
    csb = n_source * (area * cj + perim * cjsw)
    return cdb, csb


def operating_point(
    ids: float, w: float, l: float, *, fingers: int = 1, pmos: bool = False
) -> MosOperatingPoint:
    """Full small-signal evaluation of one device."""
    cdb, csb = junction_caps(w, fingers)
    return MosOperatingPoint(
        gm=transconductance(ids, w, l, pmos=pmos),
        gds=output_conductance(ids, l),
        vov=overdrive(ids, w, l, pmos=pmos),
        cgs=gate_source_cap(w, l),
        cgd=gate_drain_cap(w),
        cdb=cdb,
        csb=csb,
    )


def intrinsic_gain(ids: float, w: float, l: float, *, pmos: bool = False) -> float:
    """``gm / gds`` of a single device."""
    return transconductance(ids, w, l, pmos=pmos) / output_conductance(ids, l)
