"""Layout-aware analog sizing (paper section V)."""

from .amplifier import (
    CONTINUOUS_BOUNDS,
    FOLD_BOUNDS,
    LOAD_CAP_FF,
    FoldedCascodeSizing,
)
from .layout_aware import (
    FlowResult,
    default_specs,
    electrical_sizing,
    layout_aware_sizing,
)
from .mos import (
    MOS_TECH,
    MosOperatingPoint,
    gate_drain_cap,
    gate_source_cap,
    intrinsic_gain,
    junction_caps,
    operating_point,
    output_conductance,
    overdrive,
    transconductance,
)
from .optimizer import OptimizerConfig, SizingOptimizer, SizingOutcome
from .parasitics import Parasitics, extract
from .performance import Performance, evaluate
from .specs import Sense, Spec, SpecSet
from .template import (
    TEMPLATE_NETS,
    TemplateLayout,
    cap_footprint,
    device_footprint,
    generate_layout,
)
from .to_circuit import sizing_to_circuit

__all__ = [
    "CONTINUOUS_BOUNDS",
    "FOLD_BOUNDS",
    "LOAD_CAP_FF",
    "MOS_TECH",
    "TEMPLATE_NETS",
    "FlowResult",
    "FoldedCascodeSizing",
    "MosOperatingPoint",
    "OptimizerConfig",
    "Parasitics",
    "Performance",
    "Sense",
    "SizingOptimizer",
    "SizingOutcome",
    "Spec",
    "SpecSet",
    "TemplateLayout",
    "cap_footprint",
    "default_specs",
    "device_footprint",
    "electrical_sizing",
    "evaluate",
    "extract",
    "gate_drain_cap",
    "gate_source_cap",
    "generate_layout",
    "intrinsic_gain",
    "junction_caps",
    "operating_point",
    "output_conductance",
    "overdrive",
    "sizing_to_circuit",
    "transconductance",
]
