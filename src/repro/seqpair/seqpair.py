"""The sequence-pair topological representation (Murata et al. [22]).

A sequence-pair ``(alpha, beta)`` encodes the relative position of every
pair of modules: ``a`` is *left of* ``b`` when ``a`` precedes ``b`` in
both sequences, and *below* ``b`` when ``a`` follows ``b`` in ``alpha``
but precedes it in ``beta``.  Every sequence-pair corresponds to at
least one feasible (overlap-free) placement, which is what makes the
representation attractive for analog placement (section II).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable, Sequence


class Relation(Enum):
    """Relative position of module ``a`` with respect to module ``b``."""

    LEFT_OF = "left-of"
    RIGHT_OF = "right-of"
    BELOW = "below"
    ABOVE = "above"


@dataclass(frozen=True)
class SequencePair:
    """An immutable sequence-pair over a set of module names."""

    alpha: tuple[str, ...]
    beta: tuple[str, ...]
    _alpha_inv: dict[str, int] = field(compare=False, hash=False, default_factory=dict)
    _beta_inv: dict[str, int] = field(compare=False, hash=False, default_factory=dict)

    def __post_init__(self) -> None:
        if sorted(self.alpha) != sorted(self.beta):
            raise ValueError("alpha and beta must be permutations of the same names")
        if len(set(self.alpha)) != len(self.alpha):
            raise ValueError("duplicate names in sequence-pair")
        object.__setattr__(self, "_alpha_inv", {m: i for i, m in enumerate(self.alpha)})
        object.__setattr__(self, "_beta_inv", {m: i for i, m in enumerate(self.beta)})

    # -- constructors -----------------------------------------------------------

    @classmethod
    def identity(cls, names: Sequence[str]) -> "SequencePair":
        """Both sequences in the given order (a horizontal row)."""
        t = tuple(names)
        return cls(t, t)

    @classmethod
    def random(cls, names: Iterable[str], rng: random.Random) -> "SequencePair":
        """Uniformly random sequence-pair."""
        a = list(names)
        b = list(a)
        rng.shuffle(a)
        rng.shuffle(b)
        return cls(tuple(a), tuple(b))

    # -- queries ----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.alpha)

    @property
    def names(self) -> tuple[str, ...]:
        return self.alpha

    def alpha_index(self, name: str) -> int:
        """Position of ``name`` in alpha (the paper's ``alpha^-1``)."""
        return self._alpha_inv[name]

    def beta_index(self, name: str) -> int:
        """Position of ``name`` in beta (the paper's ``beta^-1``)."""
        return self._beta_inv[name]

    def relation(self, a: str, b: str) -> Relation:
        """Geometric relation of ``a`` with respect to ``b``."""
        if a == b:
            raise ValueError("relation of a module with itself is undefined")
        a_before_in_alpha = self._alpha_inv[a] < self._alpha_inv[b]
        a_before_in_beta = self._beta_inv[a] < self._beta_inv[b]
        if a_before_in_alpha and a_before_in_beta:
            return Relation.LEFT_OF
        if not a_before_in_alpha and not a_before_in_beta:
            return Relation.RIGHT_OF
        if not a_before_in_alpha and a_before_in_beta:
            return Relation.BELOW
        return Relation.ABOVE

    def left_of(self, a: str, b: str) -> bool:
        return (
            self._alpha_inv[a] < self._alpha_inv[b]
            and self._beta_inv[a] < self._beta_inv[b]
        )

    def below(self, a: str, b: str) -> bool:
        return (
            self._alpha_inv[a] > self._alpha_inv[b]
            and self._beta_inv[a] < self._beta_inv[b]
        )

    # -- derived sequence-pairs ----------------------------------------------------

    def with_alpha_swap(self, i: int, j: int) -> "SequencePair":
        """Swap positions ``i`` and ``j`` of alpha."""
        a = list(self.alpha)
        a[i], a[j] = a[j], a[i]
        return SequencePair(tuple(a), self.beta)

    def with_beta_swap(self, i: int, j: int) -> "SequencePair":
        """Swap positions ``i`` and ``j`` of beta."""
        b = list(self.beta)
        b[i], b[j] = b[j], b[i]
        return SequencePair(self.alpha, tuple(b))

    def with_both_swap(self, a_name: str, b_name: str) -> "SequencePair":
        """Swap two modules in both sequences (exchanges their locations)."""
        sp = self.with_alpha_swap(self._alpha_inv[a_name], self._alpha_inv[b_name])
        return sp.with_beta_swap(self._beta_inv[a_name], self._beta_inv[b_name])
