"""Sequence-pair placement with symmetry constraints (paper section II)."""

from .enumerate_sp import (
    all_sequence_pairs,
    count_sf_bruteforce,
    count_sf_closed_form,
    count_sf_semi_enumerated,
)
from .moves import PlacementState, SymmetricMoveSet
from .packing import pack_lcs, pack_longest_path
from .placer import PlacerConfig, PlacerResult, SequencePairPlacer
from .seqpair import Relation, SequencePair
from .tcg import TransitiveClosureGraph
from .symmetry import (
    SymmetricPackingError,
    is_symmetric_feasible,
    make_symmetric_feasible,
    pack_symmetric,
    random_symmetric_feasible,
    search_space_reduction,
    sf_count_upper_bound,
    sf_violations,
    total_sequence_pairs,
)

__all__ = [
    "PlacementState",
    "PlacerConfig",
    "PlacerResult",
    "Relation",
    "SequencePair",
    "SequencePairPlacer",
    "SymmetricMoveSet",
    "SymmetricPackingError",
    "TransitiveClosureGraph",
    "all_sequence_pairs",
    "count_sf_bruteforce",
    "count_sf_closed_form",
    "count_sf_semi_enumerated",
    "is_symmetric_feasible",
    "make_symmetric_feasible",
    "pack_lcs",
    "pack_longest_path",
    "pack_symmetric",
    "random_symmetric_feasible",
    "search_space_reduction",
    "sf_count_upper_bound",
    "sf_violations",
    "total_sequence_pairs",
]
