"""Symmetric-feasible sequence-pairs (paper section II).

Implements:

* property (1) — the *symmetric-feasible* (S-F) predicate;
* random construction of S-F codes (via per-group chain interleaving);
* the search-space reduction lemma (upper bound on the number of S-F
  codes) together with the exact count it equals for disjoint groups;
* the symmetric packer: builds an overlap-free placement from an S-F
  code in which every symmetry group is exactly mirrored about its axis.
"""

from __future__ import annotations

import math
import random
from typing import Iterable, Mapping, Sequence

from ..circuit import SymmetryGroup
from ..geometry import ModuleSet, Orientation, PlacedModule, Placement, Rect
from .packing import _footprints, pack_lcs, pack_lcs_coords
from .seqpair import SequencePair


# ---------------------------------------------------------------------------
# The S-F predicate — property (1)
# ---------------------------------------------------------------------------


def is_symmetric_feasible(sp: SequencePair, groups: Iterable[SymmetryGroup]) -> bool:
    """Check property (1) for every symmetry group.

    A sequence-pair ``(alpha, beta)`` is S-F when for any distinct cells
    x, y of a symmetry group::

        alpha^-1(x) < alpha^-1(y)  <=>  beta^-1(sym(y)) < beta^-1(sym(x))
    """
    for group in groups:
        members = list(group.members())
        for i, x in enumerate(members):
            for y in members[i + 1:]:
                lhs = sp.alpha_index(x) < sp.alpha_index(y)
                rhs = sp.beta_index(group.sym(y)) < sp.beta_index(group.sym(x))
                if lhs != rhs:
                    return False
    return True


def sf_violations(sp: SequencePair, groups: Iterable[SymmetryGroup]) -> list[tuple[str, str]]:
    """All member pairs violating property (1) (diagnostic helper)."""
    bad = []
    for group in groups:
        members = list(group.members())
        for i, x in enumerate(members):
            for y in members[i + 1:]:
                lhs = sp.alpha_index(x) < sp.alpha_index(y)
                rhs = sp.beta_index(group.sym(y)) < sp.beta_index(group.sym(x))
                if lhs != rhs:
                    bad.append((x, y))
    return bad


# ---------------------------------------------------------------------------
# Constructing S-F codes
# ---------------------------------------------------------------------------


def make_symmetric_feasible(
    sp: SequencePair, groups: Sequence[SymmetryGroup]
) -> SequencePair:
    """Repair ``sp`` into an S-F code by reordering beta.

    Property (1) fixes, for each group, the *relative* order in beta of
    the group's members: if the members appear in alpha in the order
    ``x1 .. xm`` then their sym-images must appear in beta in the order
    ``sym(xm) .. sym(x1)``.  We keep beta's positions for each group
    fixed as a set and rewrite the occupants to follow the required
    chain, leaving all other modules untouched.  Alpha is never changed,
    so repairing after an alpha-perturbation preserves the perturbation.
    """
    beta = list(sp.beta)
    for group in groups:
        member_set = group.member_set()
        in_alpha = [m for m in sp.alpha if m in member_set]
        required = [group.sym(m) for m in reversed(in_alpha)]
        slots = [i for i, m in enumerate(beta) if m in member_set]
        for slot, name in zip(slots, required):
            beta[slot] = name
    return SequencePair(sp.alpha, tuple(beta))


def random_symmetric_feasible(
    names: Sequence[str], groups: Sequence[SymmetryGroup], rng: random.Random
) -> SequencePair:
    """A uniformly random alpha with a random S-F-compatible beta."""
    return make_symmetric_feasible(SequencePair.random(names, rng), groups)


# ---------------------------------------------------------------------------
# The counting lemma
# ---------------------------------------------------------------------------


def sf_count_upper_bound(n: int, groups: Iterable[SymmetryGroup]) -> int:
    """The lemma of section II.

    The number of S-F sequence-pairs for ``n`` cells and symmetry groups
    with ``p_k`` pairs and ``s_k`` self-symmetric cells is upper-bounded
    by ``(n!)^2 / prod_k (2 p_k + s_k)!``.

    For disjoint groups (the usual case) the bound is met with equality:
    for each of the ``n!`` alphas, the valid betas are exactly the
    permutations in which each group's members follow one prescribed
    relative order — ``n! / prod_k (group_size_k)!`` of them.
    """
    denominator = 1
    for group in groups:
        denominator *= math.factorial(group.size)
    return math.factorial(n) ** 2 // denominator


def total_sequence_pairs(n: int) -> int:
    """Total number of sequence-pairs over ``n`` cells: (n!)^2."""
    return math.factorial(n) ** 2


def search_space_reduction(n: int, groups: Iterable[SymmetryGroup]) -> float:
    """Fraction of the sequence-pair space removed by restricting to S-F
    codes (the paper reports 99.86% for the Fig. 1 example)."""
    return 1.0 - sf_count_upper_bound(n, groups) / total_sequence_pairs(n)


# ---------------------------------------------------------------------------
# Symmetric packing
# ---------------------------------------------------------------------------


class SymmetricPackingError(RuntimeError):
    """Raised when an exactly symmetric placement cannot be constructed
    (e.g. the code is not S-F, or pair footprints differ)."""


def _solve_x_exact(
    xs: dict[str, float],
    sizes: Mapping[str, tuple[float, float]],
    left_edges: list[tuple[str, str]],
    group_pairs: list[tuple[SymmetryGroup, list[tuple[str, str]]]],
    tol: float,
) -> None:
    """Solve the horizontal system exactly as a linear program.

    Variables: one x per module plus one axis per group.  Constraints:
    ``x_b - x_a >= w_a`` for every left-of edge, mirror equalities for
    pairs (``x_p + x_q = 2 A - w``) and self-symmetric cells
    (``x_s = A - w/2``).  Minimizing the coordinate sum yields the
    tightest symmetric placement; updates ``xs`` in place.
    """
    from scipy.optimize import linprog

    names = list(xs)
    index = {n: i for i, n in enumerate(names)}
    n = len(names)
    groups = [g for g, _ in group_pairs]
    axis_index = {g.name: n + i for i, g in enumerate(groups)}
    n_vars = n + len(groups)

    a_ub, b_ub = [], []
    for a, b in left_edges:
        row = [0.0] * n_vars
        row[index[a]] = 1.0
        row[index[b]] = -1.0
        a_ub.append(row)
        b_ub.append(-sizes[a][0])

    a_eq, b_eq = [], []
    for group, pairs in group_pairs:
        ai = axis_index[group.name]
        for p, q in pairs:
            row = [0.0] * n_vars
            row[index[p]] = 1.0
            row[index[q]] = 1.0
            row[ai] = -2.0
            a_eq.append(row)
            b_eq.append(-sizes[p][0])
        for s in group.self_symmetric:
            row = [0.0] * n_vars
            row[index[s]] = 1.0
            row[ai] = -1.0
            a_eq.append(row)
            b_eq.append(-sizes[s][0] / 2.0)

    result = linprog(
        c=[1.0] * n_vars,
        A_ub=a_ub or None,
        b_ub=b_ub or None,
        A_eq=a_eq or None,
        b_eq=b_eq or None,
        bounds=[(0.0, None)] * n_vars,
        method="highs",
    )
    if not result.success:
        raise SymmetricPackingError(
            f"symmetric placement LP infeasible: {result.message}"
        )
    for name in names:
        xs[name] = float(result.x[index[name]])


def pack_symmetric_coords(
    sp: SequencePair,
    modules: ModuleSet,
    groups: Sequence[SymmetryGroup],
    orientations: Mapping[str, Orientation] | None = None,
    variants: Mapping[str, int] | None = None,
    *,
    max_iterations: int = 200,
    tol: float = 1e-9,
) -> tuple[dict[str, float], dict[str, float], dict[str, tuple[float, float]]]:
    """Coordinate-tier core of :func:`pack_symmetric`.

    Returns ``(xs, ys, sizes)`` — lower-left corners plus the (w, h) each
    module occupies — without building any ``Placement``; the annealing
    loop evaluates codes on these and materializes a placement for the
    best state only.  Raises :class:`SymmetricPackingError` exactly as
    :func:`pack_symmetric` does.

    Starting from the minimal packing, coordinates are raised by monotone
    constraint propagation until both the sequence-pair non-overlap
    constraints and the per-group mirror constraints hold:

    * y: symmetric pair members share a y coordinate;
    * x: pair centers are mirrored about the group axis and
      self-symmetric cells are centered on it.

    All updates only increase coordinates (or the axis), so the iteration
    converges; with an S-F code it reaches an exact fixpoint (property
    (1) is precisely the condition making the constraints compatible).
    """
    footprints = _footprints(sp, modules, orientations, variants)
    xs, ys = pack_lcs_coords(sp, footprints)
    # Sizes as measured off the packed rectangles: ``(x + w) - x`` can
    # differ from ``w`` in the last ulp, and the historical object path
    # used the rectangle-derived value — keep it so results stay
    # bit-identical.
    sizes: dict[str, tuple[float, float]] = {}
    for name in sp.names:
        w, h = footprints[name]
        x, y = xs[name], ys[name]
        sizes[name] = ((x + w) - x, (y + h) - y)
    names = list(sp.names)

    for group in groups:
        for a, b in group.pairs:
            wa, ha = sizes[a]
            wb, hb = sizes[b]
            if abs(wa - wb) > tol or abs(ha - hb) > tol:
                raise SymmetricPackingError(
                    f"pair ({a}, {b}) of group {group.name!r} has mismatched "
                    f"footprints {wa:g}x{ha:g} vs {wb:g}x{hb:g}"
                )

    # Precompute constraint edges once (O(n^2), done a single time).
    left_edges = [
        (a, b) for a in names for b in names if a != b and sp.left_of(a, b)
    ]
    below_edges = [
        (a, b) for a in names for b in names if a != b and sp.below(a, b)
    ]
    # Orient pairs so .pairs[i] = (left member, right member) w.r.t. sp.
    oriented_pairs: list[tuple[str, str]] = []
    for group in groups:
        for a, b in group.pairs:
            oriented_pairs.append((a, b) if sp.left_of(a, b) else (b, a))

    def relax_packing() -> float:
        """One longest-path sweep; returns the largest coordinate change."""
        change = 0.0
        for a, b in left_edges:
            need = xs[a] + sizes[a][0]
            if xs[b] < need - tol:
                change = max(change, need - xs[b])
                xs[b] = need
        for a, b in below_edges:
            need = ys[a] + sizes[a][1]
            if ys[b] < need - tol:
                change = max(change, need - ys[b])
                ys[b] = need
        return change

    group_pairs: list[tuple[SymmetryGroup, list[tuple[str, str]]]] = []
    cursor = 0
    for group in groups:
        k = len(group.pairs)
        group_pairs.append((group, oriented_pairs[cursor : cursor + k]))
        cursor += k

    def relax_symmetry() -> float:
        """Raise coordinates toward mirror symmetry; returns max change.

        A pair short of the mirror condition has its *left* member raised
        by half the deficit: if the pair is packed tightly the right
        member follows through the packing constraints (closing the whole
        deficit); otherwise the remaining deficit halves every sweep, so
        the iteration converges geometrically to the least fixpoint.
        Raising the right member instead can push outer pairs and chase
        the axis indefinitely.
        """
        change = 0.0
        for group, pairs in group_pairs:
            # y equality within pairs.
            for a, b in pairs:
                top = max(ys[a], ys[b])
                change = max(change, top - ys[a], top - ys[b])
                ys[a] = ys[b] = top
            # the axis must accommodate every pair and self-symmetric cell
            axis = 0.0
            for a, b in pairs:
                ca = xs[a] + sizes[a][0] / 2.0
                cb = xs[b] + sizes[b][0] / 2.0
                axis = max(axis, (ca + cb) / 2.0)
            for s in group.self_symmetric:
                axis = max(axis, xs[s] + sizes[s][0] / 2.0)
            for a, b in pairs:
                ca = xs[a] + sizes[a][0] / 2.0
                cb = xs[b] + sizes[b][0] / 2.0
                deficit = 2.0 * axis - ca - cb
                if deficit > tol:
                    xs[a] += deficit / 2.0
                    change = max(change, deficit / 2.0)
            for s in group.self_symmetric:
                cs = xs[s] + sizes[s][0] / 2.0
                deficit = axis - cs
                if deficit > tol:
                    xs[s] += deficit
                    change = max(change, deficit)
        return change

    converged = False
    for _ in range(max_iterations):
        moved = relax_packing()
        moved = max(moved, relax_symmetry())
        if moved <= tol:
            converged = True
            break
    if not converged:
        # Exact fallback: solve the x system (packing + mirror equalities)
        # as a linear program; y converges by monotone iteration alone.
        _solve_x_exact(xs, sizes, left_edges, group_pairs, tol)
        for _ in range(max_iterations):
            moved = 0.0
            for a, b in below_edges:
                need = ys[a] + sizes[a][1]
                if ys[b] < need - tol:
                    moved = max(moved, need - ys[b])
                    ys[b] = need
            for group, pairs in group_pairs:
                for a, b in pairs:
                    top = max(ys[a], ys[b])
                    moved = max(moved, top - ys[a], top - ys[b])
                    ys[a] = ys[b] = top
            if moved <= tol:
                break
        else:
            raise SymmetricPackingError(
                "vertical symmetric packing did not converge; "
                "is the sequence-pair S-F?"
            )

    return xs, ys, sizes


def pack_symmetric(
    sp: SequencePair,
    modules: ModuleSet,
    groups: Sequence[SymmetryGroup],
    orientations: Mapping[str, Orientation] | None = None,
    variants: Mapping[str, int] | None = None,
    *,
    max_iterations: int = 200,
    tol: float = 1e-9,
) -> Placement:
    """Build an overlap-free placement with exact mirror symmetry.

    Object-tier wrapper over :func:`pack_symmetric_coords`; see there
    for the algorithm.
    """
    xs, ys, sizes = pack_symmetric_coords(
        sp,
        modules,
        groups,
        orientations,
        variants,
        max_iterations=max_iterations,
        tol=tol,
    )
    placed = []
    for name in sp.names:
        w, h = sizes[name]
        orient = orientations.get(name, Orientation.R0) if orientations else Orientation.R0
        variant = variants.get(name, 0) if variants else 0
        placed.append(
            PlacedModule(
                modules[name],
                Rect.from_size(xs[name], ys[name], w, h),
                variant=variant,
                orientation=orient,
            )
        )
    return Placement.of(placed)
