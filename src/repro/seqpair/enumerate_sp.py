"""Exhaustive sequence-pair enumeration (verification of the lemma).

The lemma of section II upper-bounds the number of S-F codes.  For
disjoint symmetry groups the bound is exact; these utilities verify that
by brute force on small instances and compute the exact count
combinatorially for larger ones (the paper's n = 7 example yields
35,280 of 25,401,600 codes, a 99.86% reduction).
"""

from __future__ import annotations

import math
from itertools import permutations
from typing import Iterator, Sequence

from ..circuit import SymmetryGroup
from .seqpair import SequencePair
from .symmetry import is_symmetric_feasible


def all_sequence_pairs(names: Sequence[str]) -> Iterator[SequencePair]:
    """Every (alpha, beta) over ``names`` — (n!)^2 of them; small n only."""
    for alpha in permutations(names):
        for beta in permutations(names):
            yield SequencePair(alpha, beta)


def count_sf_bruteforce(names: Sequence[str], groups: Sequence[SymmetryGroup]) -> int:
    """Count S-F codes by checking property (1) on every sequence-pair.

    Exponential: intended for n <= 5 in tests.
    """
    return sum(
        1 for sp in all_sequence_pairs(names) if is_symmetric_feasible(sp, groups)
    )


def count_sf_semi_enumerated(names: Sequence[str], groups: Sequence[SymmetryGroup]) -> int:
    """Count S-F codes by enumerating alphas only.

    For a fixed alpha, property (1) prescribes one exact relative order
    in beta for each group's members; the number of valid betas is the
    number of interleavings ``n! / prod_k (group_size_k)!`` — independent
    of alpha.  Enumerating alphas (rather than multiplying by n!) keeps
    this a genuine enumeration while remaining feasible for n = 7.
    """
    n = len(names)
    betas_per_alpha = math.factorial(n)
    for group in groups:
        betas_per_alpha //= math.factorial(group.size)
    return sum(betas_per_alpha for _ in permutations(names))


def count_sf_closed_form(n: int, groups: Sequence[SymmetryGroup]) -> int:
    """Exact S-F count for disjoint groups: (n!)^2 / prod_k (2p_k+s_k)!."""
    count = math.factorial(n) ** 2
    for group in groups:
        count //= math.factorial(group.size)
    return count
