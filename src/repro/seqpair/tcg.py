"""Transitive closure graphs (Lin & Chang [15]).

Section I lists TCGs among the non-slicing topological representations.
A TCG is a pair of directed acyclic graphs (Ch, Cv): an edge a→b in Ch
means *a left of b*, in Cv *a below b*.  Validity requires the two
closures to partition all module pairs — exactly the geometric
information a sequence-pair carries, which is why the two representations
are interconvertible.

Provided here: the representation with its validity checks, packing via
longest paths, and lossless conversion from/to sequence-pairs (tested to
pack identically).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from ..geometry import ModuleSet, Orientation, PlacedModule, Placement, Rect
from .seqpair import Relation, SequencePair


@dataclass(frozen=True)
class TransitiveClosureGraph:
    """A validated TCG over a set of module names.

    ``horizontal`` / ``vertical`` map each module to the set of modules
    it is left-of / below (the *closed* relation, not a reduction).
    """

    names: tuple[str, ...]
    horizontal: Mapping[str, frozenset[str]]
    vertical: Mapping[str, frozenset[str]]
    _order: tuple[str, ...] = field(compare=False, hash=False, default=())

    def __post_init__(self) -> None:
        name_set = set(self.names)
        if len(name_set) != len(self.names):
            raise ValueError("duplicate module names")
        for rel in (self.horizontal, self.vertical):
            if set(rel) != name_set:
                raise ValueError("relation must cover every module")
            for a, succ in rel.items():
                unknown = succ - name_set
                if unknown:
                    raise ValueError(f"unknown successors {sorted(unknown)}")
                if a in succ:
                    raise ValueError(f"self-loop at {a!r}")
        self._check_partition()
        self._check_closure(self.horizontal, "horizontal")
        self._check_closure(self.vertical, "vertical")
        object.__setattr__(self, "_order", self._topological_order())

    # -- validity -----------------------------------------------------------

    def _check_partition(self) -> None:
        """Every unordered pair must be related in exactly one graph,
        in exactly one direction."""
        for i, a in enumerate(self.names):
            for b in self.names[i + 1:]:
                relations = (
                    (b in self.horizontal[a])
                    + (a in self.horizontal[b])
                    + (b in self.vertical[a])
                    + (a in self.vertical[b])
                )
                if relations != 1:
                    raise ValueError(
                        f"pair ({a!r}, {b!r}) has {relations} relations; "
                        "a TCG needs exactly one"
                    )

    @staticmethod
    def _check_closure(rel: Mapping[str, frozenset[str]], label: str) -> None:
        """The relation must equal its own transitive closure."""
        for a in rel:
            for b in rel[a]:
                missing = rel[b] - rel[a]
                if missing:
                    raise ValueError(
                        f"{label} relation not transitively closed: "
                        f"{a!r} -> {b!r} -> {sorted(missing)}"
                    )

    def _topological_order(self) -> tuple[str, ...]:
        """Topological order of the horizontal graph (used for packing);
        also proves acyclicity."""
        indegree = {n: 0 for n in self.names}
        for a in self.names:
            for b in self.horizontal[a]:
                indegree[b] += 1
        frontier = [n for n in self.names if indegree[n] == 0]
        order = []
        while frontier:
            node = frontier.pop()
            order.append(node)
            for b in self.horizontal[node]:
                indegree[b] -= 1
                if indegree[b] == 0:
                    frontier.append(b)
        if len(order) != len(self.names):
            raise ValueError("horizontal relation has a cycle")
        return tuple(order)

    # -- conversions ----------------------------------------------------------

    @classmethod
    def from_sequence_pair(cls, sp: SequencePair) -> "TransitiveClosureGraph":
        """The TCG carrying exactly the sequence-pair's relations."""
        horizontal = {}
        vertical = {}
        names = sp.names
        for a in names:
            h, v = set(), set()
            for b in names:
                if a == b:
                    continue
                rel = sp.relation(a, b)
                if rel is Relation.LEFT_OF:
                    h.add(b)
                elif rel is Relation.BELOW:
                    v.add(b)
            horizontal[a] = frozenset(h)
            vertical[a] = frozenset(v)
        return cls(tuple(names), horizontal, vertical)

    def to_sequence_pair(self) -> SequencePair:
        """A sequence-pair with the same relations.

        In a sequence-pair, the modules preceding x in alpha are exactly
        those *left of* or *above* x, and those preceding x in beta are
        the ones *left of* or *below* x — so the closure cardinalities
        give each module's positions directly.
        """
        lefts = {
            n: sum(1 for m in self.names if n in self.horizontal[m])
            for n in self.names
        }
        belows = {
            n: sum(1 for m in self.names if n in self.vertical[m])
            for n in self.names
        }
        # a -> b in Cv means a below b, so "modules above x" are exactly
        # x's successors in Cv.
        aboves = {n: len(self.vertical[n]) for n in self.names}
        alpha = sorted(self.names, key=lambda n: lefts[n] + aboves[n])
        beta = sorted(self.names, key=lambda n: lefts[n] + belows[n])
        return SequencePair(tuple(alpha), tuple(beta))

    # -- packing ------------------------------------------------------------------

    def pack(
        self,
        modules: ModuleSet,
        orientations: Mapping[str, Orientation] | None = None,
        variants: Mapping[str, int] | None = None,
    ) -> Placement:
        """Longest-path packing over both closure graphs."""
        sizes = {}
        for name in self.names:
            variant = variants.get(name, 0) if variants else 0
            orient = (
                orientations.get(name, Orientation.R0) if orientations else Orientation.R0
            )
            sizes[name] = modules[name].footprint(variant, orient)

        xs = {n: 0.0 for n in self.names}
        for a in self._order:
            for b in self.horizontal[a]:
                xs[b] = max(xs[b], xs[a] + sizes[a][0])

        ys = {n: 0.0 for n in self.names}
        for a in self._vertical_order():
            for b in self.vertical[a]:
                ys[b] = max(ys[b], ys[a] + sizes[a][1])

        placed = []
        for name in self.names:
            w, h = sizes[name]
            orient = (
                orientations.get(name, Orientation.R0) if orientations else Orientation.R0
            )
            variant = variants.get(name, 0) if variants else 0
            placed.append(
                PlacedModule(
                    modules[name],
                    Rect.from_size(xs[name], ys[name], w, h),
                    variant=variant,
                    orientation=orient,
                )
            )
        return Placement.of(placed)

    def _vertical_order(self) -> list[str]:
        indegree = {n: 0 for n in self.names}
        for a in self.names:
            for b in self.vertical[a]:
                indegree[b] += 1
        frontier = [n for n in self.names if indegree[n] == 0]
        order = []
        while frontier:
            node = frontier.pop()
            order.append(node)
            for b in self.vertical[node]:
                indegree[b] -= 1
                if indegree[b] == 0:
                    frontier.append(b)
        if len(order) != len(self.names):
            raise ValueError("vertical relation has a cycle")
        return order
