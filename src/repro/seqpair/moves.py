"""Symmetry-preserving move set for sequence-pair annealing.

Section II: "it is sufficient to start the exploration with an initial
sequence-pair which is symmetric-feasible ... and to design the move-set
such that property (1) is preserved after each move."  Every move below
therefore ends with an S-F *repair* of beta (which is a no-op whenever
the raw move already preserved the property — e.g. coupled swaps of
symmetric counterparts).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Mapping, Sequence

from ..circuit import SymmetryGroup
from ..geometry import ModuleSet, Orientation
from .seqpair import SequencePair
from .symmetry import make_symmetric_feasible


@dataclass(frozen=True)
class PlacementState:
    """Annealing state: an S-F sequence-pair plus per-module orientation
    and shape-variant choices."""

    sp: SequencePair
    orientations: Mapping[str, Orientation] = field(default_factory=dict)
    variants: Mapping[str, int] = field(default_factory=dict)


class SymmetricMoveSet:
    """Random S-F-preserving perturbations of a :class:`PlacementState`.

    Moves (chosen with fixed weights):

    * swap two modules in alpha (coupled counterpart swap via repair);
    * swap two modules in beta;
    * swap two modules in both sequences (module exchange);
    * rotate a rotatable module (symmetric pairs rotate together);
    * change the shape variant of a soft module (pairs change together).
    """

    def __init__(
        self,
        modules: ModuleSet,
        groups: Sequence[SymmetryGroup] = (),
        *,
        allow_rotation: bool = True,
    ) -> None:
        self._modules = modules
        self._groups = tuple(groups)
        self._names = list(modules.names())
        self._sym_of: dict[str, str] = {}
        for g in self._groups:
            for m in g.members():
                self._sym_of[m] = g.sym(m)
        self._rotatable = [
            n for n in self._names if modules[n].rotatable
        ] if allow_rotation else []
        self._soft = [n for n in self._names if len(modules[n].variants) > 1]

    # -- MoveSet protocol ---------------------------------------------------

    def propose(self, state: PlacementState, rng: random.Random) -> PlacementState:
        ops = [self._swap_alpha, self._swap_beta, self._swap_both]
        weights = [3.0, 3.0, 2.0]
        if self._rotatable:
            ops.append(self._rotate)
            weights.append(1.5)
        if self._soft:
            ops.append(self._reshape)
            weights.append(1.5)
        (op,) = rng.choices(ops, weights=weights, k=1)
        return op(state, rng)

    def initial_state(self, rng: random.Random) -> PlacementState:
        """A random S-F starting state."""
        sp = make_symmetric_feasible(SequencePair.random(self._names, rng), self._groups)
        return PlacementState(sp)

    # -- individual moves ------------------------------------------------------

    def _repair(self, sp: SequencePair) -> SequencePair:
        return make_symmetric_feasible(sp, self._groups)

    def _two_names(self, rng: random.Random) -> tuple[str, str]:
        return tuple(rng.sample(self._names, 2))  # type: ignore[return-value]

    def _swap_alpha(self, state: PlacementState, rng: random.Random) -> PlacementState:
        a, b = self._two_names(rng)
        sp = state.sp.with_alpha_swap(state.sp.alpha_index(a), state.sp.alpha_index(b))
        return replace(state, sp=self._repair(sp))

    def _swap_beta(self, state: PlacementState, rng: random.Random) -> PlacementState:
        a, b = self._two_names(rng)
        sp = state.sp.with_beta_swap(state.sp.beta_index(a), state.sp.beta_index(b))
        return replace(state, sp=self._repair(sp))

    def _swap_both(self, state: PlacementState, rng: random.Random) -> PlacementState:
        a, b = self._two_names(rng)
        return replace(state, sp=self._repair(state.sp.with_both_swap(a, b)))

    def _rotate(self, state: PlacementState, rng: random.Random) -> PlacementState:
        name = rng.choice(self._rotatable)
        orientations = dict(state.orientations)

        def flip(n: str) -> None:
            current = orientations.get(n, Orientation.R0)
            orientations[n] = (
                Orientation.R90 if current == Orientation.R0 else Orientation.R0
            )

        flip(name)
        counterpart = self._sym_of.get(name)
        if counterpart is not None and counterpart != name:
            flip(counterpart)
        return replace(state, orientations=orientations)

    def _reshape(self, state: PlacementState, rng: random.Random) -> PlacementState:
        name = rng.choice(self._soft)
        n_variants = len(self._modules[name].variants)
        variants = dict(state.variants)
        choice = rng.randrange(n_variants)
        variants[name] = choice
        counterpart = self._sym_of.get(name)
        if counterpart is not None and counterpart != name:
            if len(self._modules[counterpart].variants) == n_variants:
                variants[counterpart] = choice
        return replace(state, variants=variants)
