"""Simulated-annealing sequence-pair placer with symmetry constraints.

This is the section-II flow end to end: explore only symmetric-feasible
codes with a symmetry-preserving move set, evaluate each code with the
fast packer, and return the best placement found.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..anneal import AnnealingStats, GeometricSchedule, IncrementalAnnealer
from ..circuit import Circuit, SymmetryGroup
from ..geometry import ModuleSet, Net, Placement
from ..perf import DeltaHPWL, bounding_of, hpwl_of, resolve_nets
from .moves import PlacementState, SymmetricMoveSet
from .symmetry import SymmetricPackingError, pack_symmetric, pack_symmetric_coords


@dataclass(frozen=True)
class PlacerConfig:
    """Cost weights and annealing parameters."""

    area_weight: float = 1.0
    wirelength_weight: float = 0.5
    aspect_weight: float = 0.1
    target_aspect: float = 1.0
    seed: int = 0
    t_initial: float = 1.0
    t_final: float = 1e-4
    alpha: float = 0.93
    steps_per_epoch: int = 60


@dataclass
class PlacerResult:
    """Best placement plus the state that produced it and run statistics."""

    placement: Placement
    state: PlacementState
    cost: float
    stats: AnnealingStats


class SequencePairPlacer:
    """Anneal over S-F sequence-pairs for a module set with constraints."""

    def __init__(
        self,
        modules: ModuleSet,
        groups: tuple[SymmetryGroup, ...] = (),
        nets: tuple[Net, ...] = (),
        config: PlacerConfig | None = None,
    ) -> None:
        self._modules = modules
        self._groups = groups
        self._nets = nets
        self._config = config or PlacerConfig()
        self._moves = SymmetricMoveSet(modules, groups)
        # Normalize the cost terms so weights are size-independent.
        self._area_scale = max(modules.total_module_area(), 1e-12)
        self._wl_scale = max(self._area_scale**0.5 * max(len(nets), 1), 1e-12)
        # Net pins resolved once; the annealing loop evaluates codes on
        # flat coordinates and never builds intermediate placements.
        self._resolved_nets = resolve_nets(nets, modules.names())

    @classmethod
    def for_circuit(cls, circuit: Circuit, config: PlacerConfig | None = None) -> "SequencePairPlacer":
        """Placer over all modules of a circuit and its symmetry groups."""
        return cls(
            circuit.modules(),
            circuit.constraints().symmetry,
            circuit.nets,
            config,
        )

    # -- cost ---------------------------------------------------------------

    def pack(self, state: PlacementState) -> Placement:
        """Placement for a state (exact mirror symmetry enforced)."""
        return pack_symmetric(
            state.sp, self._modules, self._groups, state.orientations, state.variants
        )

    def cost(self, state: PlacementState) -> float:
        """Cost of a state, evaluated on the coordinate tier.

        Bit-identical to evaluating ``self.pack(state)`` through the
        object-based formula (the packed rectangles are the same floats;
        see ``tests/perf/``), but no ``Placement`` is allocated.
        """
        cfg = self._config
        try:
            xs, ys, sizes = pack_symmetric_coords(
                state.sp, self._modules, self._groups, state.orientations, state.variants
            )
        except SymmetricPackingError:
            return float("inf")
        coords: dict[str, tuple[float, float, float, float]] = {}
        for name in state.sp.names:
            w, h = sizes[name]
            x0, y0 = xs[name], ys[name]
            coords[name] = (x0, y0, x0 + w, y0 + h)
        if coords:
            min_x, min_y, max_x, max_y = bounding_of(coords.values())
        else:
            min_x = min_y = max_x = max_y = 0.0
        width = max_x - min_x
        height = max_y - min_y
        cost = cfg.area_weight * (width * height) / self._area_scale
        if self._nets and cfg.wirelength_weight:
            cost += cfg.wirelength_weight * hpwl_of(self._resolved_nets, coords) / self._wl_scale
        if cfg.aspect_weight and width > 0:
            ratio = height / width
            deviation = max(ratio, 1.0 / ratio) / max(cfg.target_aspect, 1e-12)
            cost += cfg.aspect_weight * max(0.0, deviation - 1.0)
        return cost

    # -- walk API (shared by run() and repro.parallel) ------------------------

    def schedule(self) -> GeometricSchedule:
        cfg = self._config
        return GeometricSchedule(
            t_initial=cfg.t_initial,
            t_final=cfg.t_final,
            alpha=cfg.alpha,
            steps_per_epoch=cfg.steps_per_epoch,
        )

    def engine(self) -> "_SeqPairEngine":
        """A fresh incremental engine: rejected codes roll back per-net
        HPWL caches instead of being re-summed next step; draws and
        costs match the functional path bit for bit."""
        return _SeqPairEngine(self)

    def initial_state(self, rng: random.Random) -> PlacementState:
        return self._moves.initial_state(rng)

    def finalize(self, state: PlacementState) -> Placement:
        """Materialize a state as a normalized :class:`Placement`."""
        return self.pack(state).normalized()

    # -- run ------------------------------------------------------------------

    def run(self) -> PlacerResult:
        rng = random.Random(self._config.seed)
        engine = self.engine()
        engine.reset(self.initial_state(rng))
        annealer = IncrementalAnnealer(engine, self.schedule(), rng)
        outcome = annealer.run()
        return PlacerResult(
            placement=self.finalize(outcome.best_state),
            state=outcome.best_state,
            cost=outcome.best_cost,
            stats=outcome.stats,
        )


class _SeqPairEngine:
    """Incremental-protocol adapter for sequence-pair annealing.

    Packing a symmetric-feasible code is monolithic (the LCS evaluation
    rebuilds every coordinate), so the win here is the protocol itself
    plus :class:`~repro.perf.DeltaHPWL`: each candidate's coordinates
    are diffed against the last accepted table and only the nets of
    modules that actually moved are rescanned, with commit/rollback
    keeping the per-net cache in lockstep with accept/reject.  Costs are
    bit-identical to :meth:`SequencePairPlacer.cost` (``tests/perf/``),
    so annealing trajectories are unchanged.
    """

    def __init__(self, placer: SequencePairPlacer) -> None:
        self._placer = placer
        self._track_wl = bool(placer._nets) and bool(
            placer._config.wirelength_weight
        )
        self._delta = (
            DeltaHPWL(placer._resolved_nets, placer._modules.names())
            if self._track_wl
            else None
        )
        self._current: PlacementState | None = None
        self._candidate: PlacementState | None = None
        self._candidate_packed = False
        self._cost = float("inf")
        self._pending_cost = float("inf")

    def reset(self, state: PlacementState) -> float:
        self._current = state
        coords = self._coords_of(state)
        if coords is None:
            self._cost = float("inf")
        else:
            if self._delta is not None:
                hpwl = self._delta.reset(coords)
            else:
                hpwl = None
            self._cost = self._evaluate(coords, hpwl)
        return self._cost

    def initial_cost(self) -> float:
        return self._cost

    def propose(self, rng: random.Random) -> float:
        self._candidate = self._placer._moves.propose(self._current, rng)
        coords = self._coords_of(self._candidate)
        if coords is None:
            # infeasible pack: infinite cost, nothing entered the caches
            self._candidate_packed = False
            self._pending_cost = float("inf")
            return self._pending_cost
        self._candidate_packed = True
        if self._delta is not None:
            hpwl = self._delta.propose(coords)
        else:
            hpwl = None
        self._pending_cost = self._evaluate(coords, hpwl)
        return self._pending_cost

    def commit(self) -> None:
        self._current = self._candidate
        self._candidate = None
        if self._candidate_packed and self._delta is not None:
            # the per-net cache now describes the committed coords; an
            # unpacked (infinite-cost) commit leaves the cache on the
            # last packed baseline, which stays correct for diffing
            self._delta.commit()
        self._candidate_packed = False
        self._cost = self._pending_cost

    def rollback(self) -> None:
        self._candidate = None
        if self._candidate_packed and self._delta is not None:
            self._delta.rollback()
        self._candidate_packed = False

    def snapshot(self) -> PlacementState:
        return self._current  # frozen dataclass: already immutable

    # -- internals -----------------------------------------------------------

    def _coords_of(self, state: PlacementState):
        placer = self._placer
        try:
            xs, ys, sizes = pack_symmetric_coords(
                state.sp,
                placer._modules,
                placer._groups,
                state.orientations,
                state.variants,
            )
        except SymmetricPackingError:
            return None
        coords: dict[str, tuple[float, float, float, float]] = {}
        for name in state.sp.names:
            w, h = sizes[name]
            x0, y0 = xs[name], ys[name]
            coords[name] = (x0, y0, x0 + w, y0 + h)
        return coords

    def _evaluate(self, coords, hpwl: float | None) -> float:
        """Bit-identical twin of :meth:`SequencePairPlacer.cost`."""
        placer = self._placer
        cfg = placer._config
        if coords:
            min_x, min_y, max_x, max_y = bounding_of(coords.values())
        else:
            min_x = min_y = max_x = max_y = 0.0
        width = max_x - min_x
        height = max_y - min_y
        cost = cfg.area_weight * (width * height) / placer._area_scale
        if placer._nets and cfg.wirelength_weight:
            if hpwl is None:
                hpwl = hpwl_of(placer._resolved_nets, coords)
            cost += cfg.wirelength_weight * hpwl / placer._wl_scale
        if cfg.aspect_weight and width > 0:
            ratio = height / width
            deviation = max(ratio, 1.0 / ratio) / max(cfg.target_aspect, 1e-12)
            cost += cfg.aspect_weight * max(0.0, deviation - 1.0)
        return cost
