"""Simulated-annealing sequence-pair placer with symmetry constraints.

This is the section-II flow end to end: explore only symmetric-feasible
codes with a symmetry-preserving move set, evaluate each code with the
fast packer against the unified objective from :mod:`repro.cost`
(area + wirelength + aspect under this config's weights), and return
the best placement found.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..anneal import AnnealingStats, GeometricSchedule, IncrementalAnnealer
from ..circuit import Circuit, SymmetryGroup
from ..cost import DEFAULT_TARGET_ASPECT, DEFAULT_WEIGHTS, CostModel, model_for_config
from ..geometry import ModuleSet, Net, Placement
from .moves import PlacementState, SymmetricMoveSet
from .symmetry import SymmetricPackingError, pack_symmetric, pack_symmetric_coords


@dataclass(frozen=True)
class PlacerConfig:
    """Cost weights and annealing parameters.

    The weight fields declare the objective (no proximity term: the
    sequence-pair flow handles symmetry by construction and carries no
    proximity constraints); defaults come from the canonical
    :data:`~repro.cost.DEFAULT_WEIGHTS`.
    """

    area_weight: float = DEFAULT_WEIGHTS["area"]
    wirelength_weight: float = DEFAULT_WEIGHTS["wirelength"]
    aspect_weight: float = DEFAULT_WEIGHTS["aspect"]
    target_aspect: float = DEFAULT_TARGET_ASPECT
    seed: int = 0
    t_initial: float = 1.0
    t_final: float = 1e-4
    alpha: float = 0.93
    steps_per_epoch: int = 60


@dataclass
class PlacerResult:
    """Best placement plus the state that produced it and run statistics."""

    placement: Placement
    state: PlacementState
    cost: float
    stats: AnnealingStats


class SequencePairPlacer:
    """Anneal over S-F sequence-pairs for a module set with constraints."""

    def __init__(
        self,
        modules: ModuleSet,
        groups: tuple[SymmetryGroup, ...] = (),
        nets: tuple[Net, ...] = (),
        config: PlacerConfig | None = None,
    ) -> None:
        self._modules = modules
        self._groups = groups
        self._nets = nets
        self._config = config or PlacerConfig()
        self._moves = SymmetricMoveSet(modules, groups)
        # The unified objective; net pins are resolved once inside it
        # and the annealing loop evaluates codes on flat coordinates,
        # never building intermediate placements.
        self._cost_model = model_for_config(modules, nets, (), self._config)

    @classmethod
    def for_circuit(cls, circuit: Circuit, config: PlacerConfig | None = None) -> "SequencePairPlacer":
        """Placer over all modules of a circuit and its symmetry groups."""
        return cls(
            circuit.modules(),
            circuit.constraints().symmetry,
            circuit.nets,
            config,
        )

    # -- cost ---------------------------------------------------------------

    @property
    def cost_model(self) -> CostModel:
        """The unified objective this placer anneals."""
        return self._cost_model

    def pack(self, state: PlacementState) -> Placement:
        """Placement for a state (exact mirror symmetry enforced)."""
        return pack_symmetric(
            state.sp, self._modules, self._groups, state.orientations, state.variants
        )

    def cost(self, state: PlacementState) -> float:
        """Cost of a state, evaluated on the coordinate tier.

        Bit-identical to evaluating ``self.pack(state)`` through the
        placement-tier formula (the packed rectangles are the same
        floats; see ``tests/perf/``), but no ``Placement`` is allocated.
        Infeasible codes score ``inf``.
        """
        coords = self._coords_of(state)
        if coords is None:
            return float("inf")
        return self._cost_model.evaluate(coords)

    def cost_breakdown(self, state: PlacementState) -> dict[str, float] | None:
        """Per-term contributions of a state (``None`` when infeasible)."""
        coords = self._coords_of(state)
        if coords is None:
            return None
        return self._cost_model.breakdown(coords)

    # -- walk API (shared by run() and repro.parallel) ------------------------

    def schedule(self) -> GeometricSchedule:
        cfg = self._config
        return GeometricSchedule(
            t_initial=cfg.t_initial,
            t_final=cfg.t_final,
            alpha=cfg.alpha,
            steps_per_epoch=cfg.steps_per_epoch,
        )

    def engine(self) -> "_SeqPairEngine":
        """A fresh incremental engine: rejected codes roll back per-net
        HPWL caches instead of being re-summed next step; draws and
        costs match the functional path bit for bit."""
        return _SeqPairEngine(self)

    def annealer(self, engine, rng: random.Random) -> IncrementalAnnealer:
        """The annealing driver for this placer's engine."""
        return IncrementalAnnealer(engine, self.schedule(), rng)

    def initial_state(self, rng: random.Random) -> PlacementState:
        return self._moves.initial_state(rng)

    def finalize(self, state: PlacementState) -> Placement:
        """Materialize a state as a normalized :class:`Placement`."""
        return self.pack(state).normalized()

    # -- run ------------------------------------------------------------------

    def run(self) -> PlacerResult:
        rng = random.Random(self._config.seed)
        engine = self.engine()
        engine.reset(self.initial_state(rng))
        annealer = self.annealer(engine, rng)
        outcome = annealer.run()
        outcome.stats.term_breakdown = self.cost_breakdown(outcome.best_state)
        return PlacerResult(
            placement=self.finalize(outcome.best_state),
            state=outcome.best_state,
            cost=outcome.best_cost,
            stats=outcome.stats,
        )

    # -- internals -----------------------------------------------------------

    def _coords_of(self, state: PlacementState):
        """Flat coordinate table of a state (``None`` when infeasible)."""
        try:
            xs, ys, sizes = pack_symmetric_coords(
                state.sp,
                self._modules,
                self._groups,
                state.orientations,
                state.variants,
            )
        except SymmetricPackingError:
            return None
        coords: dict[str, tuple[float, float, float, float]] = {}
        for name in state.sp.names:
            w, h = sizes[name]
            x0, y0 = xs[name], ys[name]
            coords[name] = (x0, y0, x0 + w, y0 + h)
        return coords


class _SeqPairEngine:
    """Incremental-protocol adapter for sequence-pair annealing.

    Packing a symmetric-feasible code is monolithic (the LCS evaluation
    rebuilds every coordinate), so the win here is the protocol itself
    plus the model's :class:`~repro.cost.CostEvaluator`: each
    candidate's coordinates are diffed against the last accepted table
    and only the nets of modules that actually moved are rescanned,
    with commit/rollback keeping the per-net cache in lockstep with
    accept/reject.  Costs are bit-identical to
    :meth:`SequencePairPlacer.cost` (``tests/perf/``), so annealing
    trajectories are unchanged.
    """

    def __init__(self, placer: SequencePairPlacer) -> None:
        self._placer = placer
        self._eval = placer.cost_model.evaluator()
        self._current: PlacementState | None = None
        self._candidate: PlacementState | None = None
        self._candidate_packed = False
        self._cost = float("inf")
        self._pending_cost = float("inf")

    def reset(self, state: PlacementState) -> float:
        self._current = state
        coords = self._placer._coords_of(state)
        if coords is None:
            self._cost = float("inf")
        else:
            self._cost = self._eval.reset(coords)
        return self._cost

    def initial_cost(self) -> float:
        return self._cost

    def propose(self, rng: random.Random) -> float:
        self._candidate = self._placer._moves.propose(self._current, rng)
        coords = self._placer._coords_of(self._candidate)
        if coords is None:
            # infeasible pack: infinite cost, nothing entered the caches
            self._candidate_packed = False
            self._pending_cost = float("inf")
            return self._pending_cost
        self._candidate_packed = True
        self._pending_cost = self._eval.propose(coords)
        return self._pending_cost

    def commit(self) -> None:
        self._current = self._candidate
        self._candidate = None
        if self._candidate_packed:
            # the per-net cache now describes the committed coords; an
            # unpacked (infinite-cost) commit leaves the cache on the
            # last packed baseline, which stays correct for diffing
            self._eval.commit()
        self._candidate_packed = False
        self._cost = self._pending_cost

    def rollback(self) -> None:
        self._candidate = None
        if self._candidate_packed:
            self._eval.rollback()
        self._candidate_packed = False

    def snapshot(self) -> PlacementState:
        return self._current  # frozen dataclass: already immutable
