"""Sequence-pair to placement conversion (packing).

Two packers are provided:

* :func:`pack_longest_path` — the textbook O(n^2) evaluation via longest
  paths in the horizontal/vertical constraint graphs; used as the
  reference implementation.
* :func:`pack_lcs` — the fast weighted longest-common-subsequence
  evaluation in the spirit of FAST-SP [26], realized with a Fenwick
  (binary indexed) tree for prefix-maximum queries, O(n log n) per code
  evaluation.  The paper quotes O(G * n log log n) with a van Emde Boas
  style priority queue; on laptop-scale instances the log n / log log n
  difference is immaterial (see DESIGN.md substitutions) and both packers
  produce *identical* coordinates (tested against each other).
"""

from __future__ import annotations

from typing import Mapping

from ..geometry import (
    Module,
    ModuleSet,
    Orientation,
    PlacedModule,
    Placement,
    Rect,
)
from .seqpair import SequencePair


class _FenwickMax:
    """Fenwick tree over positions 0..n-1 supporting point update with
    ``max`` and prefix-maximum query; values never decrease."""

    __slots__ = ("_tree", "_n")

    def __init__(self, n: int) -> None:
        self._n = n
        self._tree = [0.0] * (n + 1)

    def update(self, i: int, value: float) -> None:
        """Raise position ``i`` to at least ``value``."""
        i += 1
        while i <= self._n:
            if self._tree[i] < value:
                self._tree[i] = value
            i += i & (-i)

    def prefix_max(self, i: int) -> float:
        """Maximum over positions 0..i-1 (0 when i == 0)."""
        best = 0.0
        while i > 0:
            if self._tree[i] > best:
                best = self._tree[i]
            i -= i & (-i)
        return best


def _footprints(
    sp: SequencePair,
    modules: ModuleSet,
    orientations: Mapping[str, Orientation] | None,
    variants: Mapping[str, int] | None,
) -> dict[str, tuple[float, float]]:
    sizes: dict[str, tuple[float, float]] = {}
    for name in sp.names:
        module: Module = modules[name]
        variant = variants.get(name, 0) if variants else 0
        orient = orientations.get(name, Orientation.R0) if orientations else Orientation.R0
        sizes[name] = module.footprint(variant, orient)
    return sizes


def _to_placement(
    sp: SequencePair,
    modules: ModuleSet,
    xs: dict[str, float],
    ys: dict[str, float],
    sizes: dict[str, tuple[float, float]],
    orientations: Mapping[str, Orientation] | None,
    variants: Mapping[str, int] | None,
) -> Placement:
    placed = []
    for name in sp.names:
        w, h = sizes[name]
        orient = orientations.get(name, Orientation.R0) if orientations else Orientation.R0
        variant = variants.get(name, 0) if variants else 0
        placed.append(
            PlacedModule(
                modules[name],
                Rect.from_size(xs[name], ys[name], w, h),
                variant=variant,
                orientation=orient,
            )
        )
    return Placement.of(placed)


def pack_lcs_coords(
    sp: SequencePair,
    sizes: Mapping[str, tuple[float, float]],
) -> tuple[dict[str, float], dict[str, float]]:
    """Weighted-LCS evaluation on raw footprints; returns (xs, ys).

    The coordinate-tier core of :func:`pack_lcs`: no ``Placement`` is
    built, so annealing loops can evaluate codes allocation-free and
    materialize a placement for the winning state only.
    """
    n = len(sp)

    xs: dict[str, float] = {}
    tree = _FenwickMax(n)
    for name in sp.alpha:
        b = sp.beta_index(name)
        x = tree.prefix_max(b)
        xs[name] = x
        tree.update(b, x + sizes[name][0])

    ys: dict[str, float] = {}
    tree = _FenwickMax(n)
    for name in reversed(sp.alpha):
        b = sp.beta_index(name)
        y = tree.prefix_max(b)
        ys[name] = y
        tree.update(b, y + sizes[name][1])

    return xs, ys


def pack_lcs(
    sp: SequencePair,
    modules: ModuleSet,
    orientations: Mapping[str, Orientation] | None = None,
    variants: Mapping[str, int] | None = None,
) -> Placement:
    """Pack a sequence-pair via weighted-LCS, O(n log n).

    X coordinates: process modules in alpha order; the x of module ``b``
    is the maximum of ``x(a) + w(a)`` over already-processed modules
    ``a`` with a smaller beta index (exactly the modules left of ``b``).
    Y coordinates: the same with alpha reversed and heights.
    """
    sizes = _footprints(sp, modules, orientations, variants)
    xs, ys = pack_lcs_coords(sp, sizes)
    return _to_placement(sp, modules, xs, ys, sizes, orientations, variants)


def pack_longest_path(
    sp: SequencePair,
    modules: ModuleSet,
    orientations: Mapping[str, Orientation] | None = None,
    variants: Mapping[str, int] | None = None,
) -> Placement:
    """Reference O(n^2) packer via explicit constraint-graph longest paths."""
    sizes = _footprints(sp, modules, orientations, variants)
    names = list(sp.names)

    xs = {name: 0.0 for name in names}
    for b_name in sp.alpha:  # alpha order is a topological order of "left-of"
        for a_name in names:
            if a_name != b_name and sp.left_of(a_name, b_name):
                xs[b_name] = max(xs[b_name], xs[a_name] + sizes[a_name][0])

    ys = {name: 0.0 for name in names}
    for b_name in reversed(sp.alpha):  # reverse alpha is topological for "below"
        for a_name in names:
            if a_name != b_name and sp.below(a_name, b_name):
                ys[b_name] = max(ys[b_name], ys[a_name] + sizes[a_name][1])

    return _to_placement(sp, modules, xs, ys, sizes, orientations, variants)
