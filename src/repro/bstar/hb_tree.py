"""Hierarchical B*-trees (Lin & Lin [17], paper section III-B).

An HB*-tree models the floorplan of one hierarchy level; *hierarchy
nodes* inside it stand for whole sub-circuits whose internal floorplan
is modelled by their own HB*-tree.  "The number of HB*-trees will be
equal to that of the sub-circuits plus the one modelling the top
design."  Perturbation picks one tree of the forest and applies a
B*-tree operation to it; packing is a recursive pre-order traversal.

Constraint handling per hierarchy node (Fig. 5):

* **symmetry** — the group members form an ASF-B*-tree symmetry island,
  which enters the level tree as a single block;
* **common-centroid** — the unit array comes from the deterministic
  interdigitation generator; its grid variant is the annealable choice;
* **proximity** — the node's members are packed in their own level tree,
  so they stay together; connectivity is additionally rewarded in the
  placer cost;
* **plain** — an ordinary B*-tree over the node's modules and sub-blocks.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Mapping

from ..circuit import (
    CommonCentroidGroup,
    HierarchyNode,
    SymmetryGroup,
)
from ..geometry import ModuleSet, Placement, Rect
from ..perf.coords import (
    Coords,
    bounding_of,
    normalize_coords,
    placement_to_coords,
)
from ..perf.kernel import Skyline, pack_tree_coords
from .asf import ASFBStarTree, ASFMoveSet
from .common_centroid import common_centroid_placement, n_variants
from .packing import pack_sizes
from .perturb import BStarState
from .tree import BStarTree


_ISLAND = "__island__"


@dataclass(frozen=True)
class LevelState:
    """Annealing state of one hierarchy level.

    ``tree`` spans the level's *items*: plain module names, child
    hierarchy-node names, and (when the level carries a symmetry
    constraint) the pseudo-item ``__island__`` for the ASF block.
    ``asf`` / ``cc_variant`` hold the constraint sub-states.
    """

    tree: BStarTree = field(compare=False)
    orientations: Mapping[str, object] = field(default_factory=dict)
    asf: ASFBStarTree | None = None
    cc_variant: int = 0


@dataclass(frozen=True)
class HBState:
    """The whole forest: hierarchy-node name -> level state."""

    levels: Mapping[str, LevelState]


class HBStarTreePlacement:
    """Recursive packer and move generator for a design hierarchy."""

    def __init__(self, hierarchy: HierarchyNode, modules: ModuleSet) -> None:
        hierarchy.validate()
        self._hierarchy = hierarchy
        self._modules = modules
        self._nodes: dict[str, HierarchyNode] = {n.name: n for n in hierarchy.walk()}
        self._asf_moves: dict[str, ASFMoveSet] = {}
        # Levels pack strictly bottom-up, so one reusable skyline serves
        # every level of every coordinate-tier pack.
        self._skyline = Skyline()
        for node in hierarchy.walk():
            if isinstance(node.constraint, SymmetryGroup):
                self._asf_moves[node.name] = ASFMoveSet(modules, node.constraint)

    # -- level items -------------------------------------------------------------

    def level_items(self, node: HierarchyNode) -> list[str]:
        """Names packed by the level tree of ``node``."""
        items = [child.name for child in node.children]
        if isinstance(node.constraint, SymmetryGroup):
            members = node.constraint.member_set()
            items += [m.name for m in node.modules if m.name not in members]
            items.append(_ISLAND)
        elif isinstance(node.constraint, CommonCentroidGroup):
            members = node.constraint.member_set()
            extra = [m.name for m in node.modules if m.name not in members]
            if extra:
                items += extra
                items.append(_ISLAND)  # the unit array enters as one block
            else:
                items = [_ISLAND] + items
        else:
            items += [m.name for m in node.modules]
        return items

    # -- initial state -----------------------------------------------------------

    def initial_state(self, rng: random.Random) -> HBState:
        levels: dict[str, LevelState] = {}
        for name, node in self._nodes.items():
            tree = BStarTree.random(self.level_items(node), rng)
            asf = None
            if isinstance(node.constraint, SymmetryGroup):
                asf = self._asf_moves[name].initial_state(rng)
            levels[name] = LevelState(tree=tree, asf=asf)
        return HBState(levels=levels)

    # -- packing ------------------------------------------------------------------

    def pack(self, state: HBState) -> Placement:
        """Pack the full hierarchy; the result is normalized to origin."""
        placement = self._pack_node(self._hierarchy, state)
        return placement.normalized()

    def _pack_node(self, node: HierarchyNode, state: HBState) -> Placement:
        level = state.levels[node.name]
        sub_placements: dict[str, Placement] = {}

        for child in node.children:
            sub_placements[child.name] = self._pack_node(child, state).normalized()

        if isinstance(node.constraint, SymmetryGroup):
            island = level.asf.pack(self._modules).normalized()
            sub_placements[_ISLAND] = island
        elif isinstance(node.constraint, CommonCentroidGroup):
            array = common_centroid_placement(
                node.constraint, self._modules, variant=level.cc_variant
            ).normalized()
            if _ISLAND in level.tree:
                sub_placements[_ISLAND] = array
            else:
                # The level consists of the array alone.
                return array

        sizes: dict[str, tuple[float, float]] = {}
        for item in level.tree.nodes():
            if item in sub_placements:
                bb = sub_placements[item].bounding_box()
                sizes[item] = (bb.width, bb.height)
            else:
                sizes[item] = self._modules[item].footprint()
        rects = pack_sizes(level.tree, sizes)

        merged = Placement.empty()
        loose = []
        for item, rect in rects.items():
            if item in sub_placements:
                merged = merged.merged_with(
                    sub_placements[item].translated(rect.x0, rect.y0)
                )
            else:
                loose.append(item)
        if loose:
            from ..geometry import PlacedModule

            merged = merged.merged_with(
                Placement.of(
                    PlacedModule(self._modules[item], rects[item]) for item in loose
                )
            )
        return merged

    # -- packing, coordinate tier -------------------------------------------------

    def pack_coords(self, state: HBState) -> Coords:
        """Flat-coordinate twin of :meth:`pack` for the annealing loop.

        Same recursion, same arithmetic, but the per-level merge moves
        4-tuples between dicts instead of building intermediate
        ``Placement`` objects — only the small symmetry-island and
        common-centroid sub-placements still go through the object tier.
        Coordinates are bit-identical to ``pack(state)``.
        """
        return normalize_coords(self._pack_node_coords(self._hierarchy, state))

    def _pack_node_coords(self, node: HierarchyNode, state: HBState) -> Coords:
        sub_coords: dict[str, Coords] = {}
        for child in node.children:
            sub_coords[child.name] = normalize_coords(
                self._pack_node_coords(child, state)
            )
        return self.pack_level_coords(node, state, sub_coords)

    def pack_level_coords(
        self,
        node: HierarchyNode,
        state: HBState,
        sub_coords: dict[str, Coords],
    ) -> Coords:
        """Pack one hierarchy level given its children's subtree coords.

        ``sub_coords`` maps child hierarchy-node names to their already
        *normalized* subtree coordinate tables (exactly what the
        recursion produces); constraint blocks (symmetry island /
        common-centroid array) are added here.  Factored out of
        :meth:`_pack_node_coords` so the incremental engine can feed
        cached child tables without re-descending unchanged subtrees.
        """
        level = state.levels[node.name]

        if isinstance(node.constraint, SymmetryGroup):
            island = level.asf.pack(self._modules).normalized()
            sub_coords[_ISLAND] = placement_to_coords(island)
        elif isinstance(node.constraint, CommonCentroidGroup):
            array = placement_to_coords(
                common_centroid_placement(
                    node.constraint, self._modules, variant=level.cc_variant
                ).normalized()
            )
            if _ISLAND in level.tree:
                sub_coords[_ISLAND] = array
            else:
                # The level consists of the array alone.
                return array

        sizes: dict[str, tuple[float, float]] = {}
        for item in level.tree.nodes():
            inner = sub_coords.get(item)
            if inner is not None:
                x0, y0, x1, y1 = bounding_of(inner.values())
                sizes[item] = (x1 - x0, y1 - y0)
            else:
                sizes[item] = self._modules[item].footprint()
        rects = pack_tree_coords(level.tree, sizes, self._skyline)

        out: Coords = {}
        for item, rect in rects.items():
            inner = sub_coords.get(item)
            if inner is not None:
                dx, dy = rect[0], rect[1]
                for name, (a, b, c, d) in inner.items():
                    out[name] = (a + dx, b + dy, c + dx, d + dy)
            else:
                out[item] = rect
        return out

    # -- perturbation ------------------------------------------------------------

    def propose_level(
        self, state: HBState, rng: random.Random
    ) -> tuple[str, LevelState | None]:
        """Draw one level perturbation: ``(level name, new level state)``.

        Returns ``(name, None)`` when the selected level has no legal
        move.  The draw sequence is shared by :meth:`propose` and the
        incremental engine, so both walk the same trajectory for a
        given rng.
        """
        name = rng.choice(list(self._nodes))
        node = self._nodes[name]
        level = state.levels[name]

        choices = []
        if len(level.tree) >= 2:
            choices.append("tree")
        if level.asf is not None and (node.constraint.pairs or len(node.constraint.self_symmetric) > 1):
            choices.append("asf")
        if isinstance(node.constraint, CommonCentroidGroup) and n_variants(node.constraint) > 1:
            choices.append("cc")
        if not choices:
            return name, None
        kind = rng.choice(choices)

        if kind == "tree":
            new_level = replace(level, tree=self._perturb_tree(level.tree, rng))
        elif kind == "asf":
            new_level = replace(level, asf=self._asf_moves[name].propose(level.asf, rng))
        else:
            new_level = replace(
                level,
                cc_variant=(level.cc_variant + 1) % n_variants(node.constraint),
            )
        return name, new_level

    def propose(self, state: HBState, rng: random.Random) -> HBState:
        """Perturb one randomly selected tree of the forest (section III-B:
        'one of the HB*-trees should be selected first')."""
        name, new_level = self.propose_level(state, rng)
        if new_level is None:
            return state
        levels = dict(state.levels)
        levels[name] = new_level
        return HBState(levels=levels)

    @staticmethod
    def _perturb_tree(tree: BStarTree, rng: random.Random) -> BStarTree:
        names = list(tree.nodes())
        out = tree.clone()
        if len(names) < 2:
            return out
        if rng.random() < 0.5:
            a, b = rng.sample(names, 2)
            out.swap_nodes(a, b)
        else:
            name = rng.choice(names)
            out.remove(name)
            parent = rng.choice(list(out.nodes()))
            out.insert(name, parent, rng.choice(("left", "right")))
        return out


class HBIncrementalEngine:
    """Incremental propose/commit/rollback engine for the HB*-tree forest.

    Implements the :class:`repro.anneal.IncrementalEngine` protocol.  A
    perturbation touches exactly one level, so only the path from that
    level to the hierarchy root needs repacking: every other node's
    subtree coordinates are served from a cache of normalized tables.
    The merged root table is then diffed module-by-module against the
    last committed placement by the unified model's
    :class:`~repro.cost.CostEvaluator`, whose
    :class:`~repro.cost.DeltaHPWL` rescans only the nets of modules
    that actually moved.  Costs — and, for equal seeds, whole annealing
    trajectories — are bit-identical to the non-cached
    ``model(hb.pack_coords(state))`` path (see ``tests/perf/``).
    """

    def __init__(
        self,
        hb: HBStarTreePlacement,
        modules: ModuleSet,
        nets=(),
        proximity=(),
        config=None,
    ) -> None:
        if config is None:
            raise ValueError("HBIncrementalEngine requires a cost config")
        from ..cost import model_for_config

        self._hb = hb
        self._eval = model_for_config(modules, nets, proximity, config).evaluator()
        # hierarchy-node name -> parent name, for dirty-path invalidation
        self._parents: dict[str, str | None] = {hb._hierarchy.name: None}
        for node in hb._hierarchy.walk():
            for child in node.children:
                self._parents[child.name] = node.name
        self._state: HBState | None = None
        self._cache: dict[str, Coords] = {}
        self._cost = float("inf")
        # pending proposal
        self._pending_state: HBState | None = None
        self._pending_cost = float("inf")
        self._overlay: dict[str, Coords] = {}
        self._dirty: frozenset[str] = frozenset()
        self._proposed = False

    # -- setup ---------------------------------------------------------------

    def reset(self, state: HBState) -> float:
        """Adopt ``state``; build the full cache; return its cost."""
        self._state = state
        self._cache = {}
        self._overlay = {}
        self._dirty = frozenset(self._parents)
        coords = self._pack_cached(self._hb._hierarchy, state)
        self._cache.update(self._overlay)
        self._overlay = {}
        self._dirty = frozenset()
        self._cost = self._eval.reset(coords)
        return self._cost

    def initial_cost(self) -> float:
        return self._cost

    # -- protocol ------------------------------------------------------------

    def propose(self, rng: random.Random) -> float:
        if self._proposed:
            raise RuntimeError("previous proposal not committed or rolled back")
        name, new_level = self._hb.propose_level(self._state, rng)
        self._proposed = True
        if new_level is None:
            self._pending_state = None
            self._pending_cost = self._cost
            return self._cost
        levels = dict(self._state.levels)
        levels[name] = new_level
        candidate = HBState(levels=levels)
        dirty = set()
        walk: str | None = name
        while walk is not None:
            dirty.add(walk)
            walk = self._parents[walk]
        self._dirty = frozenset(dirty)
        self._overlay = {}
        coords = self._pack_cached(self._hb._hierarchy, candidate)
        self._pending_state = candidate
        self._pending_cost = self._eval.propose(coords)
        return self._pending_cost

    def commit(self) -> None:
        if self._pending_state is not None:
            self._state = self._pending_state
            self._cache.update(self._overlay)
            self._eval.commit()
        self._cost = self._pending_cost
        self._clear_pending()

    def rollback(self) -> None:
        if self._pending_state is not None:
            self._eval.rollback()
        self._clear_pending()

    def snapshot(self) -> HBState:
        # HBState is frozen and level states are replaced, never
        # mutated — the current state *is* the snapshot.
        return self._state

    # -- internals -----------------------------------------------------------

    def _clear_pending(self) -> None:
        self._pending_state = None
        self._pending_cost = self._cost
        self._overlay = {}
        self._dirty = frozenset()
        self._proposed = False

    def _pack_cached(self, node, state: HBState) -> Coords:
        """Normalized subtree coords for ``node``, cached off-path.

        Matches ``normalize_coords(hb._pack_node_coords(node, state))``
        bit for bit: unchanged subtrees return their cached table (the
        same floats a recompute would produce), dirty ones recompute
        through the shared :meth:`HBStarTreePlacement.pack_level_coords`.
        """
        name = node.name
        if name not in self._dirty:
            return self._cache[name]
        sub_coords: dict[str, Coords] = {}
        for child in node.children:
            sub_coords[child.name] = self._pack_cached(child, state)
        out = normalize_coords(self._hb.pack_level_coords(node, state, sub_coords))
        self._overlay[name] = out
        return out
