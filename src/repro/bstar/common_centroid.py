"""Deterministic common-centroid placement generation (Fig. 3a).

Common-centroid sub-circuits (current mirrors, differential pairs split
into unit devices) are not annealed: their placements come from a small
family of interdigitation patterns, as in the grid-based approach [19]
that the HB*-tree integrates.  Two pattern styles are provided:

* ``point symmetric`` — unit cells paired under point reflection about
  the array center; each pair carries one device;
* ``row interdigitated`` — the classic ``A B B A / B A A B`` style where
  each row is a palindrome-interleaved sequence.

Both guarantee all device centroids coincide with the array center.
"""

from __future__ import annotations

from ..circuit import CommonCentroidGroup
from ..geometry import ModuleSet, PlacedModule, Placement, Rect


class CommonCentroidError(ValueError):
    """Raised when a group cannot be arranged on a common-centroid grid."""


def grid_options(group: CommonCentroidGroup) -> list[tuple[int, int]]:
    """Feasible (rows, cols) grids for the group's total unit count.

    Rows are limited to 1 or 2 (the practical analog patterns); the unit
    total must fill the grid exactly.
    """
    total = sum(len(us) for _, us in group.units)
    options = []
    for rows in (1, 2):
        if total % rows == 0:
            options.append((rows, total // rows))
    if not options:
        raise CommonCentroidError(
            f"group {group.name!r} has {total} units, not arrangeable in 1 or 2 rows"
        )
    return options


def _unit_footprint(group: CommonCentroidGroup, modules: ModuleSet) -> tuple[float, float]:
    sizes = {
        modules[u].footprint() for _, us in group.units for u in us
    }
    if len(sizes) != 1:
        raise CommonCentroidError(
            f"group {group.name!r} units must share one footprint, got {sorted(sizes)}"
        )
    return next(iter(sizes))


def common_centroid_placement(
    group: CommonCentroidGroup,
    modules: ModuleSet,
    *,
    variant: int = 0,
    style: str = "point-symmetric",
) -> Placement:
    """Arrange the group's unit modules on a common-centroid grid.

    ``variant`` indexes :func:`grid_options`; ``style`` selects the
    pattern family.  Every device's units end up with their centroid at
    the array center (validated by the constraint itself in tests).
    """
    if style not in ("point-symmetric", "row-interdigitated"):
        raise CommonCentroidError(f"unknown style {style!r}")
    options = grid_options(group)
    rows, cols = options[variant % len(options)]
    w, h = _unit_footprint(group, modules)

    # Each device must be decomposable into centroid-balanced cell pairs.
    for dev, units in group.units:
        if len(units) % 2 != 0:
            raise CommonCentroidError(
                f"device {dev!r} in group {group.name!r} has an odd unit count; "
                "common-centroid patterns need even unit counts"
            )

    cells = [(r, c) for r in range(rows) for c in range(cols)]
    assignment: dict[tuple[int, int], str] = {}

    if style == "point-symmetric":
        # Pair each cell with its point reflection; hand pairs to devices
        # round-robin until each device's unit budget is exhausted.
        pairs = []
        seen: set[tuple[int, int]] = set()
        for r, c in cells:
            mate = (rows - 1 - r, cols - 1 - c)
            if (r, c) in seen or mate in seen:
                continue
            if mate == (r, c):
                raise CommonCentroidError(
                    f"group {group.name!r}: odd grid has an unpairable center cell"
                )
            seen.add((r, c))
            seen.add(mate)
            pairs.append(((r, c), mate))
        unit_iters = [(dev, list(us)) for dev, us in group.units]
        dev_idx = 0
        for cell_a, cell_b in pairs:
            while not unit_iters[dev_idx][1]:
                dev_idx = (dev_idx + 1) % len(unit_iters)
            dev, units = unit_iters[dev_idx]
            assignment[cell_a] = units.pop()
            assignment[cell_b] = units.pop()
            dev_idx = (dev_idx + 1) % len(unit_iters)
    else:
        # Row-interdigitated: build one palindromic device sequence per row
        # (e.g. A B B A), alternating the leading device between rows.
        if len(group.units) != 2:
            raise CommonCentroidError("row-interdigitated style supports exactly 2 devices")
        (dev_a, units_a), (dev_b, units_b) = group.units
        if len(units_a) != len(units_b):
            raise CommonCentroidError("row-interdigitated style needs equal unit counts")
        pools = {dev_a: list(units_a), dev_b: list(units_b)}
        for r in range(rows):
            lead, other = (dev_a, dev_b) if r % 2 == 0 else (dev_b, dev_a)
            half = cols // 2
            row_devices = []
            for c in range(half):
                row_devices.append(lead if c % 2 == 0 else other)
            row_devices = row_devices + row_devices[::-1]
            if len(row_devices) != cols:  # odd cols cannot form a palindrome pair-wise
                raise CommonCentroidError(
                    f"group {group.name!r}: odd column count {cols} not supported "
                    "by row-interdigitated style"
                )
            for c, dev in enumerate(row_devices):
                assignment[(r, c)] = pools[dev].pop()

    placed = []
    for (r, c), unit in assignment.items():
        rect = Rect.from_size(c * w, r * h, w, h)
        placed.append(PlacedModule(modules[unit], rect))
    return Placement.of(placed)


def n_variants(group: CommonCentroidGroup) -> int:
    """Number of grid variants available for a group."""
    return len(grid_options(group))
