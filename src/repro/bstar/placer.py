"""B*-tree placers: flat and hierarchical simulated annealing.

The hierarchical placer is the section-III flow: simultaneous annealing
over the whole HB*-tree forest, with symmetry islands and common-
centroid arrays maintained by construction and proximity rewarded in the
cost.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..anneal import AnnealingStats, GeometricSchedule, IncrementalAnnealer
from ..circuit import Circuit, ProximityGroup
from ..geometry import ModuleSet, Net, Placement, total_hpwl
from ..perf import BStarKernel, FastCostModel, IncrementalBStarEngine
from .hb_tree import HBIncrementalEngine, HBStarTreePlacement, HBState
from .packing import pack
from .perturb import BStarMoveSet, BStarState


@dataclass(frozen=True)
class BStarPlacerConfig:
    """Cost weights and annealing parameters (shared by both placers)."""

    area_weight: float = 1.0
    wirelength_weight: float = 0.5
    aspect_weight: float = 0.1
    proximity_weight: float = 2.0
    target_aspect: float = 1.0
    seed: int = 0
    t_initial: float = 1.0
    t_final: float = 1e-4
    alpha: float = 0.93
    steps_per_epoch: int = 60


@dataclass
class BStarPlacerResult:
    placement: Placement
    cost: float
    stats: AnnealingStats


class _CostModel:
    """Shared area / wirelength / aspect / proximity cost.

    This is the *reference* (object-tier) evaluation; the annealing hot
    loops use :class:`repro.perf.FastCostModel`, which computes the same
    bit-identical cost from flat coordinates.  Kept as the ground truth
    the equivalence tests in ``tests/perf/`` compare against, and for
    callers that already hold a :class:`Placement`.
    """

    def __init__(
        self,
        modules: ModuleSet,
        nets: tuple[Net, ...],
        proximity: tuple[ProximityGroup, ...],
        config: BStarPlacerConfig,
    ) -> None:
        self._nets = nets
        self._proximity = proximity
        self._config = config
        self._area_scale = max(modules.total_module_area(), 1e-12)
        self._wl_scale = max(self._area_scale**0.5 * max(len(nets), 1), 1e-12)

    def __call__(self, placement: Placement) -> float:
        cfg = self._config
        bb = placement.bounding_box()
        cost = cfg.area_weight * bb.area / self._area_scale
        if self._nets and cfg.wirelength_weight:
            cost += cfg.wirelength_weight * total_hpwl(self._nets, placement) / self._wl_scale
        if cfg.aspect_weight and bb.width > 0 and bb.height > 0:
            ratio = bb.height / bb.width
            deviation = max(ratio, 1.0 / ratio) / max(cfg.target_aspect, 1e-12)
            cost += cfg.aspect_weight * max(0.0, deviation - 1.0)
        if cfg.proximity_weight:
            for group in self._proximity:
                if not group.is_satisfied(placement):
                    cost += cfg.proximity_weight
        return cost


class BStarPlacer:
    """Flat simulated-annealing placement over B*-trees (no hierarchy)."""

    def __init__(
        self,
        modules: ModuleSet,
        nets: tuple[Net, ...] = (),
        config: BStarPlacerConfig | None = None,
    ) -> None:
        self._modules = modules
        self._nets = nets
        self._config = config or BStarPlacerConfig()
        self._moves = BStarMoveSet(modules)
        # Reference evaluation tier: packed coordinates and cost with no
        # Placement/PlacedModule churn, bit-identical to evaluating
        # _CostModel over pack().  The annealing loop itself runs the
        # *incremental* engine (dirty-suffix repack + delta HPWL), whose
        # costs are bit-identical to this kernel on every state.
        self._kernel = BStarKernel(modules, nets, (), self._config)

    @classmethod
    def for_circuit(
        cls, circuit: Circuit, config: BStarPlacerConfig | None = None
    ) -> "BStarPlacer":
        """Flat placer over a circuit's modules and nets (constraints are
        the :class:`HierarchicalPlacer`'s job; this engine ignores them)."""
        return cls(circuit.modules(), circuit.nets, config)

    def cost(self, state: BStarState) -> float:
        return self._kernel.cost(state.tree, state.orientations, state.variants)

    # -- walk API (shared by run() and repro.parallel) ------------------------

    def schedule(self) -> GeometricSchedule:
        cfg = self._config
        return GeometricSchedule(
            t_initial=cfg.t_initial,
            t_final=cfg.t_final,
            alpha=cfg.alpha,
            steps_per_epoch=cfg.steps_per_epoch,
        )

    def engine(self) -> IncrementalBStarEngine:
        """A fresh incremental engine (call ``reset`` before annealing)."""
        return IncrementalBStarEngine(self._modules, self._nets, (), self._config)

    def initial_state(self, rng: random.Random) -> BStarState:
        return self._moves.initial_state(rng)

    def finalize(self, state: BStarState) -> Placement:
        """Materialize a state as a normalized :class:`Placement`."""
        return pack(
            state.tree, self._modules, state.orientations, state.variants
        ).normalized()

    def run(self) -> BStarPlacerResult:
        rng = random.Random(self._config.seed)
        engine = self.engine()
        engine.reset(self.initial_state(rng))
        annealer = IncrementalAnnealer(engine, self.schedule(), rng)
        outcome = annealer.run()
        return BStarPlacerResult(
            self.finalize(outcome.best_state), outcome.best_cost, outcome.stats
        )


class HierarchicalPlacer:
    """Section-III hierarchical placer over the HB*-tree forest."""

    def __init__(self, circuit: Circuit, config: BStarPlacerConfig | None = None) -> None:
        self._circuit = circuit
        self._config = config or BStarPlacerConfig()
        self._modules = circuit.modules()
        self._hb = HBStarTreePlacement(circuit.hierarchy, self._modules)
        self._constraints = circuit.constraints()
        # Hot-loop twin of _CostModel, fed by the forest's
        # flat-coordinate packer (bit-identical results).
        self._fast_cost = FastCostModel(
            self._modules, circuit.nets, self._constraints.proximity, self._config
        )

    @classmethod
    def for_circuit(
        cls, circuit: Circuit, config: BStarPlacerConfig | None = None
    ) -> "HierarchicalPlacer":
        """Uniform factory (the constructor already takes a circuit)."""
        return cls(circuit, config)

    def pack(self, state: HBState) -> Placement:
        return self._hb.pack(state)

    def cost(self, state: HBState) -> float:
        return self._fast_cost(self._hb.pack_coords(state))

    # -- walk API (shared by run() and repro.parallel) ------------------------

    def schedule(self) -> GeometricSchedule:
        cfg = self._config
        return GeometricSchedule(
            t_initial=cfg.t_initial,
            t_final=cfg.t_final,
            alpha=cfg.alpha,
            steps_per_epoch=cfg.steps_per_epoch,
        )

    def engine(self) -> HBIncrementalEngine:
        """A fresh incremental forest engine: repacks only the perturbed
        level's root path (cached subtrees elsewhere) and delta-evaluates
        wirelength; draws and costs match the functional path bit for
        bit, so trajectories are unchanged — only faster."""
        return HBIncrementalEngine(
            self._hb,
            self._modules,
            self._circuit.nets,
            self._constraints.proximity,
            self._config,
        )

    def initial_state(self, rng: random.Random) -> HBState:
        return self._hb.initial_state(rng)

    def finalize(self, state: HBState) -> Placement:
        return self._hb.pack(state)

    def run(self) -> BStarPlacerResult:
        rng = random.Random(self._config.seed)
        engine = self.engine()
        engine.reset(self.initial_state(rng))
        annealer = IncrementalAnnealer(engine, self.schedule(), rng)
        outcome = annealer.run()
        return BStarPlacerResult(
            self.finalize(outcome.best_state), outcome.best_cost, outcome.stats
        )
