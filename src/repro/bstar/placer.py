"""B*-tree placers: flat and hierarchical simulated annealing.

The hierarchical placer is the section-III flow: simultaneous annealing
over the whole HB*-tree forest, with symmetry islands and common-
centroid arrays maintained by construction and proximity rewarded in the
cost.

Both placers anneal the unified objective from :mod:`repro.cost`
(area + wirelength + aspect + proximity under this config's weights);
there is no placer-private cost code.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..anneal import (
    AnnealingStats,
    BatchedAnnealer,
    GeometricSchedule,
    IncrementalAnnealer,
)
from ..circuit import Circuit
from ..cost import DEFAULT_TARGET_ASPECT, DEFAULT_WEIGHTS, CostModel, model_for_config
from ..geometry import ModuleSet, Net, Placement
from ..perf import BStarKernel, IncrementalBStarEngine, VectorBStarEngine
from .hb_tree import HBIncrementalEngine, HBStarTreePlacement, HBState
from .packing import pack
from .perturb import BStarMoveSet, BStarState


@dataclass(frozen=True)
class BStarPlacerConfig:
    """Cost weights and annealing parameters (shared by both placers).

    The weight fields *declare* the objective: :func:`~repro.cost.
    model_for_config` turns them into the placer's
    :class:`~repro.cost.CostModel`.  Defaults come from the canonical
    :data:`~repro.cost.DEFAULT_WEIGHTS`.
    """

    area_weight: float = DEFAULT_WEIGHTS["area"]
    wirelength_weight: float = DEFAULT_WEIGHTS["wirelength"]
    aspect_weight: float = DEFAULT_WEIGHTS["aspect"]
    proximity_weight: float = DEFAULT_WEIGHTS["proximity"]
    target_aspect: float = DEFAULT_TARGET_ASPECT
    seed: int = 0
    t_initial: float = 1.0
    t_final: float = 1e-4
    alpha: float = 0.93
    steps_per_epoch: int = 60
    #: opt into the array-native evaluation tier (flat placer only):
    #: :class:`~repro.perf.VectorBStarEngine` + windowed moves, annealed
    #: K candidates at a time by :class:`~repro.anneal.BatchedAnnealer`.
    #: A different move/draw family from the incremental engine — same
    #: objective, not the same trajectory (see ``docs/perf.md``).
    vector_tier: bool = False
    #: max candidates per batched proposal under the vector tier
    vector_batch: int = 16
    #: smallest windowed-move suffix the vector tier draws
    vector_window_min: int = 8


@dataclass
class BStarPlacerResult:
    placement: Placement
    cost: float
    stats: AnnealingStats


class BStarPlacer:
    """Flat simulated-annealing placement over B*-trees (no hierarchy)."""

    def __init__(
        self,
        modules: ModuleSet,
        nets: tuple[Net, ...] = (),
        config: BStarPlacerConfig | None = None,
    ) -> None:
        self._modules = modules
        self._nets = nets
        self._config = config or BStarPlacerConfig()
        self._moves = BStarMoveSet(modules)
        # Reference evaluation tier: packed coordinates and the unified
        # cost model with no Placement/PlacedModule churn.  The
        # annealing loop itself runs the *incremental* engine
        # (dirty-suffix repack + delta HPWL), whose costs are
        # bit-identical to this kernel on every state.
        self._kernel = BStarKernel(modules, nets, (), self._config)

    @classmethod
    def for_circuit(
        cls, circuit: Circuit, config: BStarPlacerConfig | None = None
    ) -> "BStarPlacer":
        """Flat placer over a circuit's modules and nets (constraints are
        the :class:`HierarchicalPlacer`'s job; this engine ignores them)."""
        return cls(circuit.modules(), circuit.nets, config)

    @property
    def cost_model(self) -> CostModel:
        """The unified objective this placer anneals."""
        return self._kernel.model

    def cost(self, state: BStarState) -> float:
        return self._kernel.cost(state.tree, state.orientations, state.variants)

    def cost_breakdown(self, state: BStarState) -> dict[str, float]:
        """Per-term contributions of a state (reporting tier)."""
        return self._kernel.model.breakdown(
            self._kernel.pack(state.tree, state.orientations, state.variants)
        )

    # -- walk API (shared by run() and repro.parallel) ------------------------

    def schedule(self) -> GeometricSchedule:
        cfg = self._config
        return GeometricSchedule(
            t_initial=cfg.t_initial,
            t_final=cfg.t_final,
            alpha=cfg.alpha,
            steps_per_epoch=cfg.steps_per_epoch,
        )

    def engine(self):
        """A fresh annealing engine (call ``reset`` before annealing).

        ``config.vector_tier`` selects the array-native
        :class:`~repro.perf.VectorBStarEngine`; the default is the
        dirty-suffix :class:`~repro.perf.IncrementalBStarEngine`.
        """
        if self._config.vector_tier:
            return VectorBStarEngine(
                self._modules, self._nets, (), self._config
            )
        return IncrementalBStarEngine(self._modules, self._nets, (), self._config)

    def annealer(self, engine, rng: random.Random) -> IncrementalAnnealer:
        """The annealing driver matched to this config's engine tier."""
        if self._config.vector_tier:
            return BatchedAnnealer(
                engine, self.schedule(), rng,
                batch_max=self._config.vector_batch,
            )
        return IncrementalAnnealer(engine, self.schedule(), rng)

    def initial_state(self, rng: random.Random) -> BStarState:
        return self._moves.initial_state(rng)

    def finalize(self, state: BStarState) -> Placement:
        """Materialize a state as a normalized :class:`Placement`."""
        return pack(
            state.tree, self._modules, state.orientations, state.variants
        ).normalized()

    def run(self) -> BStarPlacerResult:
        rng = random.Random(self._config.seed)
        engine = self.engine()
        engine.reset(self.initial_state(rng))
        annealer = self.annealer(engine, rng)
        outcome = annealer.run()
        outcome.stats.term_breakdown = self.cost_breakdown(outcome.best_state)
        return BStarPlacerResult(
            self.finalize(outcome.best_state), outcome.best_cost, outcome.stats
        )


class HierarchicalPlacer:
    """Section-III hierarchical placer over the HB*-tree forest."""

    def __init__(self, circuit: Circuit, config: BStarPlacerConfig | None = None) -> None:
        self._circuit = circuit
        self._config = config or BStarPlacerConfig()
        self._modules = circuit.modules()
        self._hb = HBStarTreePlacement(circuit.hierarchy, self._modules)
        self._constraints = circuit.constraints()
        # The shared objective, fed by the forest's flat-coordinate
        # packer (bit-identical to the rich-placement evaluation).
        self._cost_model = model_for_config(
            self._modules, circuit.nets, self._constraints.proximity, self._config
        )

    @classmethod
    def for_circuit(
        cls, circuit: Circuit, config: BStarPlacerConfig | None = None
    ) -> "HierarchicalPlacer":
        """Uniform factory (the constructor already takes a circuit)."""
        return cls(circuit, config)

    @property
    def cost_model(self) -> CostModel:
        """The unified objective this placer anneals."""
        return self._cost_model

    def pack(self, state: HBState) -> Placement:
        return self._hb.pack(state)

    def cost(self, state: HBState) -> float:
        return self._cost_model(self._hb.pack_coords(state))

    def cost_breakdown(self, state: HBState) -> dict[str, float]:
        """Per-term contributions of a state (reporting tier)."""
        return self._cost_model.breakdown(self._hb.pack_coords(state))

    # -- walk API (shared by run() and repro.parallel) ------------------------

    def schedule(self) -> GeometricSchedule:
        cfg = self._config
        return GeometricSchedule(
            t_initial=cfg.t_initial,
            t_final=cfg.t_final,
            alpha=cfg.alpha,
            steps_per_epoch=cfg.steps_per_epoch,
        )

    def engine(self) -> HBIncrementalEngine:
        """A fresh incremental forest engine: repacks only the perturbed
        level's root path (cached subtrees elsewhere) and delta-evaluates
        wirelength; draws and costs match the functional path bit for
        bit, so trajectories are unchanged — only faster."""
        if self._config.vector_tier:
            raise ValueError(
                "vector_tier is flat-placer only: the HB*-tree forest "
                "has no array-native engine (use engine 'bstar')"
            )
        return HBIncrementalEngine(
            self._hb,
            self._modules,
            self._circuit.nets,
            self._constraints.proximity,
            self._config,
        )

    def annealer(self, engine, rng: random.Random) -> IncrementalAnnealer:
        """The annealing driver (always the scalar one: see :meth:`engine`)."""
        return IncrementalAnnealer(engine, self.schedule(), rng)

    def initial_state(self, rng: random.Random) -> HBState:
        return self._hb.initial_state(rng)

    def finalize(self, state: HBState) -> Placement:
        return self._hb.pack(state)

    def run(self) -> BStarPlacerResult:
        rng = random.Random(self._config.seed)
        engine = self.engine()
        engine.reset(self.initial_state(rng))
        annealer = self.annealer(engine, rng)
        outcome = annealer.run()
        outcome.stats.term_breakdown = self.cost_breakdown(outcome.best_state)
        return BStarPlacerResult(
            self.finalize(outcome.best_state), outcome.best_cost, outcome.stats
        )
