"""Counting B*-trees (the complexity argument of section IV).

Section IV motivates hierarchically-bounded enumeration by the size of
the flat search space: "the number of possible placements for 8 modules
is already 57,657,600" [3].  That number is exactly the count of labeled
binary trees on 8 nodes, ``8! * Catalan(8)``; these utilities provide
the closed form and a brute-force enumerator to verify it for small n.
"""

from __future__ import annotations

import math
from typing import Iterator, Sequence

from .tree import BStarTree


def catalan(n: int) -> int:
    """The n-th Catalan number."""
    if n < 0:
        raise ValueError("n must be non-negative")
    return math.comb(2 * n, n) // (n + 1)


def count_bstar_trees(n: int) -> int:
    """Number of distinct B*-trees over ``n`` labeled modules:
    ``n! * Catalan(n)`` (tree shapes x label assignments)."""
    return math.factorial(n) * catalan(n)


def enumerate_bstar_trees(names: Sequence[str]) -> Iterator[BStarTree]:
    """Yield every B*-tree over ``names`` (exponential; small n only).

    Enumerates binary tree shapes over each permutation-free labeling by
    recursive splitting: a tree over a set is a root plus a left subtree
    over any subset and a right subtree over the complement.
    """
    names = list(names)
    if not names:
        yield BStarTree()
        return

    def build(pool: tuple[str, ...]) -> Iterator[tuple[str, object, object] | None]:
        """Nested-tuple shapes: (root, left-shape, right-shape) or None."""
        if not pool:
            yield None
            return
        for i, root in enumerate(pool):
            rest = pool[:i] + pool[i + 1:]
            for k in range(len(rest) + 1):
                for left_set in _subsets_of_size(rest, k):
                    right_set = tuple(x for x in rest if x not in set(left_set))
                    for left in build(left_set):
                        for right in build(right_set):
                            yield (root, left, right)

    for shape in build(tuple(names)):
        yield _tree_from_shape(shape)


def _subsets_of_size(pool: tuple[str, ...], k: int) -> Iterator[tuple[str, ...]]:
    from itertools import combinations

    yield from combinations(pool, k)


def _tree_from_shape(shape: tuple[str, object, object] | None) -> BStarTree:
    tree = BStarTree()

    def attach(node_shape, parent: str | None, side: str) -> None:
        if node_shape is None:
            return
        root, left, right = node_shape
        if parent is None:
            tree.insert_root(root)
        else:
            tree.insert(root, parent, side)
        attach(left, root, "left")
        attach(right, root, "right")

    attach(shape, None, "left")
    return tree
