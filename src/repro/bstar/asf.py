"""ASF-B*-trees: automatically symmetric-feasible B*-trees (Lin & Lin [16]).

An ASF-B*-tree represents only the *right half* of a symmetric placement:

* each symmetric pair contributes one **representative** node (the right
  member); the left member is obtained by mirroring;
* each self-symmetric module contributes a **half node** of half its
  width that must sit on the symmetry axis, i.e. at x = 0.

Packing the half-tree and mirroring yields a *symmetry island*: a
connected placement that satisfies the symmetry constraint by
construction — no checking required during annealing, which is the whole
point of the formulation.

The x = 0 requirement is enforced structurally: self-symmetric nodes are
kept on the right-child spine of the root (every node on that spine
packs at the root's x, which is 0).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Mapping

from ..circuit import SymmetryGroup
from ..geometry import ModuleSet, Orientation, PlacedModule, Placement, Rect
from .packing import pack_sizes
from .tree import BStarTree


@dataclass(frozen=True)
class ASFBStarTree:
    """Immutable ASF-B*-tree state for one symmetry group.

    ``tree`` spans the representative names: right members of pairs plus
    all self-symmetric modules.  ``spine`` lists the self-symmetric
    modules bottom-to-top on the axis.
    """

    group: SymmetryGroup
    tree: BStarTree = field(compare=False)
    orientations: Mapping[str, Orientation] = field(default_factory=dict)
    variants: Mapping[str, int] = field(default_factory=dict)

    # -- construction -------------------------------------------------------

    @classmethod
    def initial(cls, group: SymmetryGroup, rng: random.Random) -> "ASFBStarTree":
        """Random valid ASF-tree: self-symmetric spine + random rep forest."""
        reps = [b for _, b in group.pairs]
        selfsym = list(group.self_symmetric)
        rng.shuffle(reps)
        rng.shuffle(selfsym)
        if selfsym:
            tree = BStarTree.chain(selfsym, direction="right")
            for rep in reps:
                # attach anywhere except as a right child of a spine node's
                # last slot reserved for the spine itself
                candidates = [
                    (node, side)
                    for node in tree.nodes()
                    for side in ("left", "right")
                    if cls._slot_ok(tree, selfsym, node, side)
                ]
                node, side = rng.choice(candidates)
                tree.insert(rep, node, side)
        else:
            tree = BStarTree.random(reps, rng)
        return cls(group, tree)

    @staticmethod
    def _slot_ok(tree: BStarTree, selfsym: list[str], node: str, side: str) -> bool:
        """A representative may not be inserted *into* the self-symmetric
        right-child spine (that would push spine nodes off the axis)."""
        if side == "left":
            return True
        return node not in selfsym

    def validate(self) -> None:
        """Structural invariants: spine intact, representatives complete."""
        self.tree.validate()
        selfsym = set(self.group.self_symmetric)
        if selfsym:
            if self.tree.root not in selfsym:
                raise ValueError("ASF root must be self-symmetric when any exist")
            node = self.tree.root
            seen = set()
            while node is not None and node in selfsym:
                seen.add(node)
                node = self.tree.right[node]
            if seen != selfsym:
                raise ValueError("self-symmetric modules must form the root right spine")
            if node is not None:
                raise ValueError("non-self-symmetric node on the axis spine")
        expected = {b for _, b in self.group.pairs} | selfsym
        if set(self.tree.nodes()) != expected:
            raise ValueError("ASF tree does not span the representatives")

    # -- packing ------------------------------------------------------------------

    def _sizes(self, modules: ModuleSet) -> dict[str, tuple[float, float]]:
        sizes = {}
        selfsym = set(self.group.self_symmetric)
        for name in self.tree.nodes():
            variant = self.variants.get(name, 0)
            orient = self.orientations.get(name, Orientation.R0)
            w, h = modules[name].footprint(variant, orient)
            if name in selfsym:
                w /= 2.0  # half module straddling the axis
            sizes[name] = (w, h)
        return sizes

    def pack(self, modules: ModuleSet) -> Placement:
        """The full symmetry island, mirrored about the axis x = 0."""
        sizes = self._sizes(modules)
        half = pack_sizes(self.tree, sizes)
        selfsym = set(self.group.self_symmetric)
        placed: list[PlacedModule] = []
        for name, rect in half.items():
            variant = self.variants.get(name, 0)
            orient = self.orientations.get(name, Orientation.R0)
            if name in selfsym:
                if abs(rect.x0) > 1e-9:
                    raise ValueError(
                        f"self-symmetric module {name!r} packed off-axis (x={rect.x0:g})"
                    )
                full = Rect(-rect.width, rect.y0, rect.width, rect.y1)
                placed.append(PlacedModule(modules[name], full, variant, orient))
            else:
                placed.append(PlacedModule(modules[name], rect, variant, orient))
                partner = self.group.sym(name)
                mirrored = rect.mirrored_x(0.0)
                placed.append(
                    PlacedModule(
                        modules[partner],
                        mirrored,
                        variant,
                        orient.mirrored_y(),
                    )
                )
        return Placement.of(placed)


class ASFMoveSet:
    """Spine-preserving perturbations of an ASF-B*-tree."""

    def __init__(self, modules: ModuleSet, group: SymmetryGroup, *, allow_rotation: bool = False) -> None:
        self._modules = modules
        self._group = group
        self._reps = [b for _, b in group.pairs]
        self._selfsym = list(group.self_symmetric)
        # Rotation of a pair representative changes both halves coherently;
        # self-symmetric modules may not rotate (footprint must straddle axis).
        self._rotatable = (
            [r for r in self._reps if modules[r].rotatable] if allow_rotation else []
        )

    def initial_state(self, rng: random.Random) -> ASFBStarTree:
        return ASFBStarTree.initial(self._group, rng)

    def propose(self, state: ASFBStarTree, rng: random.Random) -> ASFBStarTree:
        ops = []
        if len(self._reps) >= 1:
            ops.append(self._move_rep)
        if len(self._reps) >= 2:
            ops.append(self._swap_reps)
        if len(self._selfsym) >= 2:
            ops.append(self._shuffle_spine)
        if self._rotatable:
            ops.append(self._rotate_rep)
        if not ops:
            return state
        return rng.choice(ops)(state, rng)

    def _move_rep(self, state: ASFBStarTree, rng: random.Random) -> ASFBStarTree:
        tree = state.tree.clone()
        name = rng.choice(self._reps)
        tree.remove(name)
        if tree.root is None:
            tree.insert_root(name)
        else:
            candidates = [
                (node, side)
                for node in tree.nodes()
                for side in ("left", "right")
                if ASFBStarTree._slot_ok(tree, self._selfsym, node, side)
            ]
            node, side = rng.choice(candidates)
            tree.insert(name, node, side)
        return replace(state, tree=tree)

    def _swap_reps(self, state: ASFBStarTree, rng: random.Random) -> ASFBStarTree:
        a, b = rng.sample(self._reps, 2)
        tree = state.tree.clone()
        tree.swap_nodes(a, b)
        return replace(state, tree=tree)

    def _shuffle_spine(self, state: ASFBStarTree, rng: random.Random) -> ASFBStarTree:
        """Rebuild with a new self-symmetric order, keeping rep subtrees
        attached to the same spine indices where possible."""
        return ASFBStarTree.initial(self._group, rng)

    def _rotate_rep(self, state: ASFBStarTree, rng: random.Random) -> ASFBStarTree:
        name = rng.choice(self._rotatable)
        orientations = dict(state.orientations)
        current = orientations.get(name, Orientation.R0)
        orientations[name] = Orientation.R90 if current == Orientation.R0 else Orientation.R0
        return replace(state, orientations=orientations)
