"""Perturbation operations for B*-tree annealing.

The standard move set of [5]: rotate a module, move a node to a new
(parent, side) slot, and swap two nodes.

Two flavors share the same op mix and random-draw pattern:

* :class:`BStarMoveSet` — functional; moves clone the tree and never
  mutate their input (the classic :class:`~repro.anneal.MoveSet`).
* :class:`InPlaceBStarMoves` — incremental; moves mutate the state in
  place and return a :class:`PerturbRecord` reporting exactly which
  nodes were touched (so the packing engine can bound the dirty
  pre-order suffix) plus the pointer snapshots needed to undo the move
  on rejection.  Used by
  :class:`repro.perf.incremental.IncrementalBStarEngine`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Mapping

from ..geometry import ModuleSet, Orientation
from .tree import BStarTree


@dataclass(frozen=True)
class BStarState:
    """Annealing state for the flat B*-tree placer."""

    tree: BStarTree = field(compare=False)
    orientations: Mapping[str, Orientation] = field(default_factory=dict)
    variants: Mapping[str, int] = field(default_factory=dict)


class BStarMoveSet:
    """Random rotate / move / swap perturbations."""

    def __init__(self, modules: ModuleSet, *, allow_rotation: bool = True) -> None:
        self._modules = modules
        self._names = list(modules.names())
        self._rotatable = (
            [n for n in self._names if modules[n].rotatable] if allow_rotation else []
        )
        self._soft = [n for n in self._names if len(modules[n].variants) > 1]
        # The op/weight tables depend only on the module set — build once.
        ops = [self._move, self._swap]
        weights = [4.0, 4.0]
        if self._rotatable:
            ops.append(self._rotate)
            weights.append(2.0)
        if self._soft:
            ops.append(self._reshape)
            weights.append(1.5)
        self._ops = ops
        self._weights = weights

    def initial_state(self, rng: random.Random) -> BStarState:
        return BStarState(BStarTree.random(self._names, rng))

    def propose(self, state: BStarState, rng: random.Random) -> BStarState:
        (op,) = rng.choices(self._ops, weights=self._weights, k=1)
        return op(state, rng)

    # -- moves ---------------------------------------------------------------

    def _move(self, state: BStarState, rng: random.Random) -> BStarState:
        if len(self._names) < 2:
            return state
        tree = state.tree.clone()
        name = rng.choice(self._names)
        tree.remove(name)
        parent = rng.choice(list(tree.nodes()))
        tree.insert(name, parent, rng.choice(("left", "right")))
        return replace(state, tree=tree)

    def _swap(self, state: BStarState, rng: random.Random) -> BStarState:
        if len(self._names) < 2:
            return state
        a, b = rng.sample(self._names, 2)
        tree = state.tree.clone()
        tree.swap_nodes(a, b)
        return replace(state, tree=tree)

    def _rotate(self, state: BStarState, rng: random.Random) -> BStarState:
        name = rng.choice(self._rotatable)
        orientations = dict(state.orientations)
        current = orientations.get(name, Orientation.R0)
        orientations[name] = Orientation.R90 if current == Orientation.R0 else Orientation.R0
        return replace(state, orientations=orientations)

    def _reshape(self, state: BStarState, rng: random.Random) -> BStarState:
        name = rng.choice(self._soft)
        variants = dict(state.variants)
        variants[name] = rng.randrange(len(self._modules[name].variants))
        return replace(state, variants=variants)


#: sentinel for "the key was absent before the move"
_ABSENT = object()


@dataclass
class PerturbRecord:
    """What one in-place move did — enough to bound the dirty suffix
    and to undo the move exactly.

    ``kind`` is one of ``"move"``, ``"swap"``, ``"rotate"``,
    ``"reshape"``, ``"noop"``.  For structural moves, ``a`` / ``b``
    name the nodes whose *old* pre-order positions bound the dirty
    suffix (see :meth:`InPlaceBStarMoves.dirty_index`); for size moves,
    ``a`` is the resized module.  ``nodes`` holds ``(name, left, right,
    parent)`` pointer snapshots in application order (undo replays them
    in reverse, so the earliest snapshot of a twice-touched node wins);
    ``root`` is the pre-move root.  ``key_undo`` is the
    orientation/variant entry to restore (``_ABSENT`` means delete).
    """

    kind: str
    a: str | None = None
    b: str | None = None
    nodes: list[tuple[str, str | None, str | None, str | None]] = field(
        default_factory=list
    )
    root: str | None = None
    key_undo: object = None
    #: swap of two children of the same parent: ``_swap_positions``
    #: leaves the nodes in place and exchanges their *subtrees*, so the
    #: pre-order transform is not the plain two-slot exchange
    sibling_swap: bool = False


class InPlaceBStarMoves:
    """Mutating twin of :class:`BStarMoveSet` with undo records.

    Op mix and weights match the functional move set, so annealing
    walks are drawn from the same *distribution* — but not draw for
    draw: ``_move`` picks the insert target by rejection sampling from
    the static name list instead of materializing ``tree.nodes()``, so
    a given seed walks a different (equally distributed) trajectory
    than the functional set.  Seed-for-seed parity holds only between
    two consumers of this class (e.g. the incremental engine and its
    full-repack twin).  Moves mutate ``tree`` / ``orientations`` /
    ``variants`` directly and return a :class:`PerturbRecord` that
    :meth:`undo` reverses exactly (pointer values and map entries; dict
    insertion *order* may differ after an undone move, which affects
    nothing but the iteration order behind future random draws).
    """

    def __init__(self, modules: ModuleSet, *, allow_rotation: bool = True) -> None:
        self._modules = modules
        self._names = list(modules.names())
        self._rotatable = (
            [n for n in self._names if modules[n].rotatable] if allow_rotation else []
        )
        self._soft = [n for n in self._names if len(modules[n].variants) > 1]
        ops = [self._move, self._swap]
        weights = [4.0, 4.0]
        if self._rotatable:
            ops.append(self._rotate)
            weights.append(2.0)
        if self._soft:
            ops.append(self._reshape)
            weights.append(1.5)
        self._ops = ops
        self._weights = weights

    def initial_state(self, rng: random.Random) -> BStarState:
        return BStarState(BStarTree.random(self._names, rng))

    def apply(
        self,
        tree: BStarTree,
        orientations: dict[str, Orientation],
        variants: dict[str, int],
        rng: random.Random,
    ) -> PerturbRecord:
        """Draw one op and apply it in place."""
        (op,) = rng.choices(self._ops, weights=self._weights, k=1)
        return op(tree, orientations, variants, rng)

    def undo(
        self,
        tree: BStarTree,
        orientations: dict[str, Orientation],
        variants: dict[str, int],
        record: PerturbRecord,
    ) -> None:
        """Reverse an applied move (pointer values, maps and root)."""
        kind = record.kind
        if kind == "noop":
            return
        if kind == "rotate" or kind == "reshape":
            target = orientations if kind == "rotate" else variants
            if record.key_undo is _ABSENT:
                del target[record.a]
            else:
                target[record.a] = record.key_undo
            return
        left, right, parent = tree.left, tree.right, tree.parent
        for name, ln, rn, pn in reversed(record.nodes):
            left[name] = ln
            right[name] = rn
            parent[name] = pn
        tree.root = record.root

    def dirty_index(self, record: PerturbRecord, pos: Mapping[str, int]) -> int:
        """First pre-order position whose placement the move can change.

        ``pos`` maps names to their *pre-move* pre-order positions.
        Everything before the returned index packs to identical
        coordinates in the perturbed tree:

        * ``swap a b`` — divergence starts at the earlier of the two;
        * ``move a under b`` — removal disturbs from ``pos[a]`` (the
          promoted subtree sits entirely after ``a``), insertion from
          ``pos[b] + 1`` (``b`` itself keeps its placement);
        * ``rotate/reshape a`` — only ``a``'s size changed, traversal
          order is untouched, so divergence starts at ``pos[a]``.
        """
        kind = record.kind
        if kind == "swap":
            pa, pb = pos[record.a], pos[record.b]
            return pa if pa < pb else pb
        if kind == "move":
            pa, pb = pos[record.a], pos[record.b] + 1
            return pa if pa < pb else pb
        return pos[record.a]

    # -- deterministic (draw-free) op bodies ---------------------------------
    #
    # Each op splits into a draw phase and a mutation phase.  The
    # *_named methods are the mutation phase with every random choice
    # passed in, so a caller holding recorded choices (the vector tier's
    # accept-replay, the windowed mover) can re-apply a move exactly.

    @staticmethod
    def _snap(tree: BStarTree, record: PerturbRecord, name: str) -> None:
        record.nodes.append(
            (name, tree.left[name], tree.right[name], tree.parent[name])
        )

    def move_named(
        self, tree: BStarTree, name: str, target: str, side: str
    ) -> PerturbRecord:
        """Move ``name`` under ``(target, side)``; undo-recorded."""
        record = PerturbRecord("move", a=name, root=tree.root)
        # remove() promotes the preferred-child chain of `name` one slot
        # up; the only pointers it touches are `name`, the chain members,
        # their immediate (other-side) children, and the old parent —
        # snapshot exactly those, not the whole subtree.
        snap = self._snap
        snap(tree, record, name)
        left, right = tree.left, tree.right
        node = name
        while True:
            l = left[node]
            r = right[node]
            if l is not None:
                snap(tree, record, l)
                if r is not None:
                    snap(tree, record, r)
                node = l
            elif r is not None:
                snap(tree, record, r)
                node = r
            else:
                break
        old_parent = tree.parent[name]
        if old_parent is not None:
            snap(tree, record, old_parent)
        tree.remove(name)
        # insert() touches the target's slot and the displaced child;
        # `name` itself is re-created (its pre-move snapshot is above).
        snap(tree, record, target)
        displaced = (tree.left if side == "left" else tree.right)[target]
        if displaced is not None:
            snap(tree, record, displaced)
        tree.insert(name, target, side)
        record.b = target
        return record

    def swap_named(self, tree: BStarTree, a: str, b: str) -> PerturbRecord:
        """Swap nodes ``a`` and ``b``; undo-recorded."""
        record = PerturbRecord(
            "swap",
            a=a,
            b=b,
            root=tree.root,
            sibling_swap=tree.parent[a] is not None
            and tree.parent[a] == tree.parent[b],
        )
        snap = self._snap
        for node in (
            a,
            b,
            tree.parent[a],
            tree.parent[b],
            tree.left[a],
            tree.right[a],
            tree.left[b],
            tree.right[b],
        ):
            if node is not None:
                snap(tree, record, node)
        tree.swap_nodes(a, b)
        return record

    def rotate_named(
        self, orientations: dict[str, Orientation], name: str
    ) -> PerturbRecord:
        """Toggle ``name`` between R0 and R90; undo-recorded."""
        old = orientations.get(name, _ABSENT)
        current = Orientation.R0 if old is _ABSENT else old
        orientations[name] = (
            Orientation.R90 if current == Orientation.R0 else Orientation.R0
        )
        return PerturbRecord("rotate", a=name, key_undo=old)

    def reshape_named(
        self, variants: dict[str, int], name: str, variant: int
    ) -> PerturbRecord:
        """Select soft-module ``variant`` for ``name``; undo-recorded."""
        old = variants.get(name, _ABSENT)
        variants[name] = variant
        return PerturbRecord("reshape", a=name, key_undo=old)

    # -- ops -----------------------------------------------------------------

    def _move(
        self,
        tree: BStarTree,
        orientations: dict[str, Orientation],
        variants: dict[str, int],
        rng: random.Random,
    ) -> PerturbRecord:
        if len(self._names) < 2:
            return PerturbRecord("noop")
        # uniform over the remaining nodes, drawn by rejection from the
        # static name list (no O(n) key-list build per proposal); none
        # of the tree mutations consume randomness, so drawing the
        # target and side up front preserves the historical sequence
        names = self._names
        name = rng.choice(names)
        target = rng.choice(names)
        while target == name:
            target = rng.choice(names)
        side = rng.choice(("left", "right"))
        return self.move_named(tree, name, target, side)

    def _swap(
        self,
        tree: BStarTree,
        orientations: dict[str, Orientation],
        variants: dict[str, int],
        rng: random.Random,
    ) -> PerturbRecord:
        if len(self._names) < 2:
            return PerturbRecord("noop")
        a, b = rng.sample(self._names, 2)
        return self.swap_named(tree, a, b)

    def _rotate(
        self,
        tree: BStarTree,
        orientations: dict[str, Orientation],
        variants: dict[str, int],
        rng: random.Random,
    ) -> PerturbRecord:
        return self.rotate_named(orientations, rng.choice(self._rotatable))

    def _reshape(
        self,
        tree: BStarTree,
        orientations: dict[str, Orientation],
        variants: dict[str, int],
        rng: random.Random,
    ) -> PerturbRecord:
        name = rng.choice(self._soft)
        return self.reshape_named(
            variants, name, rng.randrange(len(self._modules[name].variants))
        )


class WindowedBStarMoves(InPlaceBStarMoves):
    """Window-restricted moves for the vector tier's multi-scale walk.

    Same op mix and weights as :class:`InPlaceBStarMoves`, but operands
    are drawn from a pre-order *window* ``[lo, n)`` supplied per
    proposal: a B*-tree packs in pre-order, so confining a move to the
    last ``n - lo`` positions bounds the dirty suffix — and hence the
    repack cost — by the window size.  Draws are positions into the
    committed pre-order (not names), so trajectories are a different
    (equally distributed over each window) family than the global move
    set; determinism still holds seed for seed between any two
    consumers of this class.

    Rotate/reshape rejection-sample an eligible module inside the
    window (bounded tries), falling back to a global draw — a global
    fallback merely dirties a longer suffix, which stays correct.
    """

    #: bounded window retries for rotate/reshape eligibility
    _TRIES = 8

    def __init__(self, modules: ModuleSet, *, allow_rotation: bool = True) -> None:
        super().__init__(modules, allow_rotation=allow_rotation)
        kinds = ["move", "swap"]
        if self._rotatable:
            kinds.append("rotate")
        if self._soft:
            kinds.append("reshape")
        self._kinds = kinds
        self._rotatable_set = frozenset(self._rotatable)
        self._soft_set = frozenset(self._soft)

    def apply_windowed(
        self,
        tree: BStarTree,
        orientations: dict[str, Orientation],
        variants: dict[str, int],
        rng: random.Random,
        order: list[str],
        lo: int,
    ) -> PerturbRecord:
        """Draw one op with operands from ``order[lo:]``; apply in place."""
        n = len(order)
        if n < 2:
            return PerturbRecord("noop")
        if n - lo < 2:
            lo = n - 2
        (kind,) = rng.choices(self._kinds, weights=self._weights, k=1)
        if kind == "move":
            name = order[rng.randrange(lo, n)]
            target = order[rng.randrange(lo, n)]
            while target == name:
                target = order[rng.randrange(lo, n)]
            side = rng.choice(("left", "right"))
            return self.move_named(tree, name, target, side)
        if kind == "swap":
            i = rng.randrange(lo, n)
            j = rng.randrange(lo, n)
            while j == i:
                j = rng.randrange(lo, n)
            return self.swap_named(tree, order[i], order[j])
        if kind == "rotate":
            name = self._windowed_pick(rng, order, lo, n, self._rotatable_set)
            if name is None:
                name = rng.choice(self._rotatable)
            return self.rotate_named(orientations, name)
        name = self._windowed_pick(rng, order, lo, n, self._soft_set)
        if name is None:
            name = rng.choice(self._soft)
        return self.reshape_named(
            variants, name, rng.randrange(len(self._modules[name].variants))
        )

    @staticmethod
    def _windowed_pick(rng, order, lo, n, eligible):
        for _ in range(WindowedBStarMoves._TRIES):
            name = order[rng.randrange(lo, n)]
            if name in eligible:
                return name
        return None
