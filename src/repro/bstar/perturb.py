"""Perturbation operations for B*-tree annealing.

The standard move set of [5]: rotate a module, move a node to a new
(parent, side) slot, and swap two nodes.  Moves operate on a
:class:`BStarState` (tree + orientations + variants) and never mutate
their input.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Mapping

from ..geometry import ModuleSet, Orientation
from .tree import BStarTree


@dataclass(frozen=True)
class BStarState:
    """Annealing state for the flat B*-tree placer."""

    tree: BStarTree = field(compare=False)
    orientations: Mapping[str, Orientation] = field(default_factory=dict)
    variants: Mapping[str, int] = field(default_factory=dict)


class BStarMoveSet:
    """Random rotate / move / swap perturbations."""

    def __init__(self, modules: ModuleSet, *, allow_rotation: bool = True) -> None:
        self._modules = modules
        self._names = list(modules.names())
        self._rotatable = (
            [n for n in self._names if modules[n].rotatable] if allow_rotation else []
        )
        self._soft = [n for n in self._names if len(modules[n].variants) > 1]
        # The op/weight tables depend only on the module set — build once.
        ops = [self._move, self._swap]
        weights = [4.0, 4.0]
        if self._rotatable:
            ops.append(self._rotate)
            weights.append(2.0)
        if self._soft:
            ops.append(self._reshape)
            weights.append(1.5)
        self._ops = ops
        self._weights = weights

    def initial_state(self, rng: random.Random) -> BStarState:
        return BStarState(BStarTree.random(self._names, rng))

    def propose(self, state: BStarState, rng: random.Random) -> BStarState:
        (op,) = rng.choices(self._ops, weights=self._weights, k=1)
        return op(state, rng)

    # -- moves ---------------------------------------------------------------

    def _move(self, state: BStarState, rng: random.Random) -> BStarState:
        if len(self._names) < 2:
            return state
        tree = state.tree.clone()
        name = rng.choice(self._names)
        tree.remove(name)
        parent = rng.choice(list(tree.nodes()))
        tree.insert(name, parent, rng.choice(("left", "right")))
        return replace(state, tree=tree)

    def _swap(self, state: BStarState, rng: random.Random) -> BStarState:
        if len(self._names) < 2:
            return state
        a, b = rng.sample(self._names, 2)
        tree = state.tree.clone()
        tree.swap_nodes(a, b)
        return replace(state, tree=tree)

    def _rotate(self, state: BStarState, rng: random.Random) -> BStarState:
        name = rng.choice(self._rotatable)
        orientations = dict(state.orientations)
        current = orientations.get(name, Orientation.R0)
        orientations[name] = Orientation.R90 if current == Orientation.R0 else Orientation.R0
        return replace(state, orientations=orientations)

    def _reshape(self, state: BStarState, rng: random.Random) -> BStarState:
        name = rng.choice(self._soft)
        variants = dict(state.variants)
        variants[name] = rng.randrange(len(self._modules[name].variants))
        return replace(state, variants=variants)
