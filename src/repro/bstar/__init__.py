"""B*-tree, ASF-B*-tree and hierarchical B*-tree placement (section III)."""

from .asf import ASFBStarTree, ASFMoveSet
from .common_centroid import (
    CommonCentroidError,
    common_centroid_placement,
    grid_options,
    n_variants,
)
from .contour import Contour
from .count import catalan, count_bstar_trees, enumerate_bstar_trees
from .hb_tree import HBStarTreePlacement, HBState, LevelState
from .packing import pack, pack_sizes
from .perturb import BStarMoveSet, BStarState
from .placer import (
    BStarPlacer,
    BStarPlacerConfig,
    BStarPlacerResult,
    HierarchicalPlacer,
)
from .tree import BStarTree

__all__ = [
    "ASFBStarTree",
    "ASFMoveSet",
    "BStarMoveSet",
    "BStarPlacer",
    "BStarPlacerConfig",
    "BStarPlacerResult",
    "BStarState",
    "BStarTree",
    "CommonCentroidError",
    "Contour",
    "HBStarTreePlacement",
    "HBState",
    "HierarchicalPlacer",
    "LevelState",
    "catalan",
    "common_centroid_placement",
    "count_bstar_trees",
    "enumerate_bstar_trees",
    "grid_options",
    "n_variants",
    "pack",
    "pack_sizes",
]
