"""Contour structure for B*-tree packing.

The contour is the skyline of the partial placement: a step function
mapping x to the highest occupied y.  Packing queries the maximum height
over a module's x span and then raises the contour; a simple sorted
segment list keeps each operation O(segments touched), which is linear
overall for typical trees.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(slots=True)
class _Segment:
    x0: float
    x1: float
    y: float


class Contour:
    """Skyline over x >= 0, initially flat at y = 0."""

    def __init__(self) -> None:
        self._segments: list[_Segment] = [_Segment(0.0, float("inf"), 0.0)]

    def reset(self) -> None:
        """Return to the flat initial skyline (amortized O(1)), so one
        contour instance can serve many packs (see ``pack_sizes``)."""
        del self._segments[1:]
        first = self._segments[0]
        first.x0 = 0.0
        first.x1 = float("inf")
        first.y = 0.0

    def height_over(self, x0: float, x1: float) -> float:
        """Maximum contour height over the open interval (x0, x1)."""
        if x1 <= x0:
            raise ValueError("empty interval")
        best = 0.0
        for seg in self._segments:
            if seg.x1 <= x0:
                continue
            if seg.x0 >= x1:
                break
            best = max(best, seg.y)
        return best

    def place(self, x0: float, x1: float, top: float) -> None:
        """Raise the contour to ``top`` over [x0, x1)."""
        if x1 <= x0:
            raise ValueError("empty interval")
        new_segments: list[_Segment] = []
        for seg in self._segments:
            if seg.x1 <= x0 or seg.x0 >= x1:
                new_segments.append(seg)
                continue
            if seg.x0 < x0:
                new_segments.append(_Segment(seg.x0, x0, seg.y))
            if seg.x1 > x1:
                new_segments.append(_Segment(x1, seg.x1, seg.y))
        new_segments.append(_Segment(x0, x1, top))
        new_segments.sort(key=lambda s: s.x0)
        # merge equal-height neighbors
        merged: list[_Segment] = []
        for seg in new_segments:
            if merged and merged[-1].y == seg.y and merged[-1].x1 == seg.x0:
                merged[-1] = _Segment(merged[-1].x0, seg.x1, seg.y)
            else:
                merged.append(seg)
        self._segments = merged

    def max_height(self) -> float:
        """Highest finite contour point."""
        return max((s.y for s in self._segments), default=0.0)

    def profile(self) -> list[tuple[float, float, float]]:
        """The skyline as (x0, x1, y) triples (diagnostics/tests)."""
        return [(s.x0, s.x1, s.y) for s in self._segments]
