"""B*-trees (Chang et al. [5]): ordered binary trees encoding compacted
non-slicing placements.

In a B*-tree, the root is placed at the origin; a *left* child is the
lowest unoccupied position immediately to the right of its parent, a
*right* child sits at the same x as its parent, above it.  Packing a
B*-tree therefore always yields a left/bottom-compacted, overlap-free
placement — the property section III builds on.

The tree is stored as parent/child name maps, cheap to clone for the
annealer's non-destructive perturbations.
"""

from __future__ import annotations

import random
from typing import Iterable, Iterator, Sequence


class BStarTree:
    """A mutable B*-tree over module names."""

    def __init__(self, root: str | None = None) -> None:
        self.root: str | None = root
        self.left: dict[str, str | None] = {}
        self.right: dict[str, str | None] = {}
        self.parent: dict[str, str | None] = {}
        if root is not None:
            self.left[root] = None
            self.right[root] = None
            self.parent[root] = None

    # -- constructors -----------------------------------------------------------

    @classmethod
    def chain(cls, names: Sequence[str], *, direction: str = "left") -> "BStarTree":
        """A degenerate tree: a row (``left``) or a stack (``right``)."""
        if direction not in ("left", "right"):
            raise ValueError("direction must be 'left' or 'right'")
        if not names:
            return cls()
        tree = cls(names[0])
        for prev, name in zip(names, names[1:]):
            tree._attach(name, prev, direction)
        return tree

    @classmethod
    def random(cls, names: Iterable[str], rng: random.Random) -> "BStarTree":
        """A uniformly-shaped random tree (random insertion order and slots)."""
        pool = list(names)
        rng.shuffle(pool)
        if not pool:
            return cls()
        tree = cls(pool[0])
        for name in pool[1:]:
            parent = rng.choice(list(tree.nodes()))
            side = rng.choice(("left", "right"))
            tree.insert(name, parent, side)
        return tree

    # -- basic structure ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.left)

    def __contains__(self, name: str) -> bool:
        return name in self.left

    def nodes(self) -> Iterator[str]:
        return iter(self.left.keys())

    def preorder(self) -> Iterator[str]:
        """Pre-order traversal (the packing order)."""
        stack = [self.root] if self.root is not None else []
        while stack:
            node = stack.pop()
            yield node
            right = self.right[node]
            left = self.left[node]
            if right is not None:
                stack.append(right)
            if left is not None:
                stack.append(left)

    def clone(self) -> "BStarTree":
        other = BStarTree()
        other.root = self.root
        other.left = dict(self.left)
        other.right = dict(self.right)
        other.parent = dict(self.parent)
        return other

    def validate(self) -> None:
        """Check tree invariants (used by tests and after perturbations)."""
        if self.root is None:
            if self.left or self.right or self.parent:
                raise ValueError("empty tree with leftover maps")
            return
        seen = list(self.preorder())
        if len(seen) != len(self.left) or set(seen) != set(self.left):
            raise ValueError("tree is not connected or has stray nodes")
        if self.parent[self.root] is not None:
            raise ValueError("root has a parent")
        for node in self.nodes():
            for child in (self.left[node], self.right[node]):
                if child is not None and self.parent[child] != node:
                    raise ValueError(f"parent pointer of {child!r} is stale")

    # -- mutations -----------------------------------------------------------------

    def _attach(self, name: str, parent: str, side: str) -> None:
        slot = self.left if side == "left" else self.right
        if slot[parent] is not None:
            raise ValueError(f"{side} slot of {parent!r} is occupied")
        slot[parent] = name
        self.left[name] = None
        self.right[name] = None
        self.parent[name] = parent

    def insert(self, name: str, parent: str, side: str) -> None:
        """Insert ``name`` as the ``side`` child of ``parent``; an existing
        child is pushed down to the same side of the new node."""
        if name in self.left:
            raise ValueError(f"{name!r} already in tree")
        if side not in ("left", "right"):
            raise ValueError("side must be 'left' or 'right'")
        slot = self.left if side == "left" else self.right
        displaced = slot[parent]
        slot[parent] = name
        self.left[name] = None
        self.right[name] = None
        self.parent[name] = parent
        if displaced is not None:
            own = self.left if side == "left" else self.right
            own[name] = displaced
            self.parent[displaced] = name

    def insert_root(self, name: str, side: str = "left") -> None:
        """Insert ``name`` as the new root, pushing the old root down."""
        if name in self.left:
            raise ValueError(f"{name!r} already in tree")
        old = self.root
        self.root = name
        self.left[name] = None
        self.right[name] = None
        self.parent[name] = None
        if old is not None:
            slot = self.left if side == "left" else self.right
            slot[name] = old
            self.parent[old] = name

    def remove(self, name: str) -> None:
        """Remove a node; its children are re-linked by promoting a child
        chain (standard B*-tree deletion).

        Promoting the preferred (left-first) child repeatedly is
        equivalent to shifting the whole preferred-child chain up one
        slot: each chain member takes its parent's place, keeping its
        displaced sibling as its other-side child.  The chain is spliced
        directly (one pass, a few pointer writes per link) instead of
        running the O(chain) pairwise position swaps — the resulting
        tree is pointer-for-pointer identical.
        """
        if name not in self.left:
            raise KeyError(name)
        left, right, parent_map = self.left, self.right, self.parent
        # preferred-child chain below `name`: (member, its side, its sibling)
        chain: list[tuple[str, str, str | None]] = []
        node = name
        while True:
            l = left[node]
            r = right[node]
            if l is not None:
                chain.append((l, "left", r))
                node = l
            elif r is not None:
                chain.append((r, "right", None))
                node = r
            else:
                break
        parent = parent_map[name]
        if chain:
            # first chain member takes name's slot …
            head = chain[0][0]
            parent_map[head] = parent
            if parent is None:
                self.root = head
            elif left[parent] == name:
                left[parent] = head
            else:
                right[parent] = head
            # … and every member keeps the next one on its own side,
            # adopting its displaced sibling on the other side.
            for i, (member, side, sibling) in enumerate(chain):
                nxt = chain[i + 1][0] if i + 1 < len(chain) else None
                if side == "left":
                    left[member] = nxt
                    right[member] = sibling
                else:
                    left[member] = sibling
                    right[member] = nxt
                if sibling is not None:
                    parent_map[sibling] = member
                if i:
                    parent_map[member] = chain[i - 1][0]
        elif parent is None:
            self.root = None
        elif left[parent] == name:
            left[parent] = None
        else:
            right[parent] = None
        del left[name]
        del right[name]
        del parent_map[name]

    def _swap_positions(self, a: str, b: str) -> None:
        """Exchange the tree positions of nodes ``a`` and ``b``."""
        if a == b:
            return
        pa, pb = self.parent[a], self.parent[b]
        la, ra = self.left[a], self.right[a]
        lb, rb = self.left[b], self.right[b]

        def slot_of(parent: str, child: str) -> str:
            return "left" if self.left[parent] == child else "right"

        if pa == b or pb == a:
            # adjacent: normalize so that `p` is the parent of `c`
            p, c = (b, a) if pa == b else (a, b)
            side = slot_of(p, c)
            pp = self.parent[p]
            cl, cr = self.left[c], self.right[c]
            pl, pr = self.left[p], self.right[p]
            # child takes parent's place
            self.parent[c] = pp
            if pp is None:
                self.root = c
            elif self.left[pp] == p:
                self.left[pp] = c
            else:
                self.right[pp] = c
            # parent becomes the child on the same side
            if side == "left":
                self.left[c], self.right[c] = p, pr
                if pr is not None:
                    self.parent[pr] = c
            else:
                self.left[c], self.right[c] = pl, p
                if pl is not None:
                    self.parent[pl] = c
            self.parent[p] = c
            self.left[p], self.right[p] = cl, cr
            if cl is not None:
                self.parent[cl] = p
            if cr is not None:
                self.parent[cr] = p
            return

        # non-adjacent swap
        if pa is None:
            self.root = b
        elif self.left[pa] == a:
            self.left[pa] = b
        else:
            self.right[pa] = b
        if pb is None:
            self.root = a
        elif self.left[pb] == b:
            self.left[pb] = a
        else:
            self.right[pb] = a
        self.parent[a], self.parent[b] = pb, pa
        self.left[a], self.left[b] = lb, la
        self.right[a], self.right[b] = rb, ra
        for child in (lb, rb):
            if child is not None:
                self.parent[child] = a
        for child in (la, ra):
            if child is not None:
                self.parent[child] = b

    def swap_nodes(self, a: str, b: str) -> None:
        """Exchange the positions of two nodes (public wrapper)."""
        self._swap_positions(a, b)

    def move(self, name: str, parent: str, side: str) -> None:
        """Remove ``name`` and re-insert it as ``side`` child of ``parent``."""
        if name == parent:
            raise ValueError("cannot move a node under itself")
        self.remove(name)
        if parent not in self.left:
            raise KeyError(f"parent {parent!r} vanished during move")
        self.insert(name, parent, side)
