"""B*-tree packing: tree + module footprints -> compacted placement."""

from __future__ import annotations

from typing import Mapping

from ..geometry import (
    ModuleSet,
    Orientation,
    PlacedModule,
    Placement,
    Rect,
)
from .contour import Contour
from .tree import BStarTree


def pack_sizes(tree: BStarTree, sizes: Mapping[str, tuple[float, float]]) -> dict[str, Rect]:
    """Pack raw (w, h) footprints; returns name -> placed rect.

    Pre-order traversal: a left child starts at its parent's right edge,
    a right child at its parent's left edge; y is the contour height over
    the module's x span.  The result is compacted and overlap-free by
    construction.
    """
    rects: dict[str, Rect] = {}
    if tree.root is None:
        return rects
    contour = Contour()

    def visit(name: str, x: float) -> None:
        w, h = sizes[name]
        y = contour.height_over(x, x + w)
        rects[name] = Rect.from_size(x, y, w, h)
        contour.place(x, x + w, y + h)
        left = tree.left[name]
        if left is not None:
            visit(left, x + w)
        right = tree.right[name]
        if right is not None:
            visit(right, x)

    visit(tree.root, 0.0)
    return rects


def pack(
    tree: BStarTree,
    modules: ModuleSet,
    orientations: Mapping[str, Orientation] | None = None,
    variants: Mapping[str, int] | None = None,
) -> Placement:
    """Pack a B*-tree over a module set into a :class:`Placement`."""
    sizes: dict[str, tuple[float, float]] = {}
    for name in tree.nodes():
        variant = variants.get(name, 0) if variants else 0
        orient = orientations.get(name, Orientation.R0) if orientations else Orientation.R0
        sizes[name] = modules[name].footprint(variant, orient)
    rects = pack_sizes(tree, sizes)
    placed = []
    for name, rect in rects.items():
        orient = orientations.get(name, Orientation.R0) if orientations else Orientation.R0
        variant = variants.get(name, 0) if variants else 0
        placed.append(PlacedModule(modules[name], rect, variant=variant, orientation=orient))
    return Placement.of(placed)
