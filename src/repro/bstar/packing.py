"""B*-tree packing: tree + module footprints -> compacted placement."""

from __future__ import annotations

from typing import Mapping

from ..geometry import (
    ModuleSet,
    Orientation,
    PlacedModule,
    Placement,
    Rect,
)
from .contour import Contour
from .tree import BStarTree


def pack_sizes(
    tree: BStarTree,
    sizes: Mapping[str, tuple[float, float]],
    contour: Contour | None = None,
) -> dict[str, Rect]:
    """Pack raw (w, h) footprints; returns name -> placed rect.

    Pass a ``contour`` to reuse its storage across calls (it is reset
    first); by default a fresh one is allocated.

    Pre-order traversal: a left child starts at its parent's right edge,
    a right child at its parent's left edge; y is the contour height over
    the module's x span.  The result is compacted and overlap-free by
    construction.

    The traversal is iterative (explicit stack) so degenerate chain trees
    of tens of thousands of modules pack without hitting the interpreter
    recursion limit.
    """
    rects: dict[str, Rect] = {}
    if tree.root is None:
        return rects
    if contour is None:
        contour = Contour()
    else:
        contour.reset()
    tree_left, tree_right = tree.left, tree.right

    # Explicit pre-order stack; the right child is pushed first so the
    # whole left subtree is packed before it, exactly as the recursive
    # formulation did.
    stack: list[tuple[str, float]] = [(tree.root, 0.0)]
    while stack:
        name, x = stack.pop()
        w, h = sizes[name]
        y = contour.height_over(x, x + w)
        rects[name] = Rect.from_size(x, y, w, h)
        contour.place(x, x + w, y + h)
        right = tree_right[name]
        if right is not None:
            stack.append((right, x))
        left = tree_left[name]
        if left is not None:
            stack.append((left, x + w))
    return rects


def pack(
    tree: BStarTree,
    modules: ModuleSet,
    orientations: Mapping[str, Orientation] | None = None,
    variants: Mapping[str, int] | None = None,
) -> Placement:
    """Pack a B*-tree over a module set into a :class:`Placement`."""
    sizes: dict[str, tuple[float, float]] = {}
    for name in tree.nodes():
        variant = variants.get(name, 0) if variants else 0
        orient = orientations.get(name, Orientation.R0) if orientations else Orientation.R0
        sizes[name] = modules[name].footprint(variant, orient)
    rects = pack_sizes(tree, sizes)
    placed = []
    for name, rect in rects.items():
        orient = orientations.get(name, Orientation.R0) if orientations else Orientation.R0
        variant = variants.get(name, 0) if variants else 0
        placed.append(PlacedModule(modules[name], rect, variant=variant, orientation=orient))
    return Placement.of(placed)
