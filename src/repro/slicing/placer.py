"""Simulated-annealing placer over normalized Polish expressions.

The classic Wong-Liu slicing floorplanner: anneal over normalized
Polish expressions with the M1/M2/M3 move set, evaluating each
expression by Stockmeyer shape-function packing.  Provided so the
paper's section-I claim — slicing degrades density when cells differ
strongly in size — can be measured against the non-slicing engines.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..anneal import AnnealingStats, GeometricSchedule, IncrementalAnnealer
from ..geometry import ModuleSet, Net, Placement
from ..perf import DeltaHPWL, hpwl_of, resolve_nets
from .packing import pack_slicing, shape_function_of
from .polish import PolishExpression


@dataclass(frozen=True)
class SlicingPlacerConfig:
    """Cost weights and annealing parameters."""

    area_weight: float = 1.0
    wirelength_weight: float = 0.0
    seed: int = 0
    t_initial: float = 1.0
    t_final: float = 1e-4
    alpha: float = 0.93
    steps_per_epoch: int = 60
    max_shapes: int | None = 16


@dataclass
class SlicingPlacerResult:
    placement: Placement
    expression: PolishExpression
    cost: float
    stats: AnnealingStats


class SlicingPlacer:
    """Anneal over the slicing floorplan space."""

    def __init__(
        self,
        modules: ModuleSet,
        nets: tuple[Net, ...] = (),
        config: SlicingPlacerConfig | None = None,
    ) -> None:
        self._modules = modules
        self._nets = nets
        self._config = config or SlicingPlacerConfig()
        self._area_scale = max(modules.total_module_area(), 1e-12)
        self._wl_scale = max(self._area_scale**0.5 * max(len(nets), 1), 1e-12)
        self._resolved_nets = resolve_nets(nets, modules.names())

    @classmethod
    def for_circuit(
        cls, circuit, config: SlicingPlacerConfig | None = None
    ) -> "SlicingPlacer":
        """Placer over a circuit's modules and nets.  Slicing ignores
        symmetry/proximity constraints by construction (the section-I
        baseline the topological engines are measured against)."""
        return cls(circuit.modules(), circuit.nets, config)

    def cost(self, expr: PolishExpression) -> float:
        cfg = self._config
        sf = shape_function_of(
            expr, self._modules, max_shapes=cfg.max_shapes
        )
        best = sf.min_area_shape()
        cost = cfg.area_weight * best.area / self._area_scale
        if self._nets and cfg.wirelength_weight:
            # Walk the recipe tree as flat coordinates; no Placement is
            # materialized inside the annealing loop.
            cost += cfg.wirelength_weight * hpwl_of(self._resolved_nets, best.coords()) / self._wl_scale
        return cost

    def _move(self, expr: PolishExpression, rng: random.Random) -> PolishExpression:
        roll = rng.random()
        if roll < 0.4:
            return expr.swap_adjacent_operands(rng)
        if roll < 0.8:
            return expr.complement_chain(rng)
        return expr.swap_operand_operator(rng)

    # -- walk API (shared by run() and repro.parallel) ------------------------

    def schedule(self) -> GeometricSchedule:
        cfg = self._config
        return GeometricSchedule(
            t_initial=cfg.t_initial,
            t_final=cfg.t_final,
            alpha=cfg.alpha,
            steps_per_epoch=cfg.steps_per_epoch,
        )

    def engine(self) -> "_SlicingEngine":
        """A fresh incremental engine (propose -> commit/rollback):
        wirelength, when enabled, is maintained per net by DeltaHPWL
        instead of rescanned; draws and costs match the functional path
        bit for bit."""
        return _SlicingEngine(self)

    def initial_state(self, rng: random.Random) -> PolishExpression:
        return PolishExpression.random(self._modules.names(), rng)

    def finalize(self, expr: PolishExpression) -> Placement:
        return pack_slicing(expr, self._modules, max_shapes=self._config.max_shapes)

    def run(self) -> SlicingPlacerResult:
        rng = random.Random(self._config.seed)
        engine = self.engine()
        engine.reset(self.initial_state(rng))
        annealer = IncrementalAnnealer(engine, self.schedule(), rng)
        outcome = annealer.run()
        return SlicingPlacerResult(
            placement=self.finalize(outcome.best_state),
            expression=outcome.best_state,
            cost=outcome.best_cost,
            stats=outcome.stats,
        )


class _SlicingEngine:
    """Incremental-protocol adapter for Polish-expression annealing.

    Stockmeyer packing is monolithic, so the engine's increment is the
    wirelength term: candidate coordinates are diffed against the last
    accepted shape by :class:`~repro.perf.DeltaHPWL` and only the nets
    of moved blocks are rescanned.  Costs are bit-identical to
    :meth:`SlicingPlacer.cost`.
    """

    def __init__(self, placer: SlicingPlacer) -> None:
        self._placer = placer
        self._track_wl = bool(placer._nets) and bool(
            placer._config.wirelength_weight
        )
        self._delta = (
            DeltaHPWL(placer._resolved_nets, placer._modules.names())
            if self._track_wl
            else None
        )
        self._current: PolishExpression | None = None
        self._candidate: PolishExpression | None = None
        self._cost = float("inf")
        self._pending_cost = float("inf")

    def reset(self, expr: PolishExpression) -> float:
        self._current = expr
        if self._delta is None:
            self._cost = self._placer.cost(expr)
        else:
            coords = self._best_coords(expr)
            hpwl = self._delta.reset(coords)
            self._cost = self._evaluate(coords, hpwl)
        return self._cost

    def initial_cost(self) -> float:
        return self._cost

    def propose(self, rng: random.Random) -> float:
        self._candidate = self._placer._move(self._current, rng)
        if self._delta is None:
            self._pending_cost = self._placer.cost(self._candidate)
        else:
            coords = self._best_coords(self._candidate)
            hpwl = self._delta.propose(coords)
            self._pending_cost = self._evaluate(coords, hpwl)
        return self._pending_cost

    def commit(self) -> None:
        self._current = self._candidate
        self._candidate = None
        if self._delta is not None:
            self._delta.commit()
        self._cost = self._pending_cost

    def rollback(self) -> None:
        self._candidate = None
        if self._delta is not None:
            self._delta.rollback()

    def snapshot(self) -> PolishExpression:
        return self._current  # immutable expression

    # -- internals -----------------------------------------------------------

    def _best_coords(self, expr: PolishExpression):
        placer = self._placer
        sf = shape_function_of(expr, placer._modules, max_shapes=placer._config.max_shapes)
        self._best_shape = sf.min_area_shape()
        return self._best_shape.coords()

    def _evaluate(self, coords, hpwl: float) -> float:
        """Bit-identical twin of :meth:`SlicingPlacer.cost`."""
        placer = self._placer
        cfg = placer._config
        cost = cfg.area_weight * self._best_shape.area / placer._area_scale
        cost += cfg.wirelength_weight * hpwl / placer._wl_scale
        return cost
