"""Simulated-annealing placer over normalized Polish expressions.

The classic Wong-Liu slicing floorplanner: anneal over normalized
Polish expressions with the M1/M2/M3 move set, evaluating each
expression by Stockmeyer shape-function packing against the unified
objective from :mod:`repro.cost` (area + wirelength; the slicing
baseline carries no aspect or proximity terms).  Provided so the
paper's section-I claim — slicing degrades density when cells differ
strongly in size — can be measured against the non-slicing engines.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..anneal import AnnealingStats, GeometricSchedule, IncrementalAnnealer
from ..cost import DEFAULT_WEIGHTS, CostModel, model_for_config
from ..geometry import ModuleSet, Net, Placement
from .packing import pack_slicing, shape_function_of
from .polish import PolishExpression


@dataclass(frozen=True)
class SlicingPlacerConfig:
    """Cost weights and annealing parameters.

    Wirelength defaults to 0.0 — the classic Wong-Liu objective is
    area-only; enable it to make the baseline net-aware.
    """

    area_weight: float = DEFAULT_WEIGHTS["area"]
    wirelength_weight: float = 0.0
    seed: int = 0
    t_initial: float = 1.0
    t_final: float = 1e-4
    alpha: float = 0.93
    steps_per_epoch: int = 60
    max_shapes: int | None = 16


@dataclass
class SlicingPlacerResult:
    placement: Placement
    expression: PolishExpression
    cost: float
    stats: AnnealingStats


class SlicingPlacer:
    """Anneal over the slicing floorplan space."""

    def __init__(
        self,
        modules: ModuleSet,
        nets: tuple[Net, ...] = (),
        config: SlicingPlacerConfig | None = None,
    ) -> None:
        self._modules = modules
        self._nets = nets
        self._config = config or SlicingPlacerConfig()
        self._cost_model = model_for_config(modules, nets, (), self._config)

    @classmethod
    def for_circuit(
        cls, circuit, config: SlicingPlacerConfig | None = None
    ) -> "SlicingPlacer":
        """Placer over a circuit's modules and nets.  Slicing ignores
        symmetry/proximity constraints by construction (the section-I
        baseline the topological engines are measured against)."""
        return cls(circuit.modules(), circuit.nets, config)

    @property
    def cost_model(self) -> CostModel:
        """The unified objective this placer anneals."""
        return self._cost_model

    def cost(self, expr: PolishExpression) -> float:
        model = self._cost_model
        best = self._best_shape_of(expr)
        # The selected shape's own area is the objective (not a bounding
        # box over blocks); coordinates are walked only when an active
        # wirelength term will read them.
        coords = best.coords() if model.tracks_wirelength else {}
        return model.evaluate(coords, area=best.area)

    def cost_breakdown(self, expr: PolishExpression) -> dict[str, float]:
        """Per-term contributions of an expression (reporting tier)."""
        model = self._cost_model
        best = self._best_shape_of(expr)
        coords = best.coords() if model.tracks_wirelength else {}
        return model.breakdown(coords, area=best.area)

    def _best_shape_of(self, expr: PolishExpression):
        sf = shape_function_of(expr, self._modules, max_shapes=self._config.max_shapes)
        return sf.min_area_shape()

    def _move(self, expr: PolishExpression, rng: random.Random) -> PolishExpression:
        roll = rng.random()
        if roll < 0.4:
            return expr.swap_adjacent_operands(rng)
        if roll < 0.8:
            return expr.complement_chain(rng)
        return expr.swap_operand_operator(rng)

    # -- walk API (shared by run() and repro.parallel) ------------------------

    def schedule(self) -> GeometricSchedule:
        cfg = self._config
        return GeometricSchedule(
            t_initial=cfg.t_initial,
            t_final=cfg.t_final,
            alpha=cfg.alpha,
            steps_per_epoch=cfg.steps_per_epoch,
        )

    def engine(self) -> "_SlicingEngine":
        """A fresh incremental engine (propose -> commit/rollback):
        wirelength, when enabled, is maintained per net by the model's
        :class:`~repro.cost.CostEvaluator` instead of rescanned; draws
        and costs match the functional path bit for bit."""
        return _SlicingEngine(self)

    def annealer(self, engine, rng: random.Random) -> IncrementalAnnealer:
        """The annealing driver for this placer's engine."""
        return IncrementalAnnealer(engine, self.schedule(), rng)

    def initial_state(self, rng: random.Random) -> PolishExpression:
        return PolishExpression.random(self._modules.names(), rng)

    def finalize(self, expr: PolishExpression) -> Placement:
        return pack_slicing(expr, self._modules, max_shapes=self._config.max_shapes)

    def run(self) -> SlicingPlacerResult:
        rng = random.Random(self._config.seed)
        engine = self.engine()
        engine.reset(self.initial_state(rng))
        annealer = self.annealer(engine, rng)
        outcome = annealer.run()
        outcome.stats.term_breakdown = self.cost_breakdown(outcome.best_state)
        return SlicingPlacerResult(
            placement=self.finalize(outcome.best_state),
            expression=outcome.best_state,
            cost=outcome.best_cost,
            stats=outcome.stats,
        )


class _SlicingEngine:
    """Incremental-protocol adapter for Polish-expression annealing.

    Stockmeyer packing is monolithic, so the engine's increment is the
    wirelength term: candidate coordinates are diffed against the last
    accepted shape by the model's :class:`~repro.cost.CostEvaluator`
    and only the nets of moved blocks are rescanned.  Costs are
    bit-identical to :meth:`SlicingPlacer.cost`.
    """

    def __init__(self, placer: SlicingPlacer) -> None:
        self._placer = placer
        self._track_wl = placer.cost_model.tracks_wirelength
        self._eval = placer.cost_model.evaluator()
        self._current: PolishExpression | None = None
        self._candidate: PolishExpression | None = None
        self._cost = float("inf")
        self._pending_cost = float("inf")

    def reset(self, expr: PolishExpression) -> float:
        self._current = expr
        if not self._track_wl:
            self._cost = self._placer.cost(expr)
        else:
            best = self._placer._best_shape_of(expr)
            self._cost = self._eval.reset(best.coords(), area=best.area)
        return self._cost

    def initial_cost(self) -> float:
        return self._cost

    def propose(self, rng: random.Random) -> float:
        self._candidate = self._placer._move(self._current, rng)
        if not self._track_wl:
            self._pending_cost = self._placer.cost(self._candidate)
        else:
            best = self._placer._best_shape_of(self._candidate)
            self._pending_cost = self._eval.propose(best.coords(), area=best.area)
        return self._pending_cost

    def commit(self) -> None:
        self._current = self._candidate
        self._candidate = None
        self._eval.commit()
        self._cost = self._pending_cost

    def rollback(self) -> None:
        self._candidate = None
        self._eval.rollback()

    def snapshot(self) -> PolishExpression:
        return self._current  # immutable expression
