"""Simulated-annealing placer over normalized Polish expressions.

The classic Wong-Liu slicing floorplanner: anneal over normalized
Polish expressions with the M1/M2/M3 move set, evaluating each
expression by Stockmeyer shape-function packing.  Provided so the
paper's section-I claim — slicing degrades density when cells differ
strongly in size — can be measured against the non-slicing engines.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..anneal import Annealer, AnnealingStats, FunctionMoveSet, GeometricSchedule
from ..geometry import ModuleSet, Net, Placement
from ..perf import hpwl_of, resolve_nets
from .packing import pack_slicing, shape_function_of
from .polish import PolishExpression


@dataclass(frozen=True)
class SlicingPlacerConfig:
    """Cost weights and annealing parameters."""

    area_weight: float = 1.0
    wirelength_weight: float = 0.0
    seed: int = 0
    t_initial: float = 1.0
    t_final: float = 1e-4
    alpha: float = 0.93
    steps_per_epoch: int = 60
    max_shapes: int | None = 16


@dataclass
class SlicingPlacerResult:
    placement: Placement
    expression: PolishExpression
    cost: float
    stats: AnnealingStats


class SlicingPlacer:
    """Anneal over the slicing floorplan space."""

    def __init__(
        self,
        modules: ModuleSet,
        nets: tuple[Net, ...] = (),
        config: SlicingPlacerConfig | None = None,
    ) -> None:
        self._modules = modules
        self._nets = nets
        self._config = config or SlicingPlacerConfig()
        self._area_scale = max(modules.total_module_area(), 1e-12)
        self._wl_scale = max(self._area_scale**0.5 * max(len(nets), 1), 1e-12)
        self._resolved_nets = resolve_nets(nets, modules.names())

    def cost(self, expr: PolishExpression) -> float:
        cfg = self._config
        sf = shape_function_of(
            expr, self._modules, max_shapes=cfg.max_shapes
        )
        best = sf.min_area_shape()
        cost = cfg.area_weight * best.area / self._area_scale
        if self._nets and cfg.wirelength_weight:
            # Walk the recipe tree as flat coordinates; no Placement is
            # materialized inside the annealing loop.
            cost += cfg.wirelength_weight * hpwl_of(self._resolved_nets, best.coords()) / self._wl_scale
        return cost

    def _move(self, expr: PolishExpression, rng: random.Random) -> PolishExpression:
        roll = rng.random()
        if roll < 0.4:
            return expr.swap_adjacent_operands(rng)
        if roll < 0.8:
            return expr.complement_chain(rng)
        return expr.swap_operand_operator(rng)

    def run(self) -> SlicingPlacerResult:
        cfg = self._config
        rng = random.Random(cfg.seed)
        schedule = GeometricSchedule(
            t_initial=cfg.t_initial,
            t_final=cfg.t_final,
            alpha=cfg.alpha,
            steps_per_epoch=cfg.steps_per_epoch,
        )
        annealer = Annealer(self.cost, FunctionMoveSet(self._move), schedule, rng)
        initial = PolishExpression.random(self._modules.names(), rng)
        outcome = annealer.run(initial)
        placement = pack_slicing(
            outcome.best_state, self._modules, max_shapes=cfg.max_shapes
        )
        return SlicingPlacerResult(
            placement=placement,
            expression=outcome.best_state,
            cost=outcome.best_cost,
            stats=outcome.stats,
        )
