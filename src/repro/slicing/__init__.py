"""Slicing floorplans (normalized Polish expressions) — the baseline
representation the paper argues against for analog layout (section I)."""

from .packing import pack_slicing, shape_function_of
from .placer import SlicingPlacer, SlicingPlacerConfig, SlicingPlacerResult
from .polish import OPERATORS, PolishExpression

__all__ = [
    "OPERATORS",
    "PolishExpression",
    "SlicingPlacer",
    "SlicingPlacerConfig",
    "SlicingPlacerResult",
    "pack_slicing",
    "shape_function_of",
]
