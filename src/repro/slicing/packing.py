"""Slicing floorplan packing via shape-function evaluation.

A Polish expression is evaluated bottom-up with (regular) shape
functions: each operand contributes its module's shape variants (and
rotations), each operator combines the child staircases, and the best
root shape yields the placement.  This is the classic Stockmeyer
evaluation; it is optimal *within* the slicing structure, which makes
the comparison against non-slicing representations fair.
"""

from __future__ import annotations

from ..geometry import ModuleSet, Placement
from ..shapes import ShapeFunction, add_shape_functions
from .polish import OPERATORS, PolishExpression


def shape_function_of(
    expr: PolishExpression,
    modules: ModuleSet,
    *,
    rotations: bool = True,
    max_shapes: int | None = None,
) -> ShapeFunction:
    """Evaluate the expression into its root shape function."""
    stack: list[ShapeFunction] = []
    for token in expr.tokens:
        if token in OPERATORS:
            right = stack.pop()
            left = stack.pop()
            direction = "v" if token == "H" else "h"
            stack.append(
                add_shape_functions(
                    left,
                    right,
                    enhanced=False,
                    direction=direction,
                    max_shapes=max_shapes,
                )
            )
        else:
            stack.append(
                ShapeFunction.from_module(modules[token], rotations=rotations)
            )
    return stack[0]


def pack_slicing(
    expr: PolishExpression,
    modules: ModuleSet,
    *,
    rotations: bool = True,
    max_shapes: int | None = None,
) -> Placement:
    """Minimum-area placement realizing the slicing structure."""
    sf = shape_function_of(expr, modules, rotations=rotations, max_shapes=max_shapes)
    return sf.min_area_shape().placement().normalized()
