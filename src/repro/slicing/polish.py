"""Normalized Polish expressions — the slicing floorplan model.

Section I: early tools (ILAC [24]) used the slicing layout model, where
"cells are organized in a set of slices whose direction and nesting are
recorded in a slicing tree or, equivalently, in a normalized Polish
expression"; the paper then argues this representation "limits the set
of reachable layout topologies, degrading the layout density especially
when cells are very different in size".  We implement the model so the
claim can be measured (see ``benchmarks/bench_slicing.py``).

A Polish expression is a postfix string over module names and the
operators ``H`` (horizontal cut: right operand stacked *above* the
left) and ``V`` (vertical cut: right operand placed *right of* the
left).  It is *normalized* when no two consecutive operators are equal
(no redundant encodings of the same slicing tree).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable, Sequence

OPERATORS = ("H", "V")


@dataclass(frozen=True)
class PolishExpression:
    """An immutable normalized Polish expression."""

    tokens: tuple[str, ...]
    _operand_count: int = field(compare=False, hash=False, default=0)

    def __post_init__(self) -> None:
        operands = [t for t in self.tokens if t not in OPERATORS]
        operators = [t for t in self.tokens if t in OPERATORS]
        if len(operands) == 0:
            raise ValueError("Polish expression needs at least one operand")
        if len(operators) != len(operands) - 1:
            raise ValueError(
                f"malformed expression: {len(operands)} operands need "
                f"{len(operands) - 1} operators, got {len(operators)}"
            )
        if len(set(operands)) != len(operands):
            raise ValueError("duplicate operands")
        # balloting property: every prefix has more operands than operators
        balance = 0
        for token in self.tokens:
            balance += 1 if token not in OPERATORS else -1
            if balance < 1:
                raise ValueError("balloting property violated")
        object.__setattr__(self, "_operand_count", len(operands))

    # -- constructors ------------------------------------------------------

    @classmethod
    def row(cls, names: Sequence[str]) -> "PolishExpression":
        """All modules side by side: ``a b V c V ...``."""
        tokens: list[str] = [names[0]]
        for name in names[1:]:
            tokens += [name, "V"]
        return cls(tuple(tokens))

    @classmethod
    def random(cls, names: Iterable[str], rng: random.Random) -> "PolishExpression":
        """A random normalized expression via random slicing-tree shape."""
        pool: list[tuple[str, ...]] = [(n,) for n in names]
        rng.shuffle(pool)
        while len(pool) > 1:
            i = rng.randrange(len(pool) - 1)
            left = pool.pop(i)
            right = pool.pop(i)
            op = rng.choice(OPERATORS)
            pool.insert(i, left + right + (op,))
        expr = cls(pool[0])
        return expr.normalized()

    # -- queries ------------------------------------------------------------

    @property
    def operands(self) -> tuple[str, ...]:
        return tuple(t for t in self.tokens if t not in OPERATORS)

    @property
    def n_modules(self) -> int:
        return self._operand_count

    def is_normalized(self) -> bool:
        """No two equal consecutive operators."""
        for a, b in zip(self.tokens, self.tokens[1:]):
            if a in OPERATORS and a == b:
                return False
        return True

    def normalized(self) -> "PolishExpression":
        """The canonical (normalized) expression of the same floorplan.

        Slicing composition is associative per direction — ``A V (B V C)``
        and ``(A V B) V C`` describe the same left-to-right arrangement —
        so same-operator chains are re-associated left-skewed, which is
        exactly the form whose postfix has no two equal consecutive
        operators at a right child.
        """
        tree = _parse(self.tokens)
        tree = _left_skew(tree)
        return PolishExpression(tuple(_postfix(tree)))

    # -- moves (Wong-Liu) ------------------------------------------------------

    def swap_adjacent_operands(self, rng: random.Random) -> "PolishExpression":
        """M1: swap two adjacent operands."""
        idx = [i for i, t in enumerate(self.tokens) if t not in OPERATORS]
        if len(idx) < 2:
            return self
        k = rng.randrange(len(idx) - 1)
        i, j = idx[k], idx[k + 1]
        tokens = list(self.tokens)
        tokens[i], tokens[j] = tokens[j], tokens[i]
        return PolishExpression(tuple(tokens))

    def complement_chain(self, rng: random.Random) -> "PolishExpression":
        """M2: complement a maximal chain of operators (H<->V)."""
        chains = self._operator_chains()
        if not chains:
            return self
        start, end = rng.choice(chains)
        tokens = list(self.tokens)
        for i in range(start, end):
            tokens[i] = "H" if tokens[i] == "V" else "V"
        return PolishExpression(tuple(tokens))

    def swap_operand_operator(self, rng: random.Random) -> "PolishExpression":
        """M3: swap an adjacent operand/operator pair, keeping the
        expression valid (balloting) and normalized; returns self when no
        valid M3 move exists."""
        candidates = []
        for i in range(len(self.tokens) - 1):
            a, b = self.tokens[i], self.tokens[i + 1]
            if (a in OPERATORS) == (b in OPERATORS):
                continue
            tokens = list(self.tokens)
            tokens[i], tokens[i + 1] = tokens[i + 1], tokens[i]
            try:
                moved = PolishExpression(tuple(tokens))
            except ValueError:
                continue
            if moved.is_normalized():
                candidates.append(moved)
        if not candidates:
            return self
        return rng.choice(candidates)

    def _operator_chains(self) -> list[tuple[int, int]]:
        """Maximal [start, end) runs of operator tokens."""
        chains = []
        i = 0
        while i < len(self.tokens):
            if self.tokens[i] in OPERATORS:
                j = i
                while j < len(self.tokens) and self.tokens[j] in OPERATORS:
                    j += 1
                chains.append((i, j))
                i = j
            else:
                i += 1
        return chains


# -- slicing-tree helpers (nested tuples: leaf = name, node = (op, l, r)) ----


def _parse(tokens: Sequence[str]):
    stack: list = []
    for token in tokens:
        if token in OPERATORS:
            right = stack.pop()
            left = stack.pop()
            stack.append((token, left, right))
        else:
            stack.append(token)
    return stack[0]


def _left_skew(node):
    """Re-associate same-operator chains to the left (canonical form)."""
    if isinstance(node, str):
        return node
    op, left, right = node
    right = _left_skew(right)
    # rotate while the right child uses the same operator
    while isinstance(right, tuple) and right[0] == op:
        _, rl, rr = right
        left = (op, left, rl)
        right = rr
    # the rotations may have attached same-op subtrees under `left`
    left = _left_skew(left)
    return (op, left, right)


def _postfix(node) -> list[str]:
    if isinstance(node, str):
        return [node]
    op, left, right = node
    return _postfix(left) + _postfix(right) + [op]
