"""Array-native evaluation tier: vectorized cost + batched candidates.

The dirty-suffix engine (:mod:`repro.perf.incremental`) made each
annealing step proportional to what the move changed — but coordinates,
footprints and pins still live in per-name dicts, and every cost term
evaluates scalar-by-scalar, so steps/s decays with design size anyway
(the ``mode:"workloads"`` bench trajectory shows the collapse past
~2000 modules).  This module is the tier below: flat numpy tables and
batched evaluation.

Three pieces
============

:class:`BatchCostEvaluator`
    Vectorized per-term evaluation behind the existing
    :class:`~repro.cost.CostModel` protocol.  Per-net HPWL is computed
    for *K candidates at once* over ``(K, n)`` center arrays through
    the pin-index tables of :func:`repro.cost.pin_index_tables`
    (two-pin endpoint arrays + CSR ``reduceat`` for multi-pin nets);
    per-candidate totals then run through the model's own
    ``evaluate(coords, hpwl=..., bounding=...)`` with the vectorized
    inputs precomputed — so the term arithmetic, gating and
    accumulation order are *literally the model's own*, and totals are
    byte-identical to the scalar path (``np.cumsum`` row sums and
    ``np.abs`` spans reproduce the sequential float operations exactly;
    locked in ``tests/perf/test_vector_equivalence.py``).

:class:`VectorBStarEngine`
    A batched B*-tree engine: ``propose_batch(rng, k)`` draws K
    candidate moves from the *same committed state*, packs each one's
    dirty suffix through a lean no-undo loop into per-candidate
    row/quad arrays, undoes the tree mutation, and scores all K in one
    vectorized pass.  ``accept(j)`` replays candidate ``j``'s recorded
    choices deterministically (via the ``*_named`` helpers of
    :class:`~repro.bstar.perturb.InPlaceBStarMoves`) and splices its
    arrays into the committed state; ``reject_all`` is O(1).  Moves are
    *windowed* (:class:`~repro.bstar.perturb.WindowedBStarMoves`): each
    candidate draws a log-uniform suffix length, so the expected repack
    cost is ``O(n / ln n)`` instead of ``O(n)`` while long-range moves
    are still sampled.  The scalar protocol (``propose`` /
    ``commit`` / ``rollback``) is the K=1 special case, so the engine
    drops into every existing driver (warmup included).

The scalar oracle
    The same engine built with ``evaluator="scalar"`` replays identical
    draws but scores every candidate through a full
    ``CostModel.evaluate`` over a real coordinate dict.  Because the
    vectorized arithmetic is bit-identical, a vector walk and its
    scalar-oracle twin agree on every candidate cost and every best
    cost — the A/B discipline the bench (``benchmarks/bench_vector.py``)
    and the equivalence suite assert with ``==``, no tolerances.

Bit-identity boundary: within a walk, vector vs scalar-oracle costs
are exact.  Vector-tier walks are *not* draw-compatible with the
global-move :class:`IncrementalBStarEngine` (windowed draws are a
different, equally-distributed family), so cross-tier comparisons pin
placement *quality* (the sweep matrix), not trajectories.
"""

from __future__ import annotations

import random
from bisect import bisect_right
from typing import TYPE_CHECKING, Sequence

try:  # keep repro.perf importable without numpy (scalar tiers don't need it)
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

from ..circuit import ProximityGroup
from ..cost.hpwl import pin_index_tables
from ..cost.terms import (
    AreaTerm,
    AspectTerm,
    HPWLTerm,
    OutlineTerm,
    ProximityTerm,
)
from ..geometry import ModuleSet, Net, Orientation
from .kernel import BStarKernel, Skyline

if TYPE_CHECKING:  # pragma: no cover
    from ..bstar.perturb import BStarState
    from ..cost.model import CostModel

_INF = float("inf")

#: exponent applied to the uniform draw behind each candidate's
#: log-uniform window size: >1 biases toward short (cheap) windows
#: while keeping the full multi-scale range reachable.  2.5 measured
#: best on the steps/s-vs-quality frontier at n=1000 (see docs/perf.md)
_WINDOW_BIAS = 2.5

#: term classes the vectorized pass can feed (everything else —
#: e.g. the boundary-tier ViolationTerm — needs inputs the hot loop
#: cannot provide, exactly as in the scalar engines)
_SUPPORTED_TERMS = (AreaTerm, HPWLTerm, AspectTerm, OutlineTerm, ProximityTerm)


def _perturb_module():
    # Imported lazily: repro.perf must stay importable without pulling
    # in repro.bstar (whose placers import repro.perf right back).
    from ..bstar import perturb

    return perturb


class BatchCostEvaluator:
    """Batched, vectorized evaluation behind the ``CostModel`` protocol.

    Construct once per walk from the model and the (row-ordered) module
    names; call :meth:`totals` with ``(K, n)`` center arrays and K
    bounding boxes.  Wirelength — the only O(n) term — is vectorized
    across the whole batch; every other term is O(1) per candidate and
    runs through the model's own ``accumulate`` chain, which is what
    makes totals byte-identical to :meth:`CostModel.evaluate`.
    """

    _EMPTY: dict = {}

    def __init__(self, model: CostModel, names: Sequence[str]) -> None:
        if _np is None:  # pragma: no cover - numpy is a declared dependency
            raise RuntimeError("the vector tier requires numpy")
        reason = self.unsupported_reason(model)
        if reason:
            raise ValueError(f"model not vectorizable: {reason}")
        self._model = model
        self._names = tuple(names)
        term = model.hpwl_term
        self._wl_active = term is not None and term.active
        resolved = term.resolved if term is not None else []
        self._n_nets = len(resolved)
        self._tables = (
            pin_index_tables(resolved, self._names) if self._n_nets else None
        )
        if self._tables is not None:
            two_pos = self._tables[3]
            n_two = int(two_pos.size)
            # scratch for the allocation-free K=1 two-pin path
            self._d1 = _np.empty(n_two, dtype=_np.float64)
            self._d2 = _np.empty(n_two, dtype=_np.float64)
            self._d3 = _np.empty(n_two, dtype=_np.float64)
            self._vals1 = _np.empty(self._n_nets, dtype=_np.float64)
            self._cum1 = _np.empty(self._n_nets, dtype=_np.float64)
            # when every net is two-pin and already in net order, the
            # weighted two-pin vector IS the per-net value vector
            self._two_only = n_two == self._n_nets and bool(
                (two_pos == _np.arange(self._n_nets)).all()
            )
        self._needs_coords = any(
            isinstance(t, ProximityTerm) and t.groups and t.active
            for t in model.terms
        )

    @staticmethod
    def unsupported_reason(model: CostModel) -> str | None:
        """Why ``model`` cannot go through the vector tier (or ``None``)."""
        for term in model.terms:
            if not isinstance(term, _SUPPORTED_TERMS):
                return (
                    f"term {term.name!r} ({type(term).__name__}) has no "
                    "vectorized path (boundary-tier terms never run in "
                    "annealing hot loops)"
                )
        return None

    @property
    def model(self) -> CostModel:
        return self._model

    def batch_hpwl(self, cx, cy):
        """Weighted HPWL of K candidates; ``(K, n)`` centers -> ``(K,)``.

        Per-net values are IEEE-identical to the scalar per-net path and
        the row sum (``cumsum``) replicates the left-to-right float
        accumulation of ``sum(vals)`` exactly.
        """
        two_a, two_b, two_w, two_pos, flat, offsets, multi_w, multi_pos = (
            self._tables
        )
        if cx.shape[0] == 1:
            # 1D fast path (K=1 tiles dominate high-acceptance phases):
            # preallocated scratch, ufunc `out=` everywhere — the exact
            # same elementwise float ops as the 2D form, no allocations
            c_x, c_y = cx[0], cy[0]
            if two_pos.size:
                d1, d2, d3 = self._d1, self._d2, self._d3
                c_x.take(two_a, out=d1)
                c_x.take(two_b, out=d2)
                _np.subtract(d1, d2, out=d1)
                _np.abs(d1, out=d1)
                c_y.take(two_a, out=d2)
                c_y.take(two_b, out=d3)
                _np.subtract(d2, d3, out=d2)
                _np.abs(d2, out=d2)
                _np.add(d1, d2, out=d1)
                _np.multiply(two_w, d1, out=d1)
                if self._two_only:
                    d1.cumsum(out=self._cum1)
                    return self._cum1[-1:]
                vals = self._vals1
                vals[two_pos] = d1
            else:
                vals = self._vals1
            if multi_pos.size:
                px = c_x[flat]
                py = c_y[flat]
                span_x = _np.maximum.reduceat(px, offsets) - _np.minimum.reduceat(
                    px, offsets
                )
                span_y = _np.maximum.reduceat(py, offsets) - _np.minimum.reduceat(
                    py, offsets
                )
                vals[multi_pos] = multi_w * (span_x + span_y)
            vals.cumsum(out=self._cum1)
            return self._cum1[-1:]
        vals = _np.empty((cx.shape[0], self._n_nets), dtype=_np.float64)
        if two_pos.size:
            vals[:, two_pos] = two_w * (
                _np.abs(cx[:, two_a] - cx[:, two_b])
                + _np.abs(cy[:, two_a] - cy[:, two_b])
            )
        if multi_pos.size:
            px = cx[:, flat]
            py = cy[:, flat]
            span_x = _np.maximum.reduceat(px, offsets, axis=1) - _np.minimum.reduceat(
                px, offsets, axis=1
            )
            span_y = _np.maximum.reduceat(py, offsets, axis=1) - _np.minimum.reduceat(
                py, offsets, axis=1
            )
            vals[:, multi_pos] = multi_w * (span_x + span_y)
        return _np.cumsum(vals, axis=1)[:, -1]

    def totals(
        self,
        cx,
        cy,
        boundings: Sequence[tuple[float, float, float, float]],
        coords_list=None,
    ) -> list[float]:
        """Total cost per candidate, in the model's own term order.

        ``coords_list`` (one table per candidate) is required only when
        the model carries active proximity groups — the single term
        whose geometry test has no array form; every standard flat-
        placer model passes empty groups and never needs it.
        """
        if self._needs_coords and coords_list is None:
            raise ValueError(
                "model has active proximity groups: per-candidate coords "
                "are required (pass coords_list)"
            )
        k = cx.shape[0]
        if self._n_nets and self._wl_active:
            hp = self.batch_hpwl(cx, cy)
            hpwls = [float(hp[j]) for j in range(k)]
        elif self._wl_active:
            # active term over zero resolved nets: the delta path feeds
            # the scalar evaluator sum([]) == 0.0 — match it exactly
            hpwls = [0.0] * k
        else:
            hpwls = [None] * k
        evaluate = self._model.evaluate
        empty = self._EMPTY
        return [
            evaluate(
                coords_list[j] if coords_list is not None else empty,
                hpwls[j],
                boundings[j],
            )
            for j in range(k)
        ]


class _Candidate:
    """One proposed move: its recorded choices, packed suffix and cost."""

    __slots__ = (
        "kind", "replay", "k", "names", "qa", "rows_np", "cx", "cy",
        "snaps", "bounding", "cost",
    )

    def __init__(self, kind: str, replay=None) -> None:
        self.kind = kind
        self.replay = replay
        self.k = 0
        self.names: list[str] = []
        #: packed suffix quads as an ``(m, 4)`` float64 array
        self.qa = None
        self.rows_np = None
        self.cx = None
        self.cy = None
        self.snaps: list = []
        self.bounding = (0.0, 0.0, 0.0, 0.0)
        self.cost = _INF

    def quad_tuples(self) -> list[tuple[float, float, float, float]]:
        """The packed suffix as coordinate tuples (accept/oracle path)."""
        if self.qa is None:
            return []
        return [tuple(row) for row in self.qa.tolist()]


class VectorBStarEngine:
    """Batched array-native B*-tree engine (vector tier).

    Implements the :class:`repro.anneal.IncrementalEngine` protocol
    *plus* the batch extension driven by
    :class:`repro.anneal.BatchedAnnealer`:

    * :meth:`propose_batch` — K windowed candidate moves from the
      committed state, scored in one vectorized pass;
    * :meth:`accept` — deterministically replay candidate ``j`` and
      splice its suffix arrays into the committed state;
    * :meth:`reject_all` — O(1) (candidates never touched committed
      state).

    ``evaluator="scalar"`` builds the bit-identity oracle twin: same
    draws, every candidate scored through a full scalar
    ``CostModel.evaluate`` over a real coordinate dict.

    Telemetry capability: when :attr:`collect_stats` is set (the
    annealer flips it on recorder attach), :meth:`propose_batch` also
    publishes :attr:`last_kinds` / :attr:`last_repack_lens` — one
    move-family name and repacked-suffix length per candidate.  Off by
    default so untraced runs skip the per-batch list builds.
    """

    #: set by the annealer when a recorder is attached
    collect_stats = False
    #: per-candidate move families of the most recent batch
    last_kinds: tuple[str, ...] = ()
    #: per-candidate repacked-suffix lengths of the most recent batch
    last_repack_lens: tuple[int, ...] = ()

    def __init__(
        self,
        modules: ModuleSet,
        nets: tuple[Net, ...] = (),
        proximity: tuple[ProximityGroup, ...] = (),
        config=None,
        *,
        allow_rotation: bool = True,
        stride: int = 8,
        evaluator: str = "vector",
    ) -> None:
        if config is None:
            raise ValueError("VectorBStarEngine requires a cost config")
        if _np is None:  # pragma: no cover - numpy is a declared dependency
            raise RuntimeError("the vector tier requires numpy")
        if evaluator not in ("vector", "scalar"):
            raise ValueError(f"unknown evaluator {evaluator!r}")
        perturb = _perturb_module()
        self._state_cls = perturb.BStarState
        self._moves = perturb.WindowedBStarMoves(
            modules, allow_rotation=allow_rotation
        )
        self._kernel = BStarKernel(modules, nets, proximity, config)
        model = self._kernel.model
        self._model = model
        self._names = tuple(modules.names())
        self._row = {name: i for i, name in enumerate(self._names)}
        self._n = len(self._names)
        self._footprints = self._kernel._footprints
        self._stride = max(1, stride)
        self._window_min = max(2, int(getattr(config, "vector_window_min", 8)))
        self._sky = Skyline()
        self._scalar_eval = evaluator == "scalar"
        if self._scalar_eval:
            self._batch_eval = None
            reason = BatchCostEvaluator.unsupported_reason(model)
            if reason:
                raise ValueError(f"vector tier cannot serve this model: {reason}")
        else:
            self._batch_eval = BatchCostEvaluator(model, self._names)
            if self._batch_eval._needs_coords:
                raise ValueError(
                    "the vector engine does not evaluate proximity groups; "
                    "use IncrementalBStarEngine for proximity-constrained "
                    "objectives"
                )

        # committed state (mutable, owned by the engine)
        self._tree = None
        self._orients: dict[str, Orientation] = {}
        self._variants: dict[str, int] = {}
        self._sizes: dict[str, tuple[float, float]] = {}
        self._coords: dict[str, tuple[float, float, float, float]] = {}
        self._order: list[str] = []
        self._pos: dict[str, int] = {}
        self._ckpts: list = []
        self._base_cx = _np.zeros(self._n, dtype=_np.float64)
        self._base_cy = _np.zeros(self._n, dtype=_np.float64)
        self._bounding = (0.0, 0.0, 0.0, 0.0)
        self._cost = _INF

        # pending batch
        self._cands: list[_Candidate] | None = None
        # reusable (K, n) center buffers, grown on demand
        self._buf_cx = None
        self._buf_cy = None

    # -- setup ---------------------------------------------------------------

    def initial_state(self, rng: random.Random) -> BStarState:
        return self._moves.initial_state(rng)

    def reset(self, state: BStarState) -> float:
        """Adopt ``state`` (copied into mutable form); return its cost."""
        self._cands = None
        self._tree = state.tree.clone()
        self._orients = dict(state.orientations)
        self._variants = dict(state.variants)
        self._sizes = dict(
            self._kernel.resolved_sizes(self._orients, self._variants)
        )
        n = self._n
        n_slots = ((n - 1) // self._stride + 1) if n else 1
        self._ckpts = [([0.0], [0.0]) for _ in range(n_slots)]
        self._order = [""] * n
        self._coords = {}
        self._pos = {}
        cand = _Candidate("repack")
        cand.k = 0
        self._pack_suffix(0, cand)
        self._install(cand)
        self._cost = self._evaluate([cand])[0]
        return self._cost

    def initial_cost(self) -> float:
        return self._cost

    # -- batch protocol ------------------------------------------------------

    def propose_batch(self, rng: random.Random, k: int) -> list[float]:
        """Draw, pack and score ``k`` candidates off the committed state."""
        if self._cands is not None:
            raise RuntimeError("previous batch not accepted or rejected")
        cands = [self._propose_one(rng) for _ in range(k)]
        self._cands = cands
        live = [c for c in cands if c.kind == "repack"]
        if live:
            costs = self._evaluate(live)
            for cand, cost in zip(live, costs):
                cand.cost = cost
        current = self._cost
        for cand in cands:
            if cand.kind != "repack":
                cand.cost = current
        if self.collect_stats:
            self.last_kinds = tuple(
                c.replay[0] if c.replay else c.kind for c in cands
            )
            self.last_repack_lens = tuple(
                self._n - c.k if c.kind == "repack" else 0 for c in cands
            )
        return [cand.cost for cand in cands]

    def accept(self, j: int) -> None:
        """Keep candidate ``j``: replay its move, splice its arrays."""
        cands = self._cands
        if cands is None:
            raise RuntimeError("no pending batch")
        cand = cands[j]
        kind = cand.kind
        if kind == "neutral":
            op, name, value = cand.replay
            (self._orients if op == "rotate" else self._variants)[name] = value
        elif kind == "repack":
            replay = cand.replay
            op = replay[0]
            if op == "move":
                self._moves.move_named(self._tree, replay[1], replay[2], replay[3])
            elif op == "swap":
                self._moves.swap_named(self._tree, replay[1], replay[2])
            elif op == "rotate":
                self._orients[replay[1]] = replay[2]
                self._sizes[replay[1]] = replay[3]
            else:  # reshape
                self._variants[replay[1]] = replay[2]
                self._sizes[replay[1]] = replay[3]
            self._install(cand)
        self._cost = cand.cost
        self._cands = None

    def reject_all(self) -> None:
        """Drop the whole batch (committed state was never touched)."""
        if self._cands is None:
            raise RuntimeError("no pending batch")
        self._cands = None

    # -- scalar protocol (K = 1 special case; warmup and generic drivers) ----

    def propose(self, rng: random.Random) -> float:
        return self.propose_batch(rng, 1)[0]

    def commit(self) -> None:
        self.accept(0)

    def rollback(self) -> None:
        self.reject_all()

    def snapshot(self) -> BStarState:
        """An immutable copy of the current state (best tracking)."""
        return self._state_cls(
            tree=self._tree.clone(),
            orientations=dict(self._orients),
            variants=dict(self._variants),
        )

    def cost_breakdown(self) -> dict[str, float]:
        """Per-term contributions of the committed state (reporting
        tier — full scalar rescan, chunk boundaries only)."""
        if self._cands is not None:
            raise RuntimeError("previous batch not accepted or rejected")
        return self._model.breakdown(self._coords, bounding=self._bounding)

    # -- internals -----------------------------------------------------------

    def _propose_one(self, rng: random.Random) -> _Candidate:
        """Draw one windowed move, pack its dirty suffix, undo the tree."""
        n = self._n
        order = self._order
        lo = 0
        wmin = self._window_min
        if n > wmin:
            # log-uniform suffix length in [wmin, n] (biased short):
            # cheap local windows dominate, global moves still sampled
            s = int(round(wmin * (n / wmin) ** (rng.random() ** _WINDOW_BIAS)))
            if s > n:
                s = n
            elif s < wmin:
                s = wmin
            lo = n - s
        tree = self._tree
        orients = self._orients
        variants = self._variants
        moves = self._moves
        rec = moves.apply_windowed(tree, orients, variants, rng, order, lo)
        kind = rec.kind
        if kind == "noop":
            return _Candidate("noop")
        if kind == "rotate" or kind == "reshape":
            name = rec.a
            new_value = orients[name] if kind == "rotate" else variants[name]
            wh = self._footprints[name][variants.get(name, 0)][
                orients.get(name, Orientation.R0)
            ]
            old_wh = self._sizes[name]
            if wh == old_wh:
                # size-neutral (square rotate / same-footprint variant):
                # coordinates — hence cost — are unchanged
                moves.undo(tree, orients, variants, rec)
                return _Candidate("neutral", (kind, name, new_value))
            cand = _Candidate("repack", (kind, name, new_value, wh))
            self._sizes[name] = wh
            cand.k = self._pos[name]
            self._pack_suffix(cand.k, cand)
            self._sizes[name] = old_wh
            moves.undo(tree, orients, variants, rec)
            return cand
        if kind == "move":
            side = "left" if tree.left[rec.b] == rec.a else "right"
            cand = _Candidate("repack", ("move", rec.a, rec.b, side))
        else:  # swap
            cand = _Candidate("repack", ("swap", rec.a, rec.b))
        cand.k = moves.dirty_index(rec, self._pos)
        self._pack_suffix(cand.k, cand)
        moves.undo(tree, orients, variants, rec)
        return cand

    def _evaluate(self, live: list[_Candidate]) -> list[float]:
        """Score packed candidates (vectorized, or the scalar oracle)."""
        if self._scalar_eval:
            evaluate = self._model.evaluate
            out = []
            for cand in live:
                coords = dict(self._coords)
                coords.update(zip(cand.names, cand.quad_tuples()))
                out.append(evaluate(coords, bounding=cand.bounding))
            return out
        k = len(live)
        n = self._n
        buf = self._buf_cx
        if buf is None or buf.shape[0] < k:
            self._buf_cx = _np.empty((k, n), dtype=_np.float64)
            self._buf_cy = _np.empty((k, n), dtype=_np.float64)
        cx = self._buf_cx[:k]
        cy = self._buf_cy[:k]
        cx[:] = self._base_cx
        cy[:] = self._base_cy
        for idx, cand in enumerate(live):
            if cand.rows_np is not None and cand.rows_np.size:
                cx[idx, cand.rows_np] = cand.cx
                cy[idx, cand.rows_np] = cand.cy
        return self._batch_eval.totals(cx, cy, [c.bounding for c in live])

    def _install(self, cand: _Candidate) -> None:
        """Splice an accepted candidate's suffix into the committed state."""
        k = cand.k
        order = self._order
        order[k:] = cand.names
        pos = self._pos
        for idx, name in enumerate(cand.names, k):
            pos[name] = idx
        coords = self._coords
        coords.update(zip(cand.names, cand.quad_tuples()))
        if cand.rows_np is not None and cand.rows_np.size:
            self._base_cx[cand.rows_np] = cand.cx
            self._base_cy[cand.rows_np] = cand.cy
        ckpts = self._ckpts
        for slot, snap in cand.snaps:
            ckpts[slot] = snap
        self._bounding = cand.bounding

    def _pack_suffix(self, k: int, cand: _Candidate) -> None:
        """Pack pre-order positions ``>= k`` of the (perturbed) tree into
        ``cand``'s arrays — committed state untouched.

        Same restore-checkpoint / replay-prefix-tail / inlined-skyline
        structure as the incremental engine's ``_repack_suffix``, but
        with no undo logging: output goes to per-candidate lists, and
        fresh checkpoint snapshots are kept on the candidate for
        :meth:`accept` to install.
        """
        stride = self._stride
        order = self._order
        coords = self._coords
        sizes = self._sizes
        sky = self._sky
        c = k // stride
        sky.restore(self._ckpts[c])
        starts = sky._starts
        heights = sky._heights
        # replay the cached tail of the prefix (unchanged rectangles)
        for idx in range(c * stride, k):
            x, _y0, x1, y1 = coords[order[idx]]
            i = 0
            n_segs = len(starts)
            while i + 1 < n_segs and starts[i + 1] <= x:
                i += 1
            j = i + 1
            while j < n_segs and starts[j] < x1:
                j += 1
            tail = heights[j - 1]
            end = starts[j] if j < n_segs else _INF
            if starts[i] < x:
                # segment i survives on the left: splice after it
                i += 1
            if x1 < end:
                starts[i:j] = (x, x1)
                heights[i:j] = (y1, tail)
            else:
                starts[i:j] = (x,)
                heights[i:j] = (y1,)
        names_out = cand.names
        push_name = names_out.append
        flat: list[float] = []  # x0 y0 x1 y1 per node, row-major
        push_flat = flat.extend
        snaps = cand.snaps
        stack = self._stack_at(k)
        push_stack = stack.append
        pop_stack = stack.pop
        tree = self._tree
        tree_left, tree_right = tree.left, tree.right
        next_ckpt = (c + 1) * stride
        idx = k
        while stack:
            if idx == next_ckpt:
                snaps.append((idx // stride, (starts.copy(), heights.copy())))
                next_ckpt += stride
            name, x = pop_stack()
            w, h = sizes[name]
            x1 = x + w
            i = 0
            n_segs = len(starts)
            if n_segs < 16:
                while i + 1 < n_segs and starts[i + 1] <= x:
                    i += 1
            else:
                i = bisect_right(starts, x) - 1
            j = i + 1
            while j < n_segs and starts[j] < x1:
                j += 1
            if j - i == 1:
                y = heights[i]
            else:
                y = max(heights[i:j])
            top = y + h
            tail = heights[j - 1]
            end = starts[j] if j < n_segs else _INF
            if starts[i] < x:
                # segment i survives on the left: splice after it
                i += 1
            if x1 < end:
                starts[i:j] = (x, x1)
                heights[i:j] = (top, tail)
            else:
                starts[i:j] = (x,)
                heights[i:j] = (top,)
            push_name(name)
            push_flat((x, y, x1, top))
            idx += 1
            right = tree_right[name]
            if right is not None:
                push_stack((right, x))
            left = tree_left[name]
            if left is not None:
                push_stack((left, x1))
        assert idx == self._n, "suffix repack lost nodes (tree corrupted?)"
        cand.bounding = (0.0, 0.0, sky.rightmost_edge(), sky.max_height())
        if names_out:
            row_of = self._row
            cand.rows_np = _np.fromiter(
                map(row_of.__getitem__, names_out),
                dtype=_np.intp,
                count=len(names_out),
            )
            qa = _np.asarray(flat, dtype=_np.float64).reshape(-1, 4)
            cand.qa = qa
            cand.cx = (qa[:, 0] + qa[:, 2]) / 2.0
            cand.cy = (qa[:, 1] + qa[:, 3]) / 2.0

    def _stack_at(self, k: int) -> list[tuple[str, float]]:
        """The packing DFS stack just before pre-order position ``k``
        (O(depth) rebuild from the perturbed tree's parent pointers and
        the cached prefix coordinates — same derivation as the
        incremental engine's)."""
        tree = self._tree
        if k == 0:
            root = tree.root
            return [] if root is None else [(root, 0.0)]
        coords = self._coords
        left, right, parent = tree.left, tree.right, tree.parent
        u = self._order[k - 1]
        pending: list[tuple[str, float]] = []  # nearest-ancestor first
        child = u
        node = parent[u]
        while node is not None:
            if left[node] == child:
                r = right[node]
                if r is not None:
                    pending.append((r, coords[node][0]))
            child = node
            node = parent[node]
        pending.reverse()
        cu = coords[u]
        r = right[u]
        if r is not None:
            pending.append((r, cu[0]))
        l = left[u]
        if l is not None:
            pending.append((l, cu[2]))
        return pending
