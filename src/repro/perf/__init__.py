"""Fast evaluation kernel for the annealing hot loops.

Two-tier design
===============

Every placer in this library is a simulated-annealing loop around a
``pack -> cost`` evaluation.  The *rich* object model — frozen
:class:`~repro.geometry.PlacedModule` records inside an immutable
:class:`~repro.geometry.Placement`, footprints re-validated on
construction — is exactly right at the API boundary, but it is pure
overhead when the annealer only needs a scalar cost: tens of thousands
of evaluations each allocated a full object graph just to fold it into
four floats.

This package is the lower tier.  Inside the loop a placement is nothing
but *flat coordinates* — ``name -> (x0, y0, x1, y1)`` — packed straight
from the B*-tree with precomputed footprints and evaluated by a cost
model whose net pins were resolved once up front.  The arithmetic is
bit-for-bit the same as the object path (verified by the equivalence
tests in ``tests/perf/``), so annealing trajectories are unchanged; a
real :class:`~repro.geometry.Placement` is materialized only for the
best/final state.

Modules
-------

``coords``
    The flat coordinate representation and conversions to/from the rich
    :class:`~repro.geometry.Placement`.
``kernel``
    The B*-tree packing kernel: iterative traversal, reusable skyline,
    per-(module, variant, orientation) footprint table.
``incremental``
    The dirty-suffix engine on top of the kernel: checkpointed skyline,
    partial repack from the earliest perturbed pre-order position, and
    the propose -> commit/rollback protocol the annealer drives.
``vector``
    The array-native tier below that: flat numpy coordinate/pin tables,
    batched multi-candidate proposal (``propose_batch``/``accept``/
    ``reject_all`` driven by :class:`repro.anneal.BatchedAnnealer`) and
    vectorized cost evaluation, with the scalar path kept as a
    bit-identity oracle.

The cost side of the loop (term catalog, :class:`~repro.cost.CostModel`,
delta HPWL) lives in :mod:`repro.cost`; ``DeltaHPWL`` / ``hpwl_of`` /
``resolve_nets`` are re-exported here for backwards compatibility.
"""

from .coords import (
    Coords,
    bounding_of,
    coords_to_placement,
    normalize_coords,
    placement_to_coords,
)
from ..cost.hpwl import DeltaHPWL, hpwl_of, resolve_nets
from .kernel import BStarKernel, Skyline, pack_tree_coords
from .incremental import FullRepackBStarEngine, IncrementalBStarEngine
from .vector import BatchCostEvaluator, VectorBStarEngine

__all__ = [
    "BStarKernel",
    "BatchCostEvaluator",
    "Coords",
    "DeltaHPWL",
    "FullRepackBStarEngine",
    "IncrementalBStarEngine",
    "Skyline",
    "VectorBStarEngine",
    "bounding_of",
    "coords_to_placement",
    "hpwl_of",
    "normalize_coords",
    "pack_tree_coords",
    "placement_to_coords",
    "resolve_nets",
]
