"""Flat coordinate tables: the hot-loop placement representation.

A placement inside the annealing loop is just ``name -> (x0, y0, x1,
y1)`` in an insertion-ordered dict.  No :class:`~repro.geometry.Rect`
or :class:`~repro.geometry.PlacedModule` objects are created until a
result actually leaves the loop; the helpers here convert between the
two tiers and mirror the float operations of the rich classes exactly
(``x1`` is always ``x0 + width`` just like ``Rect.from_size``,
normalization adds ``-min`` just like ``Placement.normalized``), so the
two representations agree bit for bit.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from ..geometry import (
    ModuleSet,
    Orientation,
    PlacedModule,
    Placement,
    Rect,
)

#: name -> (x0, y0, x1, y1); insertion order is the placement order.
Coords = dict[str, tuple[float, float, float, float]]


def bounding_of(rects: Iterable[tuple[float, float, float, float]]) -> tuple[float, float, float, float]:
    """Bounding box of coordinate 4-tuples (mirrors :meth:`Rect.bounding`)."""
    it = iter(rects)
    try:
        x0, y0, x1, y1 = next(it)
    except StopIteration:
        raise ValueError("bounding_of() of an empty iterable") from None
    for a, b, c, d in it:
        if a < x0:
            x0 = a
        if b < y0:
            y0 = b
        if c > x1:
            x1 = c
        if d > y1:
            y1 = d
    return x0, y0, x1, y1


def normalize_coords(coords: Coords) -> Coords:
    """Translate so the bounding box sits at the origin.

    Performs the same float operation as ``Placement.normalized()``
    (adding ``-min``), so the results are bit-identical.
    """
    if not coords:
        return coords
    x0, y0, _, _ = bounding_of(coords.values())
    if x0 == 0.0 and y0 == 0.0:
        # Already anchored; skip the no-op translation (adding -0.0 is
        # the identity on every coordinate, including 0.0 itself).
        return coords
    dx, dy = -x0, -y0
    return {
        name: (a + dx, b + dy, c + dx, d + dy)
        for name, (a, b, c, d) in coords.items()
    }


def placement_to_coords(placement: Placement) -> Coords:
    """Flatten a rich placement (placement order preserved)."""
    return {
        p.name: (p.rect.x0, p.rect.y0, p.rect.x1, p.rect.y1)
        for p in placement
    }


def coords_to_placement(
    coords: Coords,
    modules: ModuleSet,
    orientations: Mapping[str, Orientation] | None = None,
    variants: Mapping[str, int] | None = None,
) -> Placement:
    """Materialize the rich placement for a coordinate table.

    Used once per annealing run, for the best/final state only.
    """
    placed = []
    for name, (x0, y0, x1, y1) in coords.items():
        orient = orientations.get(name, Orientation.R0) if orientations else Orientation.R0
        variant = variants.get(name, 0) if variants else 0
        placed.append(
            PlacedModule(modules[name], Rect(x0, y0, x1, y1), variant=variant, orientation=orient)
        )
    return Placement.of(placed)
