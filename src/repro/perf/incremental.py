"""Dirty-suffix incremental evaluation for B*-tree annealing.

The PR-1 kernel made each annealing step cheap; this module makes each
step *proportional to what the move changed*.  A B*-tree packs in
pre-order, and a node's placement depends only on the nodes packed
before it — so a perturbation that touches nodes at pre-order positions
``>= k`` leaves the coordinate prefix ``[0, k)`` bit-identical.
:class:`IncrementalBStarEngine` exploits that three ways:

* **skyline checkpoints** — the packing skyline is snapshotted every
  ``stride`` pre-order positions; a repack restores the checkpoint at
  ``k // stride`` and replays at most ``stride - 1`` cached rectangles
  instead of re-raising the whole prefix;
* **O(depth) traversal resume** — the DFS stack at position ``k`` is
  reconstructed from the perturbed tree's parent pointers and the
  cached prefix coordinates (the pending right-siblings along the path
  to ``k``'s predecessor), so the prefix is never re-walked;
* **delta wirelength** — modules whose rectangle actually changed are
  collected during the repack and handed to the
  :class:`~repro.cost.CostEvaluator`, whose
  :class:`~repro.cost.DeltaHPWL` recomputes only their incident nets.

Every proposal is undo-logged (touched tree pointers, overwritten
coordinates, refreshed checkpoints, changed net values), giving the
``propose -> commit/rollback`` protocol of
:class:`~repro.anneal.IncrementalAnnealer`: commit is O(1) — the
mutation already happened — and rollback restores exactly what the
proposal overwrote.  Costs are bit-identical to a full
``pack_tree_coords`` + :class:`~repro.cost.CostModel` evaluation of
the same state (see ``tests/perf/``);
:class:`FullRepackBStarEngine` is the same protocol with full
re-evaluation, used to lock that equivalence over whole annealing runs.
"""

from __future__ import annotations

import random
from bisect import bisect_right
from typing import TYPE_CHECKING

from ..circuit import ProximityGroup
from ..geometry import ModuleSet, Net, Orientation
from .coords import Coords
from .kernel import BStarKernel, Skyline

if TYPE_CHECKING:  # pragma: no cover
    from ..bstar.perturb import BStarState

_INF = float("inf")


def _perturb_module():
    # Imported lazily: repro.perf must stay importable without pulling
    # in repro.bstar (whose placers import repro.perf right back).
    from ..bstar import perturb

    return perturb


class IncrementalBStarEngine:
    """Incremental pack-and-cost engine for flat B*-tree annealing.

    Implements the :class:`repro.anneal.IncrementalEngine` protocol.
    Call :meth:`reset` with an initial :class:`BStarState` (the engine
    keeps its own mutable copy), then drive it through
    :class:`repro.anneal.IncrementalAnnealer`.

    Telemetry capability: every :meth:`propose` refreshes
    :attr:`last_move` (the move-family name) and
    :attr:`last_repack_len` (how many pre-order slots the dirty-suffix
    repack rewrote; 0 for noop/neutral moves) — two scalar attribute
    stores, cheap enough to keep unconditional.  The annealer reads
    them only when a recorder is attached.
    """

    #: move family of the most recent proposal ("move", "swap",
    #: "rotate", "reshape", "noop")
    last_move = "noop"
    #: pre-order slots repacked by the most recent proposal
    last_repack_len = 0

    def __init__(
        self,
        modules: ModuleSet,
        nets: tuple[Net, ...] = (),
        proximity: tuple[ProximityGroup, ...] = (),
        config=None,
        *,
        allow_rotation: bool = True,
        stride: int = 8,
    ) -> None:
        if config is None:
            raise ValueError("IncrementalBStarEngine requires a cost config")
        perturb = _perturb_module()
        self._state_cls = perturb.BStarState
        self._moves = perturb.InPlaceBStarMoves(modules, allow_rotation=allow_rotation)
        # share the kernel's footprint tables and its unified cost
        # model (same package, same tier); the evaluator is this
        # engine's delta-capable session over that model
        self._kernel = BStarKernel(modules, nets, proximity, config)
        self._eval = self._kernel.model.evaluator()
        self._footprints = self._kernel._footprints
        self._stride = max(1, stride)
        self._sky = Skyline()

        # current state (mutable, owned by the engine)
        self._tree = None
        self._orients: dict[str, Orientation] = {}
        self._variants: dict[str, int] = {}
        self._sizes: dict[str, tuple[float, float]] = {}
        self._coords: Coords = {}
        self._order: list[str] = []
        self._pos: dict[str, int] = {}
        self._ckpts: list = []
        self._cost = _INF

        # pending-proposal undo state.  `order`/`pos` describe the
        # *committed* state only: a proposal records the repacked
        # pre-order in `_new_suffix` and commit splices it in, so
        # rejected moves never touch (and never have to restore) them.
        self._pending = False
        self._pending_kind = ""
        self._pending_cost = _INF
        self._rec = None
        self._size_undo: tuple[str, tuple[float, float]] | None = None
        self._dirty_k = 0
        self._new_suffix: list[str] = []
        self._coord_log: list[tuple[str, tuple[float, float, float, float] | None]] = []
        self._ckpt_log: list = []
        self._moved: list[str] = []

    # -- setup ---------------------------------------------------------------

    def initial_state(self, rng: random.Random) -> BStarState:
        return self._moves.initial_state(rng)

    def reset(self, state: BStarState) -> float:
        """Adopt ``state`` (copied into mutable form); return its cost."""
        self._tree = state.tree.clone()
        self._orients = dict(state.orientations)
        self._variants = dict(state.variants)
        self._sizes = dict(
            self._kernel.resolved_sizes(self._orients, self._variants)
        )
        n = len(self._tree)
        self._order = [""] * n
        self._pos = {}
        self._coords = {}
        n_slots = ((n - 1) // self._stride + 1) if n else 1
        self._ckpts = [([0.0], [0.0]) for _ in range(n_slots)]
        self._pending = True  # satisfy the repack's logging paths
        self._repack_suffix(0)
        self._order[:] = self._new_suffix
        for idx, name in enumerate(self._order):
            self._pos[name] = idx
        self._cost = self._eval.reset(self._coords, bounding=self._sky_bounding())
        self._clear_pending()
        return self._cost

    def initial_cost(self) -> float:
        return self._cost

    # -- protocol ------------------------------------------------------------

    def propose(self, rng: random.Random) -> float:
        """Apply one random move in place; return the candidate cost."""
        if self._pending:
            raise RuntimeError("previous proposal not committed or rolled back")
        rec = self._moves.apply(self._tree, self._orients, self._variants, rng)
        self._rec = rec
        self._pending = True
        kind = rec.kind
        self.last_move = kind
        self.last_repack_len = 0
        if kind == "noop":
            self._pending_kind = "noop"
            self._pending_cost = self._cost
            return self._cost
        if kind == "rotate" or kind == "reshape":
            name = rec.a
            wh = self._footprints[name][self._variants.get(name, 0)][
                self._orients.get(name, Orientation.R0)
            ]
            old_wh = self._sizes[name]
            if wh == old_wh:
                # size-neutral move (square rotate, same-footprint
                # variant): coordinates — hence cost — are unchanged
                self._pending_kind = "neutral"
                self._pending_cost = self._cost
                return self._cost
            self._size_undo = (name, old_wh)
            self._sizes[name] = wh
        else:
            self._size_undo = None
        self._pending_kind = "repack"
        k = self._moves.dirty_index(rec, self._pos)
        self.last_repack_len = len(self._order) - k
        # only "move" (and the sibling-swap corner, which exchanges
        # subtrees rather than slots) reshuffles the pre-order suffix
        # unpredictably; a plain swap exchanges exactly two slots and
        # rotate/reshape none, so the suffix name list is collected only
        # when commit will need it
        self._repack_suffix(
            k, collect_order=kind == "move" or rec.sibling_swap
        )
        self._pending_cost = self._eval.propose(
            self._coords, self._moved, self._sky_bounding()
        )
        return self._pending_cost

    def commit(self) -> None:
        """Keep the pending move (the mutation already happened; only
        the committed-state pre-order book-keeping is updated)."""
        if self._pending_kind == "repack":
            kind = self._rec.kind
            if kind == "move" or self._rec.sibling_swap:
                k = self._dirty_k
                self._order[k:] = self._new_suffix
                pos = self._pos
                for idx, name in enumerate(self._new_suffix, k):
                    pos[name] = idx
            elif kind == "swap":
                # a swap exchanges exactly two pre-order slots; every
                # other node (including both subtrees, which moved
                # wholesale) keeps its position
                a, b = self._rec.a, self._rec.b
                pos = self._pos
                pa, pb = pos[a], pos[b]
                order = self._order
                order[pa], order[pb] = b, a
                pos[a], pos[b] = pb, pa
            # rotate/reshape leave the traversal order untouched
            self._eval.commit()
        self._cost = self._pending_cost
        self._clear_pending()

    def rollback(self) -> None:
        """Undo the pending move, restoring exactly what it overwrote
        (``order``/``pos`` still describe the committed state and need
        no repair)."""
        self._moves.undo(self._tree, self._orients, self._variants, self._rec)
        if self._pending_kind == "repack":
            if self._size_undo is not None:
                name, wh = self._size_undo
                self._sizes[name] = wh
            coords = self._coords
            for name, old in reversed(self._coord_log):
                coords[name] = old
            ckpts = self._ckpts
            for slot, snap in self._ckpt_log:
                ckpts[slot] = snap
            self._eval.rollback()
        self._clear_pending()

    def snapshot(self) -> BStarState:
        """An immutable copy of the current state (best tracking)."""
        return self._state_cls(
            tree=self._tree.clone(),
            orientations=dict(self._orients),
            variants=dict(self._variants),
        )

    def cost_breakdown(self) -> dict[str, float]:
        """Per-term weighted contributions of the *committed* state.

        Reporting tier (telemetry chunk summaries): a full rescan over
        the current coordinate table, so call it at chunk boundaries,
        never per step.
        """
        if self._pending:
            raise RuntimeError("previous proposal not committed or rolled back")
        return self._kernel.model.breakdown(
            self._coords, bounding=self._sky_bounding()
        )

    # -- internals -----------------------------------------------------------

    def _clear_pending(self) -> None:
        self._pending = False
        self._pending_kind = ""
        self._rec = None
        self._size_undo = None
        self._new_suffix = []
        self._coord_log = []
        self._ckpt_log = []

    def _sky_bounding(self) -> tuple[float, float, float, float]:
        # the skyline after a (re)pack covers the whole design, so the
        # bounding box falls out of it: packing anchors the root at the
        # origin (min = 0.0 exactly) and the skyline's raised extent is
        # max(x1) / max(y1) over the very same floats
        sky = self._sky
        return (0.0, 0.0, sky.rightmost_edge(), sky.max_height())

    def _repack_suffix(self, k: int, collect_order: bool = True) -> None:
        """Repack pre-order positions ``>= k`` (undo-logged).

        Writes candidate coordinates (with per-entry undo), refreshes
        skyline checkpoints past ``k`` (old snapshots logged), collects
        moved modules for the HPWL delta and — when ``collect_order`` is
        set — records the new pre-order tail in ``_new_suffix`` for
        commit to splice in.
        """
        self._dirty_k = k
        stride = self._stride
        order = self._order
        coords = self._coords
        sizes = self._sizes
        sky = self._sky
        c = k // stride
        ckpts = self._ckpts
        sky.restore(ckpts[c])
        # The skyline splice is inlined below (this is the hottest loop
        # in the library); the logic is Skyline.raise_over verbatim.
        starts = sky._starts
        heights = sky._heights
        bis_r = bisect_right
        # replay the cached tail of the prefix (unchanged rectangles)
        for idx in range(c * stride, k):
            x, _y0, x1, y1 = coords[order[idx]]
            i = bis_r(starts, x) - 1
            j = i + 1
            n_segs = len(starts)
            while j < n_segs and starts[j] < x1:
                j += 1
            tail = heights[j - 1]
            if starts[i] < x:
                new_s = [starts[i], x]
                new_h = [heights[i], y1]
            else:
                new_s = [x]
                new_h = [y1]
            end = starts[j] if j < len(starts) else _INF
            if x1 < end:
                new_s.append(x1)
                new_h.append(tail)
            starts[i:j] = new_s
            heights[i:j] = new_h
        coord_log: list = []
        self._coord_log = coord_log
        ckpt_log: list = []
        self._ckpt_log = ckpt_log
        new_suffix: list[str] = []
        self._new_suffix = new_suffix
        push_suffix = new_suffix.append if collect_order else None
        moved = self._moved
        moved.clear()
        push_moved = moved.append
        stack = self._stack_at(k)
        push_stack = stack.append
        pop_stack = stack.pop
        tree = self._tree
        tree_left, tree_right = tree.left, tree.right
        coords_get = coords.get
        next_ckpt = (c + 1) * stride
        idx = k
        while stack:
            if idx == next_ckpt:
                slot = idx // stride
                ckpt_log.append((slot, ckpts[slot]))
                ckpts[slot] = (starts.copy(), heights.copy())
                next_ckpt += stride
            name, x = pop_stack()
            w, h = sizes[name]
            x1 = x + w
            # fused query-and-raise over (x, x1); a module spans only a
            # couple of segments, so the end scans linearly
            i = bis_r(starts, x) - 1
            j = i + 1
            n_segs = len(starts)
            while j < n_segs and starts[j] < x1:
                j += 1
            if j - i == 1:
                y = heights[i]
            else:
                y = max(heights[i:j])
            top = y + h
            tail = heights[j - 1]
            if starts[i] < x:
                new_s = [starts[i], x]
                new_h = [heights[i], top]
            else:
                new_s = [x]
                new_h = [top]
            end = starts[j] if j < len(starts) else _INF
            if x1 < end:
                new_s.append(x1)
                new_h.append(tail)
            starts[i:j] = new_s
            heights[i:j] = new_h
            entry = (x, y, x1, top)
            old = coords_get(name)
            if entry != old:
                coord_log.append((name, old))
                coords[name] = entry
                push_moved(name)
            if push_suffix is not None:
                push_suffix(name)
            idx += 1
            right = tree_right[name]
            if right is not None:
                push_stack((right, x))
            left = tree_left[name]
            if left is not None:
                push_stack((left, x1))
        assert idx == len(order), "suffix repack lost nodes (tree corrupted?)"

    def _stack_at(self, k: int) -> list[tuple[str, float]]:
        """The packing DFS stack just before pre-order position ``k``.

        Rebuilt in O(depth) from the perturbed tree: walking up from the
        prefix's last node ``u = order[k-1]``, every ancestor left-edge
        with a pending right child contributes one stack entry (at the
        ancestor's cached x), topped by ``u``'s own pending children.
        All nodes consulted live in the unchanged prefix, so their
        cached coordinates are valid.
        """
        tree = self._tree
        if k == 0:
            root = tree.root
            return [] if root is None else [(root, 0.0)]
        coords = self._coords
        left, right, parent = tree.left, tree.right, tree.parent
        u = self._order[k - 1]
        pending: list[tuple[str, float]] = []  # nearest-ancestor first
        child = u
        node = parent[u]
        while node is not None:
            if left[node] == child:
                r = right[node]
                if r is not None:
                    pending.append((r, coords[node][0]))
            child = node
            node = parent[node]
        pending.reverse()
        cu = coords[u]
        r = right[u]
        if r is not None:
            pending.append((r, cu[0]))
        l = left[u]
        if l is not None:
            pending.append((l, cu[2]))
        return pending


class FullRepackBStarEngine:
    """The same protocol and random draws, evaluated by full repack.

    Twin of :class:`IncrementalBStarEngine` that packs the whole tree
    and rescans every net on every proposal (PR-1 kernel evaluation).
    Because both engines draw identically from the shared
    :class:`~repro.bstar.perturb.InPlaceBStarMoves`, running them with
    equal seeds produces the *same annealing walk* — which is how the
    equivalence tests and the benchmark assert that incremental
    evaluation changes speed, not answers.

    Carries the same telemetry attributes as the incremental engine;
    every non-noop proposal repacks the whole tree, so
    :attr:`last_repack_len` is simply the module count.
    """

    last_move = "noop"
    last_repack_len = 0

    def __init__(
        self,
        modules: ModuleSet,
        nets: tuple[Net, ...] = (),
        proximity: tuple[ProximityGroup, ...] = (),
        config=None,
        *,
        allow_rotation: bool = True,
    ) -> None:
        if config is None:
            raise ValueError("FullRepackBStarEngine requires a cost config")
        perturb = _perturb_module()
        self._state_cls = perturb.BStarState
        self._moves = perturb.InPlaceBStarMoves(modules, allow_rotation=allow_rotation)
        self._kernel = BStarKernel(modules, nets, proximity, config)
        self._tree = None
        self._orients: dict[str, Orientation] = {}
        self._variants: dict[str, int] = {}
        self._cost = _INF
        self._pending_cost = _INF
        self._rec = None

    def initial_state(self, rng: random.Random) -> BStarState:
        return self._moves.initial_state(rng)

    def reset(self, state: BStarState) -> float:
        self._tree = state.tree.clone()
        self._orients = dict(state.orientations)
        self._variants = dict(state.variants)
        self._cost = self._kernel.cost(self._tree, self._orients, self._variants)
        return self._cost

    def initial_cost(self) -> float:
        return self._cost

    def propose(self, rng: random.Random) -> float:
        self._rec = self._moves.apply(self._tree, self._orients, self._variants, rng)
        kind = self._rec.kind
        self.last_move = kind
        self.last_repack_len = 0 if kind == "noop" else len(self._tree)
        self._pending_cost = self._kernel.cost(
            self._tree, self._orients, self._variants
        )
        return self._pending_cost

    def commit(self) -> None:
        self._cost = self._pending_cost
        self._rec = None

    def rollback(self) -> None:
        self._moves.undo(self._tree, self._orients, self._variants, self._rec)
        self._rec = None

    def snapshot(self) -> BStarState:
        return self._state_cls(
            tree=self._tree.clone(),
            orientations=dict(self._orients),
            variants=dict(self._variants),
        )

    def cost_breakdown(self) -> dict[str, float]:
        """Per-term contributions of the committed state (full repack)."""
        coords = self._kernel.pack(self._tree, self._orients, self._variants)
        return self._kernel.model.breakdown(coords)
