"""Placement cost straight from flat coordinates.

:class:`FastCostModel` is the hot-loop twin of the placers' object-based
cost: the same weighted area / wirelength / aspect / proximity sum, but
computed from a :data:`~repro.perf.coords.Coords` table with no
intermediate objects.  Net pins are resolved to name lists once at
construction (dropping pins that can never be placed and nets left with
fewer than two pins — those contribute exactly ``0.0`` either way), so
each evaluation is a single pass of float arithmetic.

Every formula reproduces the object path operation for operation —
``(max - min) + (max - min)`` per net over ``(x0 + x1) / 2`` centers,
``(x1 - x0) * (y1 - y0)`` for the bounding area — so costs agree bit
for bit with ``_CostModel`` over ``pack()`` (see ``tests/perf/``).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..circuit import ProximityGroup
from ..circuit.constraints import _connected
from ..geometry import ModuleSet, Net, Rect
from .coords import Coords, bounding_of

#: A net resolved against the placeable names: (weight, pin names).
ResolvedNet = tuple[float, tuple[str, ...]]


def resolve_nets(nets: Iterable[Net], names: Iterable[str]) -> list[ResolvedNet]:
    """Pre-resolve net pins against the set of placeable module names.

    Pins outside ``names`` are dropped (they can never appear in a
    placement over these modules); nets left with fewer than two pins
    always contribute zero wirelength and are dropped entirely.
    """
    known = set(names)
    resolved: list[ResolvedNet] = []
    for net in nets:
        pins = tuple(p for p in net.pins if p in known)
        if len(pins) >= 2:
            resolved.append((net.weight, pins))
    return resolved


def hpwl_of(resolved: Sequence[ResolvedNet], coords: Coords) -> float:
    """Weighted HPWL over module centers (mirrors :func:`total_hpwl`).

    Two-pin nets — the overwhelming majority in practice — take a
    branch-free fast path; the span |c1 - c2| equals max - min bit for
    bit, so the result is unchanged.
    """
    total = 0.0
    get = coords.get
    for weight, pins in resolved:
        if len(pins) == 2:
            a = get(pins[0])
            if a is None:
                continue
            b = get(pins[1])
            if b is None:
                continue
            ax0, ay0, ax1, ay1 = a
            bx0, by0, bx1, by1 = b
            cax = (ax0 + ax1) / 2.0
            cbx = (bx0 + bx1) / 2.0
            cay = (ay0 + ay1) / 2.0
            cby = (by0 + by1) / 2.0
            dx = cax - cbx if cax >= cbx else cbx - cax
            dy = cay - cby if cay >= cby else cby - cay
            total += weight * (dx + dy)
            continue
        min_x = max_x = min_y = max_y = 0.0
        count = 0
        for pin in pins:
            entry = get(pin)
            if entry is None:
                continue
            x0, y0, x1, y1 = entry
            cx = (x0 + x1) / 2.0
            cy = (y0 + y1) / 2.0
            if count == 0:
                min_x = max_x = cx
                min_y = max_y = cy
            else:
                if cx < min_x:
                    min_x = cx
                elif cx > max_x:
                    max_x = cx
                if cy < min_y:
                    min_y = cy
                elif cy > max_y:
                    max_y = cy
            count += 1
        if count >= 2:
            total += weight * ((max_x - min_x) + (max_y - min_y))
    return total


class FastCostModel:
    """Area / wirelength / aspect / proximity cost over flat coordinates.

    Drop-in twin of the placers' ``_CostModel``: identical weights,
    identical normalization scales, identical float results — evaluated
    on a coordinate table instead of a :class:`Placement`.

    ``config`` is duck-typed: any object with ``area_weight``,
    ``wirelength_weight``, ``aspect_weight``, ``proximity_weight`` and
    ``target_aspect`` attributes (e.g. ``BStarPlacerConfig``).
    """

    def __init__(
        self,
        modules: ModuleSet,
        nets: tuple[Net, ...],
        proximity: tuple[ProximityGroup, ...],
        config,
    ) -> None:
        self._config = config
        self._has_nets = bool(nets)
        self._resolved = resolve_nets(nets, modules.names())
        self._proximity = proximity
        self._area_scale = max(modules.total_module_area(), 1e-12)
        self._wl_scale = max(self._area_scale**0.5 * max(len(nets), 1), 1e-12)

    def __call__(self, coords: Coords) -> float:
        cfg = self._config
        bx0, by0, bx1, by1 = bounding_of(coords.values())
        width = bx1 - bx0
        height = by1 - by0
        cost = cfg.area_weight * (width * height) / self._area_scale
        if self._has_nets and cfg.wirelength_weight:
            cost += cfg.wirelength_weight * hpwl_of(self._resolved, coords) / self._wl_scale
        if cfg.aspect_weight and width > 0 and height > 0:
            ratio = height / width
            deviation = max(ratio, 1.0 / ratio) / max(cfg.target_aspect, 1e-12)
            cost += cfg.aspect_weight * max(0.0, deviation - 1.0)
        if cfg.proximity_weight:
            for group in self._proximity:
                if not proximity_satisfied(group, coords):
                    cost += cfg.proximity_weight
        return cost


def proximity_satisfied(group: ProximityGroup, coords: Coords, *, tol: float = 1e-6) -> bool:
    """Coordinate-table twin of :meth:`ProximityGroup.is_satisfied`."""
    rects = [Rect(*coords[m]) for m in group.members_ if m in coords]
    if len(rects) <= 1:
        return True
    return _connected(rects, group.margin + tol)
