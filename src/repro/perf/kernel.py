"""The B*-tree packing kernel: tree -> flat coordinates, no objects.

The kernel packs a :class:`~repro.bstar.BStarTree` straight into a
:data:`~repro.perf.coords.Coords` table:

* footprints are precomputed per (module, variant, orientation) at
  construction, so the loop does two dict lookups instead of a
  ``Module.footprint`` call per node;
* the traversal is iterative (explicit stack) — degenerate chain trees
  of any depth pack without recursion;
* the skyline is a reusable parallel-list structure with an O(1) reset
  and snapshot/restore for the incremental engine's checkpoints, so one
  kernel instance serves an entire annealing run with no per-step
  allocation beyond the output dict.

Coordinates are bit-identical to ``repro.bstar.packing.pack`` — same
traversal order, same ``x + w`` / ``y + h`` arithmetic, same exact
min/max skyline queries (verified in ``tests/perf/``).
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Mapping

from ..circuit import ProximityGroup
from ..geometry import ModuleSet, Net, Orientation, Placement
from .coords import Coords, coords_to_placement

_INF = float("inf")

#: a skyline snapshot: (starts, heights) list copies
SkylineSnapshot = tuple[list[float], list[float]]


class Skyline:
    """Contour over x >= 0 as parallel ``starts`` / ``heights`` lists.

    Functional twin of :class:`repro.bstar.Contour`, tuned for the hot
    loop.  Segment ``i`` spans ``[starts[i], starts[i+1])`` (the last
    one runs to infinity) at height ``heights[i]``; starts are strictly
    increasing, so the query side of :meth:`raise_over` is a C-level
    ``bisect`` (linear for short profiles) plus a slice ``max``, and the
    update side is two list splices.  Heights come out of the very same
    ``max`` / ``y + h`` float operations as the object tier, so packings
    agree bit for bit (see ``tests/perf/``).
    """

    __slots__ = ("_starts", "_heights")

    def __init__(self) -> None:
        self._starts: list[float] = [0.0]
        self._heights: list[float] = [0.0]

    def reset(self) -> None:
        """Return to the flat initial skyline."""
        self._starts[:] = (0.0,)
        self._heights[:] = (0.0,)

    def snapshot(self) -> SkylineSnapshot:
        """An immutable-by-convention copy of the current profile.

        The incremental engine checkpoints the skyline at fixed pre-order
        strides; snapshots are never mutated, only :meth:`restore`\\ d
        (which copies again), so stored checkpoints stay valid.
        """
        return (self._starts.copy(), self._heights.copy())

    def restore(self, snapshot: SkylineSnapshot) -> None:
        """Load a snapshot taken by :meth:`snapshot`."""
        starts, heights = snapshot
        self._starts[:] = starts
        self._heights[:] = heights

    def max_height(self) -> float:
        """Maximum height over the whole skyline (exact max, no rounding)."""
        return max(self._heights)

    def rightmost_edge(self) -> float:
        """The right edge of the rightmost raised interval (0.0 if flat).

        Every placed module raised the skyline over its exact
        ``(x0, x1)`` span, so this is bit-identical to ``max(x1)`` over
        the placed modules.  (A zero-height tail always trails the
        raised region, so the scan from the right is short.)
        """
        heights = self._heights
        for i in range(len(heights) - 1, -1, -1):
            if heights[i] != 0.0:
                return self._starts[i + 1]
        return 0.0

    def raise_over(self, x0: float, x1: float, h: float) -> float:
        """Fused query-and-place: return the height over (x0, x1) and
        raise the skyline to ``height + h`` there (the packing inner
        loop calls only this)."""
        starts = self._starts
        heights = self._heights
        n = len(starts)
        # segment containing x0: last start <= x0 (starts[0] == 0.0 <= x0).
        # Short profiles (every fresh pack starts with one) scan faster
        # than they bisect.
        if n < 16:
            i = 0
            while i + 1 < n and starts[i + 1] <= x0:
                i += 1
        else:
            i = bisect_right(starts, x0) - 1
        # segments covering any of (x0, x1): starts strictly below x1 —
        # a module usually spans only a couple of segments, so scan.
        j = i + 1
        while j < n and starts[j] < x1:
            j += 1
        if j - i == 1:
            best = heights[i]
        else:
            best = max(heights[i:j])
        tail = heights[j - 1]
        if starts[i] < x0:
            new_starts = [starts[i], x0]
            new_heights = [heights[i], best + h]
        else:
            new_starts = [x0]
            new_heights = [best + h]
        end = starts[j] if j < len(starts) else _INF
        if x1 < end:
            new_starts.append(x1)
            new_heights.append(tail)
        starts[i:j] = new_starts
        heights[i:j] = new_heights
        return best

def pack_tree_coords(
    tree,
    sizes: Mapping[str, tuple[float, float]],
    skyline: Skyline | None = None,
) -> Coords:
    """Pack raw (w, h) footprints into a coordinate table.

    Flat twin of :func:`repro.bstar.packing.pack_sizes`: identical
    traversal order (pre-order, left subtree before right) and identical
    arithmetic, returning 4-tuples instead of :class:`Rect` objects.
    Pass a ``skyline`` to reuse its storage across calls.
    """
    out: Coords = {}
    root = tree.root
    if root is None:
        return out
    if skyline is None:
        skyline = Skyline()
    else:
        skyline.reset()
    tree_left, tree_right = tree.left, tree.right
    # Skyline.raise_over inlined (this loop and the incremental
    # engine's suffix repack are the two hottest paths in the library).
    starts = skyline._starts
    heights = skyline._heights
    bis_r = bisect_right
    stack: list[tuple[str, float]] = [(root, 0.0)]
    push = stack.append
    pop = stack.pop
    while stack:
        name, x = pop()
        w, h = sizes[name]
        x1 = x + w
        n = len(starts)
        if n < 16:
            i = 0
            while i + 1 < n and starts[i + 1] <= x:
                i += 1
        else:
            i = bis_r(starts, x) - 1
        j = i + 1
        while j < n and starts[j] < x1:
            j += 1
        if j - i == 1:
            y = heights[i]
        else:
            y = max(heights[i:j])
        top = y + h
        tail = heights[j - 1]
        if starts[i] < x:
            new_s = [starts[i], x]
            new_h = [heights[i], top]
        else:
            new_s = [x]
            new_h = [top]
        if x1 < (starts[j] if j < n else _INF):
            new_s.append(x1)
            new_h.append(tail)
        starts[i:j] = new_s
        heights[i:j] = new_h
        out[name] = (x, y, x1, top)
        right = tree_right[name]
        if right is not None:
            push((right, x))
        left = tree_left[name]
        if left is not None:
            push((left, x1))
    return out


class BStarKernel:
    """Reusable pack-and-cost engine for B*-tree annealing.

    Construct once per placement problem; every annealing step then calls
    :meth:`cost` (or :meth:`pack`), which touches only precomputed
    tables, the reusable skyline and one output dict.  The rich
    :class:`Placement` is materialized by :meth:`placement` for the
    best/final state only.
    """

    def __init__(
        self,
        modules: ModuleSet,
        nets: tuple[Net, ...] = (),
        proximity: tuple[ProximityGroup, ...] = (),
        config=None,
    ) -> None:
        # deferred import: repro.cost imports repro.perf.coords, so the
        # model builder must not be pulled in at perf import time
        from ..cost.model import model_for_config

        self._modules = modules
        self._skyline = Skyline()
        self._cost_model = (
            model_for_config(modules, nets, proximity, config)
            if config is not None
            else None
        )
        # footprint table: name -> variant index -> orientation -> (w, h)
        self._footprints: dict[str, list[dict[Orientation, tuple[float, float]]]] = {
            m.name: [
                {o: m.footprint(v, o) for o in Orientation}
                for v in range(len(m.variants))
            ]
            for m in modules
        }
        # default footprints (variant 0, R0): the pack loop copies this
        # table and overrides only the explicitly rotated/reshaped
        # modules, so the per-node work is a single dict lookup.
        self._default_sizes: dict[str, tuple[float, float]] = {
            m.name: self._footprints[m.name][0][Orientation.R0] for m in modules
        }

    def resolved_sizes(
        self,
        orientations: Mapping[str, Orientation] | None = None,
        variants: Mapping[str, int] | None = None,
    ) -> Mapping[str, tuple[float, float]]:
        """The effective footprint table for an override pair.

        Copy-on-default: overrides are normalized first, and entries
        whose footprint equals the default (variant 0, R0 — e.g. a
        square module rotated, or an explicit variant-0 entry) are
        dropped; when nothing survives, the shared default table is
        returned without any copy at all.
        """
        sizes = self._default_sizes
        if not orientations and not variants:
            return sizes
        footprints = self._footprints
        overrides: dict[str, tuple[float, float]] = {}
        if orientations:
            for name, orient in orientations.items():
                variant = variants.get(name, 0) if variants else 0
                wh = footprints[name][variant][orient]
                if wh != sizes[name]:
                    overrides[name] = wh
        if variants:
            for name, variant in variants.items():
                if not orientations or name not in orientations:
                    wh = footprints[name][variant][Orientation.R0]
                    if wh != sizes[name]:
                        overrides[name] = wh
        if not overrides:
            return sizes
        sizes = sizes.copy()
        sizes.update(overrides)
        return sizes

    @property
    def model(self):
        """The kernel's :class:`~repro.cost.CostModel` (``None`` when
        the kernel was built without a cost config)."""
        return self._cost_model

    def pack(
        self,
        tree,
        orientations: Mapping[str, Orientation] | None = None,
        variants: Mapping[str, int] | None = None,
    ) -> Coords:
        """Pack a tree into flat coordinates (bit-identical to ``pack()``)."""
        return pack_tree_coords(tree, self.resolved_sizes(orientations, variants), self._skyline)

    def cost(
        self,
        tree,
        orientations: Mapping[str, Orientation] | None = None,
        variants: Mapping[str, int] | None = None,
    ) -> float:
        """Pack and evaluate in one step (requires a ``config``)."""
        if self._cost_model is None:
            raise ValueError("BStarKernel was built without a cost config")
        return self._cost_model(self.pack(tree, orientations, variants))

    def cost_of(self, coords: Coords) -> float:
        """Evaluate an already-packed coordinate table."""
        if self._cost_model is None:
            raise ValueError("BStarKernel was built without a cost config")
        return self._cost_model(coords)

    def placement(
        self,
        tree,
        orientations: Mapping[str, Orientation] | None = None,
        variants: Mapping[str, int] | None = None,
    ) -> Placement:
        """Materialize the rich :class:`Placement` (boundary tier)."""
        return coords_to_placement(
            self.pack(tree, orientations, variants), self._modules, orientations, variants
        )
