"""The B*-tree packing kernel: tree -> flat coordinates, no objects.

The kernel packs a :class:`~repro.bstar.BStarTree` straight into a
:data:`~repro.perf.coords.Coords` table:

* footprints are precomputed per (module, variant, orientation) at
  construction, so the loop does two dict lookups instead of a
  ``Module.footprint`` call per node;
* the traversal is iterative (explicit stack) — degenerate chain trees
  of any depth pack without recursion;
* the skyline is a reusable, tuple-based structure with an O(1) reset,
  so one kernel instance serves an entire annealing run with no
  per-step allocation beyond the output dict.

Coordinates are bit-identical to ``repro.bstar.packing.pack`` — same
traversal order, same ``x + w`` / ``y + h`` arithmetic, same exact
min/max skyline queries (verified in ``tests/perf/``).
"""

from __future__ import annotations

from typing import Mapping

from ..circuit import ProximityGroup
from ..geometry import ModuleSet, Net, Orientation, Placement
from .coords import Coords, coords_to_placement
from .cost import FastCostModel

_INF = float("inf")


class Skyline:
    """Contour over x >= 0 as a contiguous list of (x0, x1, y) tuples.

    Functional twin of :class:`repro.bstar.Contour`, tuned for the hot
    loop: no segment objects, no sorting (splits are emitted in order),
    no equal-height merging (heights are unaffected), and a cheap
    :meth:`reset` so one instance serves a whole annealing run.
    """

    __slots__ = ("_segs",)

    def __init__(self) -> None:
        self._segs: list[tuple[float, float, float]] = [(0.0, _INF, 0.0)]

    def reset(self) -> None:
        """Return to the flat initial skyline."""
        self._segs[:] = ((0.0, _INF, 0.0),)

    def height_over(self, x0: float, x1: float) -> float:
        """Maximum height over the open interval (x0, x1)."""
        best = 0.0
        for s0, s1, y in self._segs:
            if s1 <= x0:
                continue
            if s0 >= x1:
                break
            if y > best:
                best = y
        return best

    def raise_over(self, x0: float, x1: float, h: float) -> float:
        """Fused query-and-place: return the height over (x0, x1) and
        raise the skyline to ``height + h`` there, in one scan with an
        in-place splice (the packing inner loop calls only this)."""
        segs = self._segs
        i = 0
        while segs[i][1] <= x0:
            i += 1
        j = i
        best = 0.0
        n = len(segs)
        while j < n:
            s0, s1, y = segs[j]
            if s0 >= x1:
                break
            if y > best:
                best = y
            j += 1
        first = segs[i]
        last = segs[j - 1]
        mid: list[tuple[float, float, float]] = []
        if first[0] < x0:
            mid.append((first[0], x0, first[2]))
        mid.append((x0, x1, best + h))
        if last[1] > x1:
            mid.append((x1, last[1], last[2]))
        segs[i:j] = mid
        return best

def pack_tree_coords(
    tree,
    sizes: Mapping[str, tuple[float, float]],
    skyline: Skyline | None = None,
) -> Coords:
    """Pack raw (w, h) footprints into a coordinate table.

    Flat twin of :func:`repro.bstar.packing.pack_sizes`: identical
    traversal order (pre-order, left subtree before right) and identical
    arithmetic, returning 4-tuples instead of :class:`Rect` objects.
    Pass a ``skyline`` to reuse its storage across calls.
    """
    out: Coords = {}
    root = tree.root
    if root is None:
        return out
    if skyline is None:
        skyline = Skyline()
    else:
        skyline.reset()
    tree_left, tree_right = tree.left, tree.right
    raise_over = skyline.raise_over
    stack: list[tuple[str, float]] = [(root, 0.0)]
    while stack:
        name, x = stack.pop()
        w, h = sizes[name]
        x1 = x + w
        y = raise_over(x, x1, h)
        out[name] = (x, y, x1, y + h)
        right = tree_right[name]
        if right is not None:
            stack.append((right, x))
        left = tree_left[name]
        if left is not None:
            stack.append((left, x1))
    return out


class BStarKernel:
    """Reusable pack-and-cost engine for B*-tree annealing.

    Construct once per placement problem; every annealing step then calls
    :meth:`cost` (or :meth:`pack`), which touches only precomputed
    tables, the reusable skyline and one output dict.  The rich
    :class:`Placement` is materialized by :meth:`placement` for the
    best/final state only.
    """

    def __init__(
        self,
        modules: ModuleSet,
        nets: tuple[Net, ...] = (),
        proximity: tuple[ProximityGroup, ...] = (),
        config=None,
    ) -> None:
        self._modules = modules
        self._skyline = Skyline()
        self._cost_model = FastCostModel(modules, nets, proximity, config) if config is not None else None
        # footprint table: name -> variant index -> orientation -> (w, h)
        self._footprints: dict[str, list[dict[Orientation, tuple[float, float]]]] = {
            m.name: [
                {o: m.footprint(v, o) for o in Orientation}
                for v in range(len(m.variants))
            ]
            for m in modules
        }
        # default footprints (variant 0, R0): the pack loop copies this
        # table and overrides only the explicitly rotated/reshaped
        # modules, so the per-node work is a single dict lookup.
        self._default_sizes: dict[str, tuple[float, float]] = {
            m.name: self._footprints[m.name][0][Orientation.R0] for m in modules
        }

    def pack(
        self,
        tree,
        orientations: Mapping[str, Orientation] | None = None,
        variants: Mapping[str, int] | None = None,
    ) -> Coords:
        """Pack a tree into flat coordinates (bit-identical to ``pack()``)."""
        sizes = self._default_sizes
        if orientations or variants:
            # Copy-on-default: one C-level dict copy, then override the
            # handful of modules with a non-default variant/orientation.
            footprints = self._footprints
            sizes = sizes.copy()
            if orientations:
                for name, orient in orientations.items():
                    variant = variants.get(name, 0) if variants else 0
                    sizes[name] = footprints[name][variant][orient]
            if variants:
                for name, variant in variants.items():
                    if not orientations or name not in orientations:
                        sizes[name] = footprints[name][variant][Orientation.R0]
        return pack_tree_coords(tree, sizes, self._skyline)

    def cost(
        self,
        tree,
        orientations: Mapping[str, Orientation] | None = None,
        variants: Mapping[str, int] | None = None,
    ) -> float:
        """Pack and evaluate in one step (requires a ``config``)."""
        if self._cost_model is None:
            raise ValueError("BStarKernel was built without a cost config")
        return self._cost_model(self.pack(tree, orientations, variants))

    def cost_of(self, coords: Coords) -> float:
        """Evaluate an already-packed coordinate table."""
        if self._cost_model is None:
            raise ValueError("BStarKernel was built without a cost config")
        return self._cost_model(coords)

    def placement(
        self,
        tree,
        orientations: Mapping[str, Orientation] | None = None,
        variants: Mapping[str, int] | None = None,
    ) -> Placement:
        """Materialize the rich :class:`Placement` (boundary tier)."""
        return coords_to_placement(
            self.pack(tree, orientations, variants), self._modules, orientations, variants
        )
