"""Circuit design hierarchy.

Section III distinguishes the *exact* hierarchy (the circuit's own
sub-circuit structure) from *virtual* hierarchy (clusters gathered from
device models, functionality or constraints).  Section IV bounds its
enumeration by the same tree: leaves of the hierarchy tree are modules,
and sibling leaves form *basic module sets* small enough to enumerate
exhaustively.

:class:`HierarchyNode` models both flavors; an optional ``constraint``
annotation marks a sub-circuit as symmetric / common-centroid / proximity
(Fig. 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Iterator

from ..geometry import Module, ModuleSet
from .constraints import CommonCentroidGroup, Constraint, ProximityGroup, SymmetryGroup


class ConstraintKind(Enum):
    """Constraint flavor attached to a hierarchy node."""

    NONE = "none"
    SYMMETRY = "symmetry"
    COMMON_CENTROID = "common-centroid"
    PROXIMITY = "proximity"


@dataclass
class HierarchyNode:
    """A node of the layout design hierarchy tree.

    A node either holds ``modules`` directly (a *basic module set*) or
    ``children`` sub-nodes; mixed nodes are allowed (some devices plus
    sub-circuits, as in Fig. 2's top design).
    """

    name: str
    modules: list[Module] = field(default_factory=list)
    children: list["HierarchyNode"] = field(default_factory=list)
    constraint: Constraint | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("hierarchy node needs a name")

    # -- structure -----------------------------------------------------------

    @property
    def is_leaf(self) -> bool:
        return not self.children

    @property
    def constraint_kind(self) -> ConstraintKind:
        if self.constraint is None:
            return ConstraintKind.NONE
        if isinstance(self.constraint, SymmetryGroup):
            return ConstraintKind.SYMMETRY
        if isinstance(self.constraint, CommonCentroidGroup):
            return ConstraintKind.COMMON_CENTROID
        if isinstance(self.constraint, ProximityGroup):
            return ConstraintKind.PROXIMITY
        raise TypeError(f"unknown constraint type {type(self.constraint)!r}")

    def walk(self) -> Iterator["HierarchyNode"]:
        """Pre-order traversal."""
        yield self
        for child in self.children:
            yield from child.walk()

    def leaves(self) -> Iterator["HierarchyNode"]:
        for node in self.walk():
            if node.is_leaf:
                yield node

    def all_modules(self) -> list[Module]:
        """All modules in this subtree, pre-order."""
        out: list[Module] = []
        for node in self.walk():
            out.extend(node.modules)
        return out

    def module_set(self) -> ModuleSet:
        return ModuleSet.of(self.all_modules())

    def basic_module_sets(self) -> Iterator["HierarchyNode"]:
        """Nodes whose direct modules form a basic module set (section IV):
        every node that carries modules directly."""
        for node in self.walk():
            if node.modules:
                yield node

    def depth(self) -> int:
        if self.is_leaf:
            return 1
        return 1 + max(c.depth() for c in self.children)

    def find(self, name: str) -> "HierarchyNode":
        for node in self.walk():
            if node.name == name:
                return node
        raise KeyError(f"no hierarchy node named {name!r}")

    def validate(self) -> None:
        """Check structural invariants: unique node names, unique module
        names, constraints referencing only subtree modules."""
        node_names = [n.name for n in self.walk()]
        if len(node_names) != len(set(node_names)):
            raise ValueError("duplicate hierarchy node names")
        module_names = [m.name for m in self.all_modules()]
        if len(module_names) != len(set(module_names)):
            raise ValueError("duplicate module names in hierarchy")
        for node in self.walk():
            if node.constraint is not None:
                available = {m.name for m in node.all_modules()}
                missing = node.constraint.member_set() - available
                if missing:
                    raise ValueError(
                        f"constraint {node.constraint.name!r} on node {node.name!r} "
                        f"references modules outside the subtree: {sorted(missing)}"
                    )

    def constraints(self) -> list[Constraint]:
        """All constraints in the subtree, pre-order."""
        return [n.constraint for n in self.walk() if n.constraint is not None]


def cluster_by(
    modules: list[Module], key: Callable[[Module], str], *, prefix: str = "cluster"
) -> HierarchyNode:
    """Build a two-level *virtual hierarchy* by grouping modules by ``key``.

    This is the simple device-model/functionality clustering of [9], [21]:
    modules with the same key end up in one child node, singleton groups
    stay at the top level.
    """
    groups: dict[str, list[Module]] = {}
    for m in modules:
        groups.setdefault(key(m), []).append(m)

    root = HierarchyNode(f"{prefix}-top")
    for group_key in sorted(groups):
        members = groups[group_key]
        if len(members) == 1:
            root.modules.extend(members)
        else:
            root.children.append(HierarchyNode(f"{prefix}-{group_key}", modules=members))
    root.validate()
    return root
