"""Circuit container tying devices, nets, hierarchy and constraints together.

A :class:`Circuit` is the input format of every placer and of the
layout-aware sizing flow.  It owns:

* the device list (leaves of the design),
* the nets (for wirelength objectives),
* the layout design hierarchy (exact + virtual, section III),
* the aggregated constraint set.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..geometry import Module, ModuleSet, Net
from .constraints import CommonCentroidGroup, ConstraintSet, ProximityGroup, SymmetryGroup
from .device import Device
from .hierarchy import HierarchyNode


@dataclass(frozen=True)
class Circuit:
    """An analog circuit prepared for layout synthesis."""

    name: str
    hierarchy: HierarchyNode
    nets: tuple[Net, ...] = ()
    devices: tuple[Device, ...] = ()
    extra_constraints: ConstraintSet = field(default_factory=ConstraintSet)
    #: optional fixed die outline ``(width, height)``; when set, the
    #: reference cost model charges an outline term for spills (the
    #: workload generator's fixed-outline scenarios attach this)
    outline: tuple[float, float] | None = None

    def __post_init__(self) -> None:
        self.hierarchy.validate()
        if self.outline is not None:
            width, height = self.outline
            if width <= 0 or height <= 0:
                raise ValueError(f"outline must be positive, got {self.outline!r}")
        module_names = set(self.modules().names())
        for net in self.nets:
            unknown = [p for p in net.pins if p not in module_names]
            if unknown:
                raise ValueError(f"net {net.name!r} references unknown modules {unknown}")
        for c in self.extra_constraints.all():
            missing = c.member_set() - module_names
            if missing:
                raise ValueError(
                    f"constraint {c.name!r} references unknown modules {sorted(missing)}"
                )

    # -- views ---------------------------------------------------------------

    def modules(self) -> ModuleSet:
        """All placeable modules of the circuit."""
        return self.hierarchy.module_set()

    @property
    def n_modules(self) -> int:
        return len(self.modules())

    def constraints(self) -> ConstraintSet:
        """Constraints from the hierarchy plus any extra ones."""
        symmetry: list[SymmetryGroup] = []
        common_centroid: list[CommonCentroidGroup] = []
        proximity: list[ProximityGroup] = []
        for c in self.hierarchy.constraints():
            if isinstance(c, SymmetryGroup):
                symmetry.append(c)
            elif isinstance(c, CommonCentroidGroup):
                common_centroid.append(c)
            elif isinstance(c, ProximityGroup):
                proximity.append(c)
        return ConstraintSet(
            tuple(symmetry), tuple(common_centroid), tuple(proximity)
        ).merged_with(self.extra_constraints)

    def module(self, name: str) -> Module:
        return self.modules()[name]

    def total_module_area(self) -> float:
        return self.modules().total_module_area()

    def summary(self) -> str:
        """One-line description used by benchmarks and examples."""
        cs = self.constraints()
        outline = (
            f", outline {self.outline[0]:.1f} x {self.outline[1]:.1f}"
            if self.outline
            else ""
        )
        return (
            f"{self.name}: {self.n_modules} modules, {len(self.nets)} nets, "
            f"{len(cs.symmetry)} symmetry / {len(cs.common_centroid)} common-centroid / "
            f"{len(cs.proximity)} proximity constraints, "
            f"hierarchy depth {self.hierarchy.depth()}{outline}"
        )
