"""Device model.

Devices are the leaves of the analog design hierarchy.  Each device knows
how to render itself into a placeable :class:`~repro.geometry.Module`,
including the discrete footprint variants produced by different folding
factors — the geometric degree of freedom exploited by layout-aware
sizing (paper section V).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum

from ..geometry import Module, ShapeVariant


class DeviceType(Enum):
    """Supported device families."""

    NMOS = "nmos"
    PMOS = "pmos"
    CAPACITOR = "cap"
    RESISTOR = "res"


#: Technology-style constants of the synthetic process used throughout the
#: reproduction (a generic 0.35 µm-class CMOS, matching the late-2000s
#: circuits the paper reports on).  Lengths in µm, capacitance in fF/µm².
TECH = {
    "gate_pitch": 1.0,        # µm of layout height per µm of gate width in one finger row
    "finger_overhead": 1.6,   # µm of width added per finger (contacts + spacing)
    "mos_base_height": 3.2,   # µm, diffusion + well surround for a one-finger row
    "cap_density": 1.0,       # fF / µm² (poly-poly cap)
    "res_sheet": 50.0,        # ohm / square
    "res_strip_width": 0.8,   # µm
    "res_strip_pitch": 1.8,   # µm (strip + spacing)
}


@dataclass(frozen=True, slots=True)
class Device:
    """A circuit device with electrical and geometric parameters.

    Parameters
    ----------
    name:
        Unique instance name, e.g. ``"P1"``.
    dtype:
        Device family.
    width, length:
        MOS gate dimensions in µm (ignored for passives).
    value:
        Capacitance in fF for capacitors, resistance in ohm for resistors.
    fingers:
        Default folding factor for MOS devices.
    model:
        Device model name; devices sharing a model are candidates for
        proximity clustering (same well / guard ring), cf. section III.
    """

    name: str
    dtype: DeviceType
    width: float = 0.0
    length: float = 0.0
    value: float = 0.0
    fingers: int = 1
    model: str = ""

    def __post_init__(self) -> None:
        if self.dtype in (DeviceType.NMOS, DeviceType.PMOS):
            if self.width <= 0 or self.length <= 0:
                raise ValueError(f"MOS device {self.name!r} needs positive W and L")
            if self.fingers < 1:
                raise ValueError(f"MOS device {self.name!r} needs >= 1 finger")
        elif self.value <= 0:
            raise ValueError(f"passive device {self.name!r} needs a positive value")

    @property
    def is_mos(self) -> bool:
        return self.dtype in (DeviceType.NMOS, DeviceType.PMOS)

    # -- geometry ------------------------------------------------------------

    def footprint(self, fingers: int | None = None) -> tuple[float, float]:
        """Layout footprint (w, h) in µm for a given folding factor.

        Folding a MOS gate of total width W into ``nf`` fingers stacks the
        gate into ``nf`` strips of width ``W/nf``; the cell gets wider with
        each finger (contacts) and shorter in the strip direction.
        """
        if self.dtype == DeviceType.CAPACITOR:
            side = math.sqrt(self.value / TECH["cap_density"])
            return side, side
        if self.dtype == DeviceType.RESISTOR:
            squares = self.value / TECH["res_sheet"]
            strip_len = squares * TECH["res_strip_width"]
            strips = max(1, round(math.sqrt(strip_len / TECH["res_strip_pitch"])))
            return strips * TECH["res_strip_pitch"], strip_len / strips
        nf = fingers if fingers is not None else self.fingers
        if nf < 1:
            raise ValueError("fingers must be >= 1")
        strip_width = self.width / nf
        w = nf * (self.length + TECH["finger_overhead"])
        h = strip_width * TECH["gate_pitch"] + TECH["mos_base_height"]
        return w, h

    def folding_variants(self, max_fingers: int = 8) -> tuple[ShapeVariant, ...]:
        """All distinct footprints for folding factors 1 .. ``max_fingers``.

        Only factors that keep the finger strip at least one gate length
        tall are offered, mirroring real PCELL limits.
        """
        variants = []
        seen: set[tuple[float, float]] = set()
        for nf in range(1, max_fingers + 1):
            if self.is_mos and self.width / nf < self.length:
                break
            w, h = self.footprint(nf if self.is_mos else None)
            key = (round(w, 6), round(h, 6))
            if key not in seen:
                seen.add(key)
                variants.append(ShapeVariant(w, h, tag=f"nf={nf}"))
            if not self.is_mos:
                break
        return tuple(variants)

    def to_module(self, *, soft: bool = False, max_fingers: int = 8, rotatable: bool = True) -> Module:
        """Render this device into a placeable module.

        ``soft=True`` exposes all folding variants; otherwise the default
        folding factor yields a single hard footprint.
        """
        if soft:
            variants = self.folding_variants(max_fingers)
        else:
            w, h = self.footprint()
            variants = (ShapeVariant(w, h, tag=f"nf={self.fingers}"),)
        return Module(self.name, variants, rotatable=rotatable)


def matched_pair(
    base: str, dtype: DeviceType, width: float, length: float, *, fingers: int = 1, model: str = ""
) -> tuple[Device, Device]:
    """Two identically-sized devices named ``{base}a`` / ``{base}b``.

    Matched pairs are the building blocks of differential circuits and the
    natural members of symmetry and common-centroid groups.
    """
    make = lambda suffix: Device(
        f"{base}{suffix}", dtype, width=width, length=length, fingers=fingers, model=model
    )
    return make("a"), make("b")
