"""Circuit model: devices, netlists, hierarchy, constraints, benchmarks."""

from .constraints import (
    CommonCentroidGroup,
    Constraint,
    ConstraintSet,
    ProximityGroup,
    SymmetryGroup,
    symmetry_group_of_pairs,
)
from .device import TECH, Device, DeviceType, matched_pair
from .hierarchy import ConstraintKind, HierarchyNode, cluster_by
from .library import (
    TABLE1_MODULE_COUNTS,
    circuit_by_name,
    circuit_names,
    fig1_modules,
    fig1_sequence_pair,
    fig2_design,
    miller_opamp,
    simple_testcase,
    sized_folded_cascode,
    synthesize_circuit,
    table1_circuit,
    table1_circuits,
)
from .netlist import Circuit

__all__ = [
    "TABLE1_MODULE_COUNTS",
    "TECH",
    "Circuit",
    "CommonCentroidGroup",
    "Constraint",
    "ConstraintKind",
    "ConstraintSet",
    "Device",
    "DeviceType",
    "HierarchyNode",
    "ProximityGroup",
    "SymmetryGroup",
    "circuit_by_name",
    "circuit_names",
    "cluster_by",
    "fig1_modules",
    "fig1_sequence_pair",
    "fig2_design",
    "matched_pair",
    "miller_opamp",
    "simple_testcase",
    "sized_folded_cascode",
    "symmetry_group_of_pairs",
    "synthesize_circuit",
    "table1_circuit",
    "table1_circuits",
]
