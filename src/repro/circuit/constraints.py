"""Analog layout constraints.

Section III of the paper identifies three basic constraint classes
(Fig. 3) — *common-centroid*, *symmetry* and *proximity* — plus their
hierarchical variants.  This module models all of them and provides
placement validators used by tests and by the placers' legality checks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from ..geometry import Placement, Rect


@dataclass(frozen=True, slots=True)
class SymmetryGroup:
    """A group of modules to be placed mirror-symmetrically about a
    common vertical axis.

    ``pairs`` are (left, right) symmetric device pairs; ``self_symmetric``
    modules must straddle the axis themselves.  This is exactly the
    symmetry-group structure of the sequence-pair S-F condition (paper
    property (1)) and of the ASF-B*-tree symmetry islands.
    """

    name: str
    pairs: tuple[tuple[str, str], ...] = ()
    self_symmetric: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        members = list(self.members())
        if len(members) != len(set(members)):
            raise ValueError(f"symmetry group {self.name!r} has duplicate members")
        if not members:
            raise ValueError(f"symmetry group {self.name!r} is empty")

    def members(self) -> Iterator[str]:
        for a, b in self.pairs:
            yield a
            yield b
        yield from self.self_symmetric

    def member_set(self) -> frozenset[str]:
        return frozenset(self.members())

    def sym(self, module: str) -> str:
        """The symmetric counterpart of ``module`` (itself when
        self-symmetric) — the ``sym(x)`` map of the paper."""
        for a, b in self.pairs:
            if module == a:
                return b
            if module == b:
                return a
        if module in self.self_symmetric:
            return module
        raise KeyError(f"{module!r} not in symmetry group {self.name!r}")

    @property
    def size(self) -> int:
        return 2 * len(self.pairs) + len(self.self_symmetric)

    def axis_of(self, placement: Placement) -> float:
        """Best-fit vertical axis of the group in ``placement``.

        Average of pair-midpoints and self-symmetric centers; raises if no
        member is placed.
        """
        centers: list[float] = []
        for a, b in self.pairs:
            if a in placement and b in placement:
                centers.append(
                    (placement[a].rect.center.x + placement[b].rect.center.x) / 2.0
                )
        for s in self.self_symmetric:
            if s in placement:
                centers.append(placement[s].rect.center.x)
        if not centers:
            raise ValueError(f"no member of group {self.name!r} is placed")
        return sum(centers) / len(centers)

    def symmetry_error(self, placement: Placement) -> float:
        """Total deviation from perfect symmetry about the best-fit axis.

        Sums, over pairs, |mirror mismatch in x| + |y mismatch| and, over
        self-symmetric modules, the center-to-axis distance.  Zero means
        the constraint is met exactly.
        """
        axis = self.axis_of(placement)
        err = 0.0
        for a, b in self.pairs:
            ra, rb = placement[a].rect, placement[b].rect
            mirrored = ra.mirrored_x(axis)
            err += abs(mirrored.x0 - rb.x0) + abs(mirrored.x1 - rb.x1)
            err += abs(ra.y0 - rb.y0) + abs(ra.y1 - rb.y1)
        for s in self.self_symmetric:
            err += 2.0 * abs(placement[s].rect.center.x - axis)
        return err

    def is_satisfied(self, placement: Placement, *, tol: float = 1e-6) -> bool:
        return self.symmetry_error(placement) <= tol


@dataclass(frozen=True, slots=True)
class CommonCentroidGroup:
    """Devices whose unit arrays must share a common centroid (Fig. 3a).

    ``units`` maps a device name to the names of its unit modules; the
    constraint requires all devices' unit-centroids to coincide.  Typical
    use: a current mirror or differential pair split into four units
    arranged ``A B / B A``.
    """

    name: str
    units: tuple[tuple[str, tuple[str, ...]], ...]

    def __post_init__(self) -> None:
        if len(self.units) < 2:
            raise ValueError(f"common-centroid group {self.name!r} needs >= 2 devices")
        all_units = [u for _, us in self.units for u in us]
        if len(all_units) != len(set(all_units)):
            raise ValueError(f"common-centroid group {self.name!r} reuses unit names")
        for dev, us in self.units:
            if not us:
                raise ValueError(f"device {dev!r} in group {self.name!r} has no units")

    def members(self) -> Iterator[str]:
        for _, us in self.units:
            yield from us

    def member_set(self) -> frozenset[str]:
        return frozenset(self.members())

    def centroids(self, placement: Placement) -> dict[str, tuple[float, float]]:
        """Per-device centroid of unit centers."""
        out = {}
        for dev, unit_names in self.units:
            xs = [placement[u].rect.center.x for u in unit_names]
            ys = [placement[u].rect.center.y for u in unit_names]
            out[dev] = (sum(xs) / len(xs), sum(ys) / len(ys))
        return out

    def centroid_error(self, placement: Placement) -> float:
        """Max pairwise distance between device centroids (0 = satisfied)."""
        cents = list(self.centroids(placement).values())
        err = 0.0
        for i, (xi, yi) in enumerate(cents):
            for xj, yj in cents[i + 1:]:
                err = max(err, abs(xi - xj) + abs(yi - yj))
        return err

    def is_satisfied(self, placement: Placement, *, tol: float = 1e-6) -> bool:
        return self.centroid_error(placement) <= tol


@dataclass(frozen=True, slots=True)
class ProximityGroup:
    """Modules that must form one connected cluster (Fig. 3c).

    Models shared wells / common guard rings: the union of the member
    rectangles (inflated by ``margin``) must be a single connected
    region.  The cluster outline need not be rectangular.
    """

    name: str
    members_: tuple[str, ...]
    margin: float = 0.0

    def __post_init__(self) -> None:
        if not self.members_:
            raise ValueError(f"proximity group {self.name!r} is empty")
        if len(set(self.members_)) != len(self.members_):
            raise ValueError(f"proximity group {self.name!r} has duplicates")

    def members(self) -> Iterator[str]:
        return iter(self.members_)

    def member_set(self) -> frozenset[str]:
        return frozenset(self.members_)

    def is_satisfied(self, placement: Placement, *, tol: float = 1e-6) -> bool:
        """True when the member rectangles form one connected component.

        Rectangles within ``margin`` (plus ``tol``) of each other are
        considered adjacent.
        """
        rects = [placement[m].rect for m in self.members_ if m in placement]
        if len(rects) <= 1:
            return True
        return rects_connected(rects, self.margin + tol)


def rects_connected(rects: list[Rect], gap: float) -> bool:
    """Union-find connectivity of rectangles under a ``gap`` tolerance.

    Public so the coordinate-tier proximity check in :mod:`repro.cost`
    can share the exact same adjacency logic (no cross-package private
    imports; ``tools/check_private_imports.py`` enforces this).
    """
    n = len(rects)
    parent = list(range(n))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    def union(i: int, j: int) -> None:
        parent[find(i)] = find(j)

    for i in range(n):
        gi = rects[i].inflated(gap / 2.0)
        for j in range(i + 1, n):
            if gi.overlaps(rects[j].inflated(gap / 2.0), strict=False):
                union(i, j)
    root = find(0)
    return all(find(i) == root for i in range(n))


Constraint = SymmetryGroup | CommonCentroidGroup | ProximityGroup


@dataclass(frozen=True)
class ConstraintSet:
    """All layout constraints of one circuit."""

    symmetry: tuple[SymmetryGroup, ...] = ()
    common_centroid: tuple[CommonCentroidGroup, ...] = ()
    proximity: tuple[ProximityGroup, ...] = ()

    def __post_init__(self) -> None:
        names = [c.name for c in self.all()]
        if len(names) != len(set(names)):
            raise ValueError("duplicate constraint names")

    def all(self) -> tuple[Constraint, ...]:
        return (*self.symmetry, *self.common_centroid, *self.proximity)

    def constrained_modules(self) -> frozenset[str]:
        out: set[str] = set()
        for c in self.all():
            out |= c.member_set()
        return frozenset(out)

    def violations(self, placement: Placement, *, tol: float = 1e-6) -> list[str]:
        """Names of constraints not satisfied by ``placement``."""
        return [c.name for c in self.all() if not c.is_satisfied(placement, tol=tol)]

    def is_satisfied(self, placement: Placement, *, tol: float = 1e-6) -> bool:
        return not self.violations(placement, tol=tol)

    def merged_with(self, other: "ConstraintSet") -> "ConstraintSet":
        return ConstraintSet(
            self.symmetry + other.symmetry,
            self.common_centroid + other.common_centroid,
            self.proximity + other.proximity,
        )


def symmetry_group_of_pairs(name: str, *pairs: tuple[str, str], selfsym: Iterable[str] = ()) -> SymmetryGroup:
    """Convenience constructor used heavily in tests and examples."""
    return SymmetryGroup(name, tuple(pairs), tuple(selfsym))
