"""Benchmark circuit library.

The paper evaluates on six industrial circuits (Table I) that are not
publicly available.  Per the reproduction plan (DESIGN.md §4) we
synthesize stand-ins with the *same module counts*, analog-typical size
heterogeneity (large capacitors next to small transistors — the property
that makes slicing floorplans lose density, §I), and a realistic
constraint mix.  All generators are deterministic (seeded).

Also provided: the Fig. 1 sequence-pair example, the Fig. 2 hierarchical
design, and the Fig. 6 Miller op amp with its exact hierarchy tree.
"""

from __future__ import annotations

import random
import warnings

from ..geometry import Module, ModuleSet, Net
from .constraints import (
    CommonCentroidGroup,
    ProximityGroup,
    SymmetryGroup,
)
from .device import Device, DeviceType
from .hierarchy import HierarchyNode
from .netlist import Circuit

# ---------------------------------------------------------------------------
# Fig. 1 — the S-F sequence-pair example of section II
# ---------------------------------------------------------------------------


def fig1_modules() -> tuple[ModuleSet, SymmetryGroup]:
    """Cells and symmetry group of the paper's Fig. 1.

    Symmetry group gamma = {(C, D), (B, G), A, F}: two symmetric pairs and
    two self-symmetric cells; E is unconstrained.  Sizes are chosen to
    resemble the figure (E is a tall block on the left, A and F are wide
    cells straddling the axis).
    """
    modules = ModuleSet.of(
        [
            Module.hard("A", 10.0, 4.0, rotatable=False),
            Module.hard("B", 4.0, 6.0, rotatable=False),
            Module.hard("C", 4.0, 5.0, rotatable=False),
            Module.hard("D", 4.0, 5.0, rotatable=False),
            Module.hard("E", 5.0, 14.0, rotatable=False),
            Module.hard("F", 12.0, 4.0, rotatable=False),
            Module.hard("G", 4.0, 6.0, rotatable=False),
        ]
    )
    group = SymmetryGroup("gamma", pairs=(("C", "D"), ("B", "G")), self_symmetric=("A", "F"))
    return modules, group


def fig1_sequence_pair() -> tuple[tuple[str, ...], tuple[str, ...]]:
    """The S-F sequence-pair (EBAFCDG, EBCDFAG) quoted in section II."""
    return tuple("EBAFCDG"), tuple("EBCDFAG")


# ---------------------------------------------------------------------------
# Fig. 6 — Miller op amp with its hierarchy tree
# ---------------------------------------------------------------------------


def miller_opamp() -> Circuit:
    """The Miller op amp of Fig. 6 with its exact design hierarchy.

    Basic module sets: DP = {P1, P2} (differential pair, symmetry),
    CM1 = {N3, N4} (current mirror, common-centroid on unit level is
    modelled as symmetry here because each device is one module),
    CM2 = {P5, P6, P7} (mirror bank), plus output device N8 and the
    compensation capacitor C.  CORE = {DP, CM1, CM2}.
    """
    p1 = Device("P1", DeviceType.PMOS, width=20.0, length=0.5, fingers=2, model="pmos-lv")
    p2 = Device("P2", DeviceType.PMOS, width=20.0, length=0.5, fingers=2, model="pmos-lv")
    n3 = Device("N3", DeviceType.NMOS, width=8.0, length=1.0, model="nmos-lv")
    n4 = Device("N4", DeviceType.NMOS, width=8.0, length=1.0, model="nmos-lv")
    p5 = Device("P5", DeviceType.PMOS, width=12.0, length=0.5, model="pmos-lv")
    p6 = Device("P6", DeviceType.PMOS, width=12.0, length=0.5, model="pmos-lv")
    p7 = Device("P7", DeviceType.PMOS, width=24.0, length=0.5, fingers=2, model="pmos-lv")
    n8 = Device("N8", DeviceType.NMOS, width=40.0, length=0.5, fingers=4, model="nmos-lv")
    cc = Device("C", DeviceType.CAPACITOR, value=900.0)
    devices = (p1, p2, n3, n4, p5, p6, p7, n8, cc)

    mod = {d.name: d.to_module(rotatable=False) for d in devices}

    dp = HierarchyNode(
        "DP",
        modules=[mod["P1"], mod["P2"]],
        constraint=SymmetryGroup("sym-DP", pairs=(("P1", "P2"),)),
    )
    cm1 = HierarchyNode(
        "CM1",
        modules=[mod["N3"], mod["N4"]],
        constraint=SymmetryGroup("sym-CM1", pairs=(("N3", "N4"),)),
    )
    cm2 = HierarchyNode(
        "CM2",
        modules=[mod["P5"], mod["P6"], mod["P7"]],
        constraint=SymmetryGroup("sym-CM2", pairs=(("P5", "P6"),), self_symmetric=("P7",)),
    )
    core = HierarchyNode("CORE", children=[dp, cm1, cm2])
    top = HierarchyNode("OPAMP", modules=[mod["N8"], mod["C"]], children=[core])

    nets = (
        Net("in-pair", ("P1", "P2"), weight=2.0),
        Net("mirror1", ("N3", "N4", "P1")),
        Net("mirror2", ("P5", "P6", "P7")),
        Net("first-out", ("P2", "N4", "N8", "C"), weight=2.0),
        Net("out", ("N8", "C", "P7")),
        Net("tail", ("P1", "P2", "P5")),
    )
    return Circuit("miller-opamp", top, nets=nets, devices=devices)


# ---------------------------------------------------------------------------
# Fig. 2 — hierarchical design with per-sub-circuit constraints
# ---------------------------------------------------------------------------


def fig2_design() -> Circuit:
    """A design shaped like Fig. 2: a top level with plain modules plus
    sub-circuits carrying proximity, symmetry (hierarchical) and
    common-centroid constraints.

    Module names follow the figure (A..K); H and I are common-centroid
    sub-circuits realized as 2x2 unit arrays, matching Fig. 4.
    """
    hard = Module.hard

    # Common-centroid sub-circuit H: devices Ha/Hb split into 2 units each.
    h_units = [hard(n, 3.0, 3.0, rotatable=False) for n in ("H1", "H2", "H3", "H4")]
    cc_h = CommonCentroidGroup(
        "cc-H", units=(("Ha", ("H1", "H4")), ("Hb", ("H2", "H3")))
    )
    node_h = HierarchyNode("H", modules=h_units, constraint=cc_h)

    i_units = [hard(n, 2.5, 2.5, rotatable=False) for n in ("I1", "I2", "I3", "I4")]
    cc_i = CommonCentroidGroup(
        "cc-I", units=(("Ia", ("I1", "I4")), ("Ib", ("I2", "I3")))
    )
    node_i = HierarchyNode("I", modules=i_units, constraint=cc_i)

    # Hierarchical symmetry sub-circuit: modules D, E mirrored, with the
    # common-centroid sub-circuits H and I inside (Fig. 4).
    d = hard("D", 6.0, 4.0, rotatable=False)
    e = hard("E", 6.0, 4.0, rotatable=False)
    a = hard("A", 8.0, 3.0, rotatable=False)
    sym_node = HierarchyNode(
        "SYM",
        modules=[d, e, a],
        children=[node_h, node_i],
        constraint=SymmetryGroup("sym-ADE", pairs=(("D", "E"),), self_symmetric=("A",)),
    )

    # Proximity sub-circuit {J, K, F, G}: same well / common guard ring.
    j = hard("J", 4.0, 5.0)
    k = hard("K", 5.0, 4.0)
    f = hard("F", 3.0, 3.0)
    g = hard("G", 3.0, 4.0)
    prox_node = HierarchyNode(
        "PROX",
        modules=[j, k, f, g],
        constraint=ProximityGroup("prox-JKFG", ("J", "K", "F", "G")),
    )

    b = hard("B", 7.0, 6.0)
    c = hard("C", 5.0, 7.0)
    top = HierarchyNode("TOP", modules=[b, c], children=[sym_node, prox_node])

    nets = (
        Net("n1", ("B", "D", "J")),
        Net("n2", ("C", "E", "K")),
        Net("n3", ("A", "H1", "I1")),
        Net("n4", ("F", "G")),
        Net("n5", ("D", "E", "A"), weight=2.0),
    )
    return Circuit("fig2-design", top, nets=nets)


# ---------------------------------------------------------------------------
# Table I circuits — synthesized stand-ins with matching module counts
# ---------------------------------------------------------------------------

#: Module counts of the six circuits in Table I of the paper.
TABLE1_MODULE_COUNTS = {
    "miller_v2": 13,
    "comparator_v2": 10,
    "folded_cascode": 22,
    "buffer": 46,
    "biasynth": 65,
    "lnamixbias": 110,
}

_TABLE1_SEEDS = {
    "miller_v2": 101,
    "comparator_v2": 202,
    "folded_cascode": 303,
    "buffer": 404,
    "biasynth": 505,
    "lnamixbias": 606,
}


def _random_device(rng: random.Random, name: str) -> Device:
    """A device with analog-typical random dimensions."""
    roll = rng.random()
    if roll < 0.62:
        dtype = DeviceType.NMOS if rng.random() < 0.5 else DeviceType.PMOS
        return Device(
            name,
            dtype,
            width=rng.uniform(2.0, 40.0),
            length=rng.choice([0.35, 0.5, 1.0, 2.0]),
            fingers=rng.choice([1, 1, 2, 4]),
            model=f"{dtype.value}-m{rng.randrange(3)}",
        )
    if roll < 0.80:
        return Device(name, DeviceType.CAPACITOR, value=rng.uniform(100.0, 2000.0))
    return Device(name, DeviceType.RESISTOR, value=rng.uniform(500.0, 20000.0))


def _chunk_sizes(n: int, rng: random.Random, lo: int = 2, hi: int = 4) -> list[int]:
    """Partition ``n`` into chunks of size lo..hi (last chunk may be 1)."""
    sizes = []
    left = n
    while left > 0:
        size = min(left, rng.randint(lo, hi))
        sizes.append(size)
        left -= size
    return sizes


def synthesize_circuit(name: str, n_modules: int, seed: int) -> Circuit:
    """Synthesize a hierarchical analog circuit with ``n_modules`` modules.

    The construction mimics how the Table-I circuits are structured:
    modules are grouped into basic module sets of 2-4 devices; about half
    of the even-sized sets are differential (symmetry constraint with
    matched pair footprints); some sets are proximity clusters; the
    remaining are unconstrained.  Basic sets are then clustered into
    intermediate hierarchy nodes of fan-out 2-3 up to a single root.
    """
    rng = random.Random(seed)
    devices: list[Device] = []
    modules: list[Module] = []
    for i in range(n_modules):
        dev = _random_device(rng, f"{name}_m{i}")
        devices.append(dev)
        modules.append(dev.to_module(rotatable=not dev.is_mos))

    # --- basic module sets ---------------------------------------------------
    set_sizes = _chunk_sizes(n_modules, rng)
    nodes: list[HierarchyNode] = []
    nets: list[Net] = []
    index = 0
    for set_id, size in enumerate(set_sizes):
        members = modules[index : index + size]
        index += size
        node = HierarchyNode(f"{name}_set{set_id}", modules=members)

        roll = rng.random()
        if size >= 2 and roll < 0.45:
            # Differential set: match pair footprints, add symmetry group.
            pairs = []
            selfsym = []
            for j in range(0, size - 1, 2):
                left, right = members[j], members[j + 1]
                right_matched = Module(right.name, left.variants, rotatable=False)
                left_matched = Module(left.name, left.variants, rotatable=False)
                members[j] = left_matched
                members[j + 1] = right_matched
                pairs.append((left.name, right.name))
            if size % 2 == 1:
                selfsym.append(members[-1].name)
            node.modules = members
            node.constraint = SymmetryGroup(
                f"sym-{name}-{set_id}", pairs=tuple(pairs), self_symmetric=tuple(selfsym)
            )
        elif size >= 2 and roll < 0.65:
            node.constraint = ProximityGroup(
                f"prox-{name}-{set_id}", tuple(m.name for m in members)
            )
        nodes.append(node)

        if size >= 2:
            nets.append(Net(f"{name}_local{set_id}", tuple(m.name for m in members)))

    # Rebuild the flat module list after matching replacements.
    modules = [m for node in nodes for m in node.modules]

    # --- intermediate hierarchy ------------------------------------------------
    level = 0
    while len(nodes) > 1:
        grouped: list[HierarchyNode] = []
        i = 0
        while i < len(nodes):
            fanout = min(len(nodes) - i, rng.randint(2, 3))
            if fanout == 1:
                grouped[-1].children.append(nodes[i])
            else:
                grouped.append(
                    HierarchyNode(
                        f"{name}_lvl{level}_{len(grouped)}",
                        children=nodes[i : i + fanout],
                    )
                )
            i += fanout
        nodes = grouped
        level += 1
    root = nodes[0]
    root.name = name

    # --- global nets ------------------------------------------------------------
    module_names = [m.name for m in modules]
    if n_modules >= 2:
        for g in range(max(1, n_modules // 3)):
            k = rng.randint(2, min(4, n_modules))
            pins = tuple(rng.sample(module_names, k))
            nets.append(Net(f"{name}_glob{g}", pins))

    circuit = Circuit(name, root, nets=tuple(nets), devices=tuple(devices))
    return circuit


def table1_circuit(key: str) -> Circuit:
    """One of the six Table-I circuits by key (see TABLE1_MODULE_COUNTS)."""
    if key not in TABLE1_MODULE_COUNTS:
        raise KeyError(f"unknown Table-I circuit {key!r}")
    return synthesize_circuit(key, TABLE1_MODULE_COUNTS[key], _TABLE1_SEEDS[key])


def table1_circuits() -> list[Circuit]:
    """All six Table-I circuits in paper order."""
    return [table1_circuit(k) for k in TABLE1_MODULE_COUNTS]


def simple_testcase(n: int, seed: int = 0) -> Circuit:
    """Small synthetic circuit for unit tests."""
    return synthesize_circuit(f"test{n}", n, seed)


def sized_folded_cascode() -> Circuit:
    """The section-V flow's output as a placement problem: devices sized
    by the layout-aware loop, symmetry groups per pair.  Deterministic
    (fixed sizing seed); the ~1s sizing anneal is memoized by the
    workload registry's build cache (:mod:`repro.workloads.registry`),
    not here — resolve through the registry to share the cached build.
    Imported lazily to keep repro.circuit import-independent of
    repro.sizing."""
    from ..sizing import layout_aware_sizing, sizing_to_circuit

    return sizing_to_circuit(layout_aware_sizing(seed=1).sizing)


def circuit_names() -> tuple[str, ...]:
    """Names accepted by :func:`circuit_by_name`, sorted.

    Delegates to the workload registry (the single source of truth for
    the built-in set) the same way the :func:`circuit_by_name` shim
    does, so the two can never drift.
    """
    from ..workloads import workload_names

    return workload_names()


def circuit_by_name(name: str) -> Circuit:
    """Deprecated: resolve through the workload registry instead.

    This was the benchmark lookup before the workload subsystem; it now
    delegates to :func:`repro.workloads.resolve_workload`, which also
    understands generated (``gen:...``) and on-disk (``file:...``)
    workloads.  Kept as a shim so old call sites keep working; new code
    should import the registry directly.
    """
    warnings.warn(
        "circuit_by_name() is deprecated; use "
        "repro.workloads.resolve_workload() instead",
        DeprecationWarning,
        stacklevel=2,
    )
    from ..workloads import resolve_workload

    return resolve_workload(name)
