"""Unified cost subsystem: one declarative objective for every engine.

The paper's flow optimizes a single weighted objective — wirelength +
area/aspect + constraint penalties — no matter which topological
representation (sequence-pair, B*-tree forest, slicing tree) anneals
it.  This package makes that objective a first-class, *shared* layer:

``hpwl``
    Net resolution, full HPWL evaluation and :class:`DeltaHPWL` — the
    incremental per-net cache every delta path runs on.
``terms``
    The pluggable :class:`CostTerm` catalog: area, wirelength, aspect,
    outline, proximity and constraint-violation penalties.
``model``
    :class:`CostModel` (ordered term composition, full + breakdown +
    boundary evaluation), :class:`CostEvaluator` (the delta-capable
    ``reset/propose/commit/rollback`` session), the
    :func:`model_for_config` builder every placer uses, and
    :func:`reference_model` — the engine-agnostic yardstick the
    portfolio ranks walks with.

All four placers, both incremental B*-tree engines, the packing kernel
and the portfolio consume this package; no placer-private cost code
remains.  Totals are bit-identical to the legacy per-placer objectives
(``tests/cost/`` locks this property-style), so annealed trajectories
are unchanged — one objective, four search engines.
"""

from .hpwl import DeltaHPWL, ResolvedNet, hpwl_of, net_hpwl, resolve_nets
from .model import (
    DEFAULT_TARGET_ASPECT,
    DEFAULT_WEIGHTS,
    OUTLINE_WEIGHT,
    TERM_NAMES,
    VIOLATION_WEIGHT,
    CostEvaluator,
    CostModel,
    area_scale_of,
    check_term_name,
    model_for_config,
    reference_model,
    weight_overrides,
)
from .terms import (
    AreaTerm,
    AspectTerm,
    CostTerm,
    HPWLTerm,
    OutlineTerm,
    ProximityTerm,
    ViolationTerm,
    proximity_satisfied,
)

__all__ = [
    "AreaTerm",
    "AspectTerm",
    "CostEvaluator",
    "CostModel",
    "CostTerm",
    "DEFAULT_TARGET_ASPECT",
    "DEFAULT_WEIGHTS",
    "DeltaHPWL",
    "HPWLTerm",
    "OUTLINE_WEIGHT",
    "OutlineTerm",
    "ProximityTerm",
    "ResolvedNet",
    "TERM_NAMES",
    "VIOLATION_WEIGHT",
    "ViolationTerm",
    "area_scale_of",
    "check_term_name",
    "hpwl_of",
    "model_for_config",
    "net_hpwl",
    "proximity_satisfied",
    "reference_model",
    "resolve_nets",
    "weight_overrides",
]
