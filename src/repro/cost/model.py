"""The unified cost model: one declarative objective, many engines.

:class:`CostModel` composes an ordered tuple of
:class:`~repro.cost.CostTerm`\\ s into the single weighted objective
every placer anneals (paper: wirelength + area/aspect + constraint
penalties, independent of the topological representation exploring it).
The same model instance serves three tiers:

* **hot loop** — :meth:`CostModel.evaluate` over a flat coordinate
  table, optionally fed precomputed inputs (a maintained HPWL total, a
  bounding box read off the packing skyline, an explicit shape area);
* **delta protocol** — :meth:`CostModel.evaluator` returns a
  :class:`CostEvaluator` whose ``reset / propose / commit / rollback``
  calls keep every delta-capable term's cache in lockstep with the
  ``propose -> commit/rollback`` protocol of
  :class:`~repro.anneal.IncrementalAnnealer`;
* **boundary** — :meth:`CostModel.evaluate_placement` scores a rich
  :class:`~repro.geometry.Placement` (identical floats: the flattening
  mirrors the rich arithmetic bit for bit), which is how the portfolio
  ranks finished walks through :func:`reference_model`.

:func:`model_for_config` builds the per-placer default models: it reads
the weight fields off a placer config dataclass, so a config *is* the
declaration of its objective — `bstar`/`hbtree` get area + wirelength +
aspect + proximity, `seqpair` area + wirelength + aspect, `slicing`
area + wirelength — with totals bit-identical to the placer-private
cost code this module replaced (property-locked in ``tests/cost/``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Sequence

from ..perf.coords import bounding_of, placement_to_coords
from .terms import (
    EMPTY_BOUNDING,
    AreaTerm,
    AspectTerm,
    CostTerm,
    HPWLTerm,
    OutlineTerm,
    ProximityTerm,
    ViolationTerm,
)

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from ..circuit import Circuit, ProximityGroup
    from ..geometry import ModuleSet, Net, Placement
    from ..perf.coords import Coords

#: Canonical default weights of the paper's objective.  The placer
#: configs (`BStarPlacerConfig`, seqpair's `PlacerConfig`) default their
#: weight fields to these values, and :func:`reference_model` ranks
#: portfolio walks with them — one source of truth for "the" objective.
DEFAULT_WEIGHTS: dict[str, float] = {
    "area": 1.0,
    "wirelength": 0.5,
    "aspect": 0.1,
    "proximity": 2.0,
}

#: default aspect-ratio target (square)
DEFAULT_TARGET_ASPECT = 1.0

#: reference-model penalty per violated constraint — matches the weight
#: the default objective already charges for an unsatisfied proximity
#: group, so every constraint kind is charged exactly once at one rate
VIOLATION_WEIGHT = DEFAULT_WEIGHTS["proximity"]

#: reference-model weight of the fixed-outline term, charged only for
#: circuits that declare a die outline (``Circuit.outline``); same rate
#: as a violated constraint — spilling the die is a broken promise, not
#: a soft preference
OUTLINE_WEIGHT = VIOLATION_WEIGHT

#: weight fields a placer config may expose, in canonical term order
TERM_NAMES = ("area", "wirelength", "aspect", "proximity")


def check_term_name(term: str) -> str:
    """Validate a user-facing term name against the weight catalog.

    One message, one place: :func:`weight_overrides` and the CLI's
    ``--cost-weights`` parser both report unknown terms through this.
    """
    if term not in TERM_NAMES:
        raise ValueError(
            f"unknown cost term {term!r}; try: {', '.join(TERM_NAMES)}"
        )
    return term


def area_scale_of(modules: ModuleSet) -> float:
    """The normalization scale shared by every model over ``modules``."""
    return max(modules.total_module_area(), 1e-12)


class CostModel:
    """An ordered, declarative composition of cost terms.

    Construct directly from terms for bespoke objectives, or through
    :func:`model_for_config` / :func:`reference_model` for the standard
    ones.  Term order is evaluation order — float accumulation is not
    associative, and trajectories are bit-reproducible only because the
    order is part of the model's identity.
    """

    def __init__(self, terms: Iterable[CostTerm]) -> None:
        self._terms = tuple(terms)
        if not self._terms:
            raise ValueError("a cost model needs at least one term")
        by_name: dict[str, CostTerm] = {}
        for term in self._terms:
            if term.name in by_name:
                raise ValueError(f"duplicate cost term {term.name!r}")
            by_name[term.name] = term
        self._by_name = by_name
        # hot-loop fast path: a tuple of bound accumulate methods, so
        # evaluate() pays one call per term and no attribute lookups
        self._accumulators = tuple(t.accumulate for t in self._terms)
        hpwl_term = by_name.get("wirelength")
        self._hpwl_term = hpwl_term if isinstance(hpwl_term, HPWLTerm) else None
        # bounding-box demand, resolved once: "always" terms force the
        # computation whenever active; "area" terms only when no
        # explicit area is supplied (the slicing model never computes a
        # bounding box, exactly like its legacy objective)
        self._bounding_always = any(
            t.bounding_role == "always" and t.active for t in self._terms
        )
        self._bounding_for_area = any(
            t.bounding_role == "area" and t.active for t in self._terms
        )

    # -- introspection -------------------------------------------------------

    @property
    def terms(self) -> tuple[CostTerm, ...]:
        return self._terms

    def term(self, name: str) -> CostTerm:
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(
                f"no cost term {name!r}; this model has: "
                f"{', '.join(t.name for t in self._terms)}"
            ) from None

    @property
    def weights(self) -> dict[str, float]:
        """Term name -> weight, in evaluation order."""
        return {t.name: t.weight for t in self._terms}

    @property
    def hpwl_term(self) -> HPWLTerm | None:
        """The wirelength term, when the model carries one."""
        return self._hpwl_term

    @property
    def tracks_wirelength(self) -> bool:
        """Whether an active wirelength term is worth maintaining
        incrementally (mirrors the engines' legacy ``track_wl`` gate)."""
        return self._hpwl_term is not None and self._hpwl_term.active

    @property
    def resolved_nets(self):
        """Pre-resolved nets of the wirelength term (``[]`` without one)."""
        return self._hpwl_term.resolved if self._hpwl_term is not None else []

    def describe(self) -> str:
        """One line per term, for reports and docs."""
        return "\n".join(t.describe() for t in self._terms)

    # -- full evaluation -----------------------------------------------------

    def _resolve_bounding(self, coords, bounding, area):
        """The bounding box the terms will consult, computed only when
        some active term demands it (shared by evaluate/breakdown)."""
        if bounding is None and (
            self._bounding_always or (area is None and self._bounding_for_area)
        ):
            return bounding_of(coords.values()) if coords else EMPTY_BOUNDING
        return bounding

    def evaluate(
        self,
        coords: Coords,
        hpwl: float | None = None,
        bounding: tuple[float, float, float, float] | None = None,
        area: float | None = None,
        placement: Placement | None = None,
    ) -> float:
        """Total cost of ``coords``; precomputed inputs are trusted.

        A supplied ``hpwl`` must equal ``hpwl_of(resolved_nets,
        coords)`` bit for bit (:class:`~repro.cost.DeltaHPWL`
        guarantees this), and a supplied ``bounding`` must equal
        ``bounding_of(coords.values())`` the same way (the B*-tree
        engine reads it off the packing skyline) — the result is then
        identical either way, just cheaper.
        """
        bounding = self._resolve_bounding(coords, bounding, area)
        total = 0.0
        for accumulate in self._accumulators:
            total = accumulate(total, coords, hpwl, bounding, area, placement)
        return total

    def __call__(self, coords: Coords) -> float:
        return self.evaluate(coords)

    def breakdown(
        self,
        coords: Coords,
        hpwl: float | None = None,
        bounding: tuple[float, float, float, float] | None = None,
        area: float | None = None,
        placement: Placement | None = None,
    ) -> dict[str, float]:
        """Per-term weighted contributions, in evaluation order.

        Reporting tier: the dict's values sum to (within float
        reassociation) :meth:`evaluate`; authoritative totals always
        come from :meth:`evaluate` itself.
        """
        bounding = self._resolve_bounding(coords, bounding, area)
        return {
            t.name: t.contribution(coords, hpwl, bounding, area, placement)
            for t in self._terms
        }

    # -- boundary tier -------------------------------------------------------

    def evaluate_placement(self, placement: Placement) -> float:
        """Score a rich placement (same floats as the flat tier)."""
        return self.evaluate(placement_to_coords(placement), placement=placement)

    def breakdown_placement(self, placement: Placement) -> dict[str, float]:
        """Per-term contributions for a rich placement."""
        return self.breakdown(placement_to_coords(placement), placement=placement)

    # -- delta protocol ------------------------------------------------------

    def evaluator(self) -> "CostEvaluator":
        """A fresh delta-capable evaluation session over this model."""
        return CostEvaluator(self)


class CostEvaluator:
    """Delta-capable evaluation session: the model-side half of the
    ``propose -> delta-eval -> commit/rollback`` protocol.

    Owns one incremental helper per delta-capable term (today: the
    wirelength term's :class:`~repro.cost.DeltaHPWL`) and keeps it in
    lockstep with the annealing engine's accept/reject decisions.
    Totals are bit-identical to :meth:`CostModel.evaluate` over the
    same table — the delta path changes cost, never answers
    (property-locked in ``tests/cost/``).

    Engines call:

    * :meth:`reset` when adopting a state (full rebuild);
    * :meth:`propose` once per perturbation — with ``moved`` when the
      engine tracked which modules changed (dirty-suffix repack), or
      without it to diff against the last committed table;
    * exactly one of :meth:`commit` / :meth:`rollback` afterwards.
      Both are safe to call when the pending proposal never reached
      :meth:`propose` (e.g. an infeasible pack scored ``inf``): the
      underlying caches no-op, exactly like the legacy engines'
      conditional bookkeeping.
    """

    def __init__(self, model: CostModel) -> None:
        self._model = model
        self._delta = model.hpwl_term.delta() if model.tracks_wirelength else None
        # pre-bound hot-loop methods: one annealing step costs exactly
        # one propose() here, so attribute chains are hoisted
        self._evaluate = model.evaluate
        self._delta_propose = self._delta.propose if self._delta is not None else None

    @property
    def model(self) -> CostModel:
        return self._model

    def reset(
        self,
        coords: Coords,
        *,
        bounding: tuple[float, float, float, float] | None = None,
        area: float | None = None,
    ) -> float:
        """Adopt ``coords`` as the committed state; return its cost."""
        delta = self._delta
        hpwl = delta.reset(coords) if delta is not None else None
        return self._evaluate(coords, hpwl, bounding, area)

    def propose(
        self,
        coords: Coords,
        moved: Iterable[str] | None = None,
        bounding: tuple[float, float, float, float] | None = None,
        area: float | None = None,
    ) -> float:
        """Score a candidate table; follow with commit() or rollback()."""
        delta_propose = self._delta_propose
        hpwl = delta_propose(coords, moved) if delta_propose is not None else None
        return self._evaluate(coords, hpwl, bounding, area)

    def commit(self) -> None:
        """Keep the pending proposal (no-op when none is pending)."""
        if self._delta is not None:
            self._delta.commit()

    def rollback(self) -> None:
        """Drop the pending proposal, restoring every term cache."""
        if self._delta is not None:
            self._delta.rollback()


def model_for_config(
    modules: ModuleSet,
    nets: tuple[Net, ...],
    proximity: tuple[ProximityGroup, ...],
    config,
) -> CostModel:
    """The standard model a placer config declares.

    ``config`` is duck-typed: ``area_weight`` and ``wirelength_weight``
    are required; ``aspect_weight`` (with ``target_aspect``) and
    ``proximity_weight`` contribute their terms only when the config
    carries them.  Term order is the canonical area -> wirelength ->
    aspect -> proximity, matching the legacy accumulation order of
    every placer.
    """
    scale = area_scale_of(modules)
    names = modules.names()
    terms: list[CostTerm] = [
        AreaTerm(config.area_weight, scale),
        HPWLTerm(config.wirelength_weight, tuple(nets), names, scale),
    ]
    aspect_weight = getattr(config, "aspect_weight", None)
    if aspect_weight is not None:
        terms.append(
            AspectTerm(
                aspect_weight,
                getattr(config, "target_aspect", DEFAULT_TARGET_ASPECT),
            )
        )
    proximity_weight = getattr(config, "proximity_weight", None)
    if proximity_weight is not None:
        terms.append(ProximityTerm(proximity_weight, tuple(proximity)))
    return CostModel(terms)


def reference_model(
    circuit: Circuit, *, violation_weight: float = VIOLATION_WEIGHT
) -> CostModel:
    """One engine-agnostic yardstick over finished placements.

    Each engine anneals its *own* objective (slicing, for instance,
    carries no aspect or proximity terms), so internal best costs are
    not comparable across engines.  The portfolio therefore ranks
    placements with this model: area, wirelength and aspect under the
    canonical :data:`DEFAULT_WEIGHTS`, plus a :class:`ViolationTerm`
    charging ``violation_weight`` per violated constraint of *any*
    kind — so engines that ignore symmetry (flat ``bstar``,
    ``slicing``) cannot outrank a constraint-clean placement on raw
    compactness.  Proximity stays out of the weighted terms: the
    violation term already reports unsatisfied proximity groups, so
    each constraint is charged exactly once.

    Circuits that declare a fixed die outline (``circuit.outline``,
    e.g. the workload generator's fixed-outline scenarios) additionally
    carry an :class:`~repro.cost.OutlineTerm` at :data:`OUTLINE_WEIGHT`
    — outline-free circuits get the exact historical model.

    Evaluate through :meth:`CostModel.evaluate_placement` /
    :meth:`CostModel.breakdown_placement` (the violation term needs the
    rich placement).
    """
    modules = circuit.modules()
    scale = area_scale_of(modules)
    terms: list[CostTerm] = [
        AreaTerm(DEFAULT_WEIGHTS["area"], scale),
        HPWLTerm(
            DEFAULT_WEIGHTS["wirelength"], circuit.nets, modules.names(), scale
        ),
        AspectTerm(DEFAULT_WEIGHTS["aspect"], DEFAULT_TARGET_ASPECT),
    ]
    if circuit.outline is not None:
        terms.append(OutlineTerm(OUTLINE_WEIGHT, circuit.outline))
    terms.append(ViolationTerm(violation_weight, circuit.constraints()))
    return CostModel(terms)


def weight_overrides(
    spec: dict[str, float] | Sequence[tuple[str, float]], config_cls
) -> dict[str, float]:
    """Translate ``term -> weight`` into config-field overrides.

    Validates the term names against :data:`TERM_NAMES` and against the
    fields ``config_cls`` actually declares, so callers (the CLI's
    ``--cost-weights``) get one clean error instead of a dataclass
    ``TypeError``.
    """
    import dataclasses

    items = spec.items() if isinstance(spec, dict) else spec
    fields = {f.name for f in dataclasses.fields(config_cls)}
    supported = [t for t in TERM_NAMES if f"{t}_weight" in fields]
    out: dict[str, float] = {}
    for term, value in items:
        check_term_name(term)
        field = f"{term}_weight"
        if field not in fields:
            raise ValueError(
                f"{config_cls.__name__} has no {term!r} cost term; "
                f"it supports: {', '.join(supported)}"
            )
        out[field] = float(value)
    return out
