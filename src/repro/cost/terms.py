"""The cost-term catalog: pluggable objectives for placement annealing.

A :class:`CostTerm` is one weighted component of a placement objective.
Terms are *declarative* — each carries its name, weight and whatever
precomputed scales it needs — and a :class:`~repro.cost.CostModel` is
nothing but an ordered tuple of them.  Two evaluation tiers:

* **full** — :meth:`CostTerm.accumulate` folds the term into a running
  total given a flat coordinate table (plus optional precomputed
  inputs: the bounding box, an explicit area, the incremental HPWL
  total, the rich placement for boundary-tier terms);
* **delta** — a term that can be maintained incrementally returns a
  stateful helper from :meth:`CostTerm.delta` (today:
  :class:`HPWLTerm` -> :class:`~repro.cost.DeltaHPWL`); stateless terms
  return ``None`` and are simply recomputed, which is exact and — for
  area/aspect off a maintained bounding box — already O(1).

Bit-identity contract
=====================

``accumulate`` must reproduce the float operations of the legacy
per-placer objectives *operation for operation* (same multiplies, same
divides, same accumulation order), so that a model built from these
terms anneals the exact trajectories the placer-private cost code did.
That is why ``accumulate`` folds into the running total instead of
returning a contribution to be summed: :class:`ProximityTerm` adds its
weight once per unsatisfied group — separate additions, exactly like
the legacy loop — which is *not* the same float as adding
``weight * count`` in one step.  ``tests/cost/`` locks all of this
property-style against replicas of the legacy formulas.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from ..circuit.constraints import ConstraintSet, ProximityGroup, rects_connected
from ..geometry import Rect
from .hpwl import DeltaHPWL, hpwl_of, resolve_nets

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from ..geometry import Net, Placement
    from ..perf.coords import Coords

#: bounding box of an empty coordinate table (degenerate at the origin)
EMPTY_BOUNDING = (0.0, 0.0, 0.0, 0.0)


def proximity_satisfied(group: ProximityGroup, coords: Coords, *, tol: float = 1e-6) -> bool:
    """Coordinate-table twin of :meth:`ProximityGroup.is_satisfied`."""
    rects = [Rect(*coords[m]) for m in group.members_ if m in coords]
    if len(rects) <= 1:
        return True
    return rects_connected(rects, group.margin + tol)


class CostTerm:
    """One weighted component of a placement objective.

    Subclasses implement :meth:`accumulate`; everything else (naming,
    activity gating, delta support, description) has shared defaults.
    ``accumulate`` receives positional inputs so the hot loop pays no
    keyword overhead:

    ``coords``
        flat ``name -> (x0, y0, x1, y1)`` table (may be empty for
        area-only evaluations that pass ``area`` explicitly);
    ``hpwl``
        incrementally maintained weighted-HPWL total, or ``None``
        (terms that consume it must recompute when absent);
    ``bounding``
        ``(x0, y0, x1, y1)`` of the whole table, or ``None`` when no
        term in the model asked for it;
    ``area``
        explicit chip area overriding the bounding-box product (the
        slicing placer scores the selected shape's area);
    ``placement``
        rich :class:`~repro.geometry.Placement` for boundary-tier terms
        (:class:`ViolationTerm`); ``None`` inside annealing hot loops.
    """

    #: how the term consumes the model-level bounding box:
    #: ``None`` (never), ``"area"`` (only when no explicit area is
    #: given) or ``"always"`` (whenever the term is active)
    bounding_role: str | None = None

    def __init__(self, name: str, weight: float) -> None:
        self.name = name
        self.weight = weight

    @property
    def active(self) -> bool:
        """Whether the term contributes at all (legacy gating parity:
        a zero weight skips the term's arithmetic entirely)."""
        return bool(self.weight)

    def accumulate(
        self,
        total: float,
        coords: Coords,
        hpwl: float | None,
        bounding: tuple[float, float, float, float] | None,
        area: float | None,
        placement: Placement | None,
    ) -> float:
        """Fold this term into ``total`` and return the new total."""
        raise NotImplementedError

    def contribution(
        self,
        coords: Coords,
        hpwl: float | None = None,
        bounding: tuple[float, float, float, float] | None = None,
        area: float | None = None,
        placement: Placement | None = None,
    ) -> float:
        """This term's weighted contribution in isolation (reporting
        tier; totals are always produced by :meth:`accumulate`)."""
        return self.accumulate(0.0, coords, hpwl, bounding, area, placement)

    def delta(self) -> DeltaHPWL | None:
        """A fresh incremental helper, or ``None`` for stateless terms."""
        return None

    def describe(self) -> str:
        """One-line term description for reports and ``docs/cost.md``."""
        return f"{self.name} (weight {self.weight:g})"


class AreaTerm(CostTerm):
    """Chip area of the bounding box, normalized by total module area.

    ``weight * (width * height) / area_scale`` — or, when an explicit
    ``area`` is supplied (slicing scores the Stockmeyer-selected shape,
    not the union of blocks), ``weight * area / area_scale``.
    """

    bounding_role = "area"

    def __init__(self, weight: float, area_scale: float) -> None:
        super().__init__("area", weight)
        self.area_scale = area_scale

    @property
    def active(self) -> bool:
        # legacy parity: every placer computes its area term
        # unconditionally (a zero weight still multiplies through)
        return True

    def accumulate(self, total, coords, hpwl, bounding, area, placement):
        if area is None:
            bx0, by0, bx1, by1 = bounding
            area = (bx1 - bx0) * (by1 - by0)
        return total + self.weight * area / self.area_scale


class HPWLTerm(CostTerm):
    """Weighted half-perimeter wirelength over module centers.

    Nets are resolved against the placeable names once; the scale is
    ``sqrt(area_scale) * net count`` so the weight stays
    size-independent.  Full evaluation is :func:`~repro.cost.hpwl_of`;
    the delta path is :class:`~repro.cost.DeltaHPWL`, handed in by the
    engines as the maintained ``hpwl`` input.
    """

    def __init__(
        self,
        weight: float,
        nets: tuple[Net, ...],
        names: Sequence[str],
        area_scale: float,
    ) -> None:
        super().__init__("wirelength", weight)
        nets = tuple(nets)
        self._names = tuple(names)
        self._has_nets = bool(nets)
        self.resolved = resolve_nets(nets, self._names)
        self.wl_scale = max(area_scale**0.5 * max(len(nets), 1), 1e-12)

    @property
    def active(self) -> bool:
        # legacy gate: `if nets and cfg.wirelength_weight:`
        return self._has_nets and bool(self.weight)

    def accumulate(self, total, coords, hpwl, bounding, area, placement):
        if not (self._has_nets and self.weight):
            return total
        if hpwl is None:
            hpwl = hpwl_of(self.resolved, coords)
        return total + self.weight * hpwl / self.wl_scale

    def delta(self) -> DeltaHPWL:
        """A fresh per-net incremental HPWL cache for this term's nets."""
        return DeltaHPWL(self.resolved, self._names)


class AspectTerm(CostTerm):
    """Penalty for deviating from a target aspect ratio.

    ``weight * max(0, max(h/w, w/h) / target - 1)`` over the bounding
    box; inactive on degenerate (zero-extent) boxes.
    """

    bounding_role = "always"

    def __init__(self, weight: float, target_aspect: float = 1.0) -> None:
        super().__init__("aspect", weight)
        self.target_aspect = target_aspect

    def accumulate(self, total, coords, hpwl, bounding, area, placement):
        if not self.weight:
            return total
        bx0, by0, bx1, by1 = bounding
        width = bx1 - bx0
        height = by1 - by0
        if width > 0 and height > 0:
            ratio = height / width
            deviation = max(ratio, 1.0 / ratio) / max(self.target_aspect, 1e-12)
            total = total + self.weight * max(0.0, deviation - 1.0)
        return total


class ProximityTerm(CostTerm):
    """Flat penalty per unsatisfied proximity group.

    Adds ``weight`` once per group whose members do not form a single
    connected cluster — separate additions in group order, replicating
    the legacy accumulation bit for bit.
    """

    def __init__(self, weight: float, groups: tuple[ProximityGroup, ...]) -> None:
        super().__init__("proximity", weight)
        self.groups = tuple(groups)

    def accumulate(self, total, coords, hpwl, bounding, area, placement):
        if self.weight:
            for group in self.groups:
                if not proximity_satisfied(group, coords):
                    total += self.weight
        return total


class OutlineTerm(CostTerm):
    """Penalty for spilling over a fixed die outline.

    ``weight * (max(0, w - W)/W + max(0, h - H)/H)`` for an outline of
    ``W x H`` — zero whenever the packing fits.  Not part of any
    placer's default objective (the paper's flow is outline-free); add
    it to a model to run fixed-outline floorplanning experiments.
    """

    bounding_role = "always"

    def __init__(self, weight: float, outline: tuple[float, float]) -> None:
        super().__init__("outline", weight)
        width, height = outline
        if width <= 0 or height <= 0:
            raise ValueError(f"outline must be positive, got {outline!r}")
        self.outline = (float(width), float(height))

    def accumulate(self, total, coords, hpwl, bounding, area, placement):
        if not self.weight:
            return total
        bx0, by0, bx1, by1 = bounding
        max_w, max_h = self.outline
        excess = max(0.0, (bx1 - bx0) - max_w) / max_w + max(
            0.0, (by1 - by0) - max_h
        ) / max_h
        return total + self.weight * excess


class ViolationTerm(CostTerm):
    """Flat penalty per violated layout constraint (boundary tier).

    Charges ``weight * len(constraints.violations(placement))`` —
    symmetry, common-centroid and proximity groups alike — so engines
    that ignore constraint classes by construction cannot outrank a
    constraint-clean placement on raw compactness.  Needs the rich
    :class:`~repro.geometry.Placement` (constraint validators measure
    axes and centroids), so it belongs in boundary-tier models like
    :func:`~repro.cost.reference_model`, never in an annealing hot
    loop.
    """

    def __init__(self, weight: float, constraints: ConstraintSet) -> None:
        super().__init__("violations", weight)
        self.constraints = constraints

    def accumulate(self, total, coords, hpwl, bounding, area, placement):
        if not self.weight:
            return total
        if placement is None:
            raise ValueError(
                "the 'violations' term needs a rich Placement: evaluate "
                "through CostModel.evaluate_placement(), not over raw coords"
            )
        return total + self.weight * len(self.constraints.violations(placement))
