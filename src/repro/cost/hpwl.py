"""Wirelength evaluation: full and incremental (delta) HPWL.

This is the wirelength backbone of the unified cost layer.  Net pins
are resolved to name lists once up front (dropping pins that can never
be placed and nets left with fewer than two pins — those contribute
exactly ``0.0`` either way), so each evaluation is a single pass of
float arithmetic over a flat coordinate table.

:class:`DeltaHPWL` is the *incremental* layer on top: it keeps one
cached value per net plus a module -> incident-nets adjacency,
recomputes only the nets touching modules that actually moved, and
re-sums the per-net cache in net order — so the total stays bit
identical to :func:`hpwl_of` while the per-step work shrinks to the
perturbation's neighborhood.  When a move displaces most of the design
it falls back to a numpy-vectorized batch recompute over precomputed
pin-index arrays (IEEE-identical per-net values, same summation order).
It is the delta path behind :class:`repro.cost.HPWLTerm` and follows
the same ``propose -> commit/rollback`` protocol as the annealing
engines that drive it.

Every formula reproduces the object path operation for operation —
``(max - min) + (max - min)`` per net over ``(x0 + x1) / 2`` centers —
so totals agree bit for bit with :func:`repro.geometry.total_hpwl`
over the equivalent :class:`~repro.geometry.Placement` (see
``tests/perf/`` and ``tests/cost/``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Sequence

try:  # numpy is a declared dependency, but keep the scalar path self-sufficient
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

if TYPE_CHECKING:  # pragma: no cover - repro.perf imports back into this
    # package, so the Coords/Net aliases must stay annotation-only here
    from ..geometry import Net
    from ..perf.coords import Coords

#: A net resolved against the placeable names: (weight, pin names).
ResolvedNet = tuple[float, tuple[str, ...]]


def pin_index_tables(resolved: Sequence[ResolvedNet], names: Sequence[str]):
    """Precompute numpy pin-index arrays for vectorized per-net HPWL.

    Nets split into the two-pin fast path (parallel endpoint-row arrays)
    and a CSR-style layout for multi-pin nets (``flat`` pin rows cut at
    ``offsets``).  ``*_pos`` carries each net's position in ``resolved``
    so per-net values scatter back into net order, keeping totals
    summable in the exact :func:`hpwl_of` accumulation order.  Shared by
    :class:`DeltaHPWL`'s batch recompute and the array tier
    (:mod:`repro.perf.vector`).

    Returns ``(two_a, two_b, two_w, two_pos, flat, offsets, multi_w,
    multi_pos)``; requires numpy.
    """
    if _np is None:  # pragma: no cover - numpy is a declared dependency
        raise RuntimeError("numpy is required for pin-index tables")
    index = {name: i for i, name in enumerate(names)}
    two_a: list[int] = []
    two_b: list[int] = []
    two_w: list[float] = []
    two_pos: list[int] = []
    flat: list[int] = []
    offsets: list[int] = []
    multi_w: list[float] = []
    multi_pos: list[int] = []
    for i, (weight, pins) in enumerate(resolved):
        if len(pins) == 2:
            two_a.append(index[pins[0]])
            two_b.append(index[pins[1]])
            two_w.append(weight)
            two_pos.append(i)
        else:
            offsets.append(len(flat))
            flat.extend(index[p] for p in pins)
            multi_w.append(weight)
            multi_pos.append(i)
    as_i = lambda xs: _np.asarray(xs, dtype=_np.intp)  # noqa: E731
    as_f = lambda xs: _np.asarray(xs, dtype=_np.float64)  # noqa: E731
    return (
        as_i(two_a), as_i(two_b), as_f(two_w), as_i(two_pos),
        as_i(flat), as_i(offsets), as_f(multi_w), as_i(multi_pos),
    )


def resolve_nets(nets: Iterable[Net], names: Iterable[str]) -> list[ResolvedNet]:
    """Pre-resolve net pins against the set of placeable module names.

    Pins outside ``names`` are dropped (they can never appear in a
    placement over these modules); nets left with fewer than two pins
    always contribute zero wirelength and are dropped entirely.
    """
    known = set(names)
    resolved: list[ResolvedNet] = []
    for net in nets:
        pins = tuple(p for p in net.pins if p in known)
        if len(pins) >= 2:
            resolved.append((net.weight, pins))
    return resolved


def hpwl_of(resolved: Sequence[ResolvedNet], coords: Coords) -> float:
    """Weighted HPWL over module centers (mirrors :func:`total_hpwl`).

    Two-pin nets — the overwhelming majority in practice — take a
    branch-free fast path; the span |c1 - c2| equals max - min bit for
    bit, so the result is unchanged.
    """
    total = 0.0
    get = coords.get
    for weight, pins in resolved:
        if len(pins) == 2:
            a = get(pins[0])
            if a is None:
                continue
            b = get(pins[1])
            if b is None:
                continue
            ax0, ay0, ax1, ay1 = a
            bx0, by0, bx1, by1 = b
            cax = (ax0 + ax1) / 2.0
            cbx = (bx0 + bx1) / 2.0
            cay = (ay0 + ay1) / 2.0
            cby = (by0 + by1) / 2.0
            dx = cax - cbx if cax >= cbx else cbx - cax
            dy = cay - cby if cay >= cby else cby - cay
            total += weight * (dx + dy)
            continue
        min_x = max_x = min_y = max_y = 0.0
        count = 0
        for pin in pins:
            entry = get(pin)
            if entry is None:
                continue
            x0, y0, x1, y1 = entry
            cx = (x0 + x1) / 2.0
            cy = (y0 + y1) / 2.0
            if count == 0:
                min_x = max_x = cx
                min_y = max_y = cy
            else:
                if cx < min_x:
                    min_x = cx
                elif cx > max_x:
                    max_x = cx
                if cy < min_y:
                    min_y = cy
                elif cy > max_y:
                    max_y = cy
            count += 1
        if count >= 2:
            total += weight * ((max_x - min_x) + (max_y - min_y))
    return total


def net_hpwl(weight: float, pins: tuple[str, ...], coords: Coords) -> float:
    """One net's weighted HPWL — per-net twin of :func:`hpwl_of`.

    Returns exactly the term :func:`hpwl_of` would add for this net
    (``0.0`` when fewer than two pins are placed), so summing cached
    per-net values in net order reproduces the total bit for bit.
    """
    get = coords.get
    if len(pins) == 2:
        a = get(pins[0])
        if a is None:
            return 0.0
        b = get(pins[1])
        if b is None:
            return 0.0
        ax0, ay0, ax1, ay1 = a
        bx0, by0, bx1, by1 = b
        cax = (ax0 + ax1) / 2.0
        cbx = (bx0 + bx1) / 2.0
        cay = (ay0 + ay1) / 2.0
        cby = (by0 + by1) / 2.0
        dx = cax - cbx if cax >= cbx else cbx - cax
        dy = cay - cby if cay >= cby else cby - cay
        return weight * (dx + dy)
    min_x = max_x = min_y = max_y = 0.0
    count = 0
    for pin in pins:
        entry = get(pin)
        if entry is None:
            continue
        x0, y0, x1, y1 = entry
        cx = (x0 + x1) / 2.0
        cy = (y0 + y1) / 2.0
        if count == 0:
            min_x = max_x = cx
            min_y = max_y = cy
        else:
            if cx < min_x:
                min_x = cx
            elif cx > max_x:
                max_x = cx
            if cy < min_y:
                min_y = cy
            elif cy > max_y:
                max_y = cy
        count += 1
    if count >= 2:
        return weight * ((max_x - min_x) + (max_y - min_y))
    return 0.0


class DeltaHPWL:
    """Incremental weighted HPWL with commit/rollback semantics.

    Maintains one cached value per resolved net and a module ->
    incident-net adjacency.  A proposal recomputes only the nets
    touching moved modules (undo-logged), then re-sums the cache *in net
    order* — the float accumulation :func:`hpwl_of` performs — so totals
    are bit-identical to a from-scratch evaluation of the same table.

    Two proposal styles:

    * ``propose(coords, moved=names)`` — the caller knows which modules
      changed (the dirty-suffix B*-tree engine tracks them during the
      partial repack; ``coords`` may be the same dict mutated in place);
    * ``propose(coords)`` — diff ``coords`` against the last committed
      table entry by entry (placers that repack into a fresh dict each
      step, e.g. the HB*-tree forest and sequence-pair loops).

    When a proposal touches more than ``batch_fraction`` of the nets on
    a design with at least ``batch_min_nets`` of them, the whole cache
    is rebuilt through the numpy pin-index batch path instead (one
    vectorized pass; per-net values are IEEE-identical to the scalar
    path, and the total is still summed in net order).
    """

    def __init__(
        self,
        resolved: Sequence[ResolvedNet],
        names: Iterable[str],
        *,
        batch_fraction: float = 0.5,
        batch_min_nets: int = 192,
    ) -> None:
        self._resolved = list(resolved)
        self._names = list(names)
        self._batch_fraction = batch_fraction
        self._batch_min_nets = batch_min_nets
        adj: dict[str, list[int]] = {}
        for i, (_w, pins) in enumerate(self._resolved):
            for pin in pins:
                adj.setdefault(pin, []).append(i)
        self._adj: dict[str, tuple[int, ...]] = {
            name: tuple(nets) for name, nets in adj.items()
        }
        self._vals: list[float] = [0.0] * len(self._resolved)
        self._base: Coords | None = None
        # pending-proposal undo state: per-net log, or a whole-list swap
        self._log: list[tuple[int, float]] | None = None
        self._swapped_out: list[float] | None = None
        self._pending_base: Coords | None = None
        # numpy batch state, built lazily on first batch recompute: the
        # pin-index tables, the cached name -> row map they were built
        # under, and a preallocated (n, 4) gather buffer reused across
        # recomputes (rebuilding the array from a dict comprehension
        # each time dominated the batch path's cost)
        self._np_tables = None
        self._row_index: dict[str, int] | None = None
        self._np_buf = None

    # -- full recompute -----------------------------------------------------

    def reset(self, coords: Coords) -> float:
        """Rebuild the whole cache for ``coords`` and return the total."""
        self._log = None
        self._swapped_out = None
        self._pending_base = None
        if self._batch_usable(coords) and len(self._resolved) >= self._batch_min_nets:
            self._vals = self._batch_vals(coords)
        else:
            self._vals = [net_hpwl(w, pins, coords) for w, pins in self._resolved]
        self._base = coords
        return sum(self._vals)

    # -- propose / commit / rollback ---------------------------------------

    def propose(self, coords: Coords, moved: Iterable[str] | None = None) -> float:
        """Update the cache for a candidate table; return the new total.

        Must be followed by :meth:`commit` or :meth:`rollback` before
        the next proposal.
        """
        if self._log is not None or self._swapped_out is not None:
            raise RuntimeError("previous proposal not committed or rolled back")
        adj_get = self._adj.get
        affected: set[int] = set()
        if moved is None:
            base = self._base if self._base is not None else {}
            base_get = base.get
            for name, entry in coords.items():
                if base_get(name) != entry:
                    nets = adj_get(name)
                    if nets:
                        affected.update(nets)
        else:
            for name in moved:
                nets = adj_get(name)
                if nets:
                    affected.update(nets)
        n_nets = len(self._resolved)
        if (
            n_nets >= self._batch_min_nets
            and len(affected) > self._batch_fraction * n_nets
            and self._batch_usable(coords)
        ):
            self._swapped_out = self._vals
            self._vals = self._batch_vals(coords)
        else:
            log: list[tuple[int, float]] = []
            vals = self._vals
            resolved = self._resolved
            get = coords.get
            for i in affected:
                weight, pins = resolved[i]
                # inlined 2-pin fast path (the overwhelming majority);
                # arithmetic identical to hpwl_of / net_hpwl
                if len(pins) == 2:
                    a = get(pins[0])
                    b = get(pins[1])
                    if a is None or b is None:
                        new = 0.0
                    else:
                        ax0, ay0, ax1, ay1 = a
                        bx0, by0, bx1, by1 = b
                        cax = (ax0 + ax1) / 2.0
                        cbx = (bx0 + bx1) / 2.0
                        cay = (ay0 + ay1) / 2.0
                        cby = (by0 + by1) / 2.0
                        dx = cax - cbx if cax >= cbx else cbx - cax
                        dy = cay - cby if cay >= cby else cby - cay
                        new = weight * (dx + dy)
                else:
                    new = net_hpwl(weight, pins, coords)
                old = vals[i]
                if new != old:
                    log.append((i, old))
                    vals[i] = new
            self._log = log
        self._pending_base = coords
        return sum(self._vals)

    def commit(self) -> None:
        """Keep the pending proposal (no-op when none is pending)."""
        if self._pending_base is not None:
            self._base = self._pending_base
        self._log = None
        self._swapped_out = None
        self._pending_base = None

    def rollback(self) -> None:
        """Restore the cache to the last committed proposal."""
        if self._swapped_out is not None:
            self._vals = self._swapped_out
            self._swapped_out = None
        elif self._log is not None:
            vals = self._vals
            for i, old in reversed(self._log):
                vals[i] = old
            self._log = None
        self._pending_base = None

    def total(self) -> float:
        """The cached total (same accumulation order as :func:`hpwl_of`)."""
        return sum(self._vals)

    # -- numpy batch path ---------------------------------------------------

    def _batch_usable(self, coords: Coords) -> bool:
        # the vectorized path indexes every module unconditionally, so it
        # needs numpy and a complete coordinate table
        return _np is not None and len(coords) >= len(self._names)

    def _build_np_tables(self):
        self._row_index = {name: i for i, name in enumerate(self._names)}
        self._np_tables = pin_index_tables(self._resolved, self._names)
        return self._np_tables

    def _batch_vals(self, coords: Coords) -> list[float]:
        tables = self._np_tables or self._build_np_tables()
        two_a, two_b, two_w, two_pos, flat, offsets, multi_w, multi_pos = tables
        arr = self._np_buf
        if arr is None:
            arr = self._np_buf = _np.empty((len(self._names), 4), dtype=_np.float64)
        # gather through a flat python list into the preallocated
        # buffer's flat view: measurably faster than materializing a
        # fresh (n, 4) array from a dict comprehension every recompute
        entries: list[float] = []
        extend = entries.extend
        for name in self._names:
            extend(coords[name])
        arr.reshape(-1)[:] = entries
        cx = (arr[:, 0] + arr[:, 2]) / 2.0
        cy = (arr[:, 1] + arr[:, 3]) / 2.0
        vals = _np.zeros(len(self._resolved), dtype=_np.float64)
        if len(two_pos):
            vals[two_pos] = two_w * (
                _np.abs(cx[two_a] - cx[two_b]) + _np.abs(cy[two_a] - cy[two_b])
            )
        if len(multi_pos):
            px = cx[flat]
            py = cy[flat]
            span_x = _np.maximum.reduceat(px, offsets) - _np.minimum.reduceat(px, offsets)
            span_y = _np.maximum.reduceat(py, offsets) - _np.minimum.reduceat(py, offsets)
            vals[multi_pos] = multi_w * (span_x + span_y)
        return vals.tolist()
