"""Command-line interface.

Usage (after ``pip install -e .``)::

    python -m repro workloads list
    python -m repro place miller_opamp --engine hbtree --seed 3
    python -m repro place gen:n=500,seed=7 --starts 8 --workers 4
    python -m repro place gen:n=500,seed=7 --starts 8 --listen 127.0.0.1:7000
    python -m repro worker --connect 127.0.0.1:7000
    python -m repro place file:bench.blocks --engine seqpair
    python -m repro workloads export gen:n=200,seed=1 --out bench/
    python -m repro route fig2 --pitch 0.5
    python -m repro table1 --circuit folded_cascode
    python -m repro sizing --flow aware

Circuits are *workload names* resolved through
:func:`repro.workloads.resolve_workload`: built-ins, generated
families (``gen:n=...,seed=...``) and on-disk Bookshelf benchmarks
(``file:path.blocks``) — see ``docs/workloads.md``.  The CLI is a thin
veneer over the library: every command prints the same reports the
examples and benchmarks produce.
"""

from __future__ import annotations

import argparse
import sys

from .analysis import render_placement
from .bstar import BStarPlacer, BStarPlacerConfig, HierarchicalPlacer
from .circuit import Circuit, TABLE1_MODULE_COUNTS, table1_circuit
from .cost import TERM_NAMES, check_term_name, reference_model, weight_overrides
from .route import Router
from .seqpair import PlacerConfig, SequencePairPlacer
from .shapes import DeterministicConfig, DeterministicPlacer
from .slicing import SlicingPlacer, SlicingPlacerConfig
from .workloads import (
    FILE_PREFIX,
    GEN_PREFIX,
    resolve_workload,
    workload_summaries,
    write_bookshelf,
)

_ENGINES = ("seqpair", "hbtree", "bstar", "deterministic", "slicing")

#: engine name -> annealing config class (the deterministic placer does
#: not anneal a weighted objective, so it takes no cost weights).
#: Deliberately duplicates the classes in ``repro.parallel.engines``'
#: registry: single-run commands must not import ``repro.parallel``
#: (see ``_portfolio_engines``); ``tests/test_cli_cost.py`` pins the
#: two mappings against each other so they cannot drift.
_WEIGHTED_CONFIGS = {
    "seqpair": PlacerConfig,
    "hbtree": BStarPlacerConfig,
    "bstar": BStarPlacerConfig,
    "slicing": SlicingPlacerConfig,
}


def _portfolio_engines() -> tuple[str, ...]:
    """Engines the multi-start portfolio can fan out over — the parallel
    registry itself (the deterministic placer is seed-insensitive, so it
    never joins a portfolio).  Imported lazily so plain single-run
    commands never touch :mod:`repro.parallel`."""
    from .parallel import ENGINE_NAMES

    return ENGINE_NAMES


def _load_circuit(name: str) -> Circuit:
    # KeyError: unknown built-in (message names the nearest match);
    # ValueError: malformed gen: spec or unreadable file: benchmark
    try:
        return resolve_workload(name)
    except (KeyError, ValueError) as exc:
        raise SystemExit(exc.args[0]) from None


def _print_workloads() -> None:
    """Every registry entry with module/net counts + the open schemes."""
    for line in workload_summaries():
        print(line)
    print(f"{GEN_PREFIX}n=<modules>,seed=<seed>,...  generated families")
    print(f"{FILE_PREFIX}<path>.blocks                 on-disk Bookshelf benchmarks")


def _parse_cost_weights(text: str | None) -> dict[str, float]:
    """Parse ``term=value,...`` into a term -> weight dict.

    Validates term names against the unified catalog and values as
    floats; per-engine support is checked later (every engine declares
    its own term subset).
    """
    if not text:
        return {}
    weights: dict[str, float] = {}
    for item in text.split(","):
        item = item.strip()
        if not item:
            continue
        term, sep, value = item.partition("=")
        term = term.strip()
        if not sep:
            raise SystemExit(
                f"bad --cost-weights entry {item!r}: expected term=value "
                f"(terms: {', '.join(TERM_NAMES)})"
            )
        try:
            check_term_name(term)
        except ValueError as exc:
            raise SystemExit(exc.args[0]) from None
        try:
            weights[term] = float(value)
        except ValueError:
            raise SystemExit(
                f"bad weight for cost term {term!r}: {value.strip()!r} is not a number"
            ) from None
    return weights


def _config_overrides(engine: str, weights: dict[str, float]) -> dict[str, float]:
    """Cost-weight overrides as config kwargs, validated per engine."""
    if not weights:
        return {}
    config_cls = _WEIGHTED_CONFIGS.get(engine)
    if config_cls is None:
        raise SystemExit(
            f"engine {engine!r} does not anneal a weighted cost; "
            f"--cost-weights applies to: {', '.join(_WEIGHTED_CONFIGS)}"
        )
    try:
        return weight_overrides(weights, config_cls)
    except ValueError as exc:
        raise SystemExit(
            f"engine {engine!r}: {exc.args[0]}"
        ) from None


def _place(
    circuit: Circuit,
    engine: str,
    seed: int,
    weights: dict[str, float] | None = None,
    *,
    vector_tier: bool = False,
):
    overrides = _config_overrides(engine, weights or {})
    if engine == "seqpair":
        return SequencePairPlacer.for_circuit(
            circuit, PlacerConfig(seed=seed, **overrides)
        ).run().placement
    if engine == "hbtree":
        return HierarchicalPlacer(
            circuit, BStarPlacerConfig(seed=seed, **overrides)
        ).run().placement
    if engine == "bstar":
        return BStarPlacer.for_circuit(
            circuit,
            BStarPlacerConfig(seed=seed, vector_tier=vector_tier, **overrides),
        ).run().placement
    if engine == "deterministic":
        return DeterministicPlacer(
            circuit, DeterministicConfig(seed=seed)
        ).run().placement
    if engine == "slicing":
        return SlicingPlacer(
            circuit.modules(), circuit.nets, SlicingPlacerConfig(seed=seed, **overrides)
        ).run().placement
    raise SystemExit(f"unknown engine {engine!r}; try one of: {', '.join(_ENGINES)}")


# -- commands -----------------------------------------------------------------


def cmd_circuits(_args) -> int:
    _print_workloads()
    return 0


def cmd_workloads_list(_args) -> int:
    _print_workloads()
    return 0


def cmd_workloads_export(args) -> int:
    circuit = _load_circuit(args.workload)
    placement = None
    if args.place:
        placement = _place(circuit, args.engine, args.seed)
    paths = write_bookshelf(
        circuit, args.out, args.basename, placement=placement
    )
    print(circuit.summary())
    for ext in ("aux", "blocks", "nets", "pl"):
        print(f"  wrote {paths[ext]}")
    return 0


def _portfolio_place(args, weights: dict[str, float]):
    """Multi-start portfolio run behind ``place --starts/--workers``."""
    from .parallel import PortfolioRunner, RunDirError, format_address

    def show_progress(event) -> None:
        print(
            f"  walk {event.walk_id:>3} [{event.engine}/{event.seed}] "
            f"{event.step:>6}/{event.total_steps} steps  "
            f"best {event.best_cost:.4f}  {event.status}"
        )

    def show_listen(address) -> None:
        # the handle workers need: `repro worker --connect <this>`
        # (flushed so wrapper scripts see it before any chunk output)
        print(f"listening on {format_address(address)}", flush=True)

    on_event = show_progress if args.progress else None
    on_listen = show_listen if args.listen is not None else None
    try:
        if args.resume:
            # config comes from the run directory's manifest; only
            # execution knobs (workers, retries, timeouts) apply here.
            # --workers left at its default resumes under the recorded
            # topology; an explicit value must match it (or pass
            # --allow-topology-change to deliberately move the run)
            runner = PortfolioRunner.resume(
                args.run_dir,
                workers=args.workers,
                on_event=on_event,
                max_retries=args.max_retries,
                chunk_timeout=args.chunk_timeout,
                strict=args.strict,
                listen=args.listen,
                lease_timeout=args.lease_timeout,
                heartbeat_interval=args.heartbeat_interval,
                on_listen=on_listen,
                allow_topology_change=args.allow_topology_change,
                trace=args.trace,
            )
        else:
            engines = (
                tuple(args.engines.split(",")) if args.engines else (args.engine,)
            )
            supported = _portfolio_engines()
            unsupported = [e for e in engines if e not in supported]
            if unsupported:
                raise SystemExit(
                    f"engine(s) not usable in a portfolio: "
                    f"{', '.join(unsupported)}; try: {', '.join(supported)}"
                )
            # one overrides tuple feeds every walk, so every engine in
            # the portfolio must declare every overridden term; the
            # mappings are identical by construction (term ->
            # f"{term}_weight"), so any of the validated dicts serves as
            # the shared overrides
            per_engine = [_config_overrides(engine, weights) for engine in engines]
            overrides = dict(per_engine[0])
            if args.vector_tier:
                # engine validation happened in cmd_place: bstar only
                overrides["vector_tier"] = True
            runner = PortfolioRunner(
                args.circuit,
                engines,
                starts=args.starts,
                workers=args.workers or 0,
                base_seed=args.seed,
                budget=args.budget,
                restart_policy=args.restart_policy,
                overrides=tuple(overrides.items()),
                on_event=on_event,
                max_retries=args.max_retries,
                chunk_timeout=args.chunk_timeout,
                strict=args.strict,
                run_dir=args.run_dir,
                listen=args.listen,
                lease_timeout=args.lease_timeout,
                heartbeat_interval=args.heartbeat_interval,
                on_listen=on_listen,
                trace=args.trace,
            )
        result = runner.run()
    except (KeyError, ValueError, RunDirError, RuntimeError) as exc:
        # run() raises too: a budget below one step per epoch is only
        # detectable once per-walk schedules are compressed, and the
        # deliberate abort paths (every walk failed, --strict) signal
        # with RuntimeError carrying the failure detail
        raise SystemExit(str(exc.args[0] if exc.args else exc)) from None
    print(result.summary())
    return result.placement


def _print_cost_report(circuit: Circuit, placement) -> None:
    """Per-term breakdown of the final placement under the reference
    model (engine-independent, so every engine — and the portfolio
    winner — is reported on the same scale)."""
    from .perf import placement_to_coords

    model = reference_model(circuit)
    # flatten once; breakdown and the exact total share the table
    coords = placement_to_coords(placement)
    breakdown = model.breakdown(coords, placement=placement)
    total = model.evaluate(coords, placement=placement)
    print("cost report (reference model):")
    for term in model.terms:
        print(
            f"  {term.name:<12} weight {term.weight:>6.2f}  "
            f"contribution {breakdown[term.name]:.4f}"
        )
    print(f"  {'total':<12} {total:>29.4f}")


def cmd_place(args) -> int:
    if args.list_circuits:
        _print_workloads()
        return 0
    if args.circuit_opt is not None:
        if args.circuit is not None and args.circuit != args.circuit_opt:
            raise SystemExit(
                f"place: circuit given twice ({args.circuit!r} positionally, "
                f"{args.circuit_opt!r} via --circuit); pass it once"
            )
        args.circuit = args.circuit_opt
    if args.resume:
        if args.run_dir is None:
            raise SystemExit("place: --resume requires --run-dir")
        # the manifest is the source of truth on a resume: the circuit
        # comes from it, and a contradicting positional is an error
        from .parallel import RunDir, RunDirError

        try:
            manifest_circuit = RunDir(args.run_dir).load().circuit
        except RunDirError as exc:
            raise SystemExit(str(exc)) from None
        if args.circuit is not None and args.circuit != manifest_circuit:
            raise SystemExit(
                f"place: --resume run directory places {manifest_circuit!r} "
                f"but {args.circuit!r} was named; drop the circuit argument"
            )
        args.circuit = manifest_circuit
    if args.circuit is None:
        raise SystemExit(
            "place: no circuit named; pass a workload name (positionally or "
            "via --circuit), or run `place --list-circuits`"
        )
    circuit = _load_circuit(args.circuit)
    weights = _parse_cost_weights(args.cost_weights)
    if args.vector_tier:
        requested = (
            tuple(args.engines.split(",")) if args.engines else (args.engine,)
        )
        not_bstar = [e for e in requested if e != "bstar"]
        if not_bstar:
            raise SystemExit(
                "place: --vector-tier is engine 'bstar' only (got "
                f"{', '.join(not_bstar)}); pass --engine bstar"
            )
    print(circuit.summary())
    # any portfolio flag opts into the portfolio path — passing
    # --engines or --budget without --starts must not be silently
    # ignored (a 1-start portfolio is a valid, budgeted single walk)
    portfolio_requested = (
        args.starts > 1
        or (args.workers or 0) > 1
        or args.engines is not None
        or args.budget is not None
        or args.restart_policy != "independent"
        or args.progress
        or args.run_dir is not None
        or args.resume
        or args.strict
        or args.chunk_timeout is not None
        or args.max_retries != 2
        or args.listen is not None
        or args.lease_timeout is not None
        or args.heartbeat_interval is not None
        or args.allow_topology_change
        or args.trace is not None
    )
    if portfolio_requested:
        placement = _portfolio_place(args, weights)
    else:
        placement = _place(
            circuit, args.engine, args.seed, weights,
            vector_tier=args.vector_tier,
        )
    print(render_placement(placement, width=args.width, height=args.height))
    print(
        f"area usage {100 * placement.area_usage():.1f}%  "
        f"bbox {placement.width:.1f} x {placement.height:.1f}"
    )
    if args.cost_report:
        _print_cost_report(circuit, placement)
    violations = circuit.constraints().violations(placement)
    print(f"constraint violations: {violations or 'none'}")
    return 1 if violations else 0


def cmd_route(args) -> int:
    circuit = _load_circuit(args.circuit)
    placement = _place(circuit, args.engine, args.seed)
    router = Router(placement, circuit.nets, pitch=args.pitch)
    result = router.route_all(retries=args.retries)
    print(result.summary())
    for name, net in sorted(result.routed.items()):
        print(
            f"  {name:16s} wl {net.wirelength:8.1f} um  {net.vias:3d} vias  "
            f"C {net.capacitance:7.2f} fF"
        )
    if result.failed:
        print(f"  failed: {', '.join(result.failed)}")
    return 0 if not result.failed else 1


def cmd_table1(args) -> int:
    keys = [args.circuit] if args.circuit else list(TABLE1_MODULE_COUNTS)
    print(f"{'circuit':<16}{'mods':>6}{'ESF use':>10}{'ESF t':>8}{'RSF use':>10}{'RSF t':>8}{'improv':>8}")
    for key in keys:
        circuit = table1_circuit(key)
        esf = DeterministicPlacer(circuit, DeterministicConfig(enhanced=True)).run()
        rsf = DeterministicPlacer(circuit, DeterministicConfig(enhanced=False)).run()
        print(
            f"{key:<16}{circuit.n_modules:>6}"
            f"{100 * esf.area_usage:>9.2f}%{esf.runtime_s:>7.2f}s"
            f"{100 * rsf.area_usage:>9.2f}%{rsf.runtime_s:>7.2f}s"
            f"{100 * (rsf.area_usage - esf.area_usage):>7.2f}%"
        )
    return 0


def cmd_worker(args) -> int:
    """Join a ``place --listen`` run as one remote portfolio worker."""
    import os
    import socket as socket_mod

    from .parallel import parse_address, run_worker

    try:
        parse_address(args.connect)
    except ValueError as exc:
        raise SystemExit(f"worker: {exc.args[0]}") from None
    name = args.name or f"{socket_mod.gethostname()}:{os.getpid()}"

    def log(text: str) -> None:
        print(f"[{name}] {text}", flush=True)

    return run_worker(
        args.connect,
        name=name,
        max_reconnects=args.max_reconnects,
        reconnect_base=args.reconnect_base,
        log=None if args.quiet else log,
    )


def cmd_sweep(args) -> int:
    """Run the standard-suite quality sweep and gate it on the baseline.

    Thin client over :mod:`repro.analysis.sweep` (the same module
    ``benchmarks/sweep.py`` and the CI ``sweep-smoke`` step drive);
    ``--json`` emits the matrix + diff as one machine-readable document
    (CLI-as-API).  Exit codes: 0 clean, 2 usage/baseline problems, 3
    quality regression.
    """
    import json as json_mod
    from pathlib import Path

    from .analysis import sweep as sweep_mod

    narrowing = {}
    if args.workloads:
        # one name per flag occurrence: gen: names contain commas, so a
        # comma-separated list could never name them unambiguously
        narrowing["workloads"] = tuple(args.workloads)
    if args.engines:
        engines = tuple(e.strip() for e in args.engines.split(",") if e.strip())
        supported = _portfolio_engines()
        unknown = [e for e in engines if e not in supported]
        if unknown:
            raise SystemExit(
                f"sweep: unknown engine(s) {', '.join(unknown)}; "
                f"try: {', '.join(supported)}"
            )
        narrowing["engines"] = engines
    if args.budget is not None:
        narrowing["budget"] = args.budget
    if args.seed is not None:
        narrowing["seed"] = args.seed
    try:
        cells = sweep_mod.tier_cells(args.tier, **narrowing)
    except (KeyError, ValueError) as exc:
        raise SystemExit(f"sweep: {exc.args[0]}") from None
    matrix = sweep_mod.run_sweep(args.tier, cells=cells)

    diff = None
    note = None
    if args.no_diff:
        pass
    elif args.baseline is not None:
        try:
            diff = sweep_mod.diff_matrices(
                sweep_mod.load_matrix(args.baseline), matrix
            )
        except (OSError, ValueError) as exc:
            raise SystemExit(f"sweep: {exc}") from None
    elif narrowing or args.tier != "quick":
        note = (
            "diff skipped: narrowed/non-quick runs have no committed "
            "baseline (pass --baseline to gate, --no-diff to silence)"
        )
    elif sweep_mod.DEFAULT_BASELINE_PATH.exists():
        diff = sweep_mod.diff_matrices(
            sweep_mod.load_matrix(sweep_mod.DEFAULT_BASELINE_PATH), matrix
        )
    else:
        note = f"diff skipped: no baseline at {sweep_mod.DEFAULT_BASELINE_PATH}"

    if args.out:
        sweep_mod.write_matrix(matrix, Path(args.out))
    if args.json:
        document = {
            "matrix": matrix,
            "diff": None
            if diff is None
            else {
                "ok": diff.ok,
                "regressions": diff.regressions,
                "improvements": diff.improvements,
                "added": diff.added,
                "unchanged": diff.unchanged,
            },
        }
        print(json_mod.dumps(document, indent=2, sort_keys=True))
    else:
        print(sweep_mod.format_matrix(matrix))
        if note:
            print(note)
        if diff is not None:
            print(diff.summary())
    return 3 if diff is not None and not diff.ok else 0


def cmd_trace_report(args) -> int:
    """Render a telemetry trace directory (``place --trace DIR``).

    Thin client over :mod:`repro.analysis.trace`, following the
    ``repro sweep`` precedent: ``--json`` emits the full report
    document (CLI-as-API).  Exit codes: 0 clean, 2 for unreadable or
    schema-invalid traces.
    """
    import json as json_mod

    from .analysis import trace as trace_mod

    try:
        trace = trace_mod.load_trace(args.directory)
    except ValueError as exc:
        raise SystemExit(f"trace: {exc.args[0] if exc.args else exc}") from None
    problems = trace_mod.validate_trace(trace)
    if problems:
        for problem in problems:
            print(f"trace: {problem}")
        return 2
    report = trace_mod.build_report(trace)
    if args.json:
        print(json_mod.dumps(report, indent=2, sort_keys=True))
    else:
        print(trace_mod.render_report(report))
    return 0


def cmd_sizing(args) -> int:
    from .sizing import electrical_sizing, layout_aware_sizing

    flow = (
        layout_aware_sizing(seed=args.seed)
        if args.flow == "aware"
        else electrical_sizing(seed=args.seed)
    )
    print(flow.report())
    return 0 if flow.meets_specs_post_layout() else 1


# -- parser ---------------------------------------------------------------------


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _non_negative_int(text: str) -> int:
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {value}")
    return value


def _positive_float(text: str) -> float:
    value = float(text)
    if not value > 0:
        raise argparse.ArgumentTypeError(f"must be > 0, got {text}")
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Analog layout synthesis via topological approaches "
        "(reproduction of Graeb et al., DATE 2009)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser(
        "circuits", help="list the benchmark circuits (alias of `workloads list`)"
    ).set_defaults(fn=cmd_circuits)

    p = sub.add_parser(
        "workloads", help="inspect and export workloads (see docs/workloads.md)"
    )
    wsub = p.add_subparsers(dest="workloads_command", required=True)
    wsub.add_parser(
        "list", help="every registry entry with module/net counts"
    ).set_defaults(fn=cmd_workloads_list)
    w = wsub.add_parser(
        "export", help="write a workload out as Bookshelf .aux/.blocks/.nets/.pl"
    )
    w.add_argument("workload", help="any workload name (built-in, gen:, file:)")
    w.add_argument("--out", default=".", help="output directory (default: .)")
    w.add_argument(
        "--basename",
        default=None,
        help="file basename (default: a slug of the workload name)",
    )
    w.add_argument(
        "--place",
        action="store_true",
        help="anneal first and write real locations into the .pl file",
    )
    w.add_argument("--engine", choices=_ENGINES, default="hbtree")
    w.add_argument("--seed", type=int, default=0)
    w.set_defaults(fn=cmd_workloads_export)

    p = sub.add_parser("place", help="place a circuit")
    p.add_argument(
        "circuit",
        nargs="?",
        default=None,
        help="workload name: built-in, gen:n=...,seed=... or file:path.blocks",
    )
    p.add_argument(
        "--circuit",
        dest="circuit_opt",
        default=None,
        metavar="NAME",
        help="alternative spelling of the positional circuit argument",
    )
    p.add_argument(
        "--list-circuits",
        action="store_true",
        help="print every registry entry with module/net counts and exit",
    )
    p.add_argument("--engine", choices=_ENGINES, default="hbtree")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--width", type=int, default=70)
    p.add_argument("--height", type=int, default=20)
    p.add_argument(
        "--cost-weights",
        default=None,
        metavar="TERM=W,...",
        help="override objective weights, e.g. area=1,wirelength=2; "
        f"terms: {', '.join(TERM_NAMES)} (each engine supports the "
        "subset its config declares)",
    )
    p.add_argument(
        "--cost-report",
        action="store_true",
        help="print the per-term cost breakdown of the final placement "
        "under the engine-independent reference model",
    )
    p.add_argument(
        "--vector-tier",
        action="store_true",
        help="anneal on the array-native evaluation tier (engine bstar "
        "only): vectorized cost + batched multi-candidate proposals; "
        "a different move family, tuned for large module counts",
    )
    portfolio = p.add_argument_group(
        "portfolio",
        "multi-start options; passing any of them runs the portfolio "
        "(a plain single walk otherwise)",
    )
    portfolio.add_argument(
        "--starts",
        type=_positive_int,
        default=1,
        help="annealing walks to run (engines cycle over --engines, seeds "
        "count up from --seed)",
    )
    portfolio.add_argument(
        "--workers",
        type=_non_negative_int,
        default=None,
        help="worker processes; 0 or 1 runs in-process (same results); "
        "on --resume the default keeps the run's recorded topology",
    )
    portfolio.add_argument(
        "--engines",
        default=None,
        metavar="A,B,...",
        help="comma-separated engine portfolio (default: --engine); "
        "choose from the annealing engines (deterministic excluded)",
    )
    portfolio.add_argument(
        "--restart-policy",
        choices=("independent", "rebalance"),
        default="independent",
        help="rebalance kills the worst half at checkpoints and gives "
        "their unspent steps to fresh seeds",
    )
    portfolio.add_argument(
        "--budget",
        type=_positive_int,
        default=None,
        help="total annealing steps across all starts (default: every "
        "start runs its full schedule)",
    )
    portfolio.add_argument(
        "--progress",
        action="store_true",
        help="print a progress line per completed chunk",
    )
    portfolio.add_argument(
        "--trace",
        default=None,
        metavar="DIR",
        help="write the telemetry flight recorder (repro/trace-v1 JSONL "
        "streams) into DIR; read back with `repro trace report DIR` — "
        "pure observation, the result stays byte-identical",
    )
    resilience = p.add_argument_group(
        "resilience",
        "fault tolerance and run persistence (see docs/parallel.md); "
        "all of these imply the portfolio path",
    )
    resilience.add_argument(
        "--max-retries",
        type=_non_negative_int,
        default=2,
        help="extra attempts a failing chunk gets before its walk is "
        "quarantined and the run degrades to the survivors (default: 2)",
    )
    resilience.add_argument(
        "--chunk-timeout",
        type=_positive_float,
        default=None,
        metavar="SECONDS",
        help="wall-clock limit per chunk; a worker exceeding it is killed "
        "and the attempt counts as failed (requires --workers > 1)",
    )
    resilience.add_argument(
        "--strict",
        action="store_true",
        help="fail fast: the first chunk error aborts the whole run "
        "(no retries, no quarantine)",
    )
    resilience.add_argument(
        "--run-dir",
        default=None,
        metavar="DIR",
        help="snapshot every walk checkpoint + coordinator state into DIR "
        "so an interrupted run can be resumed bit-identically",
    )
    resilience.add_argument(
        "--resume",
        action="store_true",
        help="continue the run persisted in --run-dir (config comes from "
        "its manifest; the circuit argument may be omitted)",
    )
    distributed = p.add_argument_group(
        "distributed",
        "serve the run to remote workers over a socket (see the "
        "Distributed execution section of docs/parallel.md); join with "
        "`repro worker --connect`; results stay byte-identical to a "
        "serial run.  Trusted networks only: frames are unauthenticated "
        "pickles",
    )
    distributed.add_argument(
        "--listen",
        default=None,
        metavar="HOST:PORT",
        help="serve chunks to remote workers on this address "
        "(HOST:PORT, port 0 picks an ephemeral port and prints it; "
        "unix:/path.sock for a Unix domain socket); mutually exclusive "
        "with --workers > 1",
    )
    distributed.add_argument(
        "--lease-timeout",
        type=_positive_float,
        default=None,
        metavar="SECONDS",
        help="revoke and re-dispatch a chunk whose worker misses "
        "heartbeats this long (default: 10)",
    )
    distributed.add_argument(
        "--heartbeat-interval",
        type=_positive_float,
        default=None,
        metavar="SECONDS",
        help="heartbeat cadence workers are told to use (default: a "
        "quarter of the lease timeout)",
    )
    distributed.add_argument(
        "--allow-topology-change",
        action="store_true",
        help="let --resume continue under a different transport or "
        "worker count than the run was recorded with (results are "
        "unaffected; the switch just has to be deliberate)",
    )
    p.set_defaults(fn=cmd_place)

    p = sub.add_parser(
        "worker",
        help="join a `place --listen` run as a remote portfolio worker",
    )
    p.add_argument(
        "--connect",
        required=True,
        metavar="HOST:PORT",
        help="coordinator address printed by `place --listen` "
        "(HOST:PORT or unix:/path.sock)",
    )
    p.add_argument(
        "--name",
        default=None,
        help="worker name in coordinator logs (default: host:pid)",
    )
    p.add_argument(
        "--max-reconnects",
        type=_non_negative_int,
        default=8,
        help="give up after this many consecutive failed connection "
        "attempts (default: 8)",
    )
    p.add_argument(
        "--reconnect-base",
        type=_positive_float,
        default=0.25,
        metavar="SECONDS",
        help="base of the exponential reconnect backoff (default: 0.25)",
    )
    p.add_argument(
        "--quiet", action="store_true", help="suppress per-event log lines"
    )
    p.set_defaults(fn=cmd_worker)

    p = sub.add_parser("route", help="place and route a circuit")
    p.add_argument("circuit")
    p.add_argument("--engine", choices=_ENGINES, default="hbtree")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--pitch", type=float, default=0.5)
    p.add_argument("--retries", type=int, default=10)
    p.set_defaults(fn=cmd_route)

    p = sub.add_parser("table1", help="regenerate the Table-I comparison")
    p.add_argument("--circuit", choices=sorted(TABLE1_MODULE_COUNTS), default=None)
    p.set_defaults(fn=cmd_table1)

    p = sub.add_parser(
        "sweep",
        help="run the standard-suite quality sweep and diff the baseline "
        "(see docs/benchmarks.md)",
    )
    p.add_argument(
        "--tier",
        choices=("quick", "full"),
        default="quick",
        help="declared grid to run (quick: the bounded CI tier)",
    )
    p.add_argument(
        "--json",
        action="store_true",
        help="emit the matrix + diff as one JSON document (CLI-as-API)",
    )
    p.add_argument(
        "--out",
        default=None,
        metavar="FILE",
        help="also write the full matrix (quality + timing) to FILE",
    )
    p.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help="baseline matrix to gate against (default: the committed "
        "benchmarks/quality_matrix.json for unnarrowed quick runs)",
    )
    p.add_argument(
        "--no-diff",
        action="store_true",
        help="run and report only; skip the regression gate",
    )
    p.add_argument(
        "--workloads",
        action="append",
        default=None,
        metavar="NAME",
        help="narrow the grid to this workload (repeatable; any registry "
        "name — gen: names contain commas, hence one name per flag)",
    )
    p.add_argument(
        "--engines",
        default=None,
        metavar="A,B,...",
        help="narrow the grid to these annealing engines",
    )
    p.add_argument(
        "--budget",
        type=_positive_int,
        default=None,
        help="override the per-cell serial step budget",
    )
    p.add_argument(
        "--seed",
        type=int,
        default=None,
        help="override the sweep's base seed",
    )
    p.set_defaults(fn=cmd_sweep)

    p = sub.add_parser(
        "trace",
        help="inspect telemetry traces written by `place --trace`",
    )
    tsub = p.add_subparsers(dest="trace_command", required=True)
    t = tsub.add_parser(
        "report",
        help="render acceptance curves, time-in-phase, worker "
        "utilization and move-family win tables from a trace directory",
    )
    t.add_argument("directory", help="directory `place --trace` wrote")
    t.add_argument(
        "--json",
        action="store_true",
        help="emit the full report as one JSON document (CLI-as-API)",
    )
    t.set_defaults(fn=cmd_trace_report)

    p = sub.add_parser("sizing", help="run a Fig.-10 sizing flow")
    p.add_argument("--flow", choices=("plain", "aware"), default="aware")
    p.add_argument("--seed", type=int, default=1)
    p.set_defaults(fn=cmd_sizing)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
