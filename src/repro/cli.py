"""Command-line interface.

Usage (after ``pip install -e .``)::

    python -m repro circuits
    python -m repro place miller_opamp --engine hbtree --seed 3
    python -m repro route fig2 --pitch 0.5
    python -m repro table1 --circuit folded_cascode
    python -m repro sizing --flow aware

The CLI is a thin veneer over the library: every command prints the same
reports the examples and benchmarks produce.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable

from .analysis import render_placement
from .bstar import BStarPlacerConfig, HierarchicalPlacer
from .circuit import (
    Circuit,
    TABLE1_MODULE_COUNTS,
    fig2_design,
    miller_opamp,
    table1_circuit,
)
from .route import Router
from .seqpair import PlacerConfig, SequencePairPlacer
from .shapes import DeterministicConfig, DeterministicPlacer
from .slicing import SlicingPlacer, SlicingPlacerConfig

_CIRCUITS: dict[str, Callable[[], Circuit]] = {
    "miller_opamp": miller_opamp,
    "fig2": fig2_design,
    **{key: (lambda k=key: table1_circuit(k)) for key in TABLE1_MODULE_COUNTS},
}

_ENGINES = ("seqpair", "hbtree", "deterministic", "slicing")


def _load_circuit(name: str) -> Circuit:
    if name not in _CIRCUITS:
        raise SystemExit(
            f"unknown circuit {name!r}; try one of: {', '.join(sorted(_CIRCUITS))}"
        )
    return _CIRCUITS[name]()


def _place(circuit: Circuit, engine: str, seed: int):
    if engine == "seqpair":
        return SequencePairPlacer.for_circuit(
            circuit, PlacerConfig(seed=seed)
        ).run().placement
    if engine == "hbtree":
        return HierarchicalPlacer(
            circuit, BStarPlacerConfig(seed=seed)
        ).run().placement
    if engine == "deterministic":
        return DeterministicPlacer(
            circuit, DeterministicConfig(seed=seed)
        ).run().placement
    if engine == "slicing":
        return SlicingPlacer(
            circuit.modules(), circuit.nets, SlicingPlacerConfig(seed=seed)
        ).run().placement
    raise SystemExit(f"unknown engine {engine!r}; try one of: {', '.join(_ENGINES)}")


# -- commands -----------------------------------------------------------------


def cmd_circuits(_args) -> int:
    for name in sorted(_CIRCUITS):
        print(_CIRCUITS[name]().summary())
    return 0


def cmd_place(args) -> int:
    circuit = _load_circuit(args.circuit)
    print(circuit.summary())
    placement = _place(circuit, args.engine, args.seed)
    print(render_placement(placement, width=args.width, height=args.height))
    print(
        f"area usage {100 * placement.area_usage():.1f}%  "
        f"bbox {placement.width:.1f} x {placement.height:.1f}"
    )
    violations = circuit.constraints().violations(placement)
    print(f"constraint violations: {violations or 'none'}")
    return 1 if violations else 0


def cmd_route(args) -> int:
    circuit = _load_circuit(args.circuit)
    placement = _place(circuit, args.engine, args.seed)
    router = Router(placement, circuit.nets, pitch=args.pitch)
    result = router.route_all(retries=args.retries)
    print(result.summary())
    for name, net in sorted(result.routed.items()):
        print(
            f"  {name:16s} wl {net.wirelength:8.1f} um  {net.vias:3d} vias  "
            f"C {net.capacitance:7.2f} fF"
        )
    if result.failed:
        print(f"  failed: {', '.join(result.failed)}")
    return 0 if not result.failed else 1


def cmd_table1(args) -> int:
    keys = [args.circuit] if args.circuit else list(TABLE1_MODULE_COUNTS)
    print(f"{'circuit':<16}{'mods':>6}{'ESF use':>10}{'ESF t':>8}{'RSF use':>10}{'RSF t':>8}{'improv':>8}")
    for key in keys:
        circuit = table1_circuit(key)
        esf = DeterministicPlacer(circuit, DeterministicConfig(enhanced=True)).run()
        rsf = DeterministicPlacer(circuit, DeterministicConfig(enhanced=False)).run()
        print(
            f"{key:<16}{circuit.n_modules:>6}"
            f"{100 * esf.area_usage:>9.2f}%{esf.runtime_s:>7.2f}s"
            f"{100 * rsf.area_usage:>9.2f}%{rsf.runtime_s:>7.2f}s"
            f"{100 * (rsf.area_usage - esf.area_usage):>7.2f}%"
        )
    return 0


def cmd_sizing(args) -> int:
    from .sizing import electrical_sizing, layout_aware_sizing

    flow = (
        layout_aware_sizing(seed=args.seed)
        if args.flow == "aware"
        else electrical_sizing(seed=args.seed)
    )
    print(flow.report())
    return 0 if flow.meets_specs_post_layout() else 1


# -- parser ---------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Analog layout synthesis via topological approaches "
        "(reproduction of Graeb et al., DATE 2009)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("circuits", help="list the benchmark circuits").set_defaults(
        fn=cmd_circuits
    )

    p = sub.add_parser("place", help="place a circuit")
    p.add_argument("circuit")
    p.add_argument("--engine", choices=_ENGINES, default="hbtree")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--width", type=int, default=70)
    p.add_argument("--height", type=int, default=20)
    p.set_defaults(fn=cmd_place)

    p = sub.add_parser("route", help="place and route a circuit")
    p.add_argument("circuit")
    p.add_argument("--engine", choices=_ENGINES, default="hbtree")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--pitch", type=float, default=0.5)
    p.add_argument("--retries", type=int, default=10)
    p.set_defaults(fn=cmd_route)

    p = sub.add_parser("table1", help="regenerate the Table-I comparison")
    p.add_argument("--circuit", choices=sorted(TABLE1_MODULE_COUNTS), default=None)
    p.set_defaults(fn=cmd_table1)

    p = sub.add_parser("sizing", help="run a Fig.-10 sizing flow")
    p.add_argument("--flow", choices=("plain", "aware"), default="aware")
    p.add_argument("--seed", type=int, default=1)
    p.set_defaults(fn=cmd_sizing)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
