"""Routing grid.

A uniform two-layer grid over a placement region: layer 0 carries
horizontal segments, layer 1 vertical segments, connected by vias.
Module rectangles block both layers except over their own pins, which is
the standard over-the-cell-free model for device-level analog routing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from ..geometry import Placement, Rect

#: Layers: 0 routes horizontally, 1 vertically.
N_LAYERS = 2
HORIZONTAL, VERTICAL = 0, 1


@dataclass(frozen=True, slots=True, order=True)
class GridPoint:
    """A grid node: (layer, column, row); ordered so it can serve as a
    heap tiebreaker in the maze router."""

    layer: int
    col: int
    row: int


class RoutingGrid:
    """Two-layer routing grid with obstacle and occupancy tracking."""

    def __init__(self, region: Rect, pitch: float, *, halo: float = 0.0) -> None:
        if pitch <= 0:
            raise ValueError("pitch must be positive")
        self.region = region
        self.pitch = pitch
        self.halo = halo
        self.cols = max(2, int(region.width / pitch) + 1)
        self.rows = max(2, int(region.height / pitch) + 1)
        # blocked[layer][col][row]
        self._blocked = [
            [[False] * self.rows for _ in range(self.cols)] for _ in range(N_LAYERS)
        ]
        self._occupied: dict[tuple[int, int, int], str] = {}

    # -- coordinate mapping -------------------------------------------------

    def to_xy(self, point: GridPoint) -> tuple[float, float]:
        """Physical coordinates of a grid node."""
        return (
            self.region.x0 + point.col * self.pitch,
            self.region.y0 + point.row * self.pitch,
        )

    def snap(self, x: float, y: float, layer: int = 0) -> GridPoint:
        """Nearest grid node to a physical location."""
        col = round((x - self.region.x0) / self.pitch)
        row = round((y - self.region.y0) / self.pitch)
        col = min(self.cols - 1, max(0, col))
        row = min(self.rows - 1, max(0, row))
        return GridPoint(layer, col, row)

    def in_bounds(self, layer: int, col: int, row: int) -> bool:
        return 0 <= layer < N_LAYERS and 0 <= col < self.cols and 0 <= row < self.rows

    # -- obstacles -----------------------------------------------------------

    def block_rect(self, rect: Rect, *, layers: Iterable[int] = (0, 1)) -> None:
        """Block all nodes under ``rect`` (inflated by the halo)."""
        r = rect.inflated(self.halo)
        c0 = max(0, int((r.x0 - self.region.x0) / self.pitch + 0.5))
        c1 = min(self.cols - 1, int((r.x1 - self.region.x0) / self.pitch - 0.5 + 1))
        r0 = max(0, int((r.y0 - self.region.y0) / self.pitch + 0.5))
        r1 = min(self.rows - 1, int((r.y1 - self.region.y0) / self.pitch - 0.5 + 1))
        for layer in layers:
            for col in range(c0, c1 + 1):
                for row in range(r0, r1 + 1):
                    self._blocked[layer][col][row] = True

    def unblock_point(self, point: GridPoint) -> None:
        """Free one node (used to open pin accesses inside modules)."""
        self._blocked[point.layer][point.col][point.row] = False

    def is_free(self, layer: int, col: int, row: int, *, net: str | None = None) -> bool:
        """A node is usable when in bounds, not blocked, and not occupied
        by a different net."""
        if not self.in_bounds(layer, col, row):
            return False
        if self._blocked[layer][col][row]:
            return False
        owner = self._occupied.get((layer, col, row))
        return owner is None or owner == net

    # -- occupancy -------------------------------------------------------------

    def occupy(self, points: Iterable[GridPoint], net: str) -> None:
        for p in points:
            key = (p.layer, p.col, p.row)
            owner = self._occupied.get(key)
            if owner is not None and owner != net:
                raise ValueError(f"node {key} already owned by {owner!r}")
            self._occupied[key] = net

    def release_net(self, net: str) -> None:
        self._occupied = {k: v for k, v in self._occupied.items() if v != net}

    def net_points(self, net: str) -> list[GridPoint]:
        return [
            GridPoint(*key) for key, owner in self._occupied.items() if owner == net
        ]

    def occupancy(self) -> int:
        return len(self._occupied)

    # -- neighbors ----------------------------------------------------------------

    def neighbors(self, point: GridPoint, *, net: str | None = None) -> Iterator[GridPoint]:
        """Legal moves: along the layer's direction, or a via."""
        layer, col, row = point.layer, point.col, point.row
        if layer == HORIZONTAL:
            steps = ((col - 1, row), (col + 1, row))
        else:
            steps = ((col, row - 1), (col, row + 1))
        for c, r in steps:
            if self.is_free(layer, c, r, net=net):
                yield GridPoint(layer, c, r)
        other = 1 - layer
        if self.is_free(other, col, row, net=net):
            yield GridPoint(other, col, row)

    @classmethod
    def over_placement(
        cls,
        placement: Placement,
        *,
        pitch: float = 1.0,
        margin: float = 2.0,
        halo: float = 0.0,
        blocked_layers: Iterable[int] = (HORIZONTAL,),
    ) -> "RoutingGrid":
        """Grid covering a placement plus a routing margin.

        Modules block the layers in ``blocked_layers`` — by default only
        the lower (horizontal) layer, i.e. the vertical layer may route
        over the cells, which keeps compact analog placements routable.
        """
        bb = placement.bounding_box().inflated(margin)
        grid = cls(bb, pitch, halo=halo)
        layers = tuple(blocked_layers)
        for pm in placement:
            grid.block_rect(pm.rect, layers=layers)
        return grid
