"""Analog routing substrate: two-layer maze routing with symmetric
differential-pair routing (supporting section II's matched-parasitics
argument)."""

from .grid import HORIZONTAL, N_LAYERS, VERTICAL, GridPoint, RoutingGrid
from .maze import RoutedPath, RoutingError, astar_connect
from .router import (
    RoutedNet,
    Router,
    RoutingResult,
    pin_access,
)
from .symmetric import SymmetricRouteResult, route_symmetric_pair

__all__ = [
    "HORIZONTAL",
    "N_LAYERS",
    "VERTICAL",
    "GridPoint",
    "RoutedNet",
    "RoutedPath",
    "Router",
    "RoutingError",
    "RoutingGrid",
    "RoutingResult",
    "SymmetricRouteResult",
    "astar_connect",
    "pin_access",
    "route_symmetric_pair",
]
