"""Maze routing (Lee/A*) on the two-layer grid.

Multi-pin nets are routed by iterative tree growth: the first pin seeds
the tree, and each further pin is connected by an A* search from the
existing tree (all tree nodes start the frontier at cost 0).  Via moves
carry a configurable penalty so the router prefers straight wires.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Sequence

from .grid import GridPoint, RoutingGrid

VIA_COST = 3.0
STEP_COST = 1.0


class RoutingError(RuntimeError):
    """Raised when no legal path exists for a connection."""


@dataclass(frozen=True)
class RoutedPath:
    """One pin-to-tree connection."""

    points: tuple[GridPoint, ...]

    @property
    def wirelength(self) -> int:
        """Number of grid steps (excluding vias)."""
        return sum(
            1
            for a, b in zip(self.points, self.points[1:])
            if a.layer == b.layer
        )

    @property
    def vias(self) -> int:
        return sum(
            1
            for a, b in zip(self.points, self.points[1:])
            if a.layer != b.layer
        )


def astar_connect(
    grid: RoutingGrid,
    sources: Sequence[GridPoint],
    target: GridPoint,
    *,
    net: str | None = None,
) -> RoutedPath:
    """Cheapest path from any source node to the target.

    Cost: STEP_COST per grid step, VIA_COST per layer change; the
    heuristic is the Manhattan distance (admissible), so paths are
    optimal under the cost model.
    """
    if not sources:
        raise ValueError("need at least one source")

    def h(p: GridPoint) -> float:
        return (abs(p.col - target.col) + abs(p.row - target.row)) * STEP_COST

    best: dict[tuple[int, int, int], float] = {}
    parent: dict[tuple[int, int, int], GridPoint | None] = {}
    frontier: list[tuple[float, float, GridPoint]] = []
    for s in sources:
        key = (s.layer, s.col, s.row)
        best[key] = 0.0
        parent[key] = None
        heapq.heappush(frontier, (h(s), 0.0, s))

    target_keys = {
        (layer, target.col, target.row) for layer in (0, 1)
        if grid.is_free(layer, target.col, target.row, net=net)
    }
    if not target_keys:
        raise RoutingError(f"target {target} is blocked")

    while frontier:
        _, g, node = heapq.heappop(frontier)
        key = (node.layer, node.col, node.row)
        if g > best.get(key, float("inf")):
            continue
        if key in target_keys:
            return RoutedPath(tuple(_backtrack(parent, node)))
        for nxt in grid.neighbors(node, net=net):
            step = VIA_COST if nxt.layer != node.layer else STEP_COST
            ng = g + step
            nkey = (nxt.layer, nxt.col, nxt.row)
            if ng < best.get(nkey, float("inf")):
                best[nkey] = ng
                parent[nkey] = node
                heapq.heappush(frontier, (ng + h(nxt), ng, nxt))

    raise RoutingError(f"no path to {target}")


def _backtrack(parent, node: GridPoint) -> list[GridPoint]:
    path = [node]
    while True:
        prev = parent[(node.layer, node.col, node.row)]
        if prev is None:
            break
        path.append(prev)
        node = prev
    path.reverse()
    return path
