"""Net-level router over a placement.

Routes every net of a circuit over the two-layer grid: pins are opened
at module-boundary access points, nets are processed short-first
(cheaper nets commit first, the classic sequential scheme of the
device-level tools the paper cites), and each routed net becomes an
obstacle for the following ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..geometry import Net, PlacedModule, Placement
from .grid import GridPoint, RoutingGrid
from .maze import RoutedPath, RoutingError, astar_connect

#: Electrical estimates per grid step of routed wire.
WIRE_CAP_PER_UM = 0.22   # fF/µm
WIRE_RES_PER_UM = 0.08   # ohm/µm
VIA_RES = 2.0            # ohm per via


@dataclass(frozen=True)
class RoutedNet:
    """A fully routed net."""

    name: str
    paths: tuple[RoutedPath, ...]
    pitch: float

    @property
    def wirelength(self) -> float:
        """Physical wirelength in µm."""
        return sum(p.wirelength for p in self.paths) * self.pitch

    @property
    def vias(self) -> int:
        return sum(p.vias for p in self.paths)

    @property
    def capacitance(self) -> float:
        """Estimated wiring capacitance, fF."""
        return self.wirelength * WIRE_CAP_PER_UM

    @property
    def resistance(self) -> float:
        """Estimated end-to-end resistance bound, ohm."""
        return self.wirelength * WIRE_RES_PER_UM + self.vias * VIA_RES

    def points(self) -> list[GridPoint]:
        return [pt for path in self.paths for pt in path.points]


@dataclass
class RoutingResult:
    """Outcome of routing all nets of a circuit."""

    routed: dict[str, RoutedNet] = field(default_factory=dict)
    failed: list[str] = field(default_factory=list)

    @property
    def total_wirelength(self) -> float:
        return sum(net.wirelength for net in self.routed.values())

    @property
    def total_vias(self) -> int:
        return sum(net.vias for net in self.routed.values())

    @property
    def success_rate(self) -> float:
        total = len(self.routed) + len(self.failed)
        return len(self.routed) / total if total else 1.0

    def summary(self) -> str:
        return (
            f"{len(self.routed)} nets routed, {len(self.failed)} failed, "
            f"wirelength {self.total_wirelength:.1f} um, {self.total_vias} vias"
        )


def pin_access(
    grid: RoutingGrid,
    module: PlacedModule,
    index: int = 0,
    count: int = 1,
    *,
    net: str = "",
) -> GridPoint:
    """One of ``count`` pin access nodes distributed along the module's
    top edge, opened on both layers and *reserved* for ``net`` so no
    other wire can seal the terminal off.

    When the snapped node is already reserved (narrow module, several
    nets), the terminal shifts along the edge to the next free column.
    """
    rect = module.rect
    frac = (index + 1) / (count + 1)
    # candidate edges in preference order: top, bottom, left, right
    edges = (
        (rect.x0 + frac * rect.width, rect.y1, "h"),
        (rect.x0 + frac * rect.width, rect.y0, "h"),
        (rect.x0, rect.y0 + frac * rect.height, "v"),
        (rect.x1, rect.y0 + frac * rect.height, "v"),
    )
    for x, y, axis in edges:
        point = grid.snap(x, y)
        if axis == "h":
            lo = grid.snap(rect.x0, y).col
            hi = grid.snap(rect.x1, y).col
        else:
            lo = grid.snap(x, rect.y0).row
            hi = grid.snap(x, rect.y1).row
        for offset in range(hi - lo + 1):
            for direction in (1, -1):
                if axis == "h":
                    col, row = point.col + direction * offset, point.row
                    if not (lo <= col <= hi):
                        continue
                else:
                    col, row = point.col, point.row + direction * offset
                    if not (lo <= row <= hi):
                        continue
                if not grid.in_bounds(0, col, row):
                    continue
                nodes = [GridPoint(layer, col, row) for layer in (0, 1)]
                if not all(
                    grid.is_free(n.layer, n.col, n.row, net=net)
                    or grid._blocked[n.layer][n.col][n.row]
                    for n in nodes
                ):
                    continue  # owned by another net
                for node in nodes:
                    grid.unblock_point(node)
                if all(grid.is_free(n.layer, n.col, n.row, net=net) for n in nodes):
                    if net:
                        # reserve the terminal itself only; the layer-1
                        # node above stays shared, otherwise stacked pins
                        # seal whole routing columns
                        grid.occupy([GridPoint(0, col, row)], net)
                    return GridPoint(0, col, row)
    raise RoutingError(f"no free terminal for {module.name!r}/{net!r}")


class Router:
    """Sequential two-layer maze router for a placed circuit."""

    def __init__(
        self,
        placement: Placement,
        nets: tuple[Net, ...],
        *,
        pitch: float = 1.0,
        margin: float = 4.0,
        halo: float = 0.0,
    ) -> None:
        self._placement = placement
        self._nets = nets
        self.grid = RoutingGrid.over_placement(
            placement, pitch=pitch, margin=margin, halo=halo
        )
        # Every net attached to a module gets its own terminal along the
        # module's top edge.
        nets_of: dict[str, list[str]] = {pm.name: [] for pm in placement}
        for net in nets:
            for pin in net.pins:
                if pin in nets_of:
                    nets_of[pin].append(net.name)
        self._pins: dict[tuple[str, str], GridPoint] = {}
        for pm in placement:
            attached = nets_of[pm.name] or [""]
            for index, net_name in enumerate(attached):
                self._pins[(pm.name, net_name)] = pin_access(
                    self.grid, pm, index, len(attached), net=net_name
                )

    def pin(self, module: str, net: str = "") -> GridPoint:
        """The terminal of ``module`` serving ``net`` (first terminal when
        the net is unspecified)."""
        if (module, net) in self._pins:
            return self._pins[(module, net)]
        for (mod, _), point in self._pins.items():
            if mod == module:
                return point
        raise KeyError(module)

    def route_net(self, net: Net) -> RoutedNet:
        """Route one net as a Steiner-ish tree (iterative pin attachment)."""
        pins = [
            self._pins[(p, net.name)]
            for p in net.pins
            if (p, net.name) in self._pins
        ]
        if len(pins) < 2:
            return RoutedNet(net.name, (), self.grid.pitch)
        tree: list[GridPoint] = [GridPoint(0, pins[0].col, pins[0].row)]
        paths: list[RoutedPath] = []
        for pin_pt in pins[1:]:
            path = astar_connect(self.grid, tree, pin_pt, net=net.name)
            paths.append(path)
            tree.extend(path.points)
        routed = RoutedNet(net.name, tuple(paths), self.grid.pitch)
        self.grid.occupy(routed.points(), net.name)
        return routed

    def route_all(self, *, order: str = "short-first", retries: int = 5) -> RoutingResult:
        """Route every net; ``order`` is ``short-first``, ``long-first``
        or ``given``.

        On failures, a rip-up-and-retry pass releases all wires (pin
        reservations stay) and routes the previously-failed nets first —
        the standard sequential-router escape from ordering conflicts.
        """
        nets = list(self._nets)
        if order == "short-first":
            nets.sort(key=lambda n: n.hpwl(self._placement))
        elif order == "long-first":
            nets.sort(key=lambda n: -n.hpwl(self._placement))
        elif order != "given":
            raise ValueError(f"unknown order {order!r}")

        import random as _random

        result = self._route_pass(nets)
        best = result
        best_order = list(nets)
        hard_nets: set[str] = set(result.failed)
        rng = _random.Random(0xBEEF)
        for attempt in range(retries):
            if not result.failed:
                break
            hard_nets |= set(result.failed)
            failed_first = [n for n in nets if n.name in hard_nets]
            rest = [n for n in nets if n.name not in hard_nets]
            if attempt >= 1:
                # diversify: failed nets first in random order, rest shuffled
                rng.shuffle(failed_first)
                rng.shuffle(rest)
            order_now = failed_first + rest
            self._release_wires(nets)
            result = self._route_pass(order_now)
            if len(result.failed) < len(best.failed):
                best = result
                best_order = order_now
        if len(result.failed) > len(best.failed):
            # re-realize the best pass (wires on the grid must match it)
            self._release_wires(nets)
            result = self._route_pass(best_order)
        return result

    def _route_pass(self, nets: list[Net]) -> RoutingResult:
        result = RoutingResult()
        for net in nets:
            try:
                result.routed[net.name] = self.route_net(net)
            except RoutingError:
                result.failed.append(net.name)
        return result

    def _release_wires(self, nets: list[Net]) -> None:
        """Release all routed wires but keep the pin reservations."""
        for net in nets:
            self.grid.release_net(net.name)
        for (_, net_name), point in self._pins.items():
            if net_name:
                self.grid.occupy([GridPoint(0, point.col, point.row)], net_name)
