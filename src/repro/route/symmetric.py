"""Symmetric routing of differential net pairs.

Section II: "The main reason of symmetric placement (and routing, as
well) is to match the layout-induced parasitics in the two halves of a
group of devices."  Given a symmetric placement, a differential net
pair is routed by routing one net and *mirroring* its path about the
symmetry axis — the mirrored net then has identical wirelength and via
count, hence identical estimated parasitics.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..geometry import Net
from .grid import GridPoint
from .maze import RoutedPath, RoutingError
from .router import RoutedNet, Router


@dataclass(frozen=True)
class SymmetricRouteResult:
    """A routed differential pair with its mismatch metrics."""

    left: RoutedNet
    right: RoutedNet
    mirrored: bool

    @property
    def wirelength_mismatch(self) -> float:
        return abs(self.left.wirelength - self.right.wirelength)

    @property
    def capacitance_mismatch(self) -> float:
        return abs(self.left.capacitance - self.right.capacitance)

    @property
    def resistance_mismatch(self) -> float:
        return abs(self.left.resistance - self.right.resistance)


def _mirror_column(router: Router, axis_x: float, *, snap_axis: bool) -> int:
    """The constant K with mirrored column = K - col.

    With ``snap_axis`` (the default) the axis snaps to the nearest grid
    half-column: the realized mirror is then exact in grid space — and
    therefore exactly parasitic-matched — within pitch/4 of the requested
    physical axis.  Without snapping, misaligned axes are rejected.
    """
    grid = router.grid
    k2 = 2.0 * (axis_x - grid.region.x0) / grid.pitch
    k = round(k2)
    if not snap_axis and abs(k2 - k) > 1e-6:
        raise RoutingError(
            f"symmetry axis x={axis_x:g} is not aligned to the routing grid"
        )
    return k


def route_symmetric_pair(
    router: Router,
    net_a: Net,
    net_b: Net,
    axis_x: float,
    *,
    snap_axis: bool = True,
) -> SymmetricRouteResult:
    """Route ``net_a`` freely, then realize ``net_b`` as its mirror image.

    Falls back to independent routing (``mirrored=False``) when the
    mirrored path is blocked; callers can compare the resulting parasitic
    mismatch (the whole point of symmetric routing).
    """
    k = _mirror_column(router, axis_x, snap_axis=snap_axis)
    routed_a = router.route_net(net_a)

    mirrored_paths = []
    feasible = True
    for path in routed_a.paths:
        points = tuple(
            GridPoint(p.layer, k - p.col, p.row) for p in path.points
        )
        if not all(
            router.grid.is_free(p.layer, p.col, p.row, net=net_b.name)
            for p in points
        ):
            feasible = False
            break
        mirrored_paths.append(RoutedPath(points))

    if feasible:
        # the mirror must land exactly on net_b's own terminals,
        # otherwise the mirrored wires would not connect the net
        covered = {
            (p.col, p.row) for path in mirrored_paths for p in path.points
        }
        pins_b = [
            router.pin(module, net_b.name)
            for module in net_b.pins
        ]
        feasible = all((p.col, p.row) in covered for p in pins_b)

    if feasible:
        routed_b = RoutedNet(net_b.name, tuple(mirrored_paths), router.grid.pitch)
        router.grid.occupy(routed_b.points(), net_b.name)
        return SymmetricRouteResult(routed_a, routed_b, mirrored=True)

    routed_b = router.route_net(net_b)
    return SymmetricRouteResult(routed_a, routed_b, mirrored=False)
