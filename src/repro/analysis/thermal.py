"""Thermal gradient analysis.

Section II motivates placement symmetry thermally: power devices radiate
heat in (roughly) circular isothermal lines; "if two [thermally
sensitive] devices are placed randomly relative to the iso-thermal
lines, a temperature-difference mismatch may result", whereas devices
placed symmetrically w.r.t. the radiators "see roughly identical ambient
temperatures and no temperature induced mismatch results".

The model is a superposition of radially decaying sources — deliberately
simple, but exactly the isothermal-circle picture the paper draws — and
is used to *measure* the thermal mismatch of a placement's symmetry
groups (and, optionally, to add a thermal term to a placer's cost).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping

from ..circuit import SymmetryGroup
from ..geometry import Placement, Point


@dataclass(frozen=True)
class ThermalModel:
    """Superposed radial heat sources over a placement.

    ``power`` maps module names to dissipated power (mW); each source
    contributes ``p / (1 + r / decay)`` degrees at distance ``r`` from
    its center (µm), scaled by ``theta`` (°C/mW at r = 0).
    """

    power: Mapping[str, float]
    decay: float = 20.0
    theta: float = 1.0

    def __post_init__(self) -> None:
        if self.decay <= 0:
            raise ValueError("decay must be positive")
        if any(p < 0 for p in self.power.values()):
            raise ValueError("negative power")

    # -- field evaluation -------------------------------------------------------

    def temperature_at(self, point: Point, placement: Placement) -> float:
        """Temperature rise at a location (°C above ambient)."""
        total = 0.0
        for name, p in self.power.items():
            if p == 0.0 or name not in placement:
                continue
            r = placement[name].rect.center.distance_to(point)
            total += self.theta * p / (1.0 + r / self.decay)
        return total

    def module_temperature(self, name: str, placement: Placement) -> float:
        """Temperature rise at a module's center."""
        return self.temperature_at(placement[name].rect.center, placement)

    # -- mismatch metrics ----------------------------------------------------------

    def pair_mismatch(self, a: str, b: str, placement: Placement) -> float:
        """|ΔT| between two matched devices."""
        return abs(
            self.module_temperature(a, placement)
            - self.module_temperature(b, placement)
        )

    def group_mismatch(self, group: SymmetryGroup, placement: Placement) -> float:
        """Worst pair mismatch within a symmetry group."""
        worst = 0.0
        for a, b in group.pairs:
            worst = max(worst, self.pair_mismatch(a, b, placement))
        return worst

    def total_mismatch(
        self, groups: tuple[SymmetryGroup, ...], placement: Placement
    ) -> float:
        """Sum of pair mismatches over all groups (a placer cost term)."""
        return sum(
            self.pair_mismatch(a, b, placement)
            for group in groups
            for a, b in group.pairs
        )

    # -- structure queries --------------------------------------------------------

    def radiators(self) -> list[str]:
        """Module names with non-zero power, hottest first."""
        return sorted(
            (n for n, p in self.power.items() if p > 0),
            key=lambda n: -self.power[n],
        )

    def is_thermally_balanced(
        self,
        group: SymmetryGroup,
        placement: Placement,
        *,
        tol: float = 1e-9,
    ) -> bool:
        """True when no pair of the group sees a temperature difference.

        Guaranteed when both the group *and* all radiators are placed
        symmetrically about the same axis — the section-II prescription.
        """
        return self.group_mismatch(group, placement) <= tol


def field_sample(
    model: ThermalModel,
    placement: Placement,
    *,
    nx: int = 24,
    ny: int = 12,
) -> list[list[float]]:
    """Sample the temperature field over the placement's bounding box
    (row-major, bottom row first) — for rendering isothermal pictures."""
    bb = placement.bounding_box()
    rows = []
    for j in range(ny):
        y = bb.y0 + (j + 0.5) * bb.height / ny
        row = [
            model.temperature_at(
                Point(bb.x0 + (i + 0.5) * bb.width / nx, y), placement
            )
            for i in range(nx)
        ]
        rows.append(row)
    return rows


def render_field(model: ThermalModel, placement: Placement, *, width: int = 48, height: int = 14) -> str:
    """ASCII isothermal picture: hotter cells get denser glyphs."""
    samples = field_sample(model, placement, nx=width, ny=height)
    flat = [t for row in samples for t in row]
    lo, hi = min(flat), max(flat)
    span = (hi - lo) or 1.0
    glyphs = " .:-=+*#%@"
    lines = []
    for row in reversed(samples):
        line = "".join(
            glyphs[min(len(glyphs) - 1, int((t - lo) / span * (len(glyphs) - 1)))]
            for t in row
        )
        lines.append(line)
    return "\n".join(lines)
