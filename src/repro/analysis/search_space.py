"""Search-space combinatorics quoted by the paper.

Collects the closed forms behind the two headline numbers:

* section II — the S-F sequence-pair lemma: for n = 7 cells with one
  group of p = 2 pairs and s = 2 self-symmetric cells there are
  35,280 S-F codes of (7!)^2 = 25,401,600 total, a 99.86% reduction;
* section IV — the flat B*-tree space: 57,657,600 placements for
  8 modules, i.e. 8! * Catalan(8).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from ..bstar import count_bstar_trees
from ..circuit import SymmetryGroup
from ..seqpair import sf_count_upper_bound, total_sequence_pairs


@dataclass(frozen=True, slots=True)
class SearchSpaceReport:
    """Summary of a placement search space with symmetry constraints."""

    n_cells: int
    total_codes: int
    sf_codes: int

    @property
    def reduction(self) -> float:
        """Fraction of the space removed by restricting to S-F codes."""
        return 1.0 - self.sf_codes / self.total_codes

    def describe(self) -> str:
        return (
            f"n={self.n_cells}: {self.sf_codes:,} symmetric-feasible of "
            f"{self.total_codes:,} sequence-pairs "
            f"({100.0 * self.reduction:.2f}% reduction)"
        )


def sequence_pair_report(n: int, groups: Sequence[SymmetryGroup]) -> SearchSpaceReport:
    """The section-II lemma numbers for a cell count and symmetry groups."""
    return SearchSpaceReport(
        n_cells=n,
        total_codes=total_sequence_pairs(n),
        sf_codes=sf_count_upper_bound(n, groups),
    )


def bstar_space(n: int) -> int:
    """Number of B*-tree placements of ``n`` modules (section IV)."""
    return count_bstar_trees(n)


def bstar_space_table(max_n: int = 12) -> list[tuple[int, int]]:
    """(n, #placements) rows showing the explosion section IV argues
    against enumerating flatly."""
    return [(n, count_bstar_trees(n)) for n in range(1, max_n + 1)]


def hierarchical_enumeration_size(set_sizes: Sequence[int]) -> int:
    """Total placements enumerated under hierarchical bounding: the *sum*
    over basic module sets instead of the product-explosion of the flat
    space."""
    return sum(count_bstar_trees(k) for k in set_sizes)


def flat_enumeration_size(set_sizes: Sequence[int]) -> int:
    """Flat space of the same modules: one B*-tree over all of them."""
    return count_bstar_trees(sum(set_sizes))


def reduction_factor(set_sizes: Sequence[int]) -> float:
    """How many times smaller the hierarchically bounded enumeration is."""
    hier = hierarchical_enumeration_size(set_sizes)
    if hier == 0:
        raise ValueError("need at least one basic module set")
    return flat_enumeration_size(set_sizes) / hier


def log10_factorial(n: int) -> float:
    """log10(n!) via lgamma, for presenting astronomically large spaces."""
    return math.lgamma(n + 1) / math.log(10.0)
