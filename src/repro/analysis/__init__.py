"""Search-space analysis, thermal analysis and terminal rendering."""

from .render import render_placement, render_shape_functions, staircase_table
from .thermal import ThermalModel, field_sample, render_field
from .trace import (
    Trace,
    TraceStream,
    build_report,
    canonical_events,
    load_trace,
    render_report,
    trace_bytes,
    validate_trace,
)
from .search_space import (
    SearchSpaceReport,
    bstar_space,
    bstar_space_table,
    flat_enumeration_size,
    hierarchical_enumeration_size,
    log10_factorial,
    reduction_factor,
    sequence_pair_report,
)

__all__ = [
    "SearchSpaceReport",
    "ThermalModel",
    "Trace",
    "TraceStream",
    "build_report",
    "bstar_space",
    "bstar_space_table",
    "canonical_events",
    "field_sample",
    "flat_enumeration_size",
    "hierarchical_enumeration_size",
    "load_trace",
    "log10_factorial",
    "reduction_factor",
    "render_field",
    "render_placement",
    "render_report",
    "render_shape_functions",
    "sequence_pair_report",
    "staircase_table",
    "trace_bytes",
    "validate_trace",
]
