"""Search-space analysis, thermal analysis and terminal rendering."""

from .render import render_placement, render_shape_functions, staircase_table
from .thermal import ThermalModel, field_sample, render_field
from .search_space import (
    SearchSpaceReport,
    bstar_space,
    bstar_space_table,
    flat_enumeration_size,
    hierarchical_enumeration_size,
    log10_factorial,
    reduction_factor,
    sequence_pair_report,
)

__all__ = [
    "SearchSpaceReport",
    "ThermalModel",
    "bstar_space",
    "bstar_space_table",
    "field_sample",
    "flat_enumeration_size",
    "hierarchical_enumeration_size",
    "log10_factorial",
    "reduction_factor",
    "render_field",
    "render_placement",
    "render_shape_functions",
    "sequence_pair_report",
    "staircase_table",
]
