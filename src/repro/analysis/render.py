"""ASCII rendering of placements and shape functions.

The library is terminal-first: examples and benchmark harnesses print
placements (like the paper's Figs. 1, 3, 4 and 10) and shape-function
staircases (Fig. 8) as text.
"""

from __future__ import annotations

from ..geometry import Placement
from ..shapes import ShapeFunction


def render_placement(
    placement: Placement, *, width: int = 72, height: int = 24
) -> str:
    """Draw a placement as an ASCII grid.

    Each module is filled with the first character of its name; module
    corners get ``+``.  The drawing is scaled to fit the requested
    character box (aspect is not preserved exactly — terminal cells are
    not square anyway).
    """
    bb = placement.bounding_box()
    if bb.width <= 0 or bb.height <= 0 or len(placement) == 0:
        return "(empty placement)"
    sx = (width - 1) / bb.width
    sy = (height - 1) / bb.height
    grid = [[" "] * width for _ in range(height)]

    def to_cell(x: float, y: float) -> tuple[int, int]:
        cx = min(width - 1, max(0, round((x - bb.x0) * sx)))
        cy = min(height - 1, max(0, round((y - bb.y0) * sy)))
        return cx, cy

    for pm in placement:
        x0, y0 = to_cell(pm.rect.x0, pm.rect.y0)
        x1, y1 = to_cell(pm.rect.x1, pm.rect.y1)
        fill = pm.name[0] if pm.name else "?"
        for row in range(y0, y1 + 1):
            for col in range(x0, x1 + 1):
                edge = row in (y0, y1) or col in (x0, x1)
                grid[row][col] = fill if not edge else ("." if grid[row][col] == " " else grid[row][col])
        for cx, cy in ((x0, y0), (x1, y0), (x0, y1), (x1, y1)):
            grid[cy][cx] = "+"

    lines = ["".join(row).rstrip() for row in reversed(grid)]
    return "\n".join(lines)


def render_shape_functions(
    functions: dict[str, ShapeFunction], *, width: int = 64, height: int = 20
) -> str:
    """Plot several shape-function staircases in one ASCII diagram
    (the Fig. 8 comparison).  Each function gets its label's first
    character as marker."""
    points = [
        (w, h)
        for sf in functions.values()
        for (w, h) in sf.staircase()
    ]
    if not points:
        return "(no shapes)"
    max_w = max(w for w, _ in points)
    max_h = max(h for _, h in points)
    grid = [[" "] * width for _ in range(height)]
    for label, sf in functions.items():
        marker = label[0]
        for w, h in sf.staircase():
            col = min(width - 1, round(w / max_w * (width - 1)))
            row = min(height - 1, round(h / max_h * (height - 1)))
            grid[row][col] = marker
    lines = ["".join(row).rstrip() for row in reversed(grid)]
    axis = "-" * width
    legend = "  ".join(f"{label[0]} = {label}" for label in functions)
    return "\n".join([f"h (max {max_h:.1f})"] + lines + [axis, f"w (max {max_w:.1f})   {legend}"])


def staircase_table(functions: dict[str, ShapeFunction]) -> str:
    """Tabulate staircase points of several shape functions."""
    lines = []
    for label, sf in functions.items():
        lines.append(f"{label}:")
        for w, h in sf.staircase():
            lines.append(f"  w={w:10.2f}  h={h:10.2f}  area={w * h:12.1f}")
    return "\n".join(lines)
