"""Trace read side: load, validate, canonicalize and report telemetry.

The write side (:mod:`repro.telemetry`) appends ``repro/trace-v1``
JSONL streams under a trace directory — ``coordinator.jsonl`` plus one
``worker-<pid>.jsonl`` per process that executed chunks.  This module
is the matching reader, in the mold of :mod:`repro.analysis.sweep`:

* :func:`load_trace` parses every stream (header-checked against the
  pinned schema) into a :class:`Trace`;
* :func:`validate_trace` returns a *problem list* (empty = valid), the
  same contract as :func:`repro.analysis.sweep.validate_matrix`;
* :func:`canonical_events` / :func:`trace_bytes` strip the volatile
  ``wall`` payloads and sort, so two same-seed traced runs produce
  byte-identical canonical bytes (the ``matrix_bytes`` discipline);
* :func:`build_report` / :func:`render_report` turn a trace into the
  ``repro trace report`` output: acceptance curves, move-family win
  tables, time-in-phase, per-worker utilization, supervision counters.

Canonicalization rule: an event whose ``fields`` are empty carries
*only* volatile content (connection lifecycle, heartbeat metrics,
utilization timings) and is excluded from the canonical stream — its
very presence depends on scheduling, not on the trajectory.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

from ..telemetry import TRACE_SCHEMA

#: every ``kind`` a v1 stream may carry
EVENT_KINDS = ("header", "count", "gauge", "hist", "event", "span")

#: volatile keys every event's ``wall`` must carry (the writer stamps
#: them; extras like ``elapsed_s`` / ``queue_wait_s`` are free-form)
REQUIRED_WALL_FIELDS = ("t", "seq", "pid")

#: schema tag of the report document ``repro trace report --json`` emits
REPORT_SCHEMA = "repro/trace-report-v1"


@dataclass
class TraceStream:
    """One parsed ``*.jsonl`` stream file."""

    name: str
    path: str
    events: list[dict] = field(default_factory=list)


@dataclass
class Trace:
    """Every stream under one trace directory."""

    directory: str
    streams: list[TraceStream] = field(default_factory=list)

    def events(self) -> Iterator[dict]:
        """All events across streams, file order within each stream."""
        for stream in self.streams:
            yield from stream.events

    def named(self, name: str) -> list[dict]:
        """All events carrying the given probe name."""
        return [e for e in self.events() if e.get("name") == name]


def load_trace(directory: str | Path) -> Trace:
    """Parse every ``*.jsonl`` stream under ``directory``.

    Raises ``ValueError`` for structural failures the reader cannot
    work around: no streams, unparseable lines, or a stream whose first
    line is not a :data:`~repro.telemetry.TRACE_SCHEMA` header.  Softer
    shape problems are :func:`validate_trace`'s business.
    """
    root = Path(directory)
    if not root.is_dir():
        raise ValueError(f"trace directory not found: {root}")
    paths = sorted(root.glob("*.jsonl"))
    if not paths:
        raise ValueError(f"no trace streams (*.jsonl) under {root}")
    streams: list[TraceStream] = []
    for path in paths:
        events: list[dict] = []
        for lineno, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), 1
        ):
            if not line.strip():
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path.name}:{lineno}: not valid JSON ({exc.msg})"
                ) from None
            if not isinstance(event, dict):
                raise ValueError(
                    f"{path.name}:{lineno}: event must be a JSON object, "
                    f"got {type(event).__name__}"
                )
            events.append(event)
        if not events:
            raise ValueError(f"{path.name}: empty trace stream")
        header = events[0]
        schema = (header.get("fields") or {}).get("schema")
        if header.get("kind") != "header" or schema != TRACE_SCHEMA:
            raise ValueError(
                f"{path.name}: first line must be a {TRACE_SCHEMA!r} header "
                f"(got kind={header.get('kind')!r}, schema={schema!r})"
            )
        streams.append(
            TraceStream(
                name=str((header.get("fields") or {}).get("stream", path.stem)),
                path=str(path),
                events=events,
            )
        )
    return Trace(directory=str(root), streams=streams)


def validate_trace(trace: Trace) -> list[str]:
    """Shape-check every event; returns a problem list (empty = valid).

    The problem-list contract mirrors
    :func:`repro.analysis.sweep.validate_matrix`: callers gate on
    ``not problems`` and print the list verbatim on failure.
    """
    problems: list[str] = []
    for stream in trace.streams:
        for index, event in enumerate(stream.events):
            where = f"{Path(stream.path).name}[{index}]"
            kind = event.get("kind")
            if kind not in EVENT_KINDS:
                problems.append(f"{where}: unknown kind {kind!r}")
                continue
            if not isinstance(event.get("name"), str) or not event["name"]:
                problems.append(f"{where}: missing event name")
            fields = event.get("fields")
            if not isinstance(fields, dict):
                problems.append(f"{where}: fields must be an object")
            wall = event.get("wall")
            if not isinstance(wall, dict):
                problems.append(f"{where}: wall must be an object")
                continue
            for key in REQUIRED_WALL_FIELDS:
                if key not in wall:
                    problems.append(f"{where}: wall is missing {key!r}")
            if kind in ("count", "gauge", "hist") and isinstance(fields, dict):
                if "value" not in fields:
                    problems.append(f"{where}: {kind} event has no value")
            if (
                kind == "header"
                and isinstance(fields, dict)
                and fields.get("schema") != TRACE_SCHEMA
            ):
                problems.append(
                    f"{where}: header schema {fields.get('schema')!r} "
                    f"!= {TRACE_SCHEMA!r}"
                )
    return problems


def canonical_events(trace: Trace) -> list[dict]:
    """The deterministic view: headers and ``wall`` payloads dropped,
    wall-only events (empty ``fields``) excluded, sorted by content."""
    out: list[dict] = []
    for event in trace.events():
        if event.get("kind") == "header":
            continue
        fields = event.get("fields") or {}
        if not fields:
            continue
        out.append(
            {
                "kind": event.get("kind"),
                "name": event.get("name"),
                "fields": fields,
            }
        )
    out.sort(key=lambda e: json.dumps(e, sort_keys=True))
    return out


def trace_bytes(trace: Trace) -> bytes:
    """Canonical bytes of a trace: same seed + same config -> same
    bytes, no matter the worker count, scheduling or wall-clock (the
    :func:`repro.analysis.sweep.matrix_bytes` contract)."""
    return "".join(
        json.dumps(event, sort_keys=True, separators=(",", ":")) + "\n"
        for event in canonical_events(trace)
    ).encode("utf-8")


# -- report ---------------------------------------------------------------------


def acceptance_curves(trace: Trace) -> dict[int, list[dict]]:
    """Per-walk sampled annealing probes, ordered by step."""
    curves: dict[int, list[dict]] = {}
    for event in trace.named("anneal.sample"):
        fields = event.get("fields") or {}
        walk = fields.get("walk")
        if walk is None or "step" not in fields:
            continue
        curves.setdefault(int(walk), []).append(
            {
                key: fields[key]
                for key in ("step", "temperature", "cost", "best", "accepted")
                if key in fields
            }
        )
    for points in curves.values():
        points.sort(key=lambda p: p["step"])
    return curves


def family_tables(trace: Trace) -> dict[str, dict[str, dict]]:
    """Move-family win tables per engine, from ``anneal.chunk`` events."""
    tables: dict[str, dict[str, dict]] = {}
    for event in trace.named("anneal.chunk"):
        fields = event.get("fields") or {}
        engine = str(fields.get("engine", "?"))
        for kind, (proposed, accepted) in (fields.get("families") or {}).items():
            row = tables.setdefault(engine, {}).setdefault(
                kind, {"proposed": 0, "accepted": 0}
            )
            row["proposed"] += proposed
            row["accepted"] += accepted
    for rows in tables.values():
        for row in rows.values():
            row["accept_rate"] = (
                row["accepted"] / row["proposed"] if row["proposed"] else 0.0
            )
    return tables


def repack_histogram(trace: Trace) -> dict[str, int]:
    """Merged dirty-suffix repack-length histogram (power-of-two
    buckets keyed by their lower bound, as the annealer emits them)."""
    merged: dict[str, int] = {}
    for event in trace.named("anneal.chunk"):
        for bucket, count in ((event.get("fields") or {}).get(
            "repack_hist"
        ) or {}).items():
            merged[bucket] = merged.get(bucket, 0) + count
    return dict(sorted(merged.items(), key=lambda kv: int(kv[0])))


def phase_breakdown(trace: Trace) -> dict[str, dict]:
    """Time-in-phase from span events (elapsed lives in ``wall``)."""
    phases: dict[str, dict] = {}
    for event in trace.events():
        if event.get("kind") != "span":
            continue
        name = str(event.get("name"))
        row = phases.setdefault(name, {"count": 0, "total_s": 0.0, "ok": True})
        row["count"] += 1
        row["total_s"] = round(
            row["total_s"] + float((event.get("wall") or {}).get("elapsed_s", 0.0)),
            6,
        )
        row["ok"] = row["ok"] and bool(
            (event.get("fields") or {}).get("ok", True)
        )
    return phases


def worker_utilization(trace: Trace) -> dict[str, dict]:
    """Per-worker busy time, chunk counts and queue-wait statistics.

    Merges the local pool's ``executor.worker`` summaries with per-chunk
    ``executor.chunk`` timings (both wall-only); remote workers appear
    under the name they handshook with.
    """
    workers: dict[str, dict] = {}
    summarized: set[str] = set()
    for event in trace.named("executor.worker"):
        wall = event.get("wall") or {}
        name = str(wall.get("worker", "?"))
        summarized.add(name)
        row = workers.setdefault(
            name, {"busy_s": 0.0, "chunks": 0, "queue_wait_s": 0.0}
        )
        row["busy_s"] = round(row["busy_s"] + float(wall.get("busy_s", 0.0)), 6)
        row["chunks"] += int(wall.get("chunks", 0))
    for event in trace.named("executor.chunk"):
        wall = event.get("wall") or {}
        name = str(wall.get("worker", "?"))
        row = workers.setdefault(
            name, {"busy_s": 0.0, "chunks": 0, "queue_wait_s": 0.0}
        )
        row["queue_wait_s"] = round(
            row["queue_wait_s"] + float(wall.get("queue_wait_s", 0.0)), 6
        )
        if name not in summarized:
            # no close-time summary for this worker (remote tier):
            # rebuild busy time from its per-chunk timings
            row["busy_s"] = round(row["busy_s"] + float(wall.get("exec_s", 0.0)), 6)
            row["chunks"] += 1
    return dict(sorted(workers.items()))


def counter_totals(trace: Trace) -> dict[str, int]:
    """Summed ``count`` events by probe name (retries, respawns,
    quarantines, lease churn...)."""
    totals: dict[str, int] = {}
    for event in trace.events():
        if event.get("kind") != "count":
            continue
        name = str(event.get("name"))
        totals[name] = totals.get(name, 0) + int(
            (event.get("fields") or {}).get("value", 1)
        )
    return dict(sorted(totals.items()))


def _first_fields(trace: Trace, name: str) -> dict | None:
    for event in trace.named(name):
        return dict(event.get("fields") or {})
    return None


def build_report(trace: Trace) -> dict:
    """The full ``repro trace report`` document (JSON-ready)."""
    result = _first_fields(trace, "portfolio.result")
    elapsed = None
    for event in trace.named("portfolio.result"):
        elapsed = (event.get("wall") or {}).get("elapsed_s")
    workers = worker_utilization(trace)
    if elapsed:
        for row in workers.values():
            row["utilization"] = round(row["busy_s"] / elapsed, 4)
    return {
        "schema": REPORT_SCHEMA,
        "directory": trace.directory,
        "streams": [s.name for s in trace.streams],
        "events": sum(len(s.events) for s in trace.streams),
        "config": _first_fields(trace, "portfolio.config"),
        "result": result,
        "elapsed_s": elapsed,
        "acceptance": {
            str(walk): points
            for walk, points in sorted(acceptance_curves(trace).items())
        },
        "families": family_tables(trace),
        "repack_hist": repack_histogram(trace),
        "phases": phase_breakdown(trace),
        "workers": workers,
        "counters": counter_totals(trace),
    }


def render_report(report: dict) -> str:
    """Human-readable rendering of :func:`build_report`'s document."""
    lines: list[str] = []
    config = report.get("config") or {}
    if config:
        lines.append(
            f"trace: {config.get('circuit', '?')} — "
            f"{config.get('walks', '?')} walks, policy "
            f"{config.get('policy', '?')}, budget {config.get('budget')}"
        )
    lines.append(
        f"streams: {', '.join(report.get('streams', []))} "
        f"({report.get('events', 0)} events)"
    )
    result = report.get("result") or {}
    if result:
        elapsed = report.get("elapsed_s")
        lines.append(
            f"result: cost {result.get('cost', float('nan')):.4f} "
            f"(walk {result.get('winner')}), "
            f"{result.get('total_steps', 0):,} steps"
            + (f" in {elapsed:.2f}s" if elapsed else "")
            + f", {result.get('retries', 0)} retries, "
            f"{result.get('respawns', 0)} respawns"
        )
    phases = report.get("phases") or {}
    if phases:
        lines.append("time in phase:")
        for name, row in sorted(
            phases.items(), key=lambda kv: -kv[1]["total_s"]
        ):
            flag = "" if row.get("ok", True) else "  [failed]"
            lines.append(
                f"  {name:<20} {row['total_s']:>9.3f}s x{row['count']}{flag}"
            )
    workers = report.get("workers") or {}
    if workers:
        lines.append("workers:")
        for name, row in workers.items():
            util = row.get("utilization")
            lines.append(
                f"  {name:<16} {row['chunks']:>4} chunks  "
                f"busy {row['busy_s']:>8.3f}s  "
                f"queue-wait {row['queue_wait_s']:>8.3f}s"
                + (f"  util {100 * util:.0f}%" if util is not None else "")
            )
    families = report.get("families") or {}
    if families:
        lines.append("move families (accepted/proposed):")
        for engine, rows in sorted(families.items()):
            for kind, row in sorted(rows.items()):
                lines.append(
                    f"  {engine:<10} {kind:<8} "
                    f"{row['accepted']:>7,}/{row['proposed']:<7,} "
                    f"({100 * row['accept_rate']:.1f}%)"
                )
    hist = report.get("repack_hist") or {}
    if hist:
        total = sum(hist.values())
        lines.append("repack suffix lengths:")
        for bucket, count in hist.items():
            lines.append(
                f"  >={bucket:<6} {count:>8,}  ({100 * count / total:.1f}%)"
            )
    acceptance = report.get("acceptance") or {}
    if acceptance:
        lines.append("acceptance curves (sampled):")
        for walk, points in acceptance.items():
            if not points:
                continue
            first, last = points[0], points[-1]
            lines.append(
                f"  walk {walk}: {len(points)} samples, "
                f"T {first.get('temperature', 0):.3g} -> "
                f"{last.get('temperature', 0):.3g}, "
                f"best {last.get('best', float('nan')):.4f}"
            )
    counters = report.get("counters") or {}
    if counters:
        lines.append(
            "counters: "
            + ", ".join(f"{k}={v}" for k, v in counters.items())
        )
    return "\n".join(lines)
