"""Standard-suite sweep harness: tracked quality matrices + regression gate.

``BENCH_perf_kernel.json`` tracks *speed* from PR to PR; this module
tracks *quality*.  A sweep runs a declared grid of

    {committed Bookshelf fixtures + ``gen:`` families} x
    {every annealing engine, serial and as a portfolio}

under fixed seeds and step budgets, and emits one machine-readable
**quality matrix**: per cell, the engine-agnostic reference cost, its
per-term breakdown (:func:`repro.cost.reference_model`), the raw HPWL,
the constraint-violation count, the step budget actually spent, and the
runtime.  Quality fields are a pure function of the declaration (fixed
seeds, in-process execution), so two runs of the same tier produce
**byte-identical** canonical matrices — the same determinism discipline
:func:`repro.workloads.canonical_json` enforces for circuits.

The committed baseline (``benchmarks/quality_matrix.json``) plus
:func:`diff_matrices` turn the matrix into a regression gate:

* a cell whose ``ref_cost`` worsens beyond its tolerance **fails**;
* a cell with more ``violations`` than the baseline **fails**;
* a formerly-``ok`` cell that errors out **fails**;
* a baseline cell missing from the fresh run **fails** (coverage loss);
* improvements and newly added cells are reported but pass — they are
  the cue to re-baseline deliberately (see ``docs/benchmarks.md``).

**Tolerance model.**  Every cell carries ``rtol`` (relative tolerance
on ``ref_cost``, from the sweep declaration).  The gate is
*inclusive-pass*: a fresh cost fails only when it is **strictly
greater** than ``base * (1 + rtol)`` — a cost exactly on the bound
passes.  Violations have no tolerance: any new violation fails.

Three consumers share this module: ``benchmarks/sweep.py`` (standalone
runner + trajectory append), the ``repro sweep`` CLI subcommand
(``--json`` for agents), and the CI ``sweep-smoke`` step (quick tier
diffed against the committed baseline).
"""

from __future__ import annotations

import hashlib
import json
import platform
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

from ..cost import reference_model
from ..geometry import total_hpwl
from ..workloads import FILE_PREFIX, resolve_workload

#: schema tag every matrix carries; the validator pins it
SCHEMA = "repro/quality-matrix-v1"

#: default relative tolerance on a cell's reference cost
DEFAULT_RTOL = 0.02

#: base seed every cell's seed sweep counts up from
DEFAULT_SEED = 17

#: the synthetic cell that stands for "all engines together"
PORTFOLIO = "portfolio"

#: the array-tier cell label: the flat ``bstar`` engine annealed on
#: :class:`~repro.perf.VectorBStarEngine` (``vector_tier`` override) —
#: a different move family, so it gets its own tracked quality cell
VECTOR_ENGINE = "bstar-vector"

#: the override tuple that turns a ``bstar`` walk into a vector-tier walk
VECTOR_OVERRIDES = (("vector_tier", True),)

#: top-level / per-cell fields excluded from the canonical bytes (they
#: vary run to run without the quality changing)
VOLATILE_TOP_FIELDS = ("python", "recorded_at", "elapsed_s")
VOLATILE_CELL_FIELDS = ("runtime_s", "steps_per_sec")

#: repo root, for resolving the committed ``file:`` fixtures no matter
#: the caller's working directory (src/repro/analysis/ -> repo)
REPO_ROOT = Path(__file__).resolve().parents[3]

#: the committed quick-tier baseline every consumer gates against
DEFAULT_BASELINE_PATH = REPO_ROOT / "benchmarks" / "quality_matrix.json"

#: the two committed standard-suite fixtures (MCNC ami33-class and
#: GSRC n100-class subsets), as registry ``file:`` names relative to
#: the repo root — the form recorded in the matrix
FIXTURE_WORKLOADS = (
    f"{FILE_PREFIX}benchmarks/fixtures/ami33s.aux",
    f"{FILE_PREFIX}benchmarks/fixtures/n100s.aux",
)

#: the two generated families the grid sweeps (a constrained analog-ish
#: mix and a plain unconstrained one), instantiated per size
GEN_FAMILIES = (
    "gen:n={n},seed=11,sym=0.2,prox=0.1,soft=0.1",
    "gen:n={n},seed=5",
)

#: module counts per tier (full adds the scaling sizes)
QUICK_SIZES = (100,)
FULL_SIZES = (100, 500, 1000)

#: per-walk step budget of a serial cell, per tier
QUICK_BUDGET = 640
FULL_BUDGET = 2560

#: total step budget of a portfolio cell (split across its starts)
QUICK_PORTFOLIO_BUDGET = 2560
FULL_PORTFOLIO_BUDGET = 10240

TIERS = ("quick", "full")

#: capability caps: largest module count an engine joins a sweep cell
#: at.  The sequence-pair and slicing placers pay O(n^2)-ish packing
#: per step, so budgeted walks at 500+ modules would dominate the whole
#: sweep's wall clock for no extra signal; the declaration drops them
#: from oversized cells *visibly* (the cell's config lists the engines
#: that actually ran) instead of letting the tier silently time out.
ENGINE_SIZE_CAPS: dict[str, int] = {"seqpair": 300, "slicing": 600}


def sweep_engines() -> tuple[str, ...]:
    """The annealing engines the grid covers (the portfolio registry)."""
    from ..parallel import ENGINE_NAMES

    return ENGINE_NAMES


def tier_workloads(tier: str) -> tuple[str, ...]:
    """Workload names of a tier: committed fixtures + ``gen:`` sizes."""
    if tier not in TIERS:
        raise ValueError(f"unknown sweep tier {tier!r}; try: {', '.join(TIERS)}")
    sizes = QUICK_SIZES if tier == "quick" else FULL_SIZES
    gens = tuple(
        family.format(n=n) for n in sizes for family in GEN_FAMILIES
    )
    return FIXTURE_WORKLOADS + gens


@dataclass(frozen=True)
class SweepCellSpec:
    """One declared grid cell: a workload under one engine config."""

    workload: str  #: registry name (``file:`` names repo-root-relative)
    engine: str  #: engine name, or :data:`PORTFOLIO`
    engines: tuple[str, ...]  #: engines the runner cycles starts over
    starts: int
    budget: int  #: total annealing steps across the cell's starts
    seed: int
    rtol: float = DEFAULT_RTOL
    #: config overrides fed to every walk (e.g. ``(("vector_tier",
    #: True),)`` for the array-tier cell); empty for the classic cells
    overrides: tuple[tuple[str, object], ...] = ()

    def config(self) -> dict:
        """The reproducible execution config recorded in the matrix."""
        config = {
            "engines": list(self.engines),
            "starts": self.starts,
            "budget": self.budget,
            "seed": self.seed,
        }
        # only when present, so the classic cells' config hashes (and
        # the committed baseline they key) are untouched
        if self.overrides:
            config["overrides"] = [list(pair) for pair in self.overrides]
        return config

    def config_hash(self) -> str:
        """Short stable hash of the execution config."""
        blob = json.dumps(self.config(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()[:12]


def tier_cells(
    tier: str,
    *,
    workloads: Sequence[str] | None = None,
    engines: Sequence[str] | None = None,
    budget: int | None = None,
    portfolio_budget: int | None = None,
    seed: int = DEFAULT_SEED,
    rtol: float = DEFAULT_RTOL,
) -> tuple[SweepCellSpec, ...]:
    """The declared grid of a tier, with optional narrowing overrides.

    Every workload gets one serial cell per engine plus one
    :data:`PORTFOLIO` cell fanning one start per engine under a shared
    budget.  Overriding ``workloads``/``engines``/budgets changes the
    cells' config hashes, so narrowed runs never collide with the
    committed baseline's cells by accident.
    """
    names = tuple(workloads) if workloads is not None else tier_workloads(tier)
    engine_names = tuple(engines) if engines is not None else sweep_engines()
    serial = budget if budget is not None else (
        QUICK_BUDGET if tier == "quick" else FULL_BUDGET
    )
    total = portfolio_budget if portfolio_budget is not None else (
        QUICK_PORTFOLIO_BUDGET if tier == "quick" else FULL_PORTFOLIO_BUDGET
    )
    cells = []
    for name in names:
        size = declared_size(name)
        capable = tuple(
            e
            for e in engine_names
            if size <= ENGINE_SIZE_CAPS.get(e, size)
        )
        for engine in capable:
            cells.append(
                SweepCellSpec(name, engine, (engine,), 1, serial, seed, rtol)
            )
        if len(capable) > 1:
            cells.append(
                SweepCellSpec(
                    name, PORTFOLIO, capable, len(capable), total, seed, rtol
                )
            )
    if workloads is None and engines is None:
        # the declared grid also pins the array tier: one bstar cell per
        # tier annealed on the vector engine (its own move family, so
        # its own tracked quality row) over the plain generated family
        largest = max(QUICK_SIZES if tier == "quick" else FULL_SIZES)
        cells.append(
            SweepCellSpec(
                GEN_FAMILIES[1].format(n=largest),
                VECTOR_ENGINE,
                ("bstar",),
                1,
                serial,
                seed,
                rtol,
                VECTOR_OVERRIDES,
            )
        )
    return tuple(cells)


def declared_size(name: str) -> int:
    """Module count a workload name declares (0 when unknowable cheaply:
    committed ``file:`` fixtures are small subsets by construction)."""
    from ..workloads import GEN_PREFIX, parse_gen_spec

    if name.startswith(GEN_PREFIX):
        return parse_gen_spec(name).n
    return 0


def resolve_sweep_name(name: str) -> str:
    """A matrix workload name as the registry can resolve it *here*.

    ``file:`` names are recorded repo-root-relative (machine-portable);
    resolution prefers the caller's working directory (so ad-hoc paths
    keep working) and falls back to the repo root.
    """
    if not name.startswith(FILE_PREFIX):
        return name
    path = Path(name[len(FILE_PREFIX):])
    if path.is_absolute() or path.exists():
        return name
    return f"{FILE_PREFIX}{REPO_ROOT / path}"


def run_cell(spec: SweepCellSpec) -> dict:
    """Execute one grid cell; returns its matrix row.

    Execution is in-process (``workers=0``) through
    :class:`~repro.parallel.PortfolioRunner` — the exact budgeted walk
    path the portfolio uses, deterministic for a fixed seed.  A cell
    that raises is recorded as ``ok: false`` with the error message;
    the rest of the sweep continues.
    """
    from ..parallel import PortfolioRunner

    row = {
        "workload": spec.workload,
        "engine": spec.engine,
        "config": spec.config(),
        "config_hash": spec.config_hash(),
        "rtol": spec.rtol,
        "ok": False,
    }
    t0 = time.perf_counter()
    try:
        circuit = resolve_workload(resolve_sweep_name(spec.workload))
        result = PortfolioRunner(
            resolve_sweep_name(spec.workload),
            spec.engines,
            starts=spec.starts,
            workers=0,
            base_seed=spec.seed,
            budget=spec.budget,
            overrides=spec.overrides,
        ).run()
        model = reference_model(circuit)
        placement = result.placement
        breakdown = model.breakdown_placement(placement)
        row.update(
            ok=True,
            modules=circuit.n_modules,
            nets=len(circuit.nets),
            ref_cost=model.evaluate_placement(placement),
            cost_terms=breakdown,
            hpwl=total_hpwl(circuit.nets, placement),
            violations=len(circuit.constraints().violations(placement)),
            steps=result.total_steps,
        )
    except Exception as exc:  # recorded, not raised: the differ gates it
        row["error"] = f"{type(exc).__name__}: {exc}"
    elapsed = time.perf_counter() - t0
    row["runtime_s"] = round(elapsed, 3)
    row["steps_per_sec"] = (
        round(row["steps"] / elapsed, 1) if row.get("steps") else 0.0
    )
    return row


def run_sweep(tier: str = "quick", *, cells: Iterable[SweepCellSpec] | None = None) -> dict:
    """Run a whole tier (or explicit ``cells``); returns the matrix."""
    specs = tuple(cells) if cells is not None else tier_cells(tier)
    t0 = time.perf_counter()
    rows = [run_cell(spec) for spec in specs]
    rows.sort(key=lambda r: (r["workload"], r["engine"], r["config_hash"]))
    return {
        "schema": SCHEMA,
        "tier": tier,
        "cells": rows,
        "python": platform.python_version(),
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "elapsed_s": round(time.perf_counter() - t0, 3),
    }


# -- canonical form -----------------------------------------------------------


def canonical_matrix(matrix: dict) -> dict:
    """The matrix minus its volatile (timing/provenance) fields."""
    out = {k: v for k, v in matrix.items() if k not in VOLATILE_TOP_FIELDS}
    out["cells"] = [
        {k: v for k, v in cell.items() if k not in VOLATILE_CELL_FIELDS}
        for cell in matrix.get("cells", [])
    ]
    return out


def matrix_bytes(matrix: dict) -> bytes:
    """Byte-stable serialization of the matrix's *quality* content.

    Two same-tier runs under the same declaration must produce
    identical bytes here — the sweep's determinism oracle, mirroring
    :func:`repro.workloads.canonical_json` for circuits.
    """
    return (
        json.dumps(
            canonical_matrix(matrix), sort_keys=True, separators=(",", ":")
        ).encode()
        + b"\n"
    )


def write_matrix(matrix: dict, path: str | Path, *, canonical: bool = False) -> Path:
    """Write a matrix (``canonical=True`` strips volatile fields — the
    form baselines are committed in)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = canonical_matrix(matrix) if canonical else matrix
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def load_matrix(path: str | Path) -> dict:
    """Load and validate a matrix file."""
    matrix = json.loads(Path(path).read_text())
    problems = validate_matrix(matrix)
    if problems:
        raise ValueError(
            f"{path}: not a valid quality matrix: {'; '.join(problems)}"
        )
    return matrix


#: fields every ok cell must carry (the machine-readable schema)
_REQUIRED_CELL_FIELDS = (
    "workload", "engine", "config", "config_hash", "rtol", "ok",
)
_REQUIRED_OK_FIELDS = (
    "ref_cost", "cost_terms", "hpwl", "violations", "steps",
)


def validate_matrix(matrix: dict) -> list[str]:
    """Schema check; returns one message per problem (empty = valid)."""
    problems: list[str] = []
    if matrix.get("schema") != SCHEMA:
        problems.append(
            f"schema is {matrix.get('schema')!r}, expected {SCHEMA!r}"
        )
    cells = matrix.get("cells")
    if not isinstance(cells, list):
        return problems + ["no 'cells' list"]
    seen: set[tuple] = set()
    for i, cell in enumerate(cells):
        where = f"cells[{i}]"
        missing = [f for f in _REQUIRED_CELL_FIELDS if f not in cell]
        if missing:
            problems.append(f"{where}: missing {', '.join(missing)}")
            continue
        key = cell_key(cell)
        if key in seen:
            problems.append(f"{where}: duplicate cell {key}")
        seen.add(key)
        if cell["ok"]:
            for name in _REQUIRED_OK_FIELDS:
                if name not in cell:
                    problems.append(f"{where}: ok cell missing {name!r}")
        elif "error" not in cell:
            problems.append(f"{where}: failed cell missing 'error'")
    return problems


def cell_key(cell: dict) -> tuple[str, str, str]:
    """The identity a cell is matched on across runs."""
    return (cell["workload"], cell["engine"], cell["config_hash"])


def cell_label(cell: dict) -> str:
    """Human-readable ``(workload, engine)`` name for diff messages."""
    return f"({cell['workload']}, {cell['engine']})"


# -- the differ ---------------------------------------------------------------


@dataclass
class SweepDiff:
    """Outcome of diffing a fresh matrix against a baseline.

    ``regressions`` is the gate: non-empty means the sweep fails.
    Everything else is informational.
    """

    regressions: list[str]
    improvements: list[str]
    added: list[str]
    unchanged: int

    @property
    def ok(self) -> bool:
        return not self.regressions

    def summary(self) -> str:
        lines = [
            f"sweep diff: {self.unchanged} cell(s) within tolerance, "
            f"{len(self.improvements)} improved, {len(self.added)} new, "
            f"{len(self.regressions)} regressed"
        ]
        lines += [f"REGRESSION: {msg}" for msg in self.regressions]
        lines += [f"improved: {msg}" for msg in self.improvements]
        return "\n".join(lines)


def diff_matrices(baseline: dict, fresh: dict) -> SweepDiff:
    """Gate a fresh matrix against the committed baseline.

    Cells are matched by ``(workload, engine, config_hash)``.  Failure
    conditions (each message names the offending cell):

    * **worse quality** — ``fresh.ref_cost > base.ref_cost * (1 +
      rtol)`` with ``rtol`` taken from the *baseline* cell (strictly
      greater: the bound itself passes);
    * **new violations** — ``fresh.violations > base.violations``;
    * **lost convergence** — a baseline-``ok`` cell that now errors;
    * **missing cell** — a baseline cell the fresh run did not cover.

    Improvements (cost at least ``rtol`` *below* baseline, or fewer
    violations) and fresh-only cells are reported but never fail.
    """
    by_key = {cell_key(c): c for c in fresh.get("cells", [])}
    base_keys = {cell_key(c) for c in baseline.get("cells", [])}
    regressions: list[str] = []
    improvements: list[str] = []
    unchanged = 0
    matched: set[tuple] = set()
    for base in baseline.get("cells", []):
        key = cell_key(base)
        new = by_key.get(key)
        if new is None:
            regressions.append(
                f"{cell_label(base)}: cell missing from the fresh sweep"
            )
            continue
        matched.add(key)
        if not base["ok"]:
            # a cell that never worked cannot regress; note recoveries
            if new["ok"]:
                improvements.append(f"{cell_label(base)}: now converges")
            else:
                unchanged += 1
            continue
        if not new["ok"]:
            regressions.append(
                f"{cell_label(base)}: previously converging cell failed: "
                f"{new.get('error', 'unknown error')}"
            )
            continue
        rtol = float(base.get("rtol", DEFAULT_RTOL))
        bound = base["ref_cost"] * (1.0 + rtol)
        worse_cost = new["ref_cost"] > bound
        new_violations = new["violations"] > base["violations"]
        if worse_cost or new_violations:
            reasons = []
            if worse_cost:
                reasons.append(
                    f"ref_cost {base['ref_cost']:.4f} -> {new['ref_cost']:.4f} "
                    f"(allowed <= {bound:.4f}, rtol {rtol:g})"
                )
            if new_violations:
                reasons.append(
                    f"violations {base['violations']} -> {new['violations']}"
                )
            regressions.append(f"{cell_label(base)}: {'; '.join(reasons)}")
            continue
        better_cost = new["ref_cost"] < base["ref_cost"] * (1.0 - rtol)
        fewer_violations = new["violations"] < base["violations"]
        if better_cost or fewer_violations:
            improvements.append(
                f"{cell_label(base)}: ref_cost {base['ref_cost']:.4f} -> "
                f"{new['ref_cost']:.4f}, violations {base['violations']} -> "
                f"{new['violations']}"
            )
        else:
            unchanged += 1
    added = [
        cell_label(c)
        for c in fresh.get("cells", [])
        if cell_key(c) not in base_keys
    ]
    return SweepDiff(regressions, improvements, added, unchanged)


# -- reporting ----------------------------------------------------------------


def format_matrix(matrix: dict) -> str:
    """Human-readable table of a matrix (one line per cell)."""
    lines = [
        f"quality matrix [{matrix.get('tier', '?')}] — "
        f"{len(matrix.get('cells', []))} cells",
        f"{'workload':<44} {'engine':<10} {'ref cost':>10} {'hpwl':>10} "
        f"{'viol':>5} {'steps':>7} {'steps/s':>9}",
    ]
    for cell in matrix.get("cells", []):
        if not cell["ok"]:
            lines.append(
                f"{cell['workload']:<44} {cell['engine']:<10} "
                f"FAILED: {cell.get('error', '?')}"
            )
            continue
        lines.append(
            f"{cell['workload']:<44} {cell['engine']:<10} "
            f"{cell['ref_cost']:>10.4f} {cell['hpwl']:>10.1f} "
            f"{cell['violations']:>5} {cell['steps']:>7} "
            f"{cell.get('steps_per_sec', 0.0):>9,.0f}"
        )
    return "\n".join(lines)


def matrix_summary(matrix: dict) -> dict:
    """Compact roll-up (the ``mode: "sweep"`` trajectory payload)."""
    ok_cells = [c for c in matrix.get("cells", []) if c["ok"]]
    return {
        "tier": matrix.get("tier"),
        "cells": len(matrix.get("cells", [])),
        "ok_cells": len(ok_cells),
        "workloads": len({c["workload"] for c in matrix.get("cells", [])}),
        "total_ref_cost": round(sum(c["ref_cost"] for c in ok_cells), 6),
        "total_violations": sum(c["violations"] for c in ok_cells),
        "total_steps": sum(c["steps"] for c in ok_cells),
    }
