"""Shapes: (width, height) tuples that can realize their placement.

A *shape function* entry in the paper is a (w, h) tuple; *enhanced*
shape functions additionally store the B*-tree (equivalently, the
placement) that realizes the shape, enabling geometry-aware additions.

Realization is lazy: a regular (RSF) addition only does O(1) bounding
box arithmetic and records how to build the placement; the placement is
materialized just once, for the shape finally selected.  Enhanced (ESF)
additions must materialize operands immediately — they need the module
geometry to compute contact offsets — which is exactly the runtime
premium Table I reports for ESF.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..geometry import Placement
from ..perf.coords import normalize_coords, placement_to_coords


@dataclass(frozen=True)
class _Composition:
    """Deferred recipe: place ``right`` at (dx, dy) next to ``left``."""

    left: "Shape"
    right: "Shape"
    dx: float
    dy: float


@dataclass(frozen=True)
class Shape:
    """One realizable bounding box.

    Exactly one of ``concrete`` (a placement, normalized) or ``recipe``
    (a deferred composition) backs the shape.
    """

    width: float
    height: float
    concrete: Placement | None = None
    recipe: _Composition | None = None
    _cache: list = field(default_factory=list, compare=False, repr=False)

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ValueError(f"non-positive shape {self.width}x{self.height}")
        if (self.concrete is None) == (self.recipe is None):
            raise ValueError("shape needs exactly one of concrete/recipe")

    @property
    def area(self) -> float:
        return self.width * self.height

    def dominates(self, other: "Shape", *, tol: float = 1e-9) -> bool:
        """True if this shape is no larger in both dimensions.

        The paper: "placements which have a greater height, while having
        the same or even a greater width than some other shape ... are
        considered to be redundant and therefore removed."
        """
        return self.width <= other.width + tol and self.height <= other.height + tol

    # -- realization -------------------------------------------------------------

    def placement(self) -> Placement:
        """Materialize (and cache) the placement realizing this shape."""
        if self.concrete is not None:
            return self.concrete
        if self._cache:
            return self._cache[0]
        r = self.recipe
        built = (
            r.left.placement()
            .merged_with(r.right.placement().translated(r.dx, r.dy))
            .normalized()
        )
        self._cache.append(built)
        return built

    def coords(self) -> dict[str, tuple[float, float, float, float]]:
        """Flat ``name -> (x0, y0, x1, y1)`` of the realizing placement.

        Same floats as :meth:`placement` (same merge/translate/normalize
        arithmetic), but walking the recipe tree moves only 4-tuples —
        no intermediate ``Placement`` objects.  This is what annealing
        cost loops should call when they need module positions.
        """
        if self.concrete is not None:
            return placement_to_coords(self.concrete)
        r = self.recipe
        merged = dict(r.left.coords())
        dx, dy = r.dx, r.dy
        for name, (x0, y0, x1, y1) in r.right.coords().items():
            merged[name] = (x0 + dx, y0 + dy, x1 + dx, y1 + dy)
        return normalize_coords(merged)

    # -- constructors ------------------------------------------------------------

    @classmethod
    def of_placement(cls, placement: Placement) -> "Shape":
        p = placement.normalized()
        bb = p.bounding_box()
        return cls(bb.width, bb.height, concrete=p)

    @classmethod
    def composed(cls, left: "Shape", right: "Shape", dx: float, dy: float) -> "Shape":
        """Deferred composition; bounding box from arithmetic only."""
        width = max(left.width, dx + right.width) - min(0.0, dx)
        height = max(left.height, dy + right.height) - min(0.0, dy)
        return cls(width, height, recipe=_Composition(left, right, dx, dy))


def pareto_prune(shapes: Iterable[Shape], *, tol: float = 1e-9) -> list[Shape]:
    """Remove dominated shapes; result sorted by increasing width
    (and thus strictly decreasing height)."""
    ordered = sorted(shapes, key=lambda s: (s.width, s.height))
    kept: list[Shape] = []
    best_height = float("inf")
    for shape in ordered:
        if shape.height < best_height - tol:
            kept.append(shape)
            best_height = shape.height
    return kept
