"""Contact-offset computation between placements.

The enhanced shape addition of section IV-A interleaves two placements
instead of abutting their bounding rectangles: the right operand slides
left until it touches the left operand (Fig. 7, the ``w_imp`` saving).
The minimal non-overlapping offset is computed from the operands' facing
profiles.
"""

from __future__ import annotations

from ..geometry import Placement


def horizontal_contact_offset(left: Placement, right: Placement) -> float:
    """Smallest ``d`` such that ``right.translated(d, 0)`` does not overlap
    ``left``.

    For every pair of modules whose y ranges overlap, the right module's
    left edge must clear the left module's right edge.  When no y ranges
    overlap the operands can fully interpenetrate in x; the offset is
    then negative (bounded by the operands' extents).
    """
    required = float("-inf")
    for a in left:
        for b in right:
            if a.rect.y0 < b.rect.y1 and b.rect.y0 < a.rect.y1:
                required = max(required, a.rect.x1 - b.rect.x0)
    if required == float("-inf"):
        # no facing pair: butt the bounding boxes' left edges together
        required = left.bounding_box().x0 - right.bounding_box().x0
    return required


def vertical_contact_offset(bottom: Placement, top: Placement) -> float:
    """Smallest ``d`` such that ``top.translated(0, d)`` clears ``bottom``."""
    required = float("-inf")
    for a in bottom:
        for b in top:
            if a.rect.x0 < b.rect.x1 and b.rect.x0 < a.rect.x1:
                required = max(required, a.rect.y1 - b.rect.y0)
    if required == float("-inf"):
        required = bottom.bounding_box().y0 - top.bounding_box().y0
    return required
