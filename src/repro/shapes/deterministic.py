"""Deterministic hierarchical placement (Strasser et al. [25], section IV).

The two-step flow of the paper:

1. enumerate all placements of every basic module set (leaves of the
   hierarchy tree) into shape functions;
2. combine the shape functions bottom-up along the hierarchy tree.

With *enhanced* shape functions (ESF) combinations interleave child
placements geometrically; with *regular* shape functions (RSF) children
are stacked as bounding rectangles.  The placer is fully deterministic —
no annealing — which is the approach's selling point.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..circuit import Circuit, CommonCentroidGroup, HierarchyNode, SymmetryGroup
from ..geometry import Placement
from .enumeration import (
    enumerate_common_centroid,
    enumerate_plain,
    enumerate_symmetric,
)
from .shape_function import ShapeFunction, add_shape_functions


@dataclass(frozen=True)
class DeterministicConfig:
    """Parameters of the deterministic placer.

    ``enhanced`` selects ESF vs RSF.  ``max_shapes`` bounds the staircase
    carried between hierarchy levels (beam truncation; None = unbounded).
    ``max_exhaustive`` is the basic-set size limit for full enumeration.
    """

    enhanced: bool = True
    rotations: bool = True
    max_shapes: int | None = 32
    max_exhaustive: int = 4
    samples: int = 600
    seed: int = 0


@dataclass
class DeterministicResult:
    """Final placement plus the root shape function and timing."""

    placement: Placement
    shape_function: ShapeFunction
    area_usage: float
    runtime_s: float
    node_shape_functions: dict[str, ShapeFunction] = field(default_factory=dict)


class DeterministicPlacer:
    """Bottom-up shape-function placement over a circuit hierarchy."""

    def __init__(self, circuit: Circuit, config: DeterministicConfig | None = None) -> None:
        self._circuit = circuit
        self._config = config or DeterministicConfig()
        self._modules = circuit.modules()

    # -- shape function of one hierarchy node -------------------------------------

    def _leaf_shape_function(self, node: HierarchyNode) -> ShapeFunction:
        cfg = self._config
        names = [m.name for m in node.modules]
        if isinstance(node.constraint, SymmetryGroup):
            members = node.constraint.member_set()
            sf = enumerate_symmetric(
                self._modules,
                node.constraint,
                max_exhaustive=cfg.max_exhaustive,
                samples=cfg.samples,
                seed=cfg.seed,
            )
            extra = [n for n in names if n not in members]
            if extra:
                sf = self._combine(
                    sf,
                    enumerate_plain(
                        self._modules,
                        extra,
                        rotations=cfg.rotations,
                        max_exhaustive=cfg.max_exhaustive,
                        samples=cfg.samples,
                        seed=cfg.seed,
                    ),
                )
            return sf
        if isinstance(node.constraint, CommonCentroidGroup):
            members = node.constraint.member_set()
            sf = enumerate_common_centroid(self._modules, node.constraint)
            extra = [n for n in names if n not in members]
            if extra:
                sf = self._combine(
                    sf,
                    enumerate_plain(
                        self._modules,
                        extra,
                        rotations=cfg.rotations,
                        max_exhaustive=cfg.max_exhaustive,
                        samples=cfg.samples,
                        seed=cfg.seed,
                    ),
                )
            return sf
        return enumerate_plain(
            self._modules,
            names,
            rotations=cfg.rotations,
            max_exhaustive=cfg.max_exhaustive,
            samples=cfg.samples,
            seed=cfg.seed,
        )

    def _combine(self, f: ShapeFunction, g: ShapeFunction) -> ShapeFunction:
        cfg = self._config
        return add_shape_functions(
            f, g, enhanced=cfg.enhanced, direction="both", max_shapes=cfg.max_shapes
        )

    def _fold(self, parts: list[ShapeFunction]) -> ShapeFunction:
        sf = parts[0]
        for other in parts[1:]:
            sf = self._combine(sf, other)
        return sf

    def _node_shape_function(
        self, node: HierarchyNode, memo: dict[str, ShapeFunction]
    ) -> ShapeFunction:
        parts: list[ShapeFunction] = []
        if node.modules:
            parts.append(self._leaf_shape_function(node))
        for child in node.children:
            parts.append(self._node_shape_function(child, memo))
        if not parts:
            raise ValueError(f"hierarchy node {node.name!r} is empty")
        sf = self._fold(parts)
        if len(parts) > 2:
            # Combination order matters; also fold in reverse and keep the
            # Pareto union of both orders.
            reverse = self._fold(parts[::-1])
            sf = ShapeFunction.of(list(sf.shapes) + list(reverse.shapes))
        if self._config.max_shapes is not None:
            sf = sf.truncated(self._config.max_shapes)
        memo[node.name] = sf
        return sf

    # -- the flow ------------------------------------------------------------------

    def run(self) -> DeterministicResult:
        """Enumerate, combine, and return the min-area placement."""
        start = time.perf_counter()
        memo: dict[str, ShapeFunction] = {}
        root_sf = self._node_shape_function(self._circuit.hierarchy, memo)
        best = root_sf.min_area_shape()
        runtime = time.perf_counter() - start
        placement = best.placement().normalized()
        module_area = self._circuit.total_module_area()
        return DeterministicResult(
            placement=placement,
            shape_function=root_sf,
            area_usage=placement.area / module_area if module_area else 1.0,
            runtime_s=runtime,
            node_shape_functions=memo,
        )
