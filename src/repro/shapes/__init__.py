"""Shape functions and deterministic placement (paper section IV)."""

from .deterministic import (
    DeterministicConfig,
    DeterministicPlacer,
    DeterministicResult,
)
from .enumeration import (
    enumerate_common_centroid,
    enumerate_plain,
    enumerate_symmetric,
)
from .profiles import horizontal_contact_offset, vertical_contact_offset
from .shape import Shape, pareto_prune
from .shape_function import ShapeFunction, add_shape_functions

__all__ = [
    "DeterministicConfig",
    "DeterministicPlacer",
    "DeterministicResult",
    "Shape",
    "ShapeFunction",
    "add_shape_functions",
    "enumerate_common_centroid",
    "enumerate_plain",
    "enumerate_symmetric",
    "horizontal_contact_offset",
    "pareto_prune",
    "vertical_contact_offset",
]
