"""Shape functions: regular (RSF) and enhanced (ESF) additions.

A shape function is a Pareto staircase of realizable shapes.  Adding two
shape functions combines every shape of one with every shape of the
other and prunes dominated results:

* **regular** addition (Otten [23]) stacks bounding rectangles:
  horizontally ``(w1 + w2, max(h1, h2))``;
* **enhanced** addition (Strasser et al. [25]) slides the operands into
  contact using their stored placements, so shapes can interleave and
  the sum can be narrower than ``w1 + w2`` — the Fig. 7 ``w_imp``.

Both additions produce valid placements for every result shape; only
the tightness differs.  The enhanced variant inspects module geometry
(O(n1 * n2) per shape pair), which is the runtime premium Table I
reports (about an order of magnitude).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Iterator

from ..geometry import Module, Orientation, PlacedModule, Placement, Rect
from .profiles import horizontal_contact_offset, vertical_contact_offset
from .shape import Shape, pareto_prune


@dataclass(frozen=True)
class ShapeFunction:
    """An immutable Pareto staircase of shapes."""

    shapes: tuple[Shape, ...]

    def __post_init__(self) -> None:
        if not self.shapes:
            raise ValueError("shape function needs at least one shape")
        widths = [s.width for s in self.shapes]
        heights = [s.height for s in self.shapes]
        if widths != sorted(widths) or heights != sorted(heights, reverse=True):
            raise ValueError("shapes must form a Pareto staircase (use .of())")

    # -- constructors -----------------------------------------------------------

    @classmethod
    def of(cls, shapes: Iterable[Shape]) -> "ShapeFunction":
        """Build from arbitrary shapes (pruned to the Pareto staircase)."""
        pruned = pareto_prune(shapes)
        if not pruned:
            raise ValueError("no shapes given")
        return cls(tuple(pruned))

    @classmethod
    def from_module(cls, module: Module, *, rotations: bool = True) -> "ShapeFunction":
        """Leaf shape function: the module's variants (and rotations)."""
        shapes = []
        for vi, variant in enumerate(module.variants):
            orients = [Orientation.R0]
            if rotations and module.rotatable and variant.width != variant.height:
                orients.append(Orientation.R90)
            for orient in orients:
                w, h = variant.oriented(orient)
                placement = Placement.of(
                    [PlacedModule(module, Rect.from_size(0, 0, w, h), vi, orient)]
                )
                shapes.append(Shape(w, h, placement))
        return cls.of(shapes)

    # -- queries ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.shapes)

    def __iter__(self) -> Iterator[Shape]:
        return iter(self.shapes)

    def min_area_shape(self) -> Shape:
        """The smallest-bounding-rectangle shape (Table I's metric)."""
        return min(self.shapes, key=lambda s: s.area)

    def staircase(self) -> list[tuple[float, float]]:
        """(w, h) pairs in staircase order — the Fig. 8 plot data."""
        return [(s.width, s.height) for s in self.shapes]

    def truncated(self, max_shapes: int) -> "ShapeFunction":
        """Keep at most ``max_shapes`` staircase points (uniform stride,
        endpoints preserved) to bound combination cost."""
        if max_shapes < 1:
            raise ValueError("max_shapes must be >= 1")
        if len(self.shapes) <= max_shapes:
            return self
        if max_shapes == 1:
            return ShapeFunction((self.min_area_shape(),))
        n = len(self.shapes)
        picks = sorted({round(i * (n - 1) / (max_shapes - 1)) for i in range(max_shapes)})
        return ShapeFunction(tuple(self.shapes[i] for i in picks))


# ---------------------------------------------------------------------------
# Additions
# ---------------------------------------------------------------------------

Combiner = Callable[[Shape, Shape], Shape]


def _regular_h(a: Shape, b: Shape) -> Shape:
    # O(1): bounding rectangles side by side, placement deferred.
    return Shape.composed(a, b, a.width, 0.0)


def _regular_v(a: Shape, b: Shape) -> Shape:
    return Shape.composed(a, b, 0.0, a.height)


def _enhanced_h(a: Shape, b: Shape) -> Shape:
    # O(n1 * n2): operands materialized and slid into contact (Fig. 7).
    offset = horizontal_contact_offset(a.placement(), b.placement())
    moved = b.placement().translated(offset, 0.0)
    return Shape.of_placement(a.placement().merged_with(moved))


def _enhanced_v(a: Shape, b: Shape) -> Shape:
    offset = vertical_contact_offset(a.placement(), b.placement())
    moved = b.placement().translated(0.0, offset)
    return Shape.of_placement(a.placement().merged_with(moved))


def add_shape_functions(
    f: ShapeFunction,
    g: ShapeFunction,
    *,
    enhanced: bool,
    direction: str = "both",
    max_shapes: int | None = None,
) -> ShapeFunction:
    """Add two shape functions.

    ``direction`` is ``"h"``, ``"v"`` or ``"both"`` (both compositions,
    merged and pruned).  With ``enhanced=True`` operands are slid into
    contact via their placements; enhanced additions also try both
    operand orders, since contact offsets are not symmetric.
    """
    if direction not in ("h", "v", "both"):
        raise ValueError("direction must be 'h', 'v' or 'both'")
    combos: list[tuple[Combiner, ShapeFunction, ShapeFunction]] = []
    h_comb: Combiner = _enhanced_h if enhanced else _regular_h
    v_comb: Combiner = _enhanced_v if enhanced else _regular_v
    if direction in ("h", "both"):
        combos.append((h_comb, f, g))
        if enhanced:
            combos.append((h_comb, g, f))
    if direction in ("v", "both"):
        combos.append((v_comb, f, g))
        if enhanced:
            combos.append((v_comb, g, f))

    results: list[Shape] = []
    for combine, left, right in combos:
        for a in left:
            for b in right:
                results.append(combine(a, b))
    out = ShapeFunction.of(results)
    if max_shapes is not None:
        out = out.truncated(max_shapes)
    return out
