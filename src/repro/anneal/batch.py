"""Batched multi-candidate annealing (the vector tier's driver).

:class:`BatchedAnnealer` drives a *batch engine* — an
:class:`~repro.anneal.IncrementalEngine` extended with::

    propose_batch(rng, k) -> list[float]   # k candidates, one committed base
    accept(j)                              # keep candidate j, drop the rest
    reject_all()                           # drop the whole batch, O(1)

Each kernel call proposes K candidate moves off the same committed
state and scores them in one vectorized pass (see
:class:`repro.perf.vector.VectorBStarEngine`); the driver then scans
the batch in order and Metropolis-tests each candidate exactly as the
scalar loop would: candidate ``j`` is judged at the temperature of
schedule step ``step + j``, downhill moves accept outright, uphill
moves take one acceptance draw.  The **first acceptance wins** — the
remaining candidates are discarded untested, because accepting changes
the base state they were proposed from.  A tile therefore consumes
``j + 1`` schedule steps when candidate ``j`` accepts (all K when none
does), which keeps the step accounting, temperature curve, acceptance
counters and cost trace aligned with the scalar drivers' semantics.

The batch width adapts to the measured acceptance ratio: near-certain
acceptance makes batching pure waste (only candidate 0 ever survives),
so K tracks the expected number of trials per acceptance, clamped to
``batch_max``.  The width is derived *only* from checkpoint-carried
state (step count and acceptance count), never from wall-clock or
loop-local history — so chunked ``advance`` calls replay the identical
tile sequence and remain bit-identical to one monolithic run, the same
contract :class:`~repro.anneal.IncrementalAnnealer` keeps.  One wrinkle
from tiling: a tile that straddles ``max_steps`` runs to its own end,
so a chunk may overshoot its nominal boundary by up to K-1 steps; the
returned checkpoint records the true step and the next chunk picks up
from there (an already-passed boundary is a no-op, as in the base
class).
"""

from __future__ import annotations

import math
import random
from dataclasses import replace
from typing import Protocol

from .annealer import IncrementalAnnealer, WalkCheckpoint
from .schedule import CoolingSchedule


class BatchEngine(Protocol):
    """The batch extension of :class:`~repro.anneal.IncrementalEngine`."""

    def propose_batch(self, rng: random.Random, k: int) -> list[float]:
        """Propose ``k`` candidates off the committed state; return costs."""
        ...

    def accept(self, j: int) -> None:
        """Keep candidate ``j`` (and discard the others)."""
        ...

    def reject_all(self) -> None:
        """Discard the whole batch; committed state is unchanged."""
        ...


class BatchedAnnealer(IncrementalAnnealer):
    """Anneal a :class:`BatchEngine` K candidates at a time.

    Drop-in replacement for :class:`~repro.anneal.IncrementalAnnealer`
    (same ``begin`` / ``advance`` / ``run`` surface, same checkpoint
    format, warmup runs through the engine's scalar protocol), but the
    annealing loop is tiled: one ``propose_batch`` call per tile, one
    vectorized scoring pass, first-acceptance-wins.
    """

    def __init__(
        self,
        engine: BatchEngine,
        schedule: CoolingSchedule | None = None,
        rng: random.Random | None = None,
        *,
        auto_t0: bool = True,
        trace_every: int = 0,
        batch_max: int = 16,
    ) -> None:
        super().__init__(
            engine, schedule, rng, auto_t0=auto_t0, trace_every=trace_every
        )
        if batch_max < 1:
            raise ValueError(f"batch_max must be >= 1, got {batch_max}")
        self._batch_max = batch_max

    def advance(
        self,
        checkpoint: WalkCheckpoint,
        max_steps: int | None = None,
        *,
        _engine_synced: bool = False,
    ) -> WalkCheckpoint:
        """Run annealing tiles from ``checkpoint`` until ``stop``.

        The last tile may overshoot ``stop`` (never ``total_steps``);
        see the module docstring for why that preserves bit-identity
        across chunk boundaries.
        """
        if self._schedule.total_steps != checkpoint.total_steps:
            raise ValueError(
                f"schedule spans {self._schedule.total_steps} steps but the "
                f"checkpoint was taken under {checkpoint.total_steps}"
            )
        total = checkpoint.total_steps
        step = checkpoint.step
        start = step
        stop = total if max_steps is None else min(total, step + max_steps)
        if step >= stop:
            return checkpoint

        rng = self._rng
        engine = self._engine
        if not _engine_synced:
            engine.reset(checkpoint.state)
        rng.setstate(checkpoint.rng_state)

        current_cost = checkpoint.current_cost
        best, best_cost = checkpoint.best_state, checkpoint.best_cost
        stats = replace(checkpoint.stats, cost_trace=list(checkpoint.stats.cost_trace))

        propose_batch = engine.propose_batch
        accept = engine.accept
        reject_all = engine.reject_all
        random_unit = rng.random
        exp = math.exp
        trace_every = self._trace_every
        batch_max = self._batch_max
        temperature_at = self._schedule.temperature
        t_scale = checkpoint.t_scale
        temperature = 0.0

        # telemetry (see the base class): one falsy check per tile when
        # disabled; the engine publishes per-candidate families only
        # while its `collect_stats` flag is up (set_recorder flips it)
        recorder = self._recorder
        collecting = recorder.enabled
        sample = recorder.sample_interval if collecting else 0
        if collecting:
            track_moves = hasattr(engine, "last_kinds")
            fam_proposed: dict[str, int] = {}
            fam_accepted: dict[str, int] = {}
            repack_hist: dict[int, int] = {}

        while step < stop:
            # expected trials per acceptance so far (checkpoint-carried
            # counters only: chunked replays see identical widths)
            width = (step + 2) // (stats.accepted + 1) - 1
            if width < 1:
                width = 1
            elif width > batch_max:
                width = batch_max
            if width > total - step:
                width = total - step
            costs = propose_batch(rng, width)

            consumed = width
            accepted_at = -1
            prev_cost = current_cost
            for j in range(width):
                temperature = temperature_at(step + j) * t_scale
                delta = costs[j] - current_cost
                if delta <= 0 or random_unit() < exp(
                    -delta / max(temperature, 1e-300)
                ):
                    accepted_at = j
                    consumed = j + 1
                    break
            if accepted_at >= 0:
                accept(accepted_at)
                current_cost = costs[accepted_at]
                stats.accepted += 1
                if current_cost < best_cost:
                    best_cost = current_cost
                    best = engine.snapshot()
                    stats.improved += 1
            else:
                reject_all()
            if collecting:
                if track_moves:
                    kinds = engine.last_kinds
                    lens = engine.last_repack_lens
                    for j in range(consumed):
                        kind = kinds[j]
                        fam_proposed[kind] = fam_proposed.get(kind, 0) + 1
                        length = lens[j]
                        if length:
                            bucket = length.bit_length()
                            repack_hist[bucket] = repack_hist.get(bucket, 0) + 1
                    if accepted_at >= 0:
                        kind = kinds[accepted_at]
                        fam_accepted[kind] = fam_accepted.get(kind, 0) + 1
                if sample:
                    for i in range(consumed):
                        if (step + i) % sample == 0:
                            recorder.event(
                                "anneal.sample",
                                step=step + i,
                                temperature=temperature_at(step + i) * t_scale,
                                cost=prev_cost if i < consumed - 1 else current_cost,
                                best=best_cost,
                                accepted=stats.accepted,
                            )
            if trace_every:
                # the first consumed-1 steps were rejections at the old
                # cost; the last consumed step carries the tile's outcome
                for i in range(consumed):
                    if (step + i) % trace_every == 0:
                        stats.cost_trace.append(
                            prev_cost if i < consumed - 1 else current_cost
                        )
            step += consumed

        stats.steps = step
        stats.final_temperature = temperature
        stats.best_cost = best_cost
        if collecting:
            self._emit_chunk_summary(
                start, step, temperature, current_cost, best_cost, stats,
                fam_proposed, fam_accepted, repack_hist,
            )
        return WalkCheckpoint(
            step=step,
            total_steps=total,
            t_scale=t_scale,
            state=engine.snapshot(),
            current_cost=current_cost,
            best_state=best,
            best_cost=best_cost,
            rng_state=rng.getstate(),
            stats=stats,
        )
