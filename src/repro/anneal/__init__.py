"""Shared simulated-annealing engine (Kirkpatrick et al. [12])."""

from .annealer import (
    CHECKPOINT_VERSION,
    Annealer,
    AnnealingResult,
    AnnealingStats,
    FunctionMoveSet,
    IncrementalAnnealer,
    IncrementalEngine,
    MoveSet,
    StateEngine,
    WalkCheckpoint,
    WeightedMoveSet,
    checkpoint_from_payload,
    checkpoint_payload,
)
from .batch import BatchedAnnealer, BatchEngine
from .schedule import (
    CoolingSchedule,
    GeometricSchedule,
    LinearSchedule,
    initial_temperature_from_samples,
)

__all__ = [
    "CHECKPOINT_VERSION",
    "Annealer",
    "AnnealingResult",
    "AnnealingStats",
    "BatchEngine",
    "BatchedAnnealer",
    "CoolingSchedule",
    "FunctionMoveSet",
    "GeometricSchedule",
    "IncrementalAnnealer",
    "IncrementalEngine",
    "LinearSchedule",
    "MoveSet",
    "StateEngine",
    "WalkCheckpoint",
    "WeightedMoveSet",
    "checkpoint_from_payload",
    "checkpoint_payload",
    "initial_temperature_from_samples",
]
