"""Shared simulated-annealing engine (Kirkpatrick et al. [12])."""

from .annealer import (
    Annealer,
    AnnealingResult,
    AnnealingStats,
    FunctionMoveSet,
    IncrementalAnnealer,
    IncrementalEngine,
    MoveSet,
    StateEngine,
    WalkCheckpoint,
    WeightedMoveSet,
)
from .schedule import (
    CoolingSchedule,
    GeometricSchedule,
    LinearSchedule,
    initial_temperature_from_samples,
)

__all__ = [
    "Annealer",
    "AnnealingResult",
    "AnnealingStats",
    "CoolingSchedule",
    "FunctionMoveSet",
    "GeometricSchedule",
    "IncrementalAnnealer",
    "IncrementalEngine",
    "LinearSchedule",
    "MoveSet",
    "StateEngine",
    "WalkCheckpoint",
    "WeightedMoveSet",
    "initial_temperature_from_samples",
]
