"""Cooling schedules for simulated annealing.

The stochastic placers of sections II and III both use classic
Kirkpatrick-style annealing [12].  Schedules are small stateless policy
objects so placers can swap them without touching the engine.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Protocol, Sequence


class CoolingSchedule(Protocol):
    """Maps an iteration counter to a temperature."""

    def temperature(self, step: int) -> float:
        """Temperature at annealing step ``step`` (0-based)."""
        ...

    @property
    def total_steps(self) -> int:
        """Number of annealing steps the schedule spans."""
        ...


@dataclass(frozen=True, slots=True)
class GeometricSchedule:
    """Classic geometric cooling: ``T_k = T0 * alpha^k`` with ``k`` the
    epoch index (``steps_per_epoch`` moves per epoch)."""

    t_initial: float = 1.0
    t_final: float = 1e-4
    alpha: float = 0.95
    steps_per_epoch: int = 64

    def __post_init__(self) -> None:
        if not (0.0 < self.alpha < 1.0):
            raise ValueError("alpha must be in (0, 1)")
        if self.t_initial <= self.t_final:
            raise ValueError("t_initial must exceed t_final")
        if self.steps_per_epoch <= 0:
            raise ValueError("steps_per_epoch must be positive")

    @property
    def epochs(self) -> int:
        return max(1, math.ceil(math.log(self.t_final / self.t_initial) / math.log(self.alpha)))

    @property
    def total_steps(self) -> int:
        return self.epochs * self.steps_per_epoch

    def temperature(self, step: int) -> float:
        epoch = step // self.steps_per_epoch
        return self.t_initial * self.alpha**epoch


@dataclass(frozen=True, slots=True)
class LinearSchedule:
    """Temperature falls linearly from ``t_initial`` to ``t_final``."""

    t_initial: float = 1.0
    t_final: float = 1e-4
    steps: int = 10_000

    def __post_init__(self) -> None:
        if self.steps <= 0:
            raise ValueError("steps must be positive")
        if self.t_initial < self.t_final:
            raise ValueError("t_initial must be >= t_final")

    @property
    def total_steps(self) -> int:
        return self.steps

    def temperature(self, step: int) -> float:
        frac = min(1.0, step / self.steps)
        return self.t_initial + (self.t_final - self.t_initial) * frac


def initial_temperature_from_samples(deltas: Sequence[float], acceptance: float = 0.9) -> float:
    """Choose T0 so uphill moves of average magnitude are accepted with
    probability ``acceptance`` — the standard warm-up heuristic.

    ``deltas`` are sampled cost increases from random moves; non-positive
    samples are ignored.
    """
    if not (0.0 < acceptance < 1.0):
        raise ValueError("acceptance must be in (0, 1)")
    uphill = [d for d in deltas if d > 0]
    if not uphill:
        return 1.0
    avg = sum(uphill) / len(uphill)
    return -avg / math.log(acceptance)
