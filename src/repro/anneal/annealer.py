"""Generic simulated-annealing engine.

Both topological placers (sequence-pair, section II; B*-tree forests,
section III) share this engine.  The engine is deliberately ignorant of
layout: it manipulates opaque *states* through a :class:`MoveSet` and a
cost function, implementing stochastically controlled hill-climbing with
best-state tracking.

Two driving modes are provided:

* :class:`Annealer` — the classic functional loop: ``propose`` returns a
  brand-new state, the cost function evaluates it from scratch, and a
  rejected candidate is simply dropped.
* :class:`IncrementalAnnealer` — the incremental protocol: a single
  mutable *engine* owns the current state and evaluates each
  perturbation in place (``propose -> delta-eval -> commit/rollback``).
  Rejection rolls the perturbation back instead of discarding a copied
  state, so engines can reuse every cache that the move did not touch
  (see :mod:`repro.perf.incremental`).

Both loops consume randomness identically (one draw sequence per
proposal plus one acceptance draw per uphill move), so an engine that
mirrors a :class:`MoveSet`'s draws reproduces the functional loop's
trajectory bit for bit.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field, replace
from typing import Callable, Generic, Protocol, TypeVar

from ..telemetry import NULL_RECORDER
from .schedule import CoolingSchedule, GeometricSchedule, initial_temperature_from_samples

State = TypeVar("State")


class MoveSet(Protocol[State]):
    """Produces random neighbors of a state.

    Implementations must *not* mutate the input state; placers rely on
    rejected moves leaving the current state untouched.
    """

    def propose(self, state: State, rng: random.Random) -> State:
        """Return a random neighbor of ``state``."""
        ...


@dataclass
class AnnealingStats:
    """Counters collected during one annealing run."""

    steps: int = 0
    accepted: int = 0
    improved: int = 0
    best_cost: float = math.inf
    initial_cost: float = math.inf
    final_temperature: float = 0.0
    cost_trace: list[float] = field(default_factory=list)
    #: per-term contributions of ``best_cost`` under the placer's
    #: :class:`~repro.cost.CostModel` (filled by the placers' ``run()``;
    #: ``None`` for raw annealer drives or infeasible best states)
    term_breakdown: dict[str, float] | None = None

    @property
    def acceptance_ratio(self) -> float:
        return self.accepted / self.steps if self.steps else 0.0


@dataclass
class AnnealingResult(Generic[State]):
    """Best state found plus run statistics."""

    best_state: State
    best_cost: float
    stats: AnnealingStats


#: format version of a serialized :class:`WalkCheckpoint` envelope.
#: Bump whenever the checkpoint's fields (or the meaning of any field)
#: change, so persisted run directories from an incompatible build are
#: rejected with a clear error instead of resuming garbage.
CHECKPOINT_VERSION = 1


def checkpoint_payload(checkpoint: "WalkCheckpoint") -> dict:
    """Wrap a checkpoint in a versioned envelope for serialization.

    The envelope (not the raw checkpoint) is what
    :mod:`repro.parallel.persist` pickles into a run directory;
    :func:`checkpoint_from_payload` refuses envelopes written under a
    different :data:`CHECKPOINT_VERSION`.
    """
    return {"version": CHECKPOINT_VERSION, "checkpoint": checkpoint}


def checkpoint_from_payload(payload: object) -> "WalkCheckpoint":
    """Unwrap (and version-check) a :func:`checkpoint_payload` envelope."""
    if not isinstance(payload, dict) or "checkpoint" not in payload:
        raise ValueError("not a checkpoint envelope (missing 'checkpoint')")
    version = payload.get("version")
    if version != CHECKPOINT_VERSION:
        raise ValueError(
            f"checkpoint format version {version!r} is not supported "
            f"(this build reads version {CHECKPOINT_VERSION})"
        )
    checkpoint = payload["checkpoint"]
    if not isinstance(checkpoint, WalkCheckpoint):
        raise ValueError(
            f"checkpoint envelope holds {type(checkpoint).__name__}, "
            "expected WalkCheckpoint"
        )
    return checkpoint


@dataclass
class WalkCheckpoint:
    """A resumable annealing walk, frozen between two steps.

    Everything a walk needs to continue lives here — the current and
    best states, their costs, the RNG state and the running statistics
    — so a walk can be paused, pickled across a process boundary and
    resumed elsewhere (``repro.parallel`` rebuilds the engine from the
    job spec and hands the checkpoint back to
    :meth:`IncrementalAnnealer.advance`).  Chunked execution is
    bit-identical to one monolithic :meth:`IncrementalAnnealer.run`:
    the checkpoint carries the exact RNG state and costs forward, so
    chunk boundaries never change a trajectory.
    """

    #: next step index to execute (0-based; ``total_steps`` when done)
    step: int
    #: schedule length this walk was started under
    total_steps: int
    #: warmup rescale applied to every schedule temperature
    t_scale: float
    #: engine snapshot of the *current* state
    state: object
    current_cost: float
    best_state: object
    best_cost: float
    #: ``random.Random.getstate()`` as of ``step``
    rng_state: object
    stats: AnnealingStats

    @property
    def finished(self) -> bool:
        return self.step >= self.total_steps


class Annealer(Generic[State]):
    """Simulated annealing over an arbitrary state space.

    Parameters
    ----------
    cost:
        State → non-negative cost; lower is better.
    moves:
        Neighbor generator.
    schedule:
        Cooling schedule; when ``auto_t0`` is set the schedule's initial
        temperature is rescaled from sampled uphill deltas.
    rng:
        Source of randomness (callers pass a seeded instance for
        reproducibility).
    """

    def __init__(
        self,
        cost: Callable[[State], float],
        moves: MoveSet[State],
        schedule: CoolingSchedule | None = None,
        rng: random.Random | None = None,
        *,
        auto_t0: bool = True,
        trace_every: int = 0,
    ) -> None:
        self._cost = cost
        self._moves = moves
        self._schedule = schedule or GeometricSchedule()
        self._rng = rng or random.Random(0)
        self._auto_t0 = auto_t0
        self._trace_every = trace_every

    def run(self, initial: State) -> AnnealingResult[State]:
        """Anneal from ``initial`` until the schedule is exhausted."""
        rng = self._rng
        current = initial
        current_cost = self._cost(current)
        best, best_cost = current, current_cost

        stats = AnnealingStats(initial_cost=current_cost, best_cost=current_cost)

        t_scale = 1.0
        if self._auto_t0:
            t_scale = self._warmup_scale(initial, current_cost)

        # Hot loop: hoist every attribute lookup that is invariant per
        # step; bookkeeping that only the final value of matters
        # (final_temperature) is folded out of the loop.
        temperature_at = self._schedule.temperature
        propose = self._moves.propose
        cost_of = self._cost
        random_unit = rng.random
        exp = math.exp
        trace_every = self._trace_every
        temperature = 0.0

        total = self._schedule.total_steps
        for step in range(total):
            temperature = temperature_at(step) * t_scale
            candidate = propose(current, rng)
            candidate_cost = cost_of(candidate)
            delta = candidate_cost - current_cost

            if delta <= 0 or random_unit() < exp(-delta / max(temperature, 1e-300)):
                current, current_cost = candidate, candidate_cost
                stats.accepted += 1
                if current_cost < best_cost:
                    best, best_cost = current, current_cost
                    stats.improved += 1
            if trace_every and step % trace_every == 0:
                stats.cost_trace.append(current_cost)

        stats.steps = total
        if total:
            stats.final_temperature = temperature
        stats.best_cost = best_cost
        return AnnealingResult(best_state=best, best_cost=best_cost, stats=stats)

    def _warmup_scale(self, initial: State, initial_cost: float, samples: int = 32) -> float:
        """Rescale the schedule's T0 from sampled uphill move deltas."""
        deltas = []
        state, cost = initial, initial_cost
        for _ in range(samples):
            nxt = self._moves.propose(state, self._rng)
            nxt_cost = self._cost(nxt)
            deltas.append(nxt_cost - cost)
            state, cost = nxt, nxt_cost
        t0 = initial_temperature_from_samples(deltas)
        base_t0 = self._schedule.temperature(0)
        if base_t0 <= 0:
            return 1.0
        return t0 / base_t0


class IncrementalEngine(Protocol):
    """Mutable annealing state with propose/commit/rollback semantics.

    An engine owns the *current* state.  ``propose`` applies one random
    perturbation in place and returns the candidate cost (typically via
    an incremental evaluation that touches only what the move changed).
    Exactly one of ``commit`` / ``rollback`` follows every ``propose``:
    ``commit`` keeps the perturbation (O(1) — the mutation already
    happened), ``rollback`` restores exactly the entries the proposal
    overwrote.  ``snapshot`` returns an immutable copy of the current
    state for best-state tracking.
    """

    def initial_cost(self) -> float:
        """Cost of the current (initial) state."""
        ...

    def reset(self, state: object) -> float:
        """Adopt ``state`` as the current state; return its cost.

        Used by the annealer to restore the pre-warmup state (the
        warmup walk samples uphill deltas and is then discarded, exactly
        like the functional loop's)."""
        ...

    def propose(self, rng: random.Random) -> float:
        """Apply a random perturbation in place; return the candidate cost."""
        ...

    def commit(self) -> None:
        """Accept the pending perturbation."""
        ...

    def rollback(self) -> None:
        """Undo the pending perturbation, restoring the previous state."""
        ...

    def snapshot(self) -> object:
        """An immutable copy of the current state (for best tracking)."""
        ...


class StateEngine(Generic[State]):
    """Adapter: a functional ``MoveSet`` + cost as an incremental engine.

    ``propose`` builds a candidate state through the move set (the input
    state is never mutated), so ``rollback`` is O(1) — the candidate is
    simply dropped — and ``commit`` swaps one reference.  Used by placers
    whose packing is not (yet) incremental; it consumes randomness
    exactly like :class:`Annealer` over the same move set, keeping
    trajectories identical.
    """

    def __init__(self, cost: Callable[[State], float], moves: MoveSet[State], initial: State) -> None:
        self._cost_fn = cost
        self._moves = moves
        self._current = initial
        self._candidate: State | None = None

    @property
    def current(self) -> State:
        return self._current

    def initial_cost(self) -> float:
        return self._cost_fn(self._current)

    def reset(self, state: State) -> float:
        self._current = state
        self._candidate = None
        return self._cost_fn(state)

    def propose(self, rng: random.Random) -> float:
        self._candidate = self._moves.propose(self._current, rng)
        return self._cost_fn(self._candidate)

    def commit(self) -> None:
        self._current = self._candidate
        self._candidate = None

    def rollback(self) -> None:
        self._candidate = None

    def snapshot(self) -> State:
        return self._current


class IncrementalAnnealer:
    """Simulated annealing over an :class:`IncrementalEngine`.

    Drives the same accept/reject schedule as :class:`Annealer`, but the
    state lives inside the engine: every step is ``propose`` followed by
    ``commit`` (accepted) or ``rollback`` (rejected), with no state
    copies anywhere in the loop.  Randomness is consumed exactly like
    :class:`Annealer` (engine draws, then one acceptance draw for uphill
    moves), so an engine mirroring a move set's draws reproduces the
    functional trajectory bit for bit.
    """

    def __init__(
        self,
        engine: IncrementalEngine,
        schedule: CoolingSchedule | None = None,
        rng: random.Random | None = None,
        *,
        auto_t0: bool = True,
        trace_every: int = 0,
    ) -> None:
        self._engine = engine
        self._schedule = schedule or GeometricSchedule()
        self._rng = rng or random.Random(0)
        self._auto_t0 = auto_t0
        self._trace_every = trace_every
        self._recorder = NULL_RECORDER

    def set_recorder(self, recorder) -> None:
        """Attach a telemetry recorder (``None`` detaches).

        Observation only: probes read values the loop already computed
        and never touch the rng, so a traced walk is byte-identical to
        an untraced one.  When the engine supports batch-side stats
        collection (``collect_stats``), it is flipped to match the
        recorder so untraced runs skip that bookkeeping entirely.
        """
        self._recorder = recorder if recorder is not None else NULL_RECORDER
        engine = self._engine
        if hasattr(engine, "collect_stats"):
            engine.collect_stats = self._recorder.enabled

    def run(self, initial_cost: float | None = None) -> AnnealingResult:
        """Anneal the engine's current state until the schedule ends."""
        checkpoint = self.begin(initial_cost)
        # the engine already holds the post-warmup state: no reset needed
        checkpoint = self.advance(checkpoint, _engine_synced=True)
        return AnnealingResult(
            best_state=checkpoint.best_state,
            best_cost=checkpoint.best_cost,
            stats=checkpoint.stats,
        )

    def begin(self, initial_cost: float | None = None) -> WalkCheckpoint:
        """Warm up and freeze the walk at step 0 without annealing.

        The engine must already hold its initial state.  Returns the
        checkpoint :meth:`advance` resumes from; a full ``begin`` +
        ``advance`` chain reproduces :meth:`run` bit for bit however
        the steps are chunked.
        """
        engine = self._engine
        current_cost = (
            initial_cost if initial_cost is not None else engine.initial_cost()
        )
        stats = AnnealingStats(initial_cost=current_cost, best_cost=current_cost)

        t_scale = 1.0
        start = engine.snapshot()
        if self._auto_t0:
            # Sample uphill deltas by walking random moves, then restore
            # the starting state — the functional loop's warmup also
            # rescales T0 from a discarded walk, and matching it keeps
            # trajectories identical across the two drivers.
            t_scale = self._warmup(current_cost)
            current_cost = engine.reset(start)

        return WalkCheckpoint(
            step=0,
            total_steps=self._schedule.total_steps,
            t_scale=t_scale,
            state=start,
            current_cost=current_cost,
            best_state=start,
            best_cost=current_cost,
            rng_state=self._rng.getstate(),
            stats=stats,
        )

    def advance(
        self,
        checkpoint: WalkCheckpoint,
        max_steps: int | None = None,
        *,
        _engine_synced: bool = False,
    ) -> WalkCheckpoint:
        """Run up to ``max_steps`` annealing steps from ``checkpoint``.

        Restores the engine and RNG to exactly where the checkpoint
        froze them, so resuming — in this process or another — continues
        the identical trajectory.  Returns a fresh checkpoint (the input
        is never mutated); call again until :attr:`WalkCheckpoint.finished`.
        """
        if self._schedule.total_steps != checkpoint.total_steps:
            raise ValueError(
                f"schedule spans {self._schedule.total_steps} steps but the "
                f"checkpoint was taken under {checkpoint.total_steps}"
            )
        total = checkpoint.total_steps
        start = checkpoint.step
        stop = total if max_steps is None else min(total, start + max_steps)
        if start >= stop:
            return checkpoint

        rng = self._rng
        engine = self._engine
        if not _engine_synced:
            # reset recomputes the cost from scratch; it is bit-identical
            # to the carried current_cost (the perf-tier invariant), which
            # is what the monolithic loop propagates — so propagate that.
            engine.reset(checkpoint.state)
        rng.setstate(checkpoint.rng_state)

        current_cost = checkpoint.current_cost
        best, best_cost = checkpoint.best_state, checkpoint.best_cost
        stats = replace(checkpoint.stats, cost_trace=list(checkpoint.stats.cost_trace))

        propose = engine.propose
        commit = engine.commit
        rollback = engine.rollback
        random_unit = rng.random
        exp = math.exp
        trace_every = self._trace_every
        temperature = 0.0

        # telemetry: every per-step check is hoisted into `collecting`
        # (one falsy test per step when disabled); probes only read
        # values the loop already computed — never the rng
        recorder = self._recorder
        collecting = recorder.enabled
        sample = recorder.sample_interval if collecting else 0
        if collecting:
            track_moves = hasattr(engine, "last_move")
            fam_proposed: dict[str, int] = {}
            fam_accepted: dict[str, int] = {}
            repack_hist: dict[int, int] = {}

        # the schedule is stateless: materialize the chunk's temperature
        # curve once (same floats as calling temperature(step) in the loop)
        temperature_at = self._schedule.temperature
        t_scale = checkpoint.t_scale
        temperatures = [temperature_at(step) * t_scale for step in range(start, stop)]
        for step in range(start, stop):
            temperature = temperatures[step - start]
            candidate_cost = propose(rng)
            delta = candidate_cost - current_cost

            if delta <= 0 or random_unit() < exp(-delta / max(temperature, 1e-300)):
                commit()
                current_cost = candidate_cost
                stats.accepted += 1
                took = True
                if current_cost < best_cost:
                    best_cost = current_cost
                    best = engine.snapshot()
                    stats.improved += 1
            else:
                rollback()
                took = False
            if collecting:
                if track_moves:
                    kind = engine.last_move
                    fam_proposed[kind] = fam_proposed.get(kind, 0) + 1
                    if took:
                        fam_accepted[kind] = fam_accepted.get(kind, 0) + 1
                    length = engine.last_repack_len
                    if length:
                        bucket = length.bit_length()
                        repack_hist[bucket] = repack_hist.get(bucket, 0) + 1
                if sample and step % sample == 0:
                    recorder.event(
                        "anneal.sample",
                        step=step,
                        temperature=temperature,
                        cost=current_cost,
                        best=best_cost,
                        accepted=stats.accepted,
                    )
            if trace_every and step % trace_every == 0:
                stats.cost_trace.append(current_cost)

        stats.steps = stop
        stats.final_temperature = temperature
        stats.best_cost = best_cost
        if collecting:
            self._emit_chunk_summary(
                start, stop, temperature, current_cost, best_cost, stats,
                fam_proposed, fam_accepted, repack_hist,
            )
        return WalkCheckpoint(
            step=stop,
            total_steps=total,
            t_scale=t_scale,
            state=engine.snapshot(),
            current_cost=current_cost,
            best_state=best,
            best_cost=best_cost,
            rng_state=rng.getstate(),
            stats=stats,
        )

    def _emit_chunk_summary(
        self,
        start: int,
        stop: int,
        temperature: float,
        current_cost: float,
        best_cost: float,
        stats: AnnealingStats,
        fam_proposed: dict[str, int],
        fam_accepted: dict[str, int],
        repack_hist: dict[int, int],
    ) -> None:
        """One ``anneal.chunk`` event closing an :meth:`advance` call.

        Carries the chunk's move-family accept table, the dirty-suffix
        repack-length histogram (power-of-two buckets keyed by bucket
        floor) and — when the engine can produce one without a pending
        proposal — the per-term cost breakdown of the final state.  All
        fields are deterministic; the full rescan behind the breakdown
        runs once per chunk, never per step.
        """
        fields: dict = {
            "step_start": start,
            "step_end": stop,
            "accepted": stats.accepted,
            "improved": stats.improved,
            "cost": current_cost,
            "best": best_cost,
            "temperature": temperature,
            "families": {
                kind: [count, fam_accepted.get(kind, 0)]
                for kind, count in fam_proposed.items()
            },
            "repack_hist": {
                str(1 << (bucket - 1)): count
                for bucket, count in repack_hist.items()
            },
        }
        breakdown = getattr(self._engine, "cost_breakdown", None)
        if breakdown is not None:
            fields["terms"] = breakdown()
        self._recorder.event("anneal.chunk", **fields)

    def _warmup(self, initial_cost: float, samples: int = 32) -> float:
        """Sample uphill deltas by walking (and committing) random moves.

        Mirrors :meth:`Annealer._warmup_scale`: every sampled move is
        taken.  The caller restores the starting state afterwards.
        """
        engine = self._engine
        deltas = []
        cost = initial_cost
        for _ in range(samples):
            nxt_cost = engine.propose(self._rng)
            deltas.append(nxt_cost - cost)
            engine.commit()
            cost = nxt_cost
        t0 = initial_temperature_from_samples(deltas)
        base_t0 = self._schedule.temperature(0)
        if base_t0 <= 0:
            return 1.0
        return t0 / base_t0


class WeightedMoveSet(Generic[State]):
    """Combine several move generators with selection weights."""

    def __init__(self, moves: list[tuple[float, MoveSet[State]]]) -> None:
        if not moves:
            raise ValueError("need at least one move generator")
        weights = [w for w, _ in moves]
        if any(w < 0 for w in weights) or sum(weights) <= 0:
            raise ValueError("weights must be non-negative with positive sum")
        self._moves = moves
        self._weights = weights
        self._generators = [m for _, m in moves]

    def propose(self, state: State, rng: random.Random) -> State:
        (chosen,) = rng.choices(self._generators, weights=self._weights, k=1)
        return chosen.propose(state, rng)


class FunctionMoveSet(Generic[State]):
    """Adapter turning a plain function into a :class:`MoveSet`."""

    def __init__(self, fn: Callable[[State, random.Random], State]) -> None:
        self._fn = fn

    def propose(self, state: State, rng: random.Random) -> State:
        return self._fn(state, rng)
