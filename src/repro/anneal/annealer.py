"""Generic simulated-annealing engine.

Both topological placers (sequence-pair, section II; B*-tree forests,
section III) share this engine.  The engine is deliberately ignorant of
layout: it manipulates opaque *states* through a :class:`MoveSet` and a
cost function, implementing stochastically controlled hill-climbing with
best-state tracking.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Callable, Generic, Protocol, TypeVar

from .schedule import CoolingSchedule, GeometricSchedule, initial_temperature_from_samples

State = TypeVar("State")


class MoveSet(Protocol[State]):
    """Produces random neighbors of a state.

    Implementations must *not* mutate the input state; placers rely on
    rejected moves leaving the current state untouched.
    """

    def propose(self, state: State, rng: random.Random) -> State:
        """Return a random neighbor of ``state``."""
        ...


@dataclass
class AnnealingStats:
    """Counters collected during one annealing run."""

    steps: int = 0
    accepted: int = 0
    improved: int = 0
    best_cost: float = math.inf
    initial_cost: float = math.inf
    final_temperature: float = 0.0
    cost_trace: list[float] = field(default_factory=list)

    @property
    def acceptance_ratio(self) -> float:
        return self.accepted / self.steps if self.steps else 0.0


@dataclass
class AnnealingResult(Generic[State]):
    """Best state found plus run statistics."""

    best_state: State
    best_cost: float
    stats: AnnealingStats


class Annealer(Generic[State]):
    """Simulated annealing over an arbitrary state space.

    Parameters
    ----------
    cost:
        State → non-negative cost; lower is better.
    moves:
        Neighbor generator.
    schedule:
        Cooling schedule; when ``auto_t0`` is set the schedule's initial
        temperature is rescaled from sampled uphill deltas.
    rng:
        Source of randomness (callers pass a seeded instance for
        reproducibility).
    """

    def __init__(
        self,
        cost: Callable[[State], float],
        moves: MoveSet[State],
        schedule: CoolingSchedule | None = None,
        rng: random.Random | None = None,
        *,
        auto_t0: bool = True,
        trace_every: int = 0,
    ) -> None:
        self._cost = cost
        self._moves = moves
        self._schedule = schedule or GeometricSchedule()
        self._rng = rng or random.Random(0)
        self._auto_t0 = auto_t0
        self._trace_every = trace_every

    def run(self, initial: State) -> AnnealingResult[State]:
        """Anneal from ``initial`` until the schedule is exhausted."""
        rng = self._rng
        current = initial
        current_cost = self._cost(current)
        best, best_cost = current, current_cost

        stats = AnnealingStats(initial_cost=current_cost, best_cost=current_cost)

        t_scale = 1.0
        if self._auto_t0:
            t_scale = self._warmup_scale(initial, current_cost)

        # Hot loop: hoist every attribute lookup that is invariant per
        # step; bookkeeping that only the final value of matters
        # (final_temperature) is folded out of the loop.
        temperature_at = self._schedule.temperature
        propose = self._moves.propose
        cost_of = self._cost
        random_unit = rng.random
        exp = math.exp
        trace_every = self._trace_every
        temperature = 0.0

        total = self._schedule.total_steps
        for step in range(total):
            temperature = temperature_at(step) * t_scale
            candidate = propose(current, rng)
            candidate_cost = cost_of(candidate)
            delta = candidate_cost - current_cost

            if delta <= 0 or random_unit() < exp(-delta / max(temperature, 1e-300)):
                current, current_cost = candidate, candidate_cost
                stats.accepted += 1
                if current_cost < best_cost:
                    best, best_cost = current, current_cost
                    stats.improved += 1
            if trace_every and step % trace_every == 0:
                stats.cost_trace.append(current_cost)

        stats.steps = total
        if total:
            stats.final_temperature = temperature
        stats.best_cost = best_cost
        return AnnealingResult(best_state=best, best_cost=best_cost, stats=stats)

    def _warmup_scale(self, initial: State, initial_cost: float, samples: int = 32) -> float:
        """Rescale the schedule's T0 from sampled uphill move deltas."""
        deltas = []
        state, cost = initial, initial_cost
        for _ in range(samples):
            nxt = self._moves.propose(state, self._rng)
            nxt_cost = self._cost(nxt)
            deltas.append(nxt_cost - cost)
            state, cost = nxt, nxt_cost
        t0 = initial_temperature_from_samples(deltas)
        base_t0 = self._schedule.temperature(0)
        if base_t0 <= 0:
            return 1.0
        return t0 / base_t0


class WeightedMoveSet(Generic[State]):
    """Combine several move generators with selection weights."""

    def __init__(self, moves: list[tuple[float, MoveSet[State]]]) -> None:
        if not moves:
            raise ValueError("need at least one move generator")
        weights = [w for w, _ in moves]
        if any(w < 0 for w in weights) or sum(weights) <= 0:
            raise ValueError("weights must be non-negative with positive sum")
        self._moves = moves
        self._weights = weights
        self._generators = [m for _, m in moves]

    def propose(self, state: State, rng: random.Random) -> State:
        (chosen,) = rng.choices(self._generators, weights=self._weights, k=1)
        return chosen.propose(state, rng)


class FunctionMoveSet(Generic[State]):
    """Adapter turning a plain function into a :class:`MoveSet`."""

    def __init__(self, fn: Callable[[State, random.Random], State]) -> None:
        self._fn = fn

    def propose(self, state: State, rng: random.Random) -> State:
        return self._fn(state, rng)
