"""Parametric workload specifications and the ``gen:`` naming grammar.

A :class:`WorkloadSpec` fully determines one synthetic circuit: the
generator (:mod:`repro.workloads.generator`) is a pure function of the
spec, and the spec itself round-trips through the ``gen:`` string
syntax the registry, the CLI and the portfolio runner all share::

    gen:n=500,seed=7,sym=0.3,depth=4

Every field has a short alias for the string form (the long dataclass
field name is accepted too); :meth:`WorkloadSpec.canonical_name`
renders the spec back with only non-default fields, in a fixed order,
so equal specs always produce equal names — the registry's cache key
and the spawn-safe identity a portfolio worker rebuilds a circuit from.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

#: prefix of generated-workload names
GEN_PREFIX = "gen:"


@dataclass(frozen=True)
class WorkloadSpec:
    """Everything the synthetic circuit generator needs.

    Distributions follow analog-typical heterogeneity: module areas are
    log-normal (large capacitors next to small transistors), aspect
    ratios uniform within a band, and net degrees power-law (many
    two-pin nets, a thin tail of wide buses — a Rent-style pin
    distribution).
    """

    #: number of placeable modules
    n: int
    #: RNG seed; same spec + seed => byte-identical circuit
    seed: int = 0
    #: fraction of modules that are soft (three aspect-ratio variants)
    soft: float = 0.1
    #: log-normal area distribution: mean and sigma of ln(area)
    area_mu: float = 1.0
    area_sigma: float = 0.8
    #: uniform aspect-ratio band (height / width) for hard modules
    ar_min: float = 0.4
    ar_max: float = 2.5
    #: nets generated per module
    nets: float = 1.2
    #: net-degree power law P(k) ~ k^-gamma over 2..max_degree
    gamma: float = 2.5
    max_degree: int = 8
    #: fraction of extra pins drawn from the seed pin's neighborhood
    #: (hierarchy-local wiring) rather than uniformly
    locality: float = 0.6
    #: target hierarchy depth (>= 2: root + basic module sets)
    depth: int = 3
    #: fraction of basic module sets carrying a symmetry constraint
    sym: float = 0.15
    #: fraction of basic module sets carrying a proximity constraint
    prox: float = 0.1
    #: fixed-outline whitespace fraction (None = outline-free); the
    #: generated circuit carries a die outline of total module area
    #: times ``1 + outline``, at ``outline_aspect`` (height / width)
    outline: float | None = None
    outline_aspect: float = 1.0

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ValueError(f"workload needs n >= 1 modules, got {self.n}")
        if self.depth < 2:
            raise ValueError(f"hierarchy depth must be >= 2, got {self.depth}")
        for name in ("soft", "sym", "prox", "locality"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be a fraction in [0, 1], got {value}")
        if not 0.0 < self.ar_min <= self.ar_max:
            raise ValueError(
                f"aspect band needs 0 < ar_min <= ar_max, got "
                f"[{self.ar_min}, {self.ar_max}]"
            )
        if self.area_sigma < 0:
            raise ValueError(f"area_sigma must be >= 0, got {self.area_sigma}")
        if self.nets < 0:
            raise ValueError(f"nets per module must be >= 0, got {self.nets}")
        if self.max_degree < 2:
            raise ValueError(f"max_degree must be >= 2, got {self.max_degree}")
        if self.outline is not None and self.outline < 0:
            raise ValueError(f"outline slack must be >= 0, got {self.outline}")
        if self.outline_aspect <= 0:
            raise ValueError(
                f"outline_aspect must be > 0, got {self.outline_aspect}"
            )
        if self.outline is None and self.outline_aspect != 1.0:
            # a silent no-op that would still split the registry cache
            # key (two names, byte-identical circuits) — reject instead
            raise ValueError(
                "outline_aspect has no effect without outline=<slack>"
            )

    # -- naming ---------------------------------------------------------------

    def canonical_name(self) -> str:
        """The ``gen:`` name equal specs always render identically.

        ``n`` and ``seed`` are always present; every other field only
        when it differs from the default, in declaration order.
        """
        parts = []
        for field in dataclasses.fields(self):
            value = getattr(self, field.name)
            # None only occurs as a default (``outline``), so the
            # default-equality filter is also the None filter; a future
            # Optional field with a non-None default would need a
            # grammar for "explicitly off" before it could exist
            if field.name not in ("n", "seed") and value == field.default:
                continue
            parts.append(f"{field.name}={_render(value)}")
        return GEN_PREFIX + ",".join(parts)


def _render(value: object) -> str:
    # repr is the shortest string that parses back to the same float,
    # so canonical names are lossless: parse(canonical_name(s)) == s
    return repr(value) if isinstance(value, float) else str(value)


_FIELD_TYPES = {f.name: f.type for f in dataclasses.fields(WorkloadSpec)}

#: short alias -> field name for the string grammar (the field names
#: themselves are already short; aliases cover common spellings)
_ALIASES = {
    "modules": "n",
    "symmetry": "sym",
    "proximity": "prox",
    "soft_fraction": "soft",
    "nets_per_module": "nets",
}

_INT_FIELDS = {"n", "seed", "max_degree", "depth"}


def parse_gen_spec(name: str) -> WorkloadSpec:
    """Parse a ``gen:key=value,...`` workload name into a spec.

    Raises :class:`ValueError` with a usable message on unknown keys,
    malformed pairs or out-of-range values; the CLI surfaces these
    verbatim.
    """
    if not name.startswith(GEN_PREFIX):
        raise ValueError(f"not a generated-workload name: {name!r}")
    body = name[len(GEN_PREFIX):]
    kwargs: dict[str, object] = {}
    for item in body.split(","):
        item = item.strip()
        if not item:
            continue
        key, sep, value = item.partition("=")
        key = _ALIASES.get(key.strip(), key.strip())
        if not sep or not value.strip():
            raise ValueError(
                f"bad workload parameter {item!r}: expected key=value "
                f"(keys: {', '.join(_FIELD_TYPES)})"
            )
        if key not in _FIELD_TYPES:
            raise ValueError(
                f"unknown workload parameter {key!r}; "
                f"try one of: {', '.join(_FIELD_TYPES)}"
            )
        if key in kwargs:
            # last-wins would silently honor the typo, and the
            # canonical name dedups afterward, hiding the discrepancy
            raise ValueError(
                f"workload parameter {key!r} given more than once in {name!r}"
            )
        try:
            kwargs[key] = (
                int(value) if key in _INT_FIELDS else float(value)
            )
        except ValueError:
            raise ValueError(
                f"bad value for workload parameter {key!r}: {value.strip()!r} "
                f"is not a number"
            ) from None
    if "n" not in kwargs:
        raise ValueError(
            f"generated workload needs at least n=<modules>, got {name!r}"
        )
    return WorkloadSpec(**kwargs)  # type: ignore[arg-type]
