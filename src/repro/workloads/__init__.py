"""Workload subsystem: synthetic circuit families + benchmark I/O.

The repo's path to arbitrary and large-scale inputs (see
``docs/workloads.md``):

``spec`` / ``generator``
    :class:`WorkloadSpec` and the seeded, parametric synthetic circuit
    generator — module counts from tens to thousands, configurable
    size/aspect/net-degree distributions, hierarchy depth and injected
    symmetry/proximity/fixed-outline constraints, byte-identical per
    seed (:func:`canonical_json` is the identity oracle).
``bookshelf``
    Bookshelf/GSRC ``.aux``/``.blocks``/``.nets``/``.pl`` reader and
    writer (round-trip identity, property-tested).
``registry``
    :func:`resolve_workload` — built-ins, ``gen:`` families and
    ``file:`` benchmarks behind one spawn-safe name scheme consumed by
    the CLI, the portfolio runner and the benchmarks.
"""

from .bookshelf import (
    BookshelfDesign,
    BookshelfError,
    parse_blocks,
    parse_nets,
    parse_pl,
    read_bookshelf,
    slugify,
    write_bookshelf,
)
from .generator import canonical_json, generate_circuit
from .registry import (
    BUILTIN_WORKLOADS,
    FILE_PREFIX,
    clear_workload_cache,
    resolve_workload,
    unknown_workload_message,
    workload_names,
    workload_summaries,
)
from .spec import GEN_PREFIX, WorkloadSpec, parse_gen_spec

__all__ = [
    "BUILTIN_WORKLOADS",
    "BookshelfDesign",
    "BookshelfError",
    "FILE_PREFIX",
    "GEN_PREFIX",
    "WorkloadSpec",
    "canonical_json",
    "clear_workload_cache",
    "generate_circuit",
    "parse_blocks",
    "parse_gen_spec",
    "parse_nets",
    "parse_pl",
    "read_bookshelf",
    "resolve_workload",
    "slugify",
    "unknown_workload_message",
    "workload_names",
    "workload_summaries",
]
