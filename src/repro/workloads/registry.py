"""The unified workload registry: one name scheme for every input.

Every placer entry point — the CLI, the portfolio runner, benchmarks,
examples — resolves its circuit through :func:`resolve_workload`, which
understands three name families:

* **built-ins** — the hand-built benchmark library
  (``miller_opamp``, ``fig2``, the Table-I set,
  ``sized_folded_cascode``);
* **generated families** — ``gen:n=500,seed=7,...`` names parsed into
  a :class:`~repro.workloads.WorkloadSpec` and synthesized
  deterministically (see :mod:`repro.workloads.generator`);
* **on-disk benchmarks** — ``file:path/to/bench.blocks`` (or ``.aux``)
  read through the Bookshelf parser.

Names are *spawn-safe identities*: a portfolio worker process rebuilds
its circuit from the workload string alone, so nothing live is ever
pickled — ``gen:`` specs re-generate bit-identically in any process,
and ``file:`` paths re-parse.

Resolution of built-ins and generated names is memoized behind one
registry-level :func:`functools.lru_cache` (``gen:`` names are first
canonicalized, so ``gen:seed=7,n=40`` and ``gen:n=40,seed=7`` share a
slot).  This is *the* build cache: expensive constructions like
``sized_folded_cascode`` (a ~1s sizing anneal) rely on it instead of
caching ad hoc.  Callers treat circuits as immutable — the same
convention the parallel runner's per-process cache has always relied
on.  ``file:`` names are deliberately **not** cached: the file may
change on disk between calls, and parsing is cheap.
"""

from __future__ import annotations

import difflib
from functools import lru_cache
from typing import Callable

from ..circuit import (
    TABLE1_MODULE_COUNTS,
    Circuit,
    fig2_design,
    miller_opamp,
    sized_folded_cascode,
    table1_circuit,
)
from .bookshelf import read_bookshelf
from .spec import GEN_PREFIX, parse_gen_spec

#: prefix of on-disk Bookshelf benchmark names
FILE_PREFIX = "file:"


def _table1(key: str) -> Callable[[], Circuit]:
    return lambda: table1_circuit(key)


#: built-in workload name -> builder (the old ``circuit_by_name`` set)
BUILTIN_WORKLOADS: dict[str, Callable[[], Circuit]] = dict(
    sorted(
        {
            "miller_opamp": miller_opamp,
            "fig2": fig2_design,
            "sized_folded_cascode": sized_folded_cascode,
            **{key: _table1(key) for key in TABLE1_MODULE_COUNTS},
        }.items()
    )
)


def workload_names() -> tuple[str, ...]:
    """Built-in workload names, sorted.  ``gen:`` and ``file:`` names
    are open families — see the module docstring for their grammar."""
    return tuple(BUILTIN_WORKLOADS)


@lru_cache(maxsize=64)
def _build(key: str) -> Circuit:
    """The registry build cache; ``key`` is a canonical workload name."""
    if key.startswith(GEN_PREFIX):
        from .generator import generate_circuit

        return generate_circuit(parse_gen_spec(key))
    return BUILTIN_WORKLOADS[key]()


def clear_workload_cache() -> None:
    """Drop every cached build (tests; long-lived servers after config
    changes).  Resolution stays correct either way — builds are pure."""
    _build.cache_clear()


def resolve_workload(name: str) -> Circuit:
    """Look any workload up by name — the one resolver every consumer
    shares.

    Raises :class:`KeyError` for an unknown built-in name (message
    names the nearest match) and :class:`ValueError` for a malformed
    ``gen:`` spec or an unreadable/unsupported ``file:`` benchmark.
    """
    if name.startswith(FILE_PREFIX):
        return read_bookshelf(name[len(FILE_PREFIX):]).circuit
    if name.startswith(GEN_PREFIX):
        # parse first: errors mention the bad parameter, and the cache
        # key becomes canonical (parameter order never splits a slot)
        return _build(parse_gen_spec(name).canonical_name())
    if name in BUILTIN_WORKLOADS:
        return _build(name)
    raise KeyError(unknown_workload_message(name))


def unknown_workload_message(name: str) -> str:
    """One clean, suggestion-bearing message for a name miss."""
    names = workload_names()
    nearest = difflib.get_close_matches(name, names, n=1, cutoff=0.5)
    hint = f"did you mean {nearest[0]!r}? " if nearest else ""
    return (
        f"unknown workload {name!r}; {hint}"
        f"available: {', '.join(names)}; or use a generated family "
        f"('{GEN_PREFIX}n=<modules>,seed=<seed>,...') or an on-disk "
        f"benchmark ('{FILE_PREFIX}<path>.blocks')"
    )


def workload_summaries() -> list[str]:
    """One line per built-in entry — the ``workloads list`` /
    ``--list-circuits`` payload.  Each line leads with the *registry
    key* (the name ``place`` actually accepts); the circuit's own
    display name can differ (``sized_folded_cascode`` builds a circuit
    displaying as ``folded-cascode``), so printing summaries alone
    would advertise names that do not resolve."""
    return [
        f"{name:<22}{resolve_workload(name).summary()}"
        for name in workload_names()
    ]
