"""Seeded synthetic circuit generator: WorkloadSpec -> Circuit.

The generator is a *pure function* of its spec: one
:class:`random.Random` seeded with ``spec.seed`` drives every draw in
a fixed order, so the same spec always yields a byte-identical circuit
(locked by :func:`canonical_json` in the property tests).  The
construction mirrors how the repo's hand-built benchmarks are shaped:

1. **Modules** — log-normal areas (analog-typical heterogeneity),
   uniform aspect band for hard modules, a configurable fraction of
   soft modules with three aspect variants.
2. **Basic module sets** — modules chunked into sets of 2-4; a
   spec-controlled fraction become symmetry groups (pair footprints
   matched, rotation locked) or proximity clusters.
3. **Hierarchy** — sets clustered bottom-up with a fanout chosen to hit
   the spec's target depth.
4. **Nets** — power-law degrees (many 2-pin nets, a thin wide-bus
   tail) with Rent-style locality: most extra pins come from the seed
   pin's neighborhood in module order, the rest are global.
5. **Fixed outline** — optionally, a die outline of total module area
   times ``1 + spec.outline`` at the requested aspect ratio, attached
   to :attr:`repro.circuit.Circuit.outline` (the reference cost model
   then charges an :class:`~repro.cost.OutlineTerm` for spills).
"""

from __future__ import annotations

import json
import random
from math import ceil

from ..circuit import (
    Circuit,
    CommonCentroidGroup,
    Constraint,
    HierarchyNode,
    ProximityGroup,
    SymmetryGroup,
)
from ..geometry import Module, Net
from .spec import WorkloadSpec

#: aspect ratios (h/w) given to soft modules, matching Module.soft's default
_SOFT_RATIOS = (0.5, 1.0, 2.0)


def generate_circuit(spec: WorkloadSpec) -> Circuit:
    """The circuit ``spec`` describes — deterministic per (spec, seed)."""
    rng = random.Random(spec.seed)
    name = spec.canonical_name()

    modules = [_module(rng, spec, f"m{i}") for i in range(spec.n)]
    sets, nets = _basic_sets(rng, spec, modules)
    root = _hierarchy(spec, name, sets)
    nets += _global_nets(rng, spec, root.all_modules())
    return Circuit(
        name,
        root,
        nets=tuple(nets),
        outline=_outline(spec, root.all_modules()),
    )


# -- modules ------------------------------------------------------------------


def _module(rng: random.Random, spec: WorkloadSpec, name: str) -> Module:
    """One module: log-normal area, soft or hard per the spec."""
    area = max(1e-3, 2.718281828459045 ** rng.gauss(spec.area_mu, spec.area_sigma))
    if rng.random() < spec.soft:
        return Module.soft(name, area, _SOFT_RATIOS)
    ratio = rng.uniform(spec.ar_min, spec.ar_max)
    width = (area / ratio) ** 0.5
    return Module.hard(name, width, width * ratio)


# -- basic module sets with injected constraints ------------------------------


def _basic_sets(
    rng: random.Random, spec: WorkloadSpec, modules: list[Module]
) -> tuple[list[HierarchyNode], list[Net]]:
    """Chunk modules into sets of 2-4, injecting constraints per spec."""
    sets: list[HierarchyNode] = []
    nets: list[Net] = []
    index = 0
    set_id = 0
    while index < len(modules):
        size = min(len(modules) - index, rng.randint(2, 4))
        members = modules[index : index + size]
        index += size
        node = HierarchyNode(f"set{set_id}", modules=members)

        roll = rng.random()
        if size >= 2 and roll < spec.sym:
            node.modules, node.constraint = _symmetric(set_id, members)
        elif size >= 2 and roll < spec.sym + spec.prox:
            node.constraint = ProximityGroup(
                f"prox{set_id}", tuple(m.name for m in members)
            )
            nets.append(Net(f"local{set_id}", tuple(m.name for m in members)))
        sets.append(node)
        set_id += 1
    return sets, nets


def _symmetric(
    set_id: int, members: list[Module]
) -> tuple[list[Module], SymmetryGroup]:
    """Match pair footprints and lock rotation, as analog matching does."""
    matched: list[Module] = []
    pairs: list[tuple[str, str]] = []
    for j in range(0, len(members) - 1, 2):
        left, right = members[j], members[j + 1]
        matched.append(Module(left.name, left.variants, rotatable=False))
        matched.append(Module(right.name, left.variants, rotatable=False))
        pairs.append((left.name, right.name))
    selfsym: tuple[str, ...] = ()
    if len(members) % 2 == 1:
        last = members[-1]
        matched.append(Module(last.name, last.variants, rotatable=False))
        selfsym = (last.name,)
    return matched, SymmetryGroup(f"sym{set_id}", tuple(pairs), selfsym)


# -- hierarchy ----------------------------------------------------------------


def _hierarchy(
    spec: WorkloadSpec, name: str, sets: list[HierarchyNode]
) -> HierarchyNode:
    """Cluster basic sets bottom-up toward the target depth.

    Each grouping round bundles consecutive nodes with a fanout sized
    so the remaining rounds land on a single root at roughly
    ``spec.depth`` total levels (small designs may come up shallower —
    depth is a target, not a promise).  Fully deterministic — no RNG
    draws, so the clustering never perturbs the module/net draw order.
    """
    nodes = sets
    rounds_left = spec.depth - 1
    level = 0
    while len(nodes) > 1:
        fanout = max(2, ceil(len(nodes) ** (1.0 / max(1, rounds_left))))
        grouped: list[HierarchyNode] = []
        i = 0
        while i < len(nodes):
            take = min(len(nodes) - i, fanout)
            if take == 1:
                grouped[-1].children.append(nodes[i])
            else:
                grouped.append(
                    HierarchyNode(
                        f"lvl{level}_{len(grouped)}", children=nodes[i : i + take]
                    )
                )
            i += take
        nodes = grouped
        level += 1
        rounds_left -= 1
    root = nodes[0]
    root.name = name
    return root


# -- nets ---------------------------------------------------------------------


def _global_nets(
    rng: random.Random, spec: WorkloadSpec, modules: list[Module]
) -> list[Net]:
    """Power-law degree nets with Rent-style pin locality."""
    n = len(modules)
    count = round(spec.nets * n)
    if n < 2 or count == 0:
        return []
    names = [m.name for m in modules]
    degrees = list(range(2, min(spec.max_degree, n) + 1))
    weights = [k ** -spec.gamma for k in degrees]
    window = max(3, n // 16)

    nets: list[Net] = []
    for g in range(count):
        degree = rng.choices(degrees, weights)[0]
        center = rng.randrange(n)
        pins = {center}
        attempts = 0
        while len(pins) < degree and attempts < 4 * degree:
            attempts += 1
            if rng.random() < spec.locality:
                pins.add((center + rng.randint(-window, window)) % n)
            else:
                pins.add(rng.randrange(n))
        while len(pins) < 2:  # degenerate draws: force a second pin
            pins.add(rng.randrange(n))
        # sorted for a deterministic pin order independent of set-hash
        nets.append(Net(f"net{g}", tuple(names[i] for i in sorted(pins))))
    return nets


# -- fixed outline ------------------------------------------------------------


def _outline(
    spec: WorkloadSpec, modules: list[Module]
) -> tuple[float, float] | None:
    if spec.outline is None:
        return None
    total = sum(m.area for m in modules) * (1.0 + spec.outline)
    width = (total / spec.outline_aspect) ** 0.5
    return (width, width * spec.outline_aspect)


# -- canonical serialization --------------------------------------------------


def canonical_json(circuit: Circuit) -> str:
    """A deterministic, byte-stable serialization of a circuit.

    Two circuits are *identical* exactly when their canonical JSON
    matches byte for byte: module variants, rotation flags, hierarchy
    shape, constraints, nets (names, pin order, weights) and the die
    outline all participate.  The determinism property tests and the
    Bookshelf round-trip tests compare through this.
    """
    return json.dumps(
        {
            "name": circuit.name,
            "outline": list(circuit.outline) if circuit.outline else None,
            "hierarchy": _node_dict(circuit.hierarchy),
            "nets": [
                {"name": n.name, "pins": list(n.pins), "weight": n.weight}
                for n in circuit.nets
            ],
            "extra_constraints": [
                _constraint_dict(c) for c in circuit.extra_constraints.all()
            ],
        },
        sort_keys=True,
        separators=(",", ":"),
    )


def _node_dict(node: HierarchyNode) -> dict:
    return {
        "name": node.name,
        "modules": [_module_dict(m) for m in node.modules],
        "children": [_node_dict(c) for c in node.children],
        "constraint": (
            _constraint_dict(node.constraint) if node.constraint else None
        ),
    }


def _module_dict(module: Module) -> dict:
    return {
        "name": module.name,
        "rotatable": module.rotatable,
        "variants": [[v.width, v.height, v.tag] for v in module.variants],
    }


def _constraint_dict(constraint: Constraint) -> dict:
    if isinstance(constraint, SymmetryGroup):
        return {
            "kind": "symmetry",
            "name": constraint.name,
            "pairs": [list(p) for p in constraint.pairs],
            "self_symmetric": list(constraint.self_symmetric),
        }
    if isinstance(constraint, CommonCentroidGroup):
        return {
            "kind": "common-centroid",
            "name": constraint.name,
            "units": [[dev, list(us)] for dev, us in constraint.units],
        }
    if isinstance(constraint, ProximityGroup):
        return {
            "kind": "proximity",
            "name": constraint.name,
            "members": list(constraint.members_),
            "margin": constraint.margin,
        }
    raise TypeError(f"unknown constraint type {type(constraint)!r}")
