"""Bookshelf / GSRC benchmark I/O: ``.aux`` / ``.blocks`` / ``.nets`` / ``.pl``.

The classic floorplanning benchmark suites (GSRC hard/soft blocks,
MCNC in its Bookshelf conversion) ship as a family of plain-text files
sharing one basename::

    name.aux       RowBasedPlacement : name.blocks name.nets name.pl
    name.blocks    UCSC blocks 1.0 — hard/soft block shapes + terminals
    name.nets      UCLA nets 1.0  — hyperedges as NetDegree groups
    name.pl        UCLA pl 1.0    — (x, y) locations, optional

This module reads that family into a :class:`~repro.circuit.Circuit`
(flat hierarchy — the formats carry no sub-circuit structure or analog
constraints) and writes any circuit back out.  The supported grammar:

* ``hardrectilinear`` blocks with exactly 4 vertices (rectangles;
  general rectilinear shapes raise a clean :class:`BookshelfError`);
* ``softrectangular`` blocks (``area aspectMin aspectMax``), mapped to
  a :class:`~repro.geometry.Module` with discrete aspect variants at
  ``(min, 1, max)`` within the declared band.  The declared parameters
  are recorded exactly in each variant's ``tag`` (that is what tags
  are for: how to re-draw the module), and the writer re-emits them
  from there — deriving them back from the sqrt-computed footprints
  would drift in the last float bit about a third of the time, so the
  tags are what makes parse -> write -> parse the *exact* identity
  (property-tested);
* ``terminal`` pads, parsed and dropped from the module list (pads
  have no footprint to place); nets lose their terminal pins, and
  nets left with fewer than two pins are dropped;
* comment lines (``#``) and blank lines anywhere.

Writing is lossy by design where the format is poorer than the model:
hierarchy is flattened, constraints and net weights are dropped, and
``rotatable`` flags are not representable.  The writer emits canonical
formatting, which is what makes the round-trip identity hold.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path

from ..circuit import Circuit, HierarchyNode
from ..geometry import Module, Net, Placement, ShapeVariant


class BookshelfError(ValueError):
    """Malformed or unsupported Bookshelf input, with file context."""


def _read(path: Path) -> str:
    """Read one family member, translating I/O and encoding failures
    into the contextual :class:`BookshelfError` the CLI contract
    promises (a raw ``UnicodeDecodeError`` is a ``ValueError`` whose
    ``args[0]`` is just ``'utf-8'``; an ``IsADirectoryError`` would
    escape as a traceback)."""
    try:
        return path.read_text()
    except (OSError, UnicodeDecodeError) as exc:
        raise BookshelfError(f"cannot read {path}: {exc}") from None


@dataclass(frozen=True)
class BookshelfDesign:
    """One parsed benchmark: the circuit plus whatever ``.pl`` carried."""

    circuit: Circuit
    #: module/terminal name -> (x, y) from the ``.pl`` file ({} if absent)
    positions: dict[str, tuple[float, float]] = field(default_factory=dict)
    #: terminal (pad) names parsed out of ``.blocks``
    terminals: tuple[str, ...] = ()


# -- reading ------------------------------------------------------------------


def read_bookshelf(path: str | Path) -> BookshelfDesign:
    """Read a benchmark from its ``.aux``, ``.blocks`` or basename path.

    ``path`` may point at the ``.aux`` file, the ``.blocks`` file, or
    the bare basename (``bench`` for ``bench.blocks`` etc.); sibling
    ``.nets`` / ``.pl`` files are picked up when present.
    """
    blocks_path, nets_path, pl_path = _family(Path(path))
    if not blocks_path.exists():
        raise BookshelfError(f"no such benchmark: {blocks_path}")
    modules, terminals = parse_blocks(
        _read(blocks_path), source=blocks_path.name
    )
    nets: tuple[Net, ...] = ()
    if nets_path is not None and nets_path.exists():
        known = {m.name for m in modules}
        nets = parse_nets(
            _read(nets_path),
            known,
            terminals=set(terminals),
            source=nets_path.name,
        )
    positions: dict[str, tuple[float, float]] = {}
    if pl_path is not None and pl_path.exists():
        positions = parse_pl(_read(pl_path))
    root = HierarchyNode(f"{blocks_path.stem}_root", modules=list(modules))
    circuit = Circuit(blocks_path.stem, root, nets=nets)
    return BookshelfDesign(circuit, positions, terminals)


def _family(path: Path) -> tuple[Path, Path | None, Path | None]:
    """Resolve the ``.blocks`` / ``.nets`` / ``.pl`` paths of a benchmark.

    An ``.aux`` file *declares* its family: every listed member must
    exist (a declared-but-missing ``.nets`` would otherwise silently
    yield a net-free circuit with HPWL 0 everywhere).  For a
    ``.blocks`` or bare-basename path, siblings are probed by name and
    genuinely optional.  Suffixes are stripped/added textually — never
    via ``with_suffix`` — so dotted basenames (``ami33.v2``) resolve to
    ``ami33.v2.nets``, not ``ami33.nets``.
    """
    name = str(path)
    if name.endswith(".aux"):
        if not path.exists():
            raise BookshelfError(f"no such benchmark: {path}")
        named = _parse_aux(_read(path), source=path.name)
        by_ext: dict[str, Path] = {}
        for member in named:
            for ext in (".blocks", ".nets", ".pl"):
                if member.endswith(ext):
                    by_ext[ext] = path.parent / member
        if ".blocks" not in by_ext:
            raise BookshelfError(f"{path.name}: no .blocks file listed")
        for ext, member in sorted(by_ext.items()):
            if not member.exists():
                raise BookshelfError(
                    f"{path.name} declares {member.name} but it does not exist"
                )
        return by_ext[".blocks"], by_ext.get(".nets"), by_ext.get(".pl")
    base = name[: -len(".blocks")] if name.endswith(".blocks") else name
    return Path(base + ".blocks"), Path(base + ".nets"), Path(base + ".pl")


def _parse_aux(text: str, *, source: str) -> list[str]:
    for line in _content_lines(text):
        if ":" in line:
            return line.split(":", 1)[1].split()
    raise BookshelfError(f"{source}: no 'Placement : files...' line")


#: format header lines ("UCSC blocks 1.0", "UCLA nets 1.0", ...) —
#: anchored to the known vendor + kind pairs so a *block* named e.g.
#: "UCLAblk" is never mistaken for a header and silently dropped
_HEADER = re.compile(r"^(UCSC|UCLA)\s+(blocks|nets|pl|wts)\b")


def _content_lines(text: str) -> list[str]:
    """Non-blank, non-comment, non-header lines."""
    out = []
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if _HEADER.match(line):
            continue
        out.append(line)
    return out


def parse_blocks(
    text: str, *, source: str = ".blocks"
) -> tuple[tuple[Module, ...], tuple[str, ...]]:
    """Modules and terminal names of a ``.blocks`` file."""
    modules: list[Module] = []
    terminals: list[str] = []
    seen: set[str] = set()
    for line in _content_lines(text):
        # count headers (NumSoftRectangularBlocks : N, ...) are advisory
        if ":" in line and line.split(":", 1)[0].strip().startswith("Num"):
            continue
        tokens = line.split()
        if len(tokens) < 2:
            raise BookshelfError(f"{source}: malformed block line {line!r}")
        name, kind = tokens[0], tokens[1]
        if name in seen:
            raise BookshelfError(f"{source}: duplicate block {name!r}")
        seen.add(name)
        if kind == "terminal":
            terminals.append(name)
        elif kind == "softrectangular":
            modules.append(_soft_block(name, tokens[2:], line, source))
        elif kind == "hardrectilinear":
            modules.append(_hard_block(name, line, source))
        else:
            raise BookshelfError(
                f"{source}: unsupported block kind {kind!r} in {line!r} "
                "(supported: hardrectilinear, softrectangular, terminal)"
            )
    return tuple(modules), tuple(terminals)


def _soft_block(name: str, args: list[str], line: str, source: str) -> Module:
    try:
        area, ar_min, ar_max = (float(a) for a in args[:3])
    except (ValueError, IndexError):
        raise BookshelfError(
            f"{source}: softrectangular needs 'area aspectMin aspectMax', "
            f"got {line!r}"
        ) from None
    if area <= 0 or ar_min <= 0 or ar_max < ar_min:
        raise BookshelfError(
            f"{source}: bad soft block parameters in {line!r}"
        )
    ratios = sorted({ar_min, ar_max} | ({1.0} if ar_min < 1.0 < ar_max else set()))
    variants = tuple(
        ShapeVariant(
            (area / ar) ** 0.5,
            (area / ar) ** 0.5 * ar,
            tag=_soft_tag(area, ar),
        )
        for ar in ratios
    )
    return Module(name, variants)


def _soft_tag(area: float, ratio: float) -> str:
    """Exact declared parameters of a parsed soft block, kept on the
    variant so the writer can re-emit them verbatim (see module doc)."""
    return f"soft:area={area!r},ar={ratio!r}"


def _soft_params(module: Module) -> tuple[float, float, float]:
    """(area, aspectMin, aspectMax) to write for a soft module.

    Bookshelf-parsed modules carry the declared values in their tags
    (exact); any other soft module (e.g. generator output) falls back
    to values derived from its variant footprints.
    """
    tags = [v.tag for v in module.variants]
    if all(t.startswith("soft:area=") for t in tags):
        ratios = [float(t.rpartition("ar=")[2]) for t in tags]
        area = float(tags[0].partition("area=")[2].partition(",")[0])
        return area, min(ratios), max(ratios)
    ratios = [v.height / v.width for v in module.variants]
    return module.area, min(ratios), max(ratios)


def _hard_block(name: str, line: str, source: str) -> Module:
    vertices = _vertices(line)
    if len(vertices) != 4:
        raise BookshelfError(
            f"{source}: block {name!r} has {len(vertices)} vertices; only "
            "rectangles (4 vertices) are supported"
        )
    xs = {x for x, _ in vertices}
    ys = {y for _, y in vertices}
    if len(xs) != 2 or len(ys) != 2:
        raise BookshelfError(
            f"{source}: block {name!r} vertices do not form a rectangle"
        )
    width = max(xs) - min(xs)
    height = max(ys) - min(ys)
    if width <= 0 or height <= 0:
        raise BookshelfError(f"{source}: block {name!r} has a degenerate shape")
    return Module.hard(name, width, height)


def _vertices(line: str) -> list[tuple[float, float]]:
    vertices = []
    rest = line
    while "(" in rest:
        inner, _, rest = rest.partition("(")[2].partition(")")
        parts = inner.replace(",", " ").split()
        if len(parts) != 2:
            raise BookshelfError(f"malformed vertex in {line!r}")
        try:
            vertices.append((float(parts[0]), float(parts[1])))
        except ValueError:
            raise BookshelfError(
                f"non-numeric vertex coordinate in {line!r}"
            ) from None
    return vertices


def parse_nets(
    text: str,
    known: set[str],
    *,
    terminals: set[str] = frozenset(),
    source: str = ".nets",
) -> tuple[Net, ...]:
    """Nets of a ``.nets`` file; terminal pins are dropped (documented),
    unknown pins raise, and nets with fewer than two block pins vanish."""
    nets: list[Net] = []
    degree = 0
    pins: list[str] = []
    net_name: str | None = None
    auto = 0

    def flush() -> None:
        nonlocal pins, net_name, auto
        if net_name is not None:
            if len(pins) >= 2:
                nets.append(Net(net_name, tuple(pins)))
            pins, net_name = [], None

    for line in _content_lines(text):
        head = line.split(":", 1)[0].strip()
        if head in ("NumNets", "NumPins"):
            continue
        if line.startswith("NetDegree"):
            flush()
            tokens = line.split(":", 1)[1].split()
            if not tokens:
                raise BookshelfError(f"{source}: malformed {line!r}")
            try:
                degree = int(tokens[0])
            except ValueError:
                raise BookshelfError(
                    f"{source}: non-numeric net degree in {line!r}"
                ) from None
            net_name = tokens[1] if len(tokens) > 1 else f"n{auto}"
            auto += 1
            continue
        if net_name is None:
            raise BookshelfError(
                f"{source}: pin line {line!r} before any NetDegree"
            )
        pin = line.split()[0]
        if pin in terminals:
            continue
        if pin not in known:
            raise BookshelfError(
                f"{source}: net {net_name!r} references unknown block {pin!r}"
            )
        pins.append(pin)
        if len(pins) > degree:
            raise BookshelfError(
                f"{source}: net {net_name!r} exceeds its declared degree {degree}"
            )
    flush()
    return tuple(nets)


def parse_pl(text: str) -> dict[str, tuple[float, float]]:
    """``name -> (x, y)`` of a ``.pl`` file (orientation suffixes ignored)."""
    positions: dict[str, tuple[float, float]] = {}
    for line in _content_lines(text):
        tokens = line.split()
        if len(tokens) < 3:
            continue
        try:
            positions[tokens[0]] = (float(tokens[1]), float(tokens[2]))
        except ValueError:
            continue
    return positions


# -- writing ------------------------------------------------------------------


def write_bookshelf(
    circuit: Circuit,
    directory: str | Path,
    basename: str | None = None,
    *,
    placement: Placement | None = None,
) -> dict[str, Path]:
    """Write ``circuit`` as a Bookshelf family; returns the file paths.

    ``basename`` defaults to a filesystem-safe slug of the circuit
    name.  With a ``placement``, the ``.pl`` file carries its module
    origins; without one, every block sits at ``(0, 0)`` (the format
    requires the file, not meaningful coordinates).
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    base = basename if basename is not None else slugify(circuit.name)
    if not base:
        raise BookshelfError(f"cannot derive a basename from {circuit.name!r}")
    paths = {
        ext: directory / f"{base}.{ext}" for ext in ("aux", "blocks", "nets", "pl")
    }
    modules = tuple(circuit.modules())
    paths["blocks"].write_text(_format_blocks(modules))
    paths["nets"].write_text(_format_nets(circuit.nets))
    paths["pl"].write_text(_format_pl(modules, placement))
    paths["aux"].write_text(
        f"RowBasedPlacement : {base}.blocks {base}.nets {base}.pl\n"
    )
    return paths


def slugify(name: str) -> str:
    """A filesystem-safe basename for a workload name (``gen:`` and all)."""
    return "".join(c if c.isalnum() or c in "-_" else "_" for c in name).strip("_")


def _writes_as_soft(module: Module) -> bool:
    """Whether the writer emits ``softrectangular`` for this module.

    ``Module.is_hard`` is not the right test: a soft block declared
    with ``aspectMin == aspectMax`` parses into a *single* variant
    (which ``is_hard`` would misroute into the hard branch, silently
    turning a soft declaration into a hard one on re-export).  The
    parse tags disambiguate.
    """
    return len(module.variants) > 1 or module.variants[0].tag.startswith(
        "soft:area="
    )


def _format_blocks(modules: tuple[Module, ...]) -> str:
    soft_count = sum(1 for m in modules if _writes_as_soft(m))
    lines = [
        "UCSC blocks 1.0",
        "",
        f"NumSoftRectangularBlocks : {soft_count}",
        f"NumHardRectilinearBlocks : {len(modules) - soft_count}",
        "NumTerminals : 0",
        "",
    ]
    for m in modules:
        if not _writes_as_soft(m):
            w, h = m.width, m.height
            lines.append(
                f"{m.name} hardrectilinear 4 "
                f"({_num(0)}, {_num(0)}) ({_num(0)}, {_num(h)}) "
                f"({_num(w)}, {_num(h)}) ({_num(w)}, {_num(0)})"
            )
        else:
            area, ar_min, ar_max = _soft_params(m)
            lines.append(
                f"{m.name} softrectangular {_num(area)} "
                f"{_num(ar_min)} {_num(ar_max)}"
            )
    lines.append("")
    return "\n".join(lines)


def _format_nets(nets: tuple[Net, ...]) -> str:
    lines = [
        "UCLA nets 1.0",
        "",
        f"NumNets : {len(nets)}",
        f"NumPins : {sum(len(n.pins) for n in nets)}",
        "",
    ]
    for net in nets:
        lines.append(f"NetDegree : {len(net.pins)} {net.name}")
        lines.extend(f"{pin} B" for pin in net.pins)
    lines.append("")
    return "\n".join(lines)


def _format_pl(modules: tuple[Module, ...], placement: Placement | None) -> str:
    lines = ["UCLA pl 1.0", ""]
    for m in modules:
        x, y = 0.0, 0.0
        if placement is not None and m.name in placement:
            rect = placement[m.name].rect
            x, y = rect.x0, rect.y0
        lines.append(f"{m.name} {_num(x)} {_num(y)}")
    lines.append("")
    return "\n".join(lines)


def _num(value: float) -> str:
    """Canonical number rendering: shortest repr that round-trips.

    ``repr(float)`` is the shortest string that parses back to the
    same float, which is exactly what the round-trip identity needs;
    integral values drop the trailing ``.0`` for conventional-looking
    files (``12`` not ``12.0``) — ``float("12") == 12.0`` keeps the
    identity intact.
    """
    f = float(value)
    return str(int(f)) if f.is_integer() and abs(f) < 1e16 else repr(f)
