"""Run persistence: snapshot a portfolio run so it can resume.

A *run directory* holds everything needed to continue an interrupted
:class:`~repro.parallel.runner.PortfolioRunner` run bit-identically to
an uninterrupted one:

``manifest.json``
    The coordinator's state as one versioned JSON document — the run
    configuration (circuit, engines, seeds, budget, policy, overrides),
    one record per walk (engine, seed, per-walk overrides, schedule
    length, chunk size, status, checkpoint file), the restart policy's
    counters, and the failure report.  Rewritten atomically
    (write-to-temp + ``os.replace``) on every snapshot, so a kill at
    any instant leaves either the previous or the next consistent
    state — never a torn file.

``walk_<id>.ckpt``
    One pickled, versioned :func:`repro.anneal.checkpoint_payload`
    envelope per walk — the walk frozen at its last snapshot.  Also
    written atomically.  Because a walk's trajectory is a pure function
    of ``(spec, checkpoint)``, re-running from the snapshot reproduces
    the uninterrupted trajectory bit for bit.

Snapshot points are chosen by the runner so that restored state is
always *consistent*: the ``independent`` policy snapshots each walk
after every chunk (walks never interact, so per-walk freshness is
safe), while ``rebalance`` snapshots only at round barriers (the
kill/respawn decision reads every active walk, so mid-round snapshots
of some walks would replay into a different decision).

Nothing here imports the runner: the persistence layer speaks plain
records (:class:`WalkRecord` / :class:`RunState`) and the runner maps
them onto its live bookkeeping.
"""

from __future__ import annotations

import json
import os
import pickle
from dataclasses import dataclass, field
from pathlib import Path

from ..anneal import WalkCheckpoint, checkpoint_from_payload, checkpoint_payload

#: manifest format version; bump on any incompatible layout change
MANIFEST_VERSION = 1

MANIFEST_NAME = "manifest.json"

#: walk statuses a manifest may record (``active`` walks resume; the
#: rest are replayed into the leaderboard / failure report)
RECORD_STATUSES = ("active", "finished", "killed", "failed")


class RunDirError(RuntimeError):
    """A run directory is missing, unreadable, or incompatible."""


@dataclass
class WalkRecord:
    """One walk as the manifest records it."""

    walk_id: int
    engine: str
    seed: int
    overrides: tuple[tuple[str, object], ...]
    total_steps: int
    chunk: int
    status: str = "active"
    checkpoint_file: str | None = None
    #: accumulated in-chunk annealing seconds (so a resumed leaderboard
    #: reproduces the original per-walk steps/s) and chunk re-dispatches
    elapsed_s: float = 0.0
    retries: int = 0

    def to_json(self) -> dict:
        return {
            "walk_id": self.walk_id,
            "engine": self.engine,
            "seed": self.seed,
            "overrides": [[k, v] for k, v in self.overrides],
            "total_steps": self.total_steps,
            "chunk": self.chunk,
            "status": self.status,
            "checkpoint_file": self.checkpoint_file,
            "elapsed_s": self.elapsed_s,
            "retries": self.retries,
        }

    @classmethod
    def from_json(cls, data: dict) -> "WalkRecord":
        try:
            record = cls(
                walk_id=int(data["walk_id"]),
                engine=data["engine"],
                seed=int(data["seed"]),
                overrides=tuple((k, v) for k, v in data["overrides"]),
                total_steps=int(data["total_steps"]),
                chunk=int(data["chunk"]),
                status=data["status"],
                checkpoint_file=data.get("checkpoint_file"),
                elapsed_s=float(data.get("elapsed_s", 0.0)),
                retries=int(data.get("retries", 0)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise RunDirError(f"malformed walk record in manifest: {exc}") from None
        if record.status not in RECORD_STATUSES:
            raise RunDirError(
                f"walk {record.walk_id} has unknown status {record.status!r}"
            )
        return record


@dataclass
class FailureRecord:
    """One quarantined walk as the manifest records it."""

    walk_id: int
    reason: str
    detail: str
    attempts: int
    steps: int

    def to_json(self) -> dict:
        return {
            "walk_id": self.walk_id,
            "reason": self.reason,
            "detail": self.detail,
            "attempts": self.attempts,
            "steps": self.steps,
        }

    @classmethod
    def from_json(cls, data: dict) -> "FailureRecord":
        try:
            return cls(
                walk_id=int(data["walk_id"]),
                reason=data["reason"],
                detail=data["detail"],
                attempts=int(data["attempts"]),
                steps=int(data["steps"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise RunDirError(f"malformed failure record in manifest: {exc}") from None


@dataclass
class RunState:
    """Everything the manifest knows about one run."""

    circuit: str
    engines: tuple[str, ...]
    starts: int
    workers: int
    seeds: list[int]
    budget: int | None
    restart_policy: str
    checkpoint_every: int | None
    overrides: tuple[tuple[str, object], ...]
    #: executor topology the run was recorded under: ``"local"`` (the
    #: in-process / spawned-pool executors) or ``"remote"`` (the socket
    #: tier).  ``resume()`` validates against it so a run cannot
    #: silently continue under a different topology.
    transport: str = "local"
    walks: dict[int, WalkRecord] = field(default_factory=dict)
    failures: list[FailureRecord] = field(default_factory=list)
    #: rebalance counters (``next_walk_id`` / ``next_seed`` /
    #: ``engine_cursor``); ``None`` under ``independent``
    policy_state: dict | None = None
    completed: bool = False


class RunDir:
    """Atomic reader/writer for one run directory."""

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = Path(path)

    @property
    def manifest_path(self) -> Path:
        return self.path / MANIFEST_NAME

    # -- writing --------------------------------------------------------------

    def initialize(self, state: RunState) -> None:
        """Create the directory and write the first manifest.

        Refuses a directory that already holds a manifest: silently
        clobbering a previous run's snapshots would destroy exactly the
        state persistence exists to protect.  Resume instead, or point
        ``run_dir`` somewhere fresh.
        """
        self.path.mkdir(parents=True, exist_ok=True)
        if self.manifest_path.exists():
            raise RunDirError(
                f"{self.path} already holds a portfolio run "
                f"({MANIFEST_NAME} exists); resume it with "
                "PortfolioRunner.resume(), or choose an empty run_dir"
            )
        self.save_manifest(state)

    def save_manifest(self, state: RunState) -> None:
        document = {
            "version": MANIFEST_VERSION,
            "config": {
                "circuit": state.circuit,
                "engines": list(state.engines),
                "starts": state.starts,
                "workers": state.workers,
                "transport": state.transport,
                "seeds": list(state.seeds),
                "budget": state.budget,
                "restart_policy": state.restart_policy,
                "checkpoint_every": state.checkpoint_every,
                "overrides": [[k, v] for k, v in state.overrides],
            },
            "policy_state": state.policy_state,
            "walks": [
                state.walks[walk_id].to_json() for walk_id in sorted(state.walks)
            ],
            "failures": [f.to_json() for f in state.failures],
            "completed": state.completed,
        }
        try:
            payload = json.dumps(document, indent=1).encode("utf-8")
        except (TypeError, ValueError) as exc:
            raise RunDirError(
                f"run state is not serializable to a manifest: {exc}"
            ) from None
        self._atomic_write(self.manifest_path, payload)

    def save_walk_checkpoint(self, walk_id: int, checkpoint: WalkCheckpoint) -> str:
        """Freeze one walk; returns the file name for its manifest record."""
        name = f"walk_{walk_id}.ckpt"
        blob = pickle.dumps(checkpoint_payload(checkpoint))
        self._atomic_write(self.path / name, blob)
        return name

    def _atomic_write(self, target: Path, data: bytes) -> None:
        tmp = target.with_name(target.name + ".tmp")
        with open(tmp, "wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, target)

    # -- reading --------------------------------------------------------------

    def load(self) -> RunState:
        """Read the manifest back into a :class:`RunState`."""
        try:
            raw = self.manifest_path.read_text(encoding="utf-8")
        except FileNotFoundError:
            raise RunDirError(
                f"{self.path} holds no portfolio run (missing {MANIFEST_NAME})"
            ) from None
        except OSError as exc:
            raise RunDirError(f"cannot read {self.manifest_path}: {exc}") from None
        try:
            document = json.loads(raw)
        except ValueError as exc:
            raise RunDirError(f"corrupt manifest {self.manifest_path}: {exc}") from None
        version = document.get("version")
        if version != MANIFEST_VERSION:
            raise RunDirError(
                f"manifest version {version!r} is not supported "
                f"(this build reads version {MANIFEST_VERSION})"
            )
        try:
            config = document["config"]
            walks = [WalkRecord.from_json(w) for w in document["walks"]]
            state = RunState(
                circuit=config["circuit"],
                engines=tuple(config["engines"]),
                starts=int(config["starts"]),
                workers=int(config["workers"]),
                # absent in manifests written before the remote tier
                # existed; those were by definition local runs
                transport=config.get("transport", "local"),
                seeds=[int(s) for s in config["seeds"]],
                budget=config["budget"],
                restart_policy=config["restart_policy"],
                checkpoint_every=config["checkpoint_every"],
                overrides=tuple((k, v) for k, v in config["overrides"]),
                walks={w.walk_id: w for w in walks},
                failures=[
                    FailureRecord.from_json(f) for f in document.get("failures", ())
                ],
                policy_state=document.get("policy_state"),
                completed=bool(document.get("completed", False)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise RunDirError(
                f"malformed manifest {self.manifest_path}: {exc}"
            ) from None
        if state.transport not in ("local", "remote"):
            raise RunDirError(
                f"manifest records unknown transport {state.transport!r} "
                "(expected 'local' or 'remote')"
            )
        return state

    def load_walk_checkpoint(self, record: WalkRecord) -> WalkCheckpoint | None:
        """The walk's frozen checkpoint, or ``None`` if never snapshot."""
        if record.checkpoint_file is None:
            return None
        path = self.path / record.checkpoint_file
        try:
            blob = path.read_bytes()
        except OSError as exc:
            raise RunDirError(
                f"cannot read checkpoint for walk {record.walk_id}: {exc}"
            ) from None
        try:
            payload = pickle.loads(blob)
        except Exception as exc:
            raise RunDirError(
                f"corrupt checkpoint {path.name}: {exc}"
            ) from None
        try:
            return checkpoint_from_payload(payload)
        except ValueError as exc:
            raise RunDirError(f"{path.name}: {exc}") from None
