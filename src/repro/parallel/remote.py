"""Distributed execution tier: remote workers over sockets, with leases.

:class:`RemoteExecutor` implements the same executor interface as the
in-process and spawned-pool executors in :mod:`repro.parallel.runner`
(``dispatch`` / ``collect`` / ``close``), but hands chunks to worker
processes that joined over a socket (``repro worker --connect``) — on
this machine or any other.  Because a chunk is a pure function of
``(spec, checkpoint)`` and the leaderboard is totally ordered by
``(ref_cost, walk_id)``, the distributed run's answer is byte-identical
to the serial run's; the network tier can only change *when* chunks
execute, never *what* they compute.

Robustness model
----------------

**Leases.**  A dispatched chunk is a *lease*: the worker owns it until
a deadline, renewed by every frame the worker sends (heartbeats tick at
``heartbeat_interval``).  A lease whose deadline passes — worker
partitioned, stalled, or silently gone — is revoked and its chunk
re-dispatched; re-execution is safe because replays are byte-identical.
A dropped connection (EOF) revokes the lease immediately rather than
waiting out the deadline.

**Epochs.**  Every dispatch is stamped with its ``(walk, chunk,
attempt)`` epoch and results echo the stamp.  A result arriving for a
revoked lease — the partitioned worker finishing late, a retransmitted
duplicate — carries a stale epoch and is discarded, never
double-counted.

**Reconnects.**  Workers reconnect with exponential backoff plus
jitter, re-handshaking each time; the coordinator treats a returning
worker as brand new (any chunk it held was already re-leased).

**Degradation.**  If every peer vanishes and none returns within a
grace period, the coordinator executes the backlog *inline*, one chunk
per ``collect``, still polling the listener between chunks — a run
never hangs on an empty roster, and peers can rejoin mid-degradation.

**Hung chunks.**  A worker wedged *inside* a chunk still heartbeats
(the heartbeat thread is independent), so leases alone cannot bound a
``hang``; the optional ``chunk_timeout`` is the hard per-chunk deadline
that revokes the lease regardless of heartbeats.

.. warning::
   The transport pickles Python objects with no authentication (see
   :mod:`repro.parallel.net`); bind only on loopback, a private
   cluster fabric, or an SSH tunnel.
"""

from __future__ import annotations

import random
import selectors
import socket
import threading
import time
import traceback
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Callable

from .faults import NETWORK_FAULT_KINDS
from .jobs import ChunkFailure, ChunkResult, ChunkTask
from .net import (
    PROTOCOL_VERSION,
    ConnectionClosed,
    FrameDecoder,
    MessageStream,
    ProtocolError,
    bound_address,
    connect_socket,
    format_address,
    listen_socket,
    pack_frame,
    parse_address,
)
from .runner import _ChunkSupervisor, _execute, resolve_chunk_failure
from ..telemetry import NULL_RECORDER

#: coordinator event-loop tick: the cadence of lease/timeout checks
_TICK_S = 0.05

#: worker-side default reconnect schedule: base * 2^n, jittered, capped
_RECONNECT_BASE_S = 0.25
_RECONNECT_CAP_S = 10.0

#: how long past its own lease a ``stall-heartbeat`` fault stays silent
#: before finishing: long enough that the lease is guaranteed revoked,
#: short enough that tests stay fast
_STALL_FACTOR = 1.5


# -- coordinator side ---------------------------------------------------------


@dataclass
class _Peer:
    """One connected worker as the coordinator tracks it."""

    sock: socket.socket
    address: str
    decoder: FrameDecoder = field(default_factory=FrameDecoder)
    name: str = "?"
    ready: bool = False  # handshake complete
    lease_id: "int | None" = None  # task_id of the lease it holds

    def send(self, kind: str, **payload) -> None:
        self.sock.sendall(pack_frame(kind, payload))


@dataclass
class _Lease:
    """One dispatched chunk: who holds it and until when."""

    task_id: int
    task: ChunkTask
    chunk_index: int
    attempt: int
    peer: "_Peer | None"
    started: float
    deadline: float


class RemoteExecutor:
    """Socket-served executor: leases, heartbeats, epochs, degradation.

    Same contract as the local executors: ``dispatch`` enqueues a chunk
    (registering it with the shared :class:`_ChunkSupervisor`),
    ``collect`` blocks until one chunk resolves — a
    :class:`ChunkResult` on success, a :class:`ChunkFailure` once a
    walk is out of retries — and ``close`` tells every peer to shut
    down.  All socket work happens inside ``collect`` on the
    coordinator thread; there are no coordinator-side threads to race.
    """

    def __init__(
        self,
        listen: "str | tuple[str, int]",
        supervisor: _ChunkSupervisor,
        *,
        lease_timeout: float = 10.0,
        heartbeat_interval: float | None = None,
        chunk_timeout: float | None = None,
        fallback_grace: float | None = None,
        on_incident: Callable[[int | None, str, str], None] | None = None,
        on_listen: Callable[[object], None] | None = None,
        recorder=NULL_RECORDER,
    ) -> None:
        self._supervisor = supervisor
        self._recorder = recorder
        self._lease_timeout = lease_timeout
        self._heartbeat_interval = (
            lease_timeout / 4.0 if heartbeat_interval is None else heartbeat_interval
        )
        self._chunk_timeout = chunk_timeout
        #: how long collect() waits for a peer (current or returning)
        #: before degrading to inline execution
        self._fallback_grace = (
            lease_timeout if fallback_grace is None else fallback_grace
        )
        self._on_incident = on_incident
        address = parse_address(listen) if isinstance(listen, str) else listen
        self._listener = listen_socket(address)
        self._listener.setblocking(False)
        self._selector = selectors.DefaultSelector()
        self._selector.register(self._listener, selectors.EVENT_READ, None)
        self._peers: "dict[socket.socket, _Peer]" = {}
        self._backlog: "deque[tuple[ChunkTask, int]]" = deque()
        self._leases: "dict[int, _Lease]" = {}
        self._results: "deque[ChunkResult | ChunkFailure]" = deque()
        self._next_task_id = 0
        #: distinct worker names that completed the handshake — the
        #: truthful worker count for the run banner (a reconnecting
        #: worker keeps its name and is not double-counted)
        self._peers_seen: set[str] = set()
        #: last moment any peer was connected (or the serve start):
        #: anchors the degradation grace period
        self._last_peer_seen = time.monotonic()
        if on_listen is not None:
            on_listen(bound_address(self._listener))

    # -- executor interface ---------------------------------------------------

    def dispatch(self, task: ChunkTask) -> None:
        self._backlog.append(
            (task, self._supervisor.begin_chunk(task.spec.walk_id))
        )
        self._pump()

    def collect(self) -> "ChunkResult | ChunkFailure":
        while True:
            if self._results:
                return self._results.popleft()
            self._pump()
            for key, _ in self._selector.select(timeout=_TICK_S):
                if key.fileobj is self._listener:
                    self._accept()
                else:
                    self._service_peer(self._peers.get(key.fileobj))
            self._expire_leases()
            self._maybe_fallback()

    @property
    def peer_count(self) -> int:
        """Distinct workers that ever joined (0 if the run went inline)."""
        return len(self._peers_seen)

    def close(self) -> None:
        for peer in list(self._peers.values()):
            try:
                peer.send("shutdown")
            except OSError:
                pass
            self._drop_peer(peer, reclaim=False)
        try:
            self._selector.unregister(self._listener)
        except KeyError:  # pragma: no cover - never registered twice
            pass
        self._selector.close()
        self._listener.close()
        self._peers.clear()
        self._leases.clear()
        self._backlog.clear()

    # -- incidents ------------------------------------------------------------

    def _incident(self, walk_id: "int | None", kind: str, detail: str) -> None:
        if self._on_incident is not None:
            self._on_incident(walk_id, kind, detail)

    # -- connection management ------------------------------------------------

    def _accept(self) -> None:
        while True:
            try:
                sock, addr = self._listener.accept()
            except BlockingIOError:
                return
            except OSError:
                return
            sock.setblocking(True)
            peer = _Peer(sock=sock, address=str(addr))
            self._peers[sock] = peer
            self._selector.register(sock, selectors.EVENT_READ, None)
            self._last_peer_seen = time.monotonic()

    def _drop_peer(self, peer: _Peer, *, reclaim: bool = True) -> None:
        """Forget a peer; optionally reclaim the lease it held."""
        self._peers.pop(peer.sock, None)
        try:
            self._selector.unregister(peer.sock)
        except (KeyError, ValueError):
            pass
        try:
            peer.sock.close()
        except OSError:
            pass
        if reclaim and peer.lease_id is not None:
            lease = self._leases.pop(peer.lease_id, None)
            if lease is not None:
                self._revoke(
                    lease,
                    "worker-death",
                    f"worker {peer.name!r} ({peer.address}) disconnected "
                    f"holding walk {lease.task.spec.walk_id} chunk "
                    f"{lease.chunk_index}",
                )

    def _service_peer(self, peer: "_Peer | None") -> None:
        """Read one readiness event's worth of bytes from a peer."""
        if peer is None:
            return
        try:
            data = peer.sock.recv(65536)
        except OSError:
            data = b""
        if not data:
            self._drop_peer(peer)
            return
        self._last_peer_seen = time.monotonic()
        try:
            messages = peer.decoder.feed(data)
        except ProtocolError as exc:
            self._incident(
                None, "protocol-error",
                f"dropping peer {peer.address}: {exc}",
            )
            self._drop_peer(peer)
            return
        for kind, payload in messages:
            self._handle_message(peer, kind, payload)
            if peer.sock not in self._peers:
                return  # the message got the peer dropped

    def _handle_message(self, peer: _Peer, kind: str, payload: dict) -> None:
        if kind == "hello":
            version = payload.get("version")
            if version != PROTOCOL_VERSION:
                try:
                    peer.send(
                        "reject",
                        reason=(
                            f"protocol version {version} != coordinator "
                            f"version {PROTOCOL_VERSION}"
                        ),
                    )
                except OSError:
                    pass
                self._drop_peer(peer, reclaim=False)
                return
            peer.name = str(payload.get("name", "?"))
            peer.ready = True
            rejoining = peer.name in self._peers_seen
            self._peers_seen.add(peer.name)
            # connection lifecycle is timing-dependent, so these events
            # carry wall-only payloads (empty deterministic fields)
            self._recorder.event(
                "remote.reconnect" if rejoining else "remote.join",
                wall={"worker": peer.name, "address": peer.address},
            )
            peer.send(
                "welcome",
                version=PROTOCOL_VERSION,
                heartbeat_interval=self._heartbeat_interval,
                lease_timeout=self._lease_timeout,
            )
            self._pump()
            return
        if not peer.ready:
            self._incident(
                None, "protocol-error",
                f"dropping peer {peer.address}: sent {kind!r} before hello",
            )
            self._drop_peer(peer)
            return
        if kind == "heartbeat":
            self._renew(peer)
            metrics = payload.get("metrics")
            if metrics and self._recorder.enabled:
                # worker-side counters piggybacked on the heartbeat
                # frame; whitelisted keys only (the payload is remote
                # input), and wall-only — heartbeat cadence is timing
                self._recorder.event(
                    "remote.worker",
                    wall={
                        "worker": peer.name,
                        **{
                            key: metrics[key]
                            for key in ("chunks", "steps", "exec_s")
                            if key in metrics
                        },
                    },
                )
            return
        if kind in ("result", "error"):
            self._renew(peer)
            self._finish(peer, kind, payload)
            return
        # unknown-but-framed kinds are ignored: a same-version peer may
        # legitimately send kinds added by a future minor revision

    def _renew(self, peer: _Peer) -> None:
        """Any frame from the leaseholder renews its lease deadline."""
        if peer.lease_id is None:
            return
        lease = self._leases.get(peer.lease_id)
        if lease is not None:
            lease.deadline = time.monotonic() + self._lease_timeout

    # -- leases ---------------------------------------------------------------

    def _idle_peers(self) -> "list[_Peer]":
        return [
            p for p in self._peers.values() if p.ready and p.lease_id is None
        ]

    def _pump(self) -> None:
        """Lease backlog chunks to idle ready peers (one chunk each)."""
        for peer in self._idle_peers():
            if not self._backlog:
                return
            task, chunk_index = self._backlog.popleft()
            task_id = self._next_task_id
            self._next_task_id += 1
            attempt = self._supervisor.attempts(task.spec.walk_id)
            armed = self._supervisor.arm(task, chunk_index)
            now = time.monotonic()
            lease = _Lease(
                task_id=task_id,
                task=task,
                chunk_index=chunk_index,
                attempt=attempt,
                peer=peer,
                started=now,
                deadline=now + self._lease_timeout,
            )
            try:
                peer.send(
                    "task",
                    task_id=task_id,
                    chunk=chunk_index,
                    attempt=attempt,
                    task=armed,
                )
            except OSError:
                # connection died between select and send: requeue the
                # chunk un-leased and drop the peer (no lease to reclaim)
                self._backlog.appendleft((task, chunk_index))
                self._drop_peer(peer, reclaim=False)
                continue
            self._leases[task_id] = lease
            peer.lease_id = task_id
            self._recorder.event(
                "remote.lease",
                wall={
                    "worker": peer.name,
                    "walk": task.spec.walk_id,
                    "chunk": chunk_index,
                    "attempt": attempt,
                },
            )

    def _revoke(self, lease: _Lease, reason: str, detail: str) -> None:
        """A lease failed: count the attempt, retry or quarantine."""
        self._recorder.event(
            "remote.revoke",
            wall={
                "reason": reason,
                "walk": lease.task.spec.walk_id,
                "chunk": lease.chunk_index,
                "attempt": lease.attempt,
            },
        )
        if lease.peer is not None:
            lease.peer.lease_id = None
            lease.peer = None
        self._chunk_failed(lease.task, lease.chunk_index, reason, detail)

    def _chunk_failed(
        self, task: ChunkTask, chunk_index: int, reason: str, detail: str
    ) -> None:
        def requeue(task: ChunkTask, chunk_index: int) -> None:
            self._backlog.append((task, chunk_index))
            self._pump()

        failure = resolve_chunk_failure(
            self._supervisor, task, chunk_index, reason, detail,
            requeue, self._incident,
        )
        if failure is not None:
            self._results.append(failure)

    def _finish(self, peer: _Peer, kind: str, payload: dict) -> None:
        """A result/error frame arrived; resolve it against its lease."""
        task_id = payload.get("task_id")
        attempt = payload.get("attempt")
        lease = self._leases.get(task_id)
        if (
            lease is None
            or lease.attempt != attempt
            or not self._supervisor.is_current(
                lease.task.spec.walk_id, lease.chunk_index, attempt
            )
        ):
            # stale or duplicate: the lease was revoked and re-issued
            # (or already answered); counting this would double-book
            # the walk's progress.  The sender goes back to idle if it
            # believed it held this lease.
            if peer.lease_id == task_id:
                peer.lease_id = None
                self._pump()
            return
        del self._leases[task_id]
        if lease.peer is not None:
            lease.peer.lease_id = None
        if kind == "result":
            result = payload.get("result")
            if isinstance(result, ChunkResult):
                if self._recorder.enabled:
                    total = time.monotonic() - lease.started
                    self._recorder.event(
                        "executor.chunk",
                        wall={
                            "worker": peer.name,
                            "walk": lease.task.spec.walk_id,
                            "chunk": lease.chunk_index,
                            "attempt": lease.attempt,
                            "exec_s": result.elapsed_s,
                            "total_s": round(total, 6),
                            "queue_wait_s": round(
                                max(0.0, total - result.elapsed_s), 6
                            ),
                        },
                    )
                self._results.append(result)
            else:
                self._chunk_failed(
                    lease.task, lease.chunk_index, "error",
                    f"worker {peer.name!r} returned "
                    f"{type(result).__name__} instead of a ChunkResult",
                )
        else:
            self._chunk_failed(
                lease.task, lease.chunk_index, "error",
                str(payload.get("detail", "worker reported an error")),
            )
        self._pump()

    def _expire_leases(self) -> None:
        """Revoke leases whose holders went silent or ran too long."""
        now = time.monotonic()
        for lease in list(self._leases.values()):
            if self._chunk_timeout is not None and (
                now - lease.started > self._chunk_timeout
            ):
                del self._leases[lease.task_id]
                peer = lease.peer
                self._revoke(
                    lease, "timeout",
                    f"chunk exceeded the {self._chunk_timeout:g}s wall-clock "
                    f"timeout (walk {lease.task.spec.walk_id}, chunk "
                    f"{lease.chunk_index})",
                )
                # the worker is wedged inside the chunk: drop it so it
                # reconnects fresh instead of answering a revoked lease
                if peer is not None and peer.sock in self._peers:
                    self._drop_peer(peer, reclaim=False)
                continue
            if now > lease.deadline:
                del self._leases[lease.task_id]
                self._revoke(
                    lease, "worker-death",
                    f"lease expired after {self._lease_timeout:g}s without a "
                    f"heartbeat (walk {lease.task.spec.walk_id}, chunk "
                    f"{lease.chunk_index})",
                )

    # -- degradation ----------------------------------------------------------

    def _maybe_fallback(self) -> None:
        """Execute one backlog chunk inline when all peers vanished.

        Armed with the same fault the worker would have received, but
        with worker-only kinds (``die``, ``hang``, network faults)
        converted to an ordinary injected *exception*: the coordinator
        must not ``os._exit`` or sleep an hour, yet the attempt
        accounting — fault fires, attempt burns, retry or quarantine —
        stays exactly what the remote path would have produced.
        """
        if not self._backlog:
            return
        if any(p.ready for p in self._peers.values()):
            return
        if time.monotonic() - self._last_peer_seen < self._fallback_grace:
            return
        task, chunk_index = self._backlog.popleft()
        self._incident(
            task.spec.walk_id, "fallback",
            "no remote workers available; executing chunk "
            f"{chunk_index} of walk {task.spec.walk_id} on the coordinator",
        )
        armed = self._supervisor.arm(task, chunk_index)
        if armed.fault in ("die", "hang") or armed.fault in NETWORK_FAULT_KINDS:
            self._chunk_failed(
                task, chunk_index, "error",
                f"injected {armed.fault!r} fault (converted to a failure "
                "in coordinator fallback: there is no worker to kill)",
            )
            return
        try:
            result = _execute(armed)
        except Exception:
            self._chunk_failed(
                task, chunk_index, "error", traceback.format_exc()
            )
            return
        self._results.append(result)


# -- worker side --------------------------------------------------------------


class WorkerClient:
    """One remote worker: connect, handshake, execute, heartbeat, retry.

    The client owns two threads: the main loop (blocking ``recv`` for
    tasks, executes chunks, sends results) and a heartbeat ticker that
    shares the socket through :class:`MessageStream`'s send lock.  A
    lost connection tears both down and reconnects with exponential
    backoff plus jitter — full-jitter, so a fleet of workers orphaned
    by one coordinator restart does not reconnect in lockstep.

    Injected network faults (the coordinator arms them on the task)
    are acted out here: ``disconnect`` drops the socket mid-chunk,
    ``stall-heartbeat`` goes silent past the lease deadline and then
    sends the (now stale) result anyway, ``duplicate-result`` sends
    the result twice.  Each models a real network failure; the fault
    fires once per armed attempt, so the re-dispatched chunk runs
    clean.
    """

    def __init__(
        self,
        connect: "str | tuple[str, int]",
        *,
        name: str = "worker",
        max_reconnects: int = 8,
        reconnect_base: float = _RECONNECT_BASE_S,
        rng: "random.Random | None" = None,
    ) -> None:
        self._address = (
            parse_address(connect) if isinstance(connect, str) else connect
        )
        self._name = name
        self._max_reconnects = max_reconnects
        self._reconnect_base = reconnect_base
        self._rng = rng if rng is not None else random.Random()
        self._log: "Callable[[str], None] | None" = None
        #: lifetime worker counters, piggybacked on every heartbeat
        #: frame (the ticker thread reads them under the lock; old
        #: coordinators simply ignore the extra payload key)
        self._metrics = {"chunks": 0, "steps": 0, "exec_s": 0.0}
        self._metrics_lock = threading.Lock()

    def run(self, log: "Callable[[str], None] | None" = None) -> int:
        """Serve until the coordinator says shutdown (or vanishes).

        Returns a process exit code: 0 after an orderly shutdown or a
        coordinator that went away for good, 2 if the coordinator
        rejected this worker's protocol version.
        """
        self._log = log
        failures = 0
        while True:
            try:
                stream = self._connect()
            except _Rejected:
                return 2
            except OSError:
                # before a run the coordinator may not be up yet; after
                # an orderly one it is simply gone — retry either way
                stream = None
            if stream is None:
                failures += 1
                if failures > self._max_reconnects:
                    self._say("giving up: coordinator unreachable")
                    return 0
                self._sleep_backoff(failures)
                continue
            # a completed handshake proves the coordinator is healthy:
            # the backoff schedule starts over for the *next* outage
            failures = 0
            verdict = self._serve(stream)
            if verdict == "shutdown":
                return 0
            if verdict == "rejected":
                return 2
            # connection lost mid-run: back off and reconnect
            failures += 1
            if failures > self._max_reconnects:
                self._say("giving up: coordinator unreachable")
                return 0
            self._sleep_backoff(failures)

    # -- internals ------------------------------------------------------------

    def _say(self, text: str) -> None:
        if self._log is not None:
            self._log(text)

    def _sleep_backoff(self, failures: int) -> None:
        cap = min(
            _RECONNECT_CAP_S, self._reconnect_base * (2 ** (failures - 1))
        )
        delay = self._rng.uniform(0, cap)  # full jitter
        self._say(f"reconnecting in {delay:.2f}s (attempt {failures})")
        time.sleep(delay)

    def _connect(self) -> "MessageStream | None":
        sock = connect_socket(self._address, timeout=5.0)
        stream = MessageStream(sock)
        stream.send("hello", version=PROTOCOL_VERSION, name=self._name)
        try:
            message = stream.recv(timeout=5.0)
        except (ConnectionClosed, ProtocolError):
            stream.close()
            return None
        if message is None:
            stream.close()
            return None
        kind, payload = message
        if kind == "reject":
            self._say(f"rejected: {payload.get('reason')}")
            stream.close()
            raise _Rejected()
        if kind != "welcome":
            stream.close()
            return None
        self._heartbeat_interval = float(payload["heartbeat_interval"])
        self._lease_timeout = float(payload["lease_timeout"])
        self._say(
            f"connected to {format_address(self._address)} "
            f"(heartbeat {self._heartbeat_interval:g}s)"
        )
        return stream

    def _serve(self, stream: MessageStream) -> str:
        """One connection's lifetime; returns why it ended."""
        heartbeats = threading.Event()  # set = suppressed
        stop = threading.Event()

        def ticker() -> None:
            while not stop.wait(self._heartbeat_interval):
                if heartbeats.is_set():
                    continue
                with self._metrics_lock:
                    metrics = dict(self._metrics)
                try:
                    stream.send("heartbeat", metrics=metrics)
                except OSError:
                    return

        thread = threading.Thread(target=ticker, daemon=True)
        thread.start()
        try:
            while True:
                try:
                    message = stream.recv(timeout=1.0)
                except ConnectionClosed:
                    return "lost"
                except (ProtocolError, OSError):
                    return "lost"
                if message is None:
                    continue
                kind, payload = message
                if kind == "shutdown":
                    self._say("shutdown received")
                    return "shutdown"
                if kind == "reject":
                    return "rejected"
                if kind != "task":
                    continue
                outcome = self._run_task(stream, payload, heartbeats)
                if outcome is not None:
                    return outcome
        finally:
            stop.set()
            thread.join(timeout=2.0)
            stream.close()

    def _run_task(
        self, stream: MessageStream, payload: dict, heartbeats: threading.Event
    ) -> "str | None":
        """Execute one leased chunk; ``None`` keeps the connection."""
        task_id = payload["task_id"]
        attempt = payload["attempt"]
        task: ChunkTask = payload["task"]
        fault = task.fault if task.fault in NETWORK_FAULT_KINDS else None
        if fault is not None:
            # strip the network fault before executing: the chunk's
            # *computation* must stay byte-identical; only the
            # transport behavior around it is being sabotaged
            task = replace(task, fault=None)
        if fault == "disconnect":
            self._say(
                f"fault: disconnecting while holding walk "
                f"{task.spec.walk_id} chunk {payload['chunk']}"
            )
            return "lost"  # _serve closes the socket; run() reconnects
        if fault == "stall-heartbeat":
            heartbeats.set()  # go silent: the lease must expire
            self._say(
                f"fault: stalling heartbeats past the "
                f"{self._lease_timeout:g}s lease on walk {task.spec.walk_id}"
            )
            time.sleep(self._lease_timeout * _STALL_FACTOR)
        try:
            result = _execute(task)
        except Exception:  # includes FaultInjected: the ordinary error path
            return self._send_error(stream, payload, traceback.format_exc())
        finally:
            heartbeats.clear()
        started_at = 0 if task.checkpoint is None else task.checkpoint.step
        with self._metrics_lock:
            self._metrics["chunks"] += 1
            self._metrics["steps"] += result.checkpoint.step - started_at
            self._metrics["exec_s"] = round(
                self._metrics["exec_s"] + result.elapsed_s, 6
            )
        try:
            stream.send(
                "result",
                task_id=task_id,
                walk_id=task.spec.walk_id,
                chunk=payload["chunk"],
                attempt=attempt,
                result=result,
            )
            if fault == "duplicate-result":
                self._say(
                    f"fault: retransmitting result for walk "
                    f"{task.spec.walk_id} chunk {payload['chunk']}"
                )
                stream.send(
                    "result",
                    task_id=task_id,
                    walk_id=task.spec.walk_id,
                    chunk=payload["chunk"],
                    attempt=attempt,
                    result=result,
                )
        except OSError:
            return "lost"
        return None

    @staticmethod
    def _send_error(
        stream: MessageStream, payload: dict, detail: str
    ) -> "str | None":
        try:
            stream.send(
                "error",
                task_id=payload["task_id"],
                walk_id=payload["task"].spec.walk_id,
                chunk=payload["chunk"],
                attempt=payload["attempt"],
                detail=detail,
            )
        except OSError:
            return "lost"
        return None


class _Rejected(Exception):
    """Internal: the coordinator rejected our protocol version."""


def run_worker(
    connect: str,
    *,
    name: str = "worker",
    max_reconnects: int = 8,
    reconnect_base: float = _RECONNECT_BASE_S,
    log: "Callable[[str], None] | None" = None,
) -> int:
    """CLI entry point: serve one worker process, return its exit code."""
    client = WorkerClient(
        connect,
        name=name,
        max_reconnects=max_reconnects,
        reconnect_base=reconnect_base,
    )
    try:
        return client.run(log=log)
    except _Rejected:
        return 2
