"""Socket message framing for the distributed portfolio tier.

The wire format is deliberately boring: every message is one *frame* —
a 4-byte magic, a 4-byte big-endian payload length, and a pickled
``(kind, payload)`` tuple — over a stream socket (TCP or a Unix domain
socket).  Everything that crosses the wire is the same spawn-safe data
that already crosses process pipes (:class:`~repro.parallel.jobs.WalkSpec`,
:class:`~repro.parallel.jobs.ChunkTask`,
:class:`~repro.anneal.WalkCheckpoint`): nothing live is ever pickled.

Connections open with a **version handshake**: the worker sends
``hello`` carrying :data:`PROTOCOL_VERSION`, the coordinator answers
``welcome`` (carrying the lease/heartbeat parameters the worker must
honor) or ``reject``.  A version mismatch therefore fails loudly at
connect time instead of corrupting a run halfway through.

.. warning::
   Frames are pickled Python objects, so the socket must only ever be
   exposed on a **trusted network** (loopback, a private cluster
   fabric, an SSH tunnel).  There is no authentication and no
   encryption — exactly like ``multiprocessing``'s own connection
   machinery, which this replaces across hosts.

Message kinds
-------------

====================  =========  ==========================================
kind                  direction  payload
====================  =========  ==========================================
``hello``             w -> c     ``version``, ``name``
``welcome``           c -> w     ``version``, ``heartbeat_interval``,
                                 ``lease_timeout``
``reject``            c -> w     ``reason``
``task``              c -> w     ``task_id``, ``chunk``, ``attempt``,
                                 ``task`` (a :class:`ChunkTask`)
``heartbeat``         w -> c     —
``result``            w -> c     ``task_id``, ``walk_id``, ``chunk``,
                                 ``attempt``, ``result`` (a
                                 :class:`ChunkResult`)
``error``             w -> c     ``task_id``, ``walk_id``, ``chunk``,
                                 ``attempt``, ``detail`` (traceback text)
``shutdown``          c -> w     —
====================  =========  ==========================================
"""

from __future__ import annotations

import pickle
import socket
import struct
import threading

#: bump on any incompatible change to the frame format or message set
PROTOCOL_VERSION = 1

#: frame preamble: magic + payload length (big-endian)
_MAGIC = b"RPP\x01"
_HEADER = struct.Struct("!4sI")

#: a frame longer than this is a corrupt stream, not a message (the
#: largest legitimate payload is one pickled walk checkpoint)
MAX_FRAME_BYTES = 256 * 1024 * 1024

#: prefix selecting a Unix domain socket address (``unix:/path.sock``)
UNIX_PREFIX = "unix:"


class ProtocolError(RuntimeError):
    """The peer sent bytes that are not this protocol."""


class ConnectionClosed(ProtocolError):
    """The peer closed the connection (EOF), possibly mid-frame."""


# -- addresses ----------------------------------------------------------------


def parse_address(text: str) -> "tuple[str, int] | str":
    """``"host:port"`` -> ``(host, port)``; ``"unix:/path"`` -> ``"/path"``.

    The TCP form splits on the *last* colon so IPv6 literals and
    ``host:0`` (ephemeral port) both parse.
    """
    if text.startswith(UNIX_PREFIX):
        path = text[len(UNIX_PREFIX):]
        if not path:
            raise ValueError(f"empty unix socket path in address {text!r}")
        return path
    host, sep, port_text = text.rpartition(":")
    if not sep or not host:
        raise ValueError(
            f"bad address {text!r}: expected HOST:PORT or {UNIX_PREFIX}PATH"
        )
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(
            f"bad port {port_text!r} in address {text!r}"
        ) from None
    if not 0 <= port <= 65535:
        raise ValueError(f"port {port} out of range in address {text!r}")
    return (host.strip("[]"), port)


def format_address(address: "tuple[str, int] | str") -> str:
    """Inverse of :func:`parse_address` (modulo IPv6 brackets)."""
    if isinstance(address, str):
        return UNIX_PREFIX + address
    host, port = address[0], address[1]
    return f"{host}:{port}"


def listen_socket(address: "tuple[str, int] | str") -> socket.socket:
    """A listening TCP or Unix socket bound to ``address``."""
    if isinstance(address, str):
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            sock.bind(address)
            sock.listen()
        except OSError:
            sock.close()
            raise
        return sock
    return socket.create_server(address, reuse_port=False)


def connect_socket(
    address: "tuple[str, int] | str", timeout: float | None = None
) -> socket.socket:
    """A connected TCP or Unix socket to ``address``."""
    if isinstance(address, str):
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(timeout)
        try:
            sock.connect(address)
        except OSError:
            sock.close()
            raise
        return sock
    return socket.create_connection(address, timeout=timeout)


def bound_address(sock: socket.socket) -> "tuple[str, int] | str":
    """The address a listening socket actually bound (resolves port 0)."""
    name = sock.getsockname()
    if isinstance(name, str):
        return name
    return (name[0], name[1])


# -- frames -------------------------------------------------------------------


def pack_frame(kind: str, payload: dict) -> bytes:
    """One wire frame for ``(kind, payload)``."""
    blob = pickle.dumps((kind, payload), protocol=pickle.HIGHEST_PROTOCOL)
    if len(blob) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"refusing to send a {len(blob)}-byte frame "
            f"(limit {MAX_FRAME_BYTES})"
        )
    return _HEADER.pack(_MAGIC, len(blob)) + blob


class FrameDecoder:
    """Incremental frame parser for the coordinator's event loop.

    Sockets deliver arbitrary byte runs; :meth:`feed` buffers them and
    returns every *complete* message, leaving partial frames buffered
    for the next readiness event.  A bad magic or an absurd length is a
    :class:`ProtocolError` — the stream is unrecoverable after either.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, data: bytes) -> "list[tuple[str, dict]]":
        self._buffer.extend(data)
        messages: list[tuple[str, dict]] = []
        while len(self._buffer) >= _HEADER.size:
            magic, length = _HEADER.unpack_from(self._buffer)
            if magic != _MAGIC:
                raise ProtocolError(
                    f"bad frame magic {bytes(magic)!r}: peer is not speaking "
                    "the portfolio protocol"
                )
            if length > MAX_FRAME_BYTES:
                raise ProtocolError(
                    f"frame length {length} exceeds the {MAX_FRAME_BYTES}-byte "
                    "limit: corrupt stream"
                )
            end = _HEADER.size + length
            if len(self._buffer) < end:
                break
            blob = bytes(self._buffer[_HEADER.size:end])
            del self._buffer[:end]
            try:
                kind, payload = pickle.loads(blob)
            except Exception as exc:
                raise ProtocolError(f"undecodable frame payload: {exc}") from None
            if not isinstance(kind, str) or not isinstance(payload, dict):
                raise ProtocolError(
                    f"malformed message (kind={type(kind).__name__}, "
                    f"payload={type(payload).__name__})"
                )
            messages.append((kind, payload))
        return messages


class MessageStream:
    """Blocking framed messaging over one socket — the worker side.

    ``send`` is serialized by a lock so the heartbeat thread and the
    task loop can share the connection; ``recv`` blocks up to
    ``timeout`` seconds and returns ``None`` on timeout (so callers can
    interleave liveness checks), raising :class:`ConnectionClosed` on
    EOF.
    """

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock
        self._decoder = FrameDecoder()
        self._pending: list[tuple[str, dict]] = []
        self._send_lock = threading.Lock()

    def send(self, kind: str, **payload) -> None:
        frame = pack_frame(kind, payload)
        with self._send_lock:
            self._sock.sendall(frame)

    def recv(self, timeout: float | None = None) -> "tuple[str, dict] | None":
        if self._pending:
            return self._pending.pop(0)
        self._sock.settimeout(timeout)
        while True:
            try:
                data = self._sock.recv(65536)
            except socket.timeout:
                return None
            if not data:
                raise ConnectionClosed("peer closed the connection")
            self._pending.extend(self._decoder.feed(data))
            if self._pending:
                return self._pending.pop(0)

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - close is best-effort
            pass
