"""Deterministic fault injection for the portfolio execution layer.

Real worker failures — a raised exception, an OOM kill, a wedged
process — are not reproducible, which makes the supervision and retry
machinery in :mod:`repro.parallel.runner` exactly the kind of code that
is "tested" by hoping.  A :class:`FaultPlan` turns every failure mode
into a deterministic event: *walk W, chunk M, attempt A -> fault K*.
The coordinator arms the matching :class:`~repro.parallel.jobs.ChunkTask`
at dispatch time and the worker triggers the fault before executing the
chunk, so every failure path (retry, quarantine, timeout kill, worker
respawn, resume) can be exercised bit-reproducibly in tests and CI.

Fault kinds
-----------

``raise``
    The chunk raises :class:`FaultInjected` — the ordinary worker
    exception path (travels back with a traceback, counts against
    ``max_retries``).
``die``
    The worker process exits immediately (``os._exit``) while holding
    the chunk — the OOM-kill / segfault path.  Supervision must detect
    the death, respawn the worker and re-dispatch the lost chunk.
``hang``
    The chunk sleeps forever — the wedged-worker path.  Only a
    ``chunk_timeout`` gets the walk back.
``disconnect``
    A *remote* worker drops its socket the moment it receives the
    chunk, then reconnects with backoff — the flaky-network path.  The
    coordinator must reclaim the lease on EOF and re-dispatch.
``stall-heartbeat``
    A remote worker stops heartbeating past the lease deadline while
    still holding the chunk, then finishes late — the
    network-partition path.  The lease must expire, the chunk must be
    re-dispatched, and the late (stale) result must be discarded by
    its ``(walk, chunk, attempt)`` epoch.
``duplicate-result``
    A remote worker sends its result twice — the retransmit path.  The
    second copy must be discarded, never double-counted.

``hang`` and ``die`` need a real worker process to kill, so a plan
containing them requires ``workers > 1`` (or a remote run, where every
worker is its own process); the network kinds need a socket to abuse,
so they require a ``listen`` address; ``raise`` works on every
executor (the in-process path included).

A fault fires on the attempt numbers listed in ``attempts`` (attempt 0
is the first execution of a chunk; each retry increments it).  The
default ``(0,)`` injects a *transient* fault — the retry succeeds —
while ``attempts=None`` fires on every attempt, modelling a
*deterministic* failure that must end in quarantine.

Fault plans are test/CI plumbing: they ride through coordinator-side
dispatch only and never change a fault-free run.
"""

from __future__ import annotations

from dataclasses import dataclass

#: fault kinds acted out by the worker loop of the *distributed* tier
#: (see ``repro.parallel.remote``); they model network failures, so a
#: plan containing them needs a socket transport to abuse
NETWORK_FAULT_KINDS = ("disconnect", "stall-heartbeat", "duplicate-result")

#: every fault kind a plan may inject
FAULT_KINDS = ("raise", "hang", "die") + NETWORK_FAULT_KINDS

#: exit code a ``die`` fault terminates the worker with (distinctive on
#: purpose: supervision reports it, and tests can assert on it)
DIE_EXIT_CODE = 113


class FaultInjected(RuntimeError):
    """Raised inside a worker by a ``raise`` fault (and by an expired
    ``hang`` fault that no chunk timeout ever killed)."""


@dataclass(frozen=True)
class Fault:
    """One injected failure: walk ``walk_id``, chunk ``chunk`` (0-based
    within the walk), firing on the listed ``attempts``."""

    walk_id: int
    chunk: int
    kind: str
    #: attempt numbers that trigger the fault; ``None`` means every
    #: attempt (a deterministic failure that survives all retries)
    attempts: tuple[int, ...] | None = (0,)

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; try: {', '.join(FAULT_KINDS)}"
            )
        if self.walk_id < 0:
            raise ValueError(f"fault walk_id must be >= 0, got {self.walk_id}")
        if self.chunk < 0:
            raise ValueError(f"fault chunk must be >= 0, got {self.chunk}")
        if self.attempts is not None:
            attempts = tuple(self.attempts)
            if any(a < 0 for a in attempts):
                raise ValueError(f"fault attempts must be >= 0, got {attempts}")
            object.__setattr__(self, "attempts", attempts)

    def fires_on(self, attempt: int) -> bool:
        return self.attempts is None or attempt in self.attempts


class FaultPlan:
    """An immutable set of :class:`Fault`\\ s keyed by (walk, chunk).

    Two faults may not target the same ``(walk_id, chunk)`` — one chunk
    execution can only fail one way at a time, and a silent override
    would make a test assert against the wrong failure mode.
    """

    def __init__(self, faults: "tuple[Fault, ...] | list[Fault]") -> None:
        self._by_site: dict[tuple[int, int], Fault] = {}
        for fault in faults:
            if not isinstance(fault, Fault):
                raise TypeError(f"expected a Fault, got {type(fault).__name__}")
            site = (fault.walk_id, fault.chunk)
            if site in self._by_site:
                raise ValueError(
                    f"duplicate fault for walk {fault.walk_id} chunk {fault.chunk}"
                )
            self._by_site[site] = fault

    @property
    def faults(self) -> tuple[Fault, ...]:
        return tuple(self._by_site.values())

    @property
    def needs_processes(self) -> bool:
        """``hang``/``die`` faults need a worker process to kill."""
        return any(f.kind in ("hang", "die") for f in self._by_site.values())

    @property
    def needs_network(self) -> bool:
        """Network faults need a socket transport (a ``listen`` run)."""
        return any(
            f.kind in NETWORK_FAULT_KINDS for f in self._by_site.values()
        )

    def has_kind(self, kind: str) -> bool:
        return any(f.kind == kind for f in self._by_site.values())

    def fault_for(self, walk_id: int, chunk: int, attempt: int) -> str | None:
        """Kind of the fault armed for this execution, or ``None``."""
        fault = self._by_site.get((walk_id, chunk))
        if fault is not None and fault.fires_on(attempt):
            return fault.kind
        return None

    def validate_chunks(self, chunk_counts: dict[int, int]) -> None:
        """Reject faults aimed past the end of a known walk.

        ``chunk_counts`` maps walk_id -> number of chunks that walk will
        execute.  A fault naming chunk 7 of a 4-chunk walk would silently
        never fire — and a fault-injection test would silently pass on
        the fault-free path — so that is an error.  Faults for walk ids
        *not* in the mapping are left alone: under ``rebalance``,
        respawned walks get ids beyond the initial sweep.
        """
        for (walk_id, chunk), fault in self._by_site.items():
            count = chunk_counts.get(walk_id)
            if count is not None and chunk >= count:
                raise ValueError(
                    f"fault targets chunk {chunk} of walk {walk_id}, but that "
                    f"walk only executes {count} chunk(s); it would never fire"
                )

    def __len__(self) -> int:
        return len(self._by_site)

    def __repr__(self) -> str:
        return f"FaultPlan({list(self._by_site.values())!r})"
