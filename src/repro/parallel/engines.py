"""Engine registry: walk specs -> placers, schedules and budgets.

Every annealing placer exposes the same walk API — ``schedule()`` /
``engine()`` / ``initial_state(rng)`` / ``finalize(state)`` — so the
portfolio runner can drive any of them through one code path.  This
module maps engine *names* onto those placers and handles the two
pieces of config arithmetic the runner needs:

* :func:`build_placer` — rebuild a placer from a spawn-safe
  :class:`~repro.parallel.jobs.WalkSpec` (used identically by worker
  processes and the in-process executor);
* :func:`compress_overrides` — shrink a schedule to a step budget by
  scaling ``steps_per_epoch``, keeping the temperature *shape* (same
  ``t_initial -> t_final`` decay, fewer moves per epoch) so multi-start
  walks splitting one budget still anneal end to end.
"""

from __future__ import annotations

from ..anneal import GeometricSchedule
from ..bstar import BStarPlacerConfig, BStarPlacer, HierarchicalPlacer
from ..circuit import Circuit
from ..cost import CostModel, reference_model
from ..workloads import resolve_workload
from ..seqpair import PlacerConfig, SequencePairPlacer
from ..slicing import SlicingPlacer, SlicingPlacerConfig
from .jobs import WalkSpec

#: engine name -> (config class, placer factory)
_REGISTRY = {
    "bstar": (BStarPlacerConfig, BStarPlacer.for_circuit),
    "hbtree": (BStarPlacerConfig, HierarchicalPlacer.for_circuit),
    "seqpair": (PlacerConfig, SequencePairPlacer.for_circuit),
    "slicing": (SlicingPlacerConfig, SlicingPlacer.for_circuit),
}

#: all annealing engines the portfolio can fan out over
ENGINE_NAMES = tuple(_REGISTRY)


def validate_engines(engines: tuple[str, ...]) -> tuple[str, ...]:
    """Check every name against the registry; returns the tuple."""
    unknown = [e for e in engines if e not in _REGISTRY]
    if unknown:
        raise ValueError(
            f"unknown engine(s) {', '.join(map(repr, unknown))}; "
            f"try: {', '.join(ENGINE_NAMES)}"
        )
    if not engines:
        raise ValueError("need at least one engine")
    return tuple(engines)


def build_config(engine: str, seed: int, overrides: tuple[tuple[str, object], ...]):
    """The engine's config dataclass with ``seed`` and overrides applied."""
    config_cls, _ = _REGISTRY[engine]
    return config_cls(seed=seed, **dict(overrides))


def build_placer(circuit: Circuit, spec: WalkSpec):
    """Rebuild the placer a spec describes (worker-side and coordinator-side)."""
    _, factory = _REGISTRY[spec.engine]
    return factory(circuit, build_config(spec.engine, spec.seed, spec.overrides))


def build_placer_by_name(spec: WalkSpec):
    """:func:`build_placer` resolving the circuit through the registry."""
    return build_placer(resolve_workload(spec.circuit), spec)


def schedule_epochs(engine: str, overrides: tuple[tuple[str, object], ...]) -> int:
    """Cooling epochs of the engine's schedule under ``overrides``.

    Derived from :class:`~repro.anneal.GeometricSchedule` itself (not a
    re-implementation): checkpoints carry the schedule length, and
    :meth:`~repro.anneal.IncrementalAnnealer.advance` rejects a resume
    whose schedule disagrees — so this count must track the real
    schedule bit for bit, forever.
    """
    cfg = build_config(engine, 0, overrides)
    return GeometricSchedule(
        t_initial=cfg.t_initial, t_final=cfg.t_final, alpha=cfg.alpha, steps_per_epoch=1
    ).epochs


def compress_overrides(
    engine: str, overrides: tuple[tuple[str, object], ...], budget: int
) -> tuple[tuple[str, object], ...]:
    """Overrides whose schedule spans at most ``budget`` steps.

    The epoch count is fixed by ``t_initial``/``t_final``/``alpha``, so
    the only free knob is ``steps_per_epoch``; the compressed schedule
    spans ``epochs * (budget // epochs) <= budget`` steps.  ``budget``
    must cover at least one step per epoch.
    """
    epochs = schedule_epochs(engine, overrides)
    steps_per_epoch = budget // epochs
    if steps_per_epoch < 1:
        raise ValueError(
            f"budget {budget} is below one step per epoch "
            f"({epochs} epochs for {engine!r})"
        )
    kept = tuple((k, v) for k, v in overrides if k != "steps_per_epoch")
    return kept + (("steps_per_epoch", steps_per_epoch),)


def walk_total_steps(spec: WalkSpec) -> int:
    """Schedule length of a spec's walk, without building the placer."""
    cfg = build_config(spec.engine, spec.seed, spec.overrides)
    epochs = schedule_epochs(spec.engine, spec.overrides)
    return epochs * cfg.steps_per_epoch


def walk_chunk_count(spec: WalkSpec, chunk_steps: int) -> int:
    """Chunks a spec's walk executes at ``chunk_steps`` steps per chunk.

    Used to validate a :class:`~repro.parallel.faults.FaultPlan` up
    front: a fault aimed past a walk's last chunk would silently never
    fire, turning a fault-injection test into a fault-free one.
    """
    if chunk_steps < 1:
        raise ValueError(f"chunk_steps must be >= 1, got {chunk_steps}")
    total = walk_total_steps(spec)
    return max(1, -(-total // chunk_steps))


def verify_walk_checkpoint(spec: WalkSpec, checkpoint) -> None:
    """Reject a checkpoint that cannot resume the spec's walk.

    A persisted checkpoint is only resumable under the *same* schedule
    it was frozen under; a mismatch means the run directory belongs to
    a different config (or a different build of the schedule code), and
    resuming it would either crash mid-walk or, worse, walk a different
    trajectory.  Fail at load time with the full story instead.
    """
    expected = walk_total_steps(spec)
    if checkpoint.total_steps != expected:
        raise ValueError(
            f"walk {spec.walk_id}: checkpoint was frozen under a "
            f"{checkpoint.total_steps}-step schedule but the spec's schedule "
            f"spans {expected} steps — the run directory does not match this "
            "configuration"
        )


def reference_cost(circuit: Circuit):
    """One engine-agnostic yardstick: ``Placement -> float``.

    Each engine anneals its *own* objective (slicing, for instance,
    carries no aspect or proximity terms), so internal best costs are
    not comparable across engines.  The portfolio therefore ranks
    finished placements with :func:`repro.cost.reference_model` —
    area, wirelength and aspect under the canonical default weights,
    built from the very terms every placer anneals, plus a penalty per
    violated constraint.  Kept as a convenience wrapper; callers that
    also want per-term breakdowns should hold the model itself.
    """
    return reference_model(circuit).evaluate_placement


def reference_cost_model(circuit: Circuit) -> CostModel:
    """The portfolio's ranking model (see :func:`repro.cost.reference_model`)."""
    return reference_model(circuit)
