"""Parallel multi-start placement portfolio (see ``docs/parallel.md``).

Fan one placement job out across engines, seeds and worker processes;
get back the best placement plus a deterministic leaderboard::

    from repro.parallel import PortfolioRunner

    result = PortfolioRunner("miller_opamp", starts=8, workers=4).run()
    print(result.summary())
    best = result.placement
"""

from .engines import (
    ENGINE_NAMES,
    build_config,
    build_placer,
    build_placer_by_name,
    compress_overrides,
    reference_cost,
    reference_cost_model,
    validate_engines,
    walk_total_steps,
)
from .jobs import (
    ChunkResult,
    ChunkTask,
    PortfolioResult,
    ProgressEvent,
    WalkOutcome,
    WalkSpec,
)
from .runner import RESTART_POLICIES, PortfolioRunner

__all__ = [
    "ENGINE_NAMES",
    "RESTART_POLICIES",
    "ChunkResult",
    "ChunkTask",
    "PortfolioResult",
    "PortfolioRunner",
    "ProgressEvent",
    "WalkOutcome",
    "WalkSpec",
    "build_config",
    "build_placer",
    "build_placer_by_name",
    "compress_overrides",
    "reference_cost",
    "reference_cost_model",
    "validate_engines",
    "walk_total_steps",
]
