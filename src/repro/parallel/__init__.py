"""Parallel multi-start placement portfolio (see ``docs/parallel.md``).

Fan one placement job out across engines, seeds and worker processes;
get back the best placement plus a deterministic leaderboard::

    from repro.parallel import PortfolioRunner

    result = PortfolioRunner("miller_opamp", starts=8, workers=4).run()
    print(result.summary())
    best = result.placement

Execution is fault tolerant: failing chunks are retried and then
quarantined, dead workers are respawned, and an optional ``run_dir``
makes the whole run resumable (``PortfolioRunner.resume``) — see the
"Fault tolerance" section of ``docs/parallel.md``.
"""

from .engines import (
    ENGINE_NAMES,
    build_config,
    build_placer,
    build_placer_by_name,
    compress_overrides,
    reference_cost,
    reference_cost_model,
    validate_engines,
    verify_walk_checkpoint,
    walk_chunk_count,
    walk_total_steps,
)
from .faults import (
    DIE_EXIT_CODE,
    FAULT_KINDS,
    NETWORK_FAULT_KINDS,
    Fault,
    FaultInjected,
    FaultPlan,
)
from .jobs import (
    FAILED,
    FINISHED,
    KILLED,
    ChunkFailure,
    ChunkResult,
    ChunkTask,
    PortfolioResult,
    ProgressEvent,
    WalkFailure,
    WalkOutcome,
    WalkSpec,
)
from .net import PROTOCOL_VERSION, format_address, parse_address
from .persist import MANIFEST_VERSION, RunDir, RunDirError, RunState
from .remote import RemoteExecutor, WorkerClient, run_worker
from .runner import RESTART_POLICIES, PortfolioRunner

__all__ = [
    "DIE_EXIT_CODE",
    "ENGINE_NAMES",
    "FAILED",
    "FAULT_KINDS",
    "FINISHED",
    "KILLED",
    "MANIFEST_VERSION",
    "NETWORK_FAULT_KINDS",
    "PROTOCOL_VERSION",
    "RESTART_POLICIES",
    "ChunkFailure",
    "ChunkResult",
    "ChunkTask",
    "Fault",
    "FaultInjected",
    "FaultPlan",
    "PortfolioResult",
    "PortfolioRunner",
    "ProgressEvent",
    "RemoteExecutor",
    "RunDir",
    "RunDirError",
    "RunState",
    "WalkFailure",
    "WalkOutcome",
    "WalkSpec",
    "WorkerClient",
    "build_config",
    "build_placer",
    "build_placer_by_name",
    "compress_overrides",
    "format_address",
    "parse_address",
    "reference_cost",
    "reference_cost_model",
    "run_worker",
    "validate_engines",
    "verify_walk_checkpoint",
    "walk_chunk_count",
    "walk_total_steps",
]
