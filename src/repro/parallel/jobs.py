"""Spawn-safe job specs and result records for the portfolio runner.

Nothing in this module holds a live placer, engine or circuit: a
:class:`WalkSpec` names its workload (resolved through
:func:`repro.workloads.resolve_workload` — a built-in name, a
``gen:...`` family or a ``file:...`` benchmark), its engine (resolved
through :data:`repro.parallel.engines.ENGINE_NAMES`) and carries plain
config overrides, so a worker process rebuilds everything it needs from
a few hundred bytes.  The only state that crosses a process boundary
mid-walk is the :class:`~repro.anneal.WalkCheckpoint` inside a
:class:`ChunkTask` / :class:`ChunkResult` pair — plain data, cheap to
pickle, and sufficient to resume the walk bit-identically anywhere.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

from ..anneal import AnnealingStats, WalkCheckpoint
from ..geometry import Placement
from ..telemetry import TraceConfig


def circuit_by_name(name: str):
    """Deprecated shim: resolve workloads through the registry.

    This module's docs long pointed at ``circuit_by_name`` as the
    lookup behind :class:`WalkSpec.circuit`, so the name is provided
    here (deprecated from birth) for anyone who followed them; the
    real resolver is :func:`repro.workloads.resolve_workload`, which
    also accepts ``gen:`` and ``file:`` workload names.
    """
    warnings.warn(
        "repro.parallel.jobs.circuit_by_name() is deprecated; use "
        "repro.workloads.resolve_workload() instead",
        DeprecationWarning,
        stacklevel=2,
    )
    from ..workloads import resolve_workload

    return resolve_workload(name)

#: per-walk status values in a leaderboard
FINISHED = "finished"
KILLED = "killed"
#: a walk quarantined by the fault-tolerant executor (deterministic
#: chunk failure or chunk timeout after all retries); failed walks are
#: reported in :attr:`PortfolioResult.failures`, never the leaderboard
FAILED = "failed"


@dataclass(frozen=True)
class WalkSpec:
    """Everything a worker needs to (re)build one annealing walk.

    ``overrides`` are keyword arguments applied to the engine's config
    dataclass (``t_initial``, ``alpha``, ``steps_per_epoch``, weight
    knobs, ...) as ``(key, value)`` pairs — a tuple so specs stay
    hashable and usable as cache keys.
    """

    walk_id: int
    circuit: str
    engine: str
    seed: int
    overrides: tuple[tuple[str, object], ...] = ()


@dataclass(frozen=True)
class ChunkTask:
    """Run one chunk of a walk: begin it (``checkpoint is None``) or
    resume from the checkpoint, advancing at most ``max_steps`` steps.

    ``fault`` is test/CI plumbing: the coordinator arms it from a
    :class:`~repro.parallel.faults.FaultPlan` at dispatch time, and the
    worker triggers the named fault instead of executing the chunk
    (see :mod:`repro.parallel.faults`).  ``None`` on every real run.

    ``trace`` carries the portfolio's telemetry settings (a plain-data
    :class:`~repro.telemetry.TraceConfig`) to whichever process runs
    the chunk; the worker opens its own per-pid stream file under the
    trace directory.  ``None`` — the default — means telemetry off.
    """

    spec: WalkSpec
    checkpoint: WalkCheckpoint | None
    max_steps: int | None
    fault: str | None = None
    trace: "TraceConfig | None" = None


@dataclass(frozen=True)
class ChunkResult:
    """The walk frozen again after one chunk.

    ``elapsed_s`` is the worker-measured wall-clock of the annealing
    call itself (no queue wait, no pickling) — the coordinator uses it
    for per-walk steps/s and worker-utilization telemetry.  Volatile:
    never part of any determinism contract.
    """

    walk_id: int
    checkpoint: WalkCheckpoint
    elapsed_s: float = 0.0


@dataclass(frozen=True)
class ChunkFailure:
    """A chunk that exhausted its retries (or timed out): the executor's
    terminal verdict on one walk, surfaced to the coordinator in place
    of a :class:`ChunkResult`.

    ``reason`` is one of ``"error"`` (the chunk raised on every
    attempt), ``"timeout"`` (exceeded the chunk wall-clock limit) or
    ``"worker-death"`` (the owning worker died holding the chunk);
    ``detail`` carries the last traceback or a description.
    """

    walk_id: int
    reason: str
    detail: str
    attempts: int


@dataclass(frozen=True)
class ProgressEvent:
    """Streamed to the coordinator after every completed chunk."""

    walk_id: int
    engine: str
    seed: int
    step: int
    total_steps: int
    best_cost: float
    status: str = "running"


@dataclass
class WalkOutcome:
    """One leaderboard row: a finished (or killed) walk's best result.

    ``best_cost`` is the walk's *own* annealing objective (comparable
    only within one engine); ``ref_cost`` is the shared reference cost
    every placement is ranked by (see
    :func:`repro.parallel.engines.reference_cost`).
    """

    spec: WalkSpec
    best_cost: float
    ref_cost: float
    placement: Placement
    steps: int
    total_steps: int
    status: str = FINISHED
    stats: AnnealingStats | None = None
    #: engine-family state behind ``placement`` (feeds the polish walk)
    best_state: object = None
    #: per-term contributions of ``ref_cost`` under the reference model
    #: (see :func:`repro.cost.reference_model`); the runner fills it for
    #: the winning row only — rankings need totals, not breakdowns
    ref_breakdown: dict[str, float] | None = None
    #: summed worker-measured chunk wall-clock (volatile; feeds the
    #: per-walk steps/s column in :meth:`PortfolioResult.summary`)
    elapsed_s: float = 0.0
    #: chunk retries this walk consumed (re-dispatches after a failed
    #: or timed-out attempt)
    retries: int = 0


@dataclass
class WalkFailure:
    """One quarantined walk in a :class:`PortfolioResult`'s failure report.

    A failed walk contributes no leaderboard row (its best state may
    never have crossed a chunk boundary), but its identity, failure
    mode and spent steps are preserved so a degraded run is auditable
    — and so budget accounting stays exact.
    """

    spec: WalkSpec
    #: ``"error"`` / ``"timeout"`` / ``"worker-death"``
    reason: str
    #: last traceback or a human-readable description
    detail: str
    #: execution attempts the final chunk consumed
    attempts: int
    #: steps the walk completed before the failing chunk
    steps: int

    def summary_line(self) -> str:
        """One line for result banners and logs."""
        return (
            f"walk {self.spec.walk_id} [{self.spec.engine}/{self.spec.seed}] "
            f"FAILED ({self.reason}) after {self.attempts} attempt"
            f"{'s' if self.attempts != 1 else ''} at step {self.steps}"
        )


@dataclass
class PortfolioResult:
    """Best placement across the whole portfolio plus the leaderboard.

    ``leaderboard`` is sorted best-first with ``(ref_cost, walk_id)``
    as the total order, so the winner — and every rank — is a pure
    function of the walk results, independent of worker scheduling.
    ``failures`` lists walks quarantined by the fault-tolerant
    executor; the leaderboard comes from the survivors.
    """

    placement: Placement
    cost: float
    winner: WalkOutcome
    leaderboard: list[WalkOutcome] = field(default_factory=list)
    total_steps: int = 0
    elapsed_s: float = 0.0
    workers: int = 0
    failures: list[WalkFailure] = field(default_factory=list)
    #: chunk re-dispatches after failed or timed-out attempts
    retries: int = 0
    #: worker processes respawned after a crash
    respawns: int = 0

    def best_by_engine(self) -> dict[str, WalkOutcome]:
        """Best row per engine (by the engine's own objective)."""
        best: dict[str, WalkOutcome] = {}
        for row in self.leaderboard:
            seen = best.get(row.spec.engine)
            if seen is None or (row.best_cost, row.spec.walk_id) < (
                seen.best_cost,
                seen.spec.walk_id,
            ):
                best[row.spec.engine] = row
        return best

    def summary(self) -> str:
        """Human-readable leaderboard table (plus the failure report)."""
        failed = f", {len(self.failures)} failed" if self.failures else ""
        health = ""
        if self.retries or self.respawns:
            health = (
                f", {self.retries} chunk retr{'ies' if self.retries != 1 else 'y'}"
                f", {self.respawns} respawn{'s' if self.respawns != 1 else ''}"
            )
        lines = [
            f"portfolio: {len(self.leaderboard)} walks{failed}, "
            f"{self.total_steps:,} steps in {self.elapsed_s:.2f}s "
            f"({self.total_steps / max(self.elapsed_s, 1e-9):,.0f} aggregate steps/s, "
            f"{self.workers} worker{'s' if self.workers != 1 else ''}{health})",
            f"{'rank':>4} {'engine':<10} {'seed':>5} {'steps':>7} "
            f"{'steps/s':>9} {'ref cost':>10} {'own cost':>10} {'status':<9}",
        ]
        for rank, row in enumerate(self.leaderboard, 1):
            rate = f"{row.steps / row.elapsed_s:>9,.0f}" if row.elapsed_s else f"{'-':>9}"
            retries = f" +{row.retries}r" if row.retries else ""
            lines.append(
                f"{rank:>4} {row.spec.engine:<10} {row.spec.seed:>5} "
                f"{row.steps:>7,} {rate} {row.ref_cost:>10.4f} {row.best_cost:>10.4f} "
                f"{row.status:<9}{retries}"
            )
        if self.winner.ref_breakdown:
            terms = "  ".join(
                f"{name} {value:.4f}"
                for name, value in self.winner.ref_breakdown.items()
            )
            lines.append(f"winner cost terms: {terms}")
        for failure in self.failures:
            lines.append(failure.summary_line())
        return "\n".join(lines)
