"""Multi-start placement portfolio across processes.

:class:`PortfolioRunner` fans one placement problem out over many
independent annealing walks — across engines, across seeds, across
worker processes — and returns the best placement plus a full
leaderboard.  The design constraints, in order:

**Spawn safety.**  Workers never unpickle a live placer.  A walk is a
:class:`~repro.parallel.jobs.WalkSpec` — ``(circuit name, engine name,
seed, config overrides)`` — and each worker rebuilds circuit + placer +
engine from the spec (memoized per process), then drives it through the
checkpoint API of :class:`~repro.anneal.IncrementalAnnealer`.

**Chunked walks.**  A walk executes as a chain of
:class:`~repro.parallel.jobs.ChunkTask`\\ s, each advancing the walk by
``checkpoint_every`` steps and freezing it into a pickled
:class:`~repro.anneal.WalkCheckpoint`.  Chunk completions stream back
over the result queue as progress events; chunk boundaries never change
a trajectory (chunked == monolithic, bit for bit), so the runner can
slice walks for streaming and restart policies without touching the
answer.

**Determinism.**  A walk's trajectory depends only on its spec — never
on which worker ran it or when.  Restart decisions happen at round
barriers and rank walks by ``(best_cost, walk_id)``; the leaderboard is
sorted by the same total order.  Same specs -> same winner, regardless
of worker count or OS scheduling.

**Fault tolerance.**  Chunk execution is a pure function of
``(spec, checkpoint)``, so every failure is recoverable by re-running:
the coordinator tracks which chunk each worker holds, detects
individual worker death, respawns dead workers (up to a cap) and
re-dispatches the lost chunk; a failing chunk is retried up to
``max_retries`` and a chunk that fails deterministically — or exceeds
``chunk_timeout`` wall-clock — quarantines its walk (status
``failed``, reported in :attr:`PortfolioResult.failures`) while the
survivors finish the run.  ``strict=True`` restores fail-fast
semantics.  An optional ``run_dir`` snapshots every walk checkpoint
plus the coordinator state (atomic write-rename, versioned manifest —
see :mod:`repro.parallel.persist`) so :meth:`PortfolioRunner.resume`
continues an interrupted run bit-identically.  All of it is exercised
deterministically through :class:`~repro.parallel.faults.FaultPlan`.

**Restart policies.**

* ``independent`` — every start runs its full schedule; classic
  multi-start annealing.
* ``rebalance`` — at every checkpoint round the worst half of the
  active walks is killed and their *unspent* step budget is pooled and
  handed to fresh seeds (with schedules compressed to the new budget),
  so step budget chases the promising region of the portfolio instead
  of being buried with walks that started badly.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import queue
import random
import threading
from multiprocessing import connection as mp_connection
import time
import traceback
import warnings
from collections import deque
from dataclasses import dataclass, replace
from math import ceil
from typing import Callable, Iterable

from ..anneal import AnnealingStats, WalkCheckpoint
from ..circuit import Circuit
from ..workloads import resolve_workload
from .engines import (
    ENGINE_NAMES,
    build_config,
    build_placer,
    compress_overrides,
    reference_cost_model,
    validate_engines,
    verify_walk_checkpoint,
    walk_chunk_count,
    walk_total_steps,
)
from .faults import DIE_EXIT_CODE, FaultInjected, FaultPlan
from .jobs import (
    FAILED,
    FINISHED,
    KILLED,
    ChunkFailure,
    ChunkResult,
    ChunkTask,
    PortfolioResult,
    ProgressEvent,
    WalkFailure,
    WalkOutcome,
    WalkSpec,
)
from .net import parse_address
from .persist import FailureRecord, RunDir, RunDirError, RunState, WalkRecord
from ..telemetry import NULL_RECORDER, TraceConfig, TraceRecorder

RESTART_POLICIES = ("independent", "rebalance")

#: checkpoint rounds per walk when ``checkpoint_every`` is not given
_DEFAULT_ROUNDS = 4

#: initial temperature of the budget-slack polish walk: cold enough to
#: refine rather than re-explore, warm enough to cross small barriers
_POLISH_T0 = 0.05

#: seed offset separating polish draws from every sweep seed
_POLISH_SEED_OFFSET = 100_003

#: result-queue poll interval: the cadence of liveness + timeout checks
_POLL_INTERVAL_S = 0.2

#: how long a ``hang`` fault sleeps before giving up and raising (a
#: chunk timeout is expected to kill the worker long before this)
_HANG_FAULT_S = 3600.0

#: default worker-death respawn cap per run: ``2 * workers``
_RESPAWNS_PER_WORKER = 2

#: default seconds a remote chunk lease survives without a heartbeat
_DEFAULT_LEASE_TIMEOUT = 10.0


# -- worker side --------------------------------------------------------------
#
# Everything below runs identically in a spawned worker process and in
# the in-process executor (workers <= 1), so parallel and serial runs
# share one execution path and one answer.

#: per-*thread* placer/engine memo: (circuit, engine, overrides) -> pair.
#: Thread-local because engines are mutable (``engine.reset`` per
#: chunk): loopback worker *threads* (the remote tier's test harness)
#: executing two walks of the same engine family through one shared
#: engine object would corrupt both trajectories.  Worker processes are
#: single-threaded, so for them this is exactly the old per-process
#: cache.
_BUILD_LOCAL = threading.local()


def _placer_engine_for(spec: WalkSpec):
    """Rebuild (memoized) the placer and incremental engine for a spec.

    The cache key drops the seed: a placer's walk API touches its
    config's seed nowhere (randomness comes from the RNG the walk
    carries), so walks differing only by seed share one rebuild.
    """
    cache = getattr(_BUILD_LOCAL, "cache", None)
    if cache is None:
        cache = _BUILD_LOCAL.cache = {}
    key = (spec.circuit, spec.engine, spec.overrides)
    pair = cache.get(key)
    if pair is None:
        circuit = _circuit_for(spec.circuit)
        placer = build_placer(circuit, spec)
        pair = (placer, placer.engine())
        cache[key] = pair
    return pair


_CIRCUIT_CACHE: dict[str, Circuit] = {}


def _circuit_for(name: str) -> Circuit:
    circuit = _CIRCUIT_CACHE.get(name)
    if circuit is None:
        circuit = _CIRCUIT_CACHE[name] = resolve_workload(name)
    return circuit


#: per-process trace recorders, one per (directory, sample_interval) —
#: every chunk this process executes for the same trace config appends
#: to the same ``worker-{pid}.jsonl`` stream (one header per file)
_TRACE_RECORDERS: dict[tuple[str, int], TraceRecorder] = {}
_TRACE_RECORDERS_LOCK = threading.Lock()


def _trace_recorder(config: TraceConfig) -> TraceRecorder:
    key = (config.directory, config.sample_interval)
    with _TRACE_RECORDERS_LOCK:
        recorder = _TRACE_RECORDERS.get(key)
        if recorder is None:
            recorder = _TRACE_RECORDERS[key] = TraceRecorder(
                config.directory, sample_interval=config.sample_interval
            )
        return recorder


@atexit.register
def _close_trace_recorders() -> None:
    # streams are line-buffered so nothing is lost either way; closing
    # at exit just releases the handles cleanly
    with _TRACE_RECORDERS_LOCK:
        for recorder in _TRACE_RECORDERS.values():
            recorder.close()
        _TRACE_RECORDERS.clear()


def _trigger_fault(task: ChunkTask) -> None:
    """Act out the fault the coordinator armed on this task."""
    if task.fault == "raise":
        raise FaultInjected(
            f"injected chunk failure on walk {task.spec.walk_id}"
        )
    if task.fault == "die":
        # the OOM-kill / segfault path: no exception, no cleanup — the
        # worker vanishes while owning the chunk
        os._exit(DIE_EXIT_CODE)
    if task.fault == "hang":
        time.sleep(_HANG_FAULT_S)
        raise FaultInjected(
            f"hang fault on walk {task.spec.walk_id} expired without a "
            "chunk timeout killing the worker"
        )
    raise ValueError(f"unknown fault kind {task.fault!r}")


def _execute(task: ChunkTask) -> ChunkResult:
    """Run one chunk of a walk (fresh or resumed) and freeze it again."""
    if task.fault is not None:
        _trigger_fault(task)
    spec = task.spec
    placer, engine = _placer_engine_for(spec)
    rng = random.Random(spec.seed)
    # the placer picks the driver matched to its engine tier (e.g. the
    # batched annealer for a vector_tier config); all drivers share the
    # IncrementalAnnealer checkpoint contract
    annealer = placer.annealer(engine, rng)
    if task.trace is not None:
        start_step = 0 if task.checkpoint is None else task.checkpoint.step
        annealer.set_recorder(
            _trace_recorder(task.trace).bind(
                walk=spec.walk_id, engine=spec.engine, chunk_start=start_step
            )
        )
    else:
        # engines are memoized per process: make sure a traced run in
        # this process earlier doesn't leave stats collection armed
        annealer.set_recorder(None)
    started = time.perf_counter()
    if task.checkpoint is None:
        # same draw order as a placer's own run(): initial state first,
        # then warmup — a 1-start portfolio walks the exact run() walk
        engine.reset(placer.initial_state(rng))
        checkpoint = annealer.begin()
        checkpoint = annealer.advance(
            checkpoint, task.max_steps, _engine_synced=True
        )
    else:
        checkpoint = annealer.advance(task.checkpoint, task.max_steps)
    elapsed = time.perf_counter() - started
    return ChunkResult(
        walk_id=spec.walk_id,
        checkpoint=checkpoint,
        elapsed_s=round(elapsed, 6),
    )


def _worker_main(worker_id: int, task_queue, result_conn) -> None:
    """Worker loop: pull ``(task_id, attempt, task)`` triples until the
    ``None`` sentinel; results go back over this worker's *private*
    pipe, echoing the ``(task_id, attempt)`` epoch they answer.

    Results deliberately do **not** share a queue across workers: a
    shared ``multiprocessing.Queue`` guards its pipe with a lock held
    across every write, and a worker that dies abruptly (``os._exit``,
    OOM kill) can die *holding it* — wedging every surviving worker's
    feeder thread and losing their results forever.  A private pipe has
    no cross-worker lock: a dying worker can only ever lose its own
    messages, which is exactly the case supervision already recovers,
    and the closed pipe doubles as an immediate death signal.
    """
    try:
        while True:
            item = task_queue.get()
            if item is None:
                return
            task_id, attempt, task = item
            try:
                result_conn.send(("ok", task_id, attempt, _execute(task)))
            except Exception:  # surfaced (with traceback) by the coordinator
                result_conn.send(
                    ("error", task_id, attempt, traceback.format_exc())
                )
    finally:
        result_conn.close()


# -- supervision --------------------------------------------------------------


class _ChunkSupervisor:
    """Per-walk chunk/attempt bookkeeping shared by both executors.

    Tracks which chunk of each walk is in flight and how many attempts
    the current chunk has burned, arms :class:`FaultPlan` faults at
    dispatch time, and decides retry vs quarantine.  Purely
    coordinator-side: the worker protocol never sees any of it.
    """

    def __init__(
        self,
        max_retries: int,
        fault_plan: FaultPlan | None,
        strict: bool,
    ) -> None:
        self.strict = strict
        self.max_retries = 0 if strict else max_retries
        self._plan = fault_plan
        self._chunk: dict[int, int] = {}
        self._attempts: dict[int, int] = {}

    def begin_chunk(self, walk_id: int) -> int:
        """A new chunk of ``walk_id`` enters the executor; returns its
        0-based chunk index and resets the attempt counter."""
        index = self._chunk.get(walk_id, -1) + 1
        self._chunk[walk_id] = index
        self._attempts[walk_id] = 0
        return index

    def preset_chunks(self, walk_id: int, completed: int) -> None:
        """Seed the chunk counter for a walk restored mid-run, so fault
        plans keep addressing absolute chunk indices after a resume."""
        self._chunk[walk_id] = completed - 1

    def arm(self, task: ChunkTask, chunk_index: int) -> ChunkTask:
        """Attach the planned fault (if any) for this execution attempt."""
        if self._plan is None:
            return task
        kind = self._plan.fault_for(
            task.spec.walk_id, chunk_index, self._attempts[task.spec.walk_id]
        )
        return task if kind is None else replace(task, fault=kind)

    def record_failure(self, walk_id: int) -> bool:
        """Count one failed attempt; ``True`` means retry, ``False``
        means the chunk is out of retries (quarantine the walk)."""
        attempts = self._attempts.get(walk_id, 0) + 1
        self._attempts[walk_id] = attempts
        return attempts <= self.max_retries

    def attempts(self, walk_id: int) -> int:
        return self._attempts.get(walk_id, 0)

    def is_current(self, walk_id: int, chunk_index: int, attempt: int) -> bool:
        """Is ``(walk, chunk, attempt)`` the epoch currently in flight?

        A result stamped with any *other* epoch is stale — it belongs
        to an execution that was already superseded (retried, timed
        out, lease-revoked) — and must be discarded, never counted as
        progress.
        """
        return (
            self._chunk.get(walk_id) == chunk_index
            and self._attempts.get(walk_id, 0) == attempt
        )


def resolve_chunk_failure(
    supervisor: _ChunkSupervisor,
    task: ChunkTask,
    chunk_index: int,
    reason: str,
    detail: str,
    requeue: Callable[[ChunkTask, int], None],
    incident: Callable[[int | None, str, str], None],
) -> ChunkFailure | None:
    """One failed execution attempt, resolved the same way everywhere.

    Shared by every executor (inline, process pool, remote): under
    ``strict`` the original failure aborts the run; otherwise the
    attempt is counted and the chunk is either requeued for retry
    (``None``) or the walk is given its terminal :class:`ChunkFailure`.
    """
    walk_id = task.spec.walk_id
    if supervisor.strict:
        raise RuntimeError(f"worker failed on walk {walk_id}:\n{detail}")
    if supervisor.record_failure(walk_id):
        incident(walk_id, "retry", detail)
        requeue(task, chunk_index)
        return None
    return ChunkFailure(
        walk_id=walk_id,
        reason=reason,
        detail=detail,
        attempts=supervisor.attempts(walk_id),
    )


# -- executors ----------------------------------------------------------------


class _InlineExecutor:
    """Serial executor: dispatch enqueues, collect runs one task.

    FIFO order makes serial runs reproducible step for step; because
    trajectories are scheduling-independent anyway, its results are
    identical to the process executor's.  Retry and quarantine follow
    the same :class:`_ChunkSupervisor` rules as the worker pool;
    ``hang``/``die`` faults and chunk timeouts need a real process to
    kill, so the runner rejects them for in-process execution.
    """

    def __init__(self, supervisor: _ChunkSupervisor) -> None:
        self._supervisor = supervisor
        self._queue: deque[tuple[ChunkTask, int]] = deque()

    def dispatch(self, task: ChunkTask) -> None:
        self._queue.append(
            (task, self._supervisor.begin_chunk(task.spec.walk_id))
        )

    def collect(self) -> ChunkResult | ChunkFailure:
        task, chunk_index = self._queue.popleft()
        supervisor = self._supervisor
        while True:
            try:
                return _execute(supervisor.arm(task, chunk_index))
            except Exception:
                if supervisor.strict:
                    raise  # today's fail-fast: the original traceback
                detail = traceback.format_exc()
                if not supervisor.record_failure(task.spec.walk_id):
                    return ChunkFailure(
                        walk_id=task.spec.walk_id,
                        reason="error",
                        detail=detail,
                        attempts=supervisor.attempts(task.spec.walk_id),
                    )

    def close(self) -> None:
        self._queue.clear()


@dataclass
class _WorkerHandle:
    """One live worker process plus its private task queue and result pipe."""

    worker_id: int
    proc: object
    task_queue: object
    conn: object


@dataclass
class _InFlight:
    """One chunk a specific worker currently owns.

    ``attempt`` is the execution epoch this dispatch belongs to: a
    result echoing any other ``(task_id, attempt)`` pair answers a
    superseded execution and is discarded instead of counted.
    """

    task_id: int
    task: ChunkTask
    chunk_index: int
    attempt: int
    started: float


class _ProcessExecutor:
    """Supervised spawn-based worker pool.

    ``spawn`` (never ``fork``) so workers import the package fresh —
    no inherited locks, no accidentally shared placer state, and the
    same behavior on every platform.

    Supervision model: every worker has a *private* task queue and owns
    at most one chunk at a time; undispatched chunks wait in a
    coordinator-side backlog.  That makes chunk ownership exact — when
    a worker dies the coordinator knows precisely which chunk died with
    it, re-dispatches it to a surviving worker (chunk execution is a
    pure function of ``(spec, checkpoint)``, so a re-run is
    bit-identical) and respawns the worker while ``max_respawns``
    lasts.  A chunk exceeding ``chunk_timeout`` wall-clock gets its
    worker killed and is treated as a failed attempt.  Results travel
    over per-worker pipes (no lock shared across workers — see
    :func:`_worker_main`) and carry the dispatching ``task_id``, so
    anything from a worker that was already declared dead or timed out
    is recognized as stale and dropped, and a worker's death surfaces
    immediately as EOF on its pipe instead of waiting for a liveness
    poll.
    """

    def __init__(
        self,
        workers: int,
        supervisor: _ChunkSupervisor,
        *,
        chunk_timeout: float | None = None,
        max_respawns: int | None = None,
        on_incident: Callable[[int | None, str, str], None] | None = None,
        recorder=NULL_RECORDER,
    ) -> None:
        self._supervisor = supervisor
        self._chunk_timeout = chunk_timeout
        self._respawns_left = (
            _RESPAWNS_PER_WORKER * workers if max_respawns is None else max_respawns
        )
        self._on_incident = on_incident
        self._recorder = recorder
        #: per-worker (busy seconds, chunks completed) — volatile,
        #: surfaced as ``executor.worker`` utilization events at close
        self._worker_usage: dict[int, list[float]] = {}
        self._ctx = multiprocessing.get_context("spawn")
        self._workers: dict[int, _WorkerHandle] = {}
        self._idle: deque[int] = deque()
        self._backlog: deque[tuple[ChunkTask, int]] = deque()
        self._owner: dict[int, _InFlight] = {}
        self._next_worker_id = 0
        self._next_task_id = 0
        for _ in range(workers):
            self._spawn_worker()

    # -- pool management ------------------------------------------------------

    def _spawn_worker(self) -> int:
        worker_id = self._next_worker_id
        self._next_worker_id += 1
        task_queue = self._ctx.Queue()
        recv_conn, send_conn = self._ctx.Pipe(duplex=False)
        proc = self._ctx.Process(
            target=_worker_main,
            args=(worker_id, task_queue, send_conn),
            daemon=True,
        )
        proc.start()
        # drop the coordinator's copy of the send end so the pipe hits
        # EOF the instant the worker (its only writer) dies
        send_conn.close()
        self._workers[worker_id] = _WorkerHandle(
            worker_id, proc, task_queue, recv_conn
        )
        self._idle.append(worker_id)
        return worker_id

    def _incident(self, walk_id: int | None, kind: str, detail: str) -> None:
        if self._on_incident is not None:
            self._on_incident(walk_id, kind, detail)

    # -- dispatch / collect ---------------------------------------------------

    def dispatch(self, task: ChunkTask) -> None:
        self._backlog.append(
            (task, self._supervisor.begin_chunk(task.spec.walk_id))
        )
        self._pump()

    def _pump(self) -> None:
        """Hand backlog chunks to idle workers (one chunk per worker)."""
        while self._idle and self._backlog:
            worker_id = self._idle.popleft()
            handle = self._workers.get(worker_id)
            if handle is None:  # died while idle; _reap_dead handles it
                continue
            task, chunk_index = self._backlog.popleft()
            task_id = self._next_task_id
            self._next_task_id += 1
            attempt = self._supervisor.attempts(task.spec.walk_id)
            self._owner[worker_id] = _InFlight(
                task_id, task, chunk_index, attempt, time.monotonic()
            )
            handle.task_queue.put(
                (task_id, attempt, self._supervisor.arm(task, chunk_index))
            )

    def collect(self) -> ChunkResult | ChunkFailure:
        while True:
            self._pump()
            if not self._workers:
                # e.g. workers that failed during interpreter bootstrap,
                # with the respawn budget exhausted
                raise RuntimeError(
                    "all portfolio workers exited without producing results"
                )
            by_conn = {
                handle.conn: handle.worker_id
                for handle in self._workers.values()
            }
            ready = mp_connection.wait(by_conn, timeout=_POLL_INTERVAL_S)
            if not ready:
                failure = self._reap_dead()
                if failure is None:
                    failure = self._reap_timeouts()
                if failure is not None:
                    return failure
                continue
            conn = ready[0]
            worker_id = by_conn[conn]
            try:
                message = conn.recv()
            except (EOFError, OSError):
                # the worker died: its pipe reports EOF immediately,
                # even while other workers are alive and busy
                failure = self._worker_died(worker_id)
                if failure is not None:
                    return failure
                continue
            kind, task_id, attempt = message[0], message[1], message[2]
            inflight = self._owner.get(worker_id)
            if (
                inflight is None
                or inflight.task_id != task_id
                or inflight.attempt != attempt
            ):
                # stale: the chunk's attempt was superseded (re-dispatch
                # after a timeout/death raced the predecessor's answer);
                # counting it would double-book the walk's progress
                continue
            del self._owner[worker_id]
            if worker_id in self._workers:
                self._idle.append(worker_id)
            if kind == "ok":
                result = message[3]
                if self._recorder.enabled:
                    self._note_chunk(worker_id, inflight, result)
                return result
            failure = self._chunk_failed(
                inflight.task, inflight.chunk_index, "error", message[3]
            )
            if failure is not None:
                return failure

    def _note_chunk(
        self, worker_id: int, inflight: _InFlight, result: ChunkResult
    ) -> None:
        """Telemetry for one completed chunk: queue wait (time between
        dispatch and collection not spent annealing — pickling, queue
        sitting, scheduling) and per-worker busy accounting.  The whole
        event is wall-only: which pool slot ran which chunk on which
        attempt is a scheduling fact, so the canonical trace view stays
        identical across worker counts."""
        total = time.monotonic() - inflight.started
        usage = self._worker_usage.setdefault(worker_id, [0.0, 0])
        usage[0] += result.elapsed_s
        usage[1] += 1
        self._recorder.event(
            "executor.chunk",
            wall={
                "worker": worker_id,
                "walk": inflight.task.spec.walk_id,
                "chunk": inflight.chunk_index,
                "attempt": inflight.attempt,
                "exec_s": result.elapsed_s,
                "total_s": round(total, 6),
                "queue_wait_s": round(max(0.0, total - result.elapsed_s), 6),
            },
        )

    def _chunk_failed(
        self, task: ChunkTask, chunk_index: int, reason: str, detail: str
    ) -> ChunkFailure | None:
        """One attempt failed: retry (``None``) or quarantine the walk."""

        def requeue(task: ChunkTask, chunk_index: int) -> None:
            self._backlog.append((task, chunk_index))
            self._pump()

        return resolve_chunk_failure(
            self._supervisor, task, chunk_index, reason, detail,
            requeue, self._incident,
        )

    def _reap_dead(self) -> ChunkFailure | None:
        """Liveness fallback: catch deaths whose pipe never hit EOF
        (the send end leaked into a grandchild, say).  The common path
        is the EOF branch in :meth:`collect`."""
        for worker_id in [
            handle.worker_id
            for handle in self._workers.values()
            if not handle.proc.is_alive()
        ]:
            failure = self._worker_died(worker_id)
            if failure is not None:
                return failure
        return None

    def _worker_died(self, worker_id: int) -> ChunkFailure | None:
        """Remove a dead worker, respawn it, re-dispatch its lost chunk."""
        handle = self._workers.pop(worker_id, None)
        if handle is None:
            return None
        handle.proc.join(timeout=5)
        handle.conn.close()
        try:
            self._idle.remove(worker_id)
        except ValueError:
            pass
        if self._respawns_left > 0:
            self._respawns_left -= 1
            replacement = self._spawn_worker()
            self._incident(
                None,
                "respawn",
                f"worker {worker_id} died (exit code "
                f"{handle.proc.exitcode}); respawned as worker {replacement}",
            )
        inflight = self._owner.pop(worker_id, None)
        if inflight is not None:
            return self._chunk_failed(
                inflight.task,
                inflight.chunk_index,
                "worker-death",
                f"worker {worker_id} died holding the chunk "
                f"(exit code {handle.proc.exitcode})",
            )
        return None

    def _reap_timeouts(self) -> ChunkFailure | None:
        """Kill workers whose chunk exceeded the wall-clock limit."""
        if self._chunk_timeout is None:
            return None
        now = time.monotonic()
        expired = [
            (worker_id, inflight)
            for worker_id, inflight in self._owner.items()
            if now - inflight.started > self._chunk_timeout
        ]
        for worker_id, inflight in expired:
            del self._owner[worker_id]
            handle = self._workers.pop(worker_id, None)
            if handle is not None:
                self._stop_worker(handle)
                handle.conn.close()
            if self._respawns_left > 0:
                self._respawns_left -= 1
                replacement = self._spawn_worker()
                self._incident(
                    inflight.task.spec.walk_id,
                    "timeout",
                    f"worker {worker_id} killed after exceeding the "
                    f"{self._chunk_timeout:g}s chunk timeout; respawned as "
                    f"worker {replacement}",
                )
            failure = self._chunk_failed(
                inflight.task,
                inflight.chunk_index,
                "timeout",
                f"chunk exceeded the {self._chunk_timeout:g}s wall-clock "
                f"timeout (walk {inflight.task.spec.walk_id}, chunk "
                f"{inflight.chunk_index})",
            )
            if failure is not None:
                return failure
        return None

    @staticmethod
    def _stop_worker(handle: _WorkerHandle) -> None:
        handle.proc.terminate()
        handle.proc.join(timeout=5)
        if handle.proc.is_alive():  # pragma: no cover - SIGTERM ignored
            handle.proc.kill()
            handle.proc.join(timeout=5)

    def close(self) -> None:
        """Shut the pool down without ever hanging.

        Workers already gone (crashed, killed) simply get no sentinel;
        a worker that ignores its sentinel for 10s is terminated.  Task
        queues use ``cancel_join_thread`` so a sentinel still sitting
        in a dead worker's queue buffer cannot deadlock the feeder
        thread at interpreter exit.  One warning summarizes any
        non-clean shutdown instead of hanging or spamming.
        """
        if self._recorder.enabled:
            for worker_id, (busy_s, chunks) in sorted(self._worker_usage.items()):
                self._recorder.event(
                    "executor.worker",
                    wall={
                        "worker": worker_id,
                        "busy_s": round(busy_s, 6),
                        "chunks": int(chunks),
                    },
                )
            self._worker_usage.clear()
        stuck = []
        for handle in self._workers.values():
            if not handle.proc.is_alive():
                continue
            try:
                handle.task_queue.put_nowait(None)
            except (queue.Full, ValueError, OSError):  # pragma: no cover
                pass  # abandoned queue: the join/terminate path handles it
        for handle in self._workers.values():
            handle.proc.join(timeout=10)
            if handle.proc.is_alive():
                stuck.append(handle.worker_id)
                self._stop_worker(handle)
        if stuck:
            warnings.warn(
                f"portfolio worker(s) {stuck} did not exit cleanly and were "
                "terminated",
                RuntimeWarning,
                stacklevel=2,
            )
        for handle in self._workers.values():
            handle.task_queue.close()
            handle.task_queue.cancel_join_thread()
            handle.conn.close()
        self._workers.clear()
        self._idle.clear()
        self._owner.clear()


# -- coordinator --------------------------------------------------------------


@dataclass
class _Walk:
    """Coordinator-side bookkeeping for one walk."""

    spec: WalkSpec
    total_steps: int
    chunk: int
    checkpoint: WalkCheckpoint | None = None
    #: finalized placement + reference cost of the best state, memoized
    #: per best_cost value (kill rounds rank walks every round; only
    #: walks whose best actually changed repack)
    ref_cost: float = float("inf")
    ref_placement: object = None
    _ref_at: float | None = None
    #: summed worker-measured chunk wall-clock (volatile; telemetry only)
    elapsed_s: float = 0.0
    #: chunk retry incidents this walk consumed
    retries: int = 0


class PortfolioRunner:
    """Fan a placement job out over a portfolio of annealing walks.

    Parameters
    ----------
    circuit:
        Workload *name* resolved through
        :func:`repro.workloads.resolve_workload` — a built-in
        (``miller_opamp``), a generated family (``gen:n=500,seed=7``)
        or an on-disk benchmark (``file:bench.blocks``).  A name, not
        an object, so the runner itself is spawn-safe: workers
        re-resolve the string.
    engines:
        Engine names to cycle starts over (default: all four of
        ``bstar`` / ``hbtree`` / ``seqpair`` / ``slicing``).
    starts:
        Number of walks; walk *i* runs ``engines[i % len(engines)]``
        with seed ``seeds[i]``.
    workers:
        ``<= 1`` runs in-process (deterministic serial execution, no
        multiprocessing); ``N > 1`` spawns ``N`` worker processes.
    seeds:
        Explicit seed sweep (defaults to ``base_seed + i``).  Restart
        policies draw fresh seeds after the sweep.
    budget:
        Total annealing steps across the whole portfolio.  When given,
        each start's schedule is compressed to ``budget // starts``
        steps; when ``None`` every start runs its engine's full
        schedule.  (Warmup sampling — 32 proposals per walk, exactly as
        in a single :meth:`run`-style anneal — is outside the budget.)
    restart_policy:
        ``"independent"`` or ``"rebalance"`` (see module docstring).
    checkpoint_every:
        Steps per chunk (progress granularity, and the kill/respawn
        cadence under ``rebalance``).  Default: a quarter of the walk's
        schedule.
    overrides:
        Config overrides applied to every walk (e.g. schedule knobs).
    on_event:
        Callback receiving a :class:`ProgressEvent` after every chunk,
        kill, spawn and supervision incident — the streamed per-worker
        progress feed.
    max_retries:
        Execution attempts a chunk gets beyond the first before its
        walk is quarantined (default 2; ignored under ``strict``).
    chunk_timeout:
        Wall-clock seconds a chunk may run before its worker is killed
        and the attempt counts as failed.  Requires ``workers > 1``
        (in-process execution cannot preempt itself).
    strict:
        Fail-fast semantics: the first chunk error aborts the whole
        run (no retries, no quarantine) exactly as before the
        fault-tolerant executor existed.
    max_respawns:
        Cap on worker respawns per run (default ``2 * workers``).
    run_dir:
        Directory to snapshot the run into (see
        :mod:`repro.parallel.persist`); must not already hold a run.
        :meth:`resume` continues from it bit-identically.
    fault_plan:
        Deterministic fault injection for tests/CI (see
        :mod:`repro.parallel.faults`).  ``hang``/``die`` faults need
        ``workers > 1`` or a ``listen`` address; network faults need
        ``listen``.
    listen:
        Address to serve the distributed execution tier on —
        ``"host:port"`` / ``"unix:/path.sock"`` (or the parsed form).
        Remote workers started with ``repro worker --connect`` join the
        run and execute chunks under leases renewed by heartbeats (see
        :mod:`repro.parallel.remote`); the leaderboard stays
        byte-identical to a serial run.  Mutually exclusive with
        ``workers > 1`` — remote peers replace the local pool, and the
        coordinator degrades to executing chunks itself if every peer
        vanishes.
    lease_timeout:
        Seconds a dispatched chunk's lease survives without a
        heartbeat from its worker before it is revoked and the chunk is
        re-dispatched (default 10).
    heartbeat_interval:
        Seconds between worker heartbeats (default: a quarter of the
        lease timeout); must be shorter than ``lease_timeout``.
    on_listen:
        Callback receiving the bound listen address (host/port
        resolved, so ``port 0`` becomes the real ephemeral port) the
        moment the coordinator starts serving — the handle workers need
        to connect.
    trace:
        Telemetry flight-recorder destination: a directory path (or a
        full :class:`~repro.telemetry.TraceConfig`) to write
        ``repro/trace-v1`` JSONL streams into — ``coordinator.jsonl``
        plus one ``worker-<pid>.jsonl`` per process that executes
        chunks, local or remote.  Pure observation: a traced run's
        trajectories, leaderboard and winner are byte-identical to an
        untraced run (read back with ``repro trace report``).  Default
        off.
    """

    def __init__(
        self,
        circuit: str,
        engines: Iterable[str] | None = None,
        *,
        starts: int = 8,
        workers: int = 0,
        base_seed: int = 0,
        seeds: Iterable[int] | None = None,
        budget: int | None = None,
        restart_policy: str = "independent",
        checkpoint_every: int | None = None,
        overrides: tuple[tuple[str, object], ...] = (),
        on_event: Callable[[ProgressEvent], None] | None = None,
        max_retries: int = 2,
        chunk_timeout: float | None = None,
        strict: bool = False,
        max_respawns: int | None = None,
        run_dir: str | os.PathLike | None = None,
        fault_plan: FaultPlan | None = None,
        listen: "str | tuple[str, int] | None" = None,
        lease_timeout: float | None = None,
        heartbeat_interval: float | None = None,
        on_listen: Callable[[object], None] | None = None,
        trace: "TraceConfig | str | os.PathLike | None" = None,
    ) -> None:
        if starts < 1:
            raise ValueError("starts must be >= 1")
        if workers < 0:
            raise ValueError("workers must be >= 0")
        if restart_policy not in RESTART_POLICIES:
            raise ValueError(
                f"unknown restart policy {restart_policy!r}; "
                f"try: {', '.join(RESTART_POLICIES)}"
            )
        if budget is not None and budget < starts:
            raise ValueError("budget must allow at least one step per start")
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if isinstance(listen, str):
            listen = parse_address(listen)
        if listen is not None and workers > 1:
            raise ValueError(
                "listen and workers > 1 are mutually exclusive: remote "
                "peers replace the local worker pool"
            )
        if chunk_timeout is not None and chunk_timeout <= 0:
            raise ValueError("chunk_timeout must be positive (seconds)")
        if chunk_timeout is not None and workers <= 1 and listen is None:
            raise ValueError(
                "chunk_timeout requires workers > 1 or a listen address: "
                "in-process execution cannot preempt a running chunk"
            )
        if lease_timeout is None:
            lease_timeout = _DEFAULT_LEASE_TIMEOUT
        if lease_timeout <= 0:
            raise ValueError("lease_timeout must be positive (seconds)")
        if heartbeat_interval is None:
            heartbeat_interval = lease_timeout / 4.0
        if heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be positive (seconds)")
        if heartbeat_interval >= lease_timeout:
            raise ValueError(
                f"heartbeat_interval ({heartbeat_interval:g}s) must be "
                f"shorter than lease_timeout ({lease_timeout:g}s), or every "
                "lease expires between heartbeats"
            )
        if max_respawns is not None and max_respawns < 0:
            raise ValueError("max_respawns must be >= 0")
        if fault_plan is not None:
            if fault_plan.needs_processes and workers <= 1 and listen is None:
                raise ValueError(
                    "fault plans with 'hang' or 'die' faults need workers > 1 "
                    "or a listen address: there is no worker process to kill "
                    "in-process"
                )
            if fault_plan.needs_network and listen is None:
                raise ValueError(
                    "network fault plans (disconnect / stall-heartbeat / "
                    "duplicate-result) need a listen address: there is no "
                    "socket to abuse locally"
                )
            if (
                fault_plan.has_kind("hang")
                and listen is not None
                and chunk_timeout is None
            ):
                raise ValueError(
                    "a 'hang' fault on a remote run needs a chunk_timeout: "
                    "a hung remote worker still heartbeats, so only the "
                    "hard per-chunk deadline can revoke its lease"
                )
        self._circuit_name = circuit
        # fail fast on unknown names; the coordinator cache keeps the
        # built circuit for run() (sized circuits cost ~1s to rebuild)
        _circuit_for(circuit)
        self._engines = validate_engines(
            tuple(engines) if engines is not None else ENGINE_NAMES
        )
        self._starts = starts
        self._workers = workers
        self._seeds = list(seeds) if seeds is not None else [
            base_seed + i for i in range(starts)
        ]
        if len(self._seeds) < starts:
            raise ValueError(f"need {starts} seeds, got {len(self._seeds)}")
        self._budget = budget
        self._policy = restart_policy
        self._checkpoint_every = checkpoint_every
        self._overrides = tuple(overrides)
        self._on_event = on_event
        self._max_retries = max_retries
        self._chunk_timeout = chunk_timeout
        self._strict = strict
        self._max_respawns = max_respawns
        self._run_dir = RunDir(run_dir) if run_dir is not None else None
        self._fault_plan = fault_plan
        self._listen = listen
        self._lease_timeout = lease_timeout
        self._heartbeat_interval = heartbeat_interval
        self._on_listen = on_listen
        if trace is not None and not isinstance(trace, TraceConfig):
            trace = TraceConfig(directory=os.fspath(trace))
        self._trace = trace
        #: the coordinator's own stream; a live TraceRecorder only
        #: inside run() when tracing is on
        self._recorder = NULL_RECORDER
        self._incident_counts: dict[str, int] = {}
        #: set by :meth:`resume` before run(); ``None`` for fresh runs
        self._resume_state: RunState | None = None
        self._failures: list[WalkFailure] = []
        self._run_state: RunState | None = None
        self._live_walks: dict[int, _Walk] = {}

    # -- public ---------------------------------------------------------------

    @classmethod
    def resume(
        cls,
        run_dir: str | os.PathLike,
        *,
        workers: int | None = None,
        on_event: Callable[[ProgressEvent], None] | None = None,
        max_retries: int = 2,
        chunk_timeout: float | None = None,
        strict: bool = False,
        max_respawns: int | None = None,
        fault_plan: FaultPlan | None = None,
        listen: "str | tuple[str, int] | None" = None,
        lease_timeout: float | None = None,
        heartbeat_interval: float | None = None,
        on_listen: Callable[[object], None] | None = None,
        allow_topology_change: bool = False,
        trace: "TraceConfig | str | os.PathLike | None" = None,
    ) -> "PortfolioRunner":
        """Rebuild a runner from a persisted run directory.

        The run configuration (circuit, engines, seeds, budget, policy,
        overrides) comes from the manifest; execution-only knobs
        (retries, timeouts, event callback) may be overridden — they
        cannot change any answer.  The executor *topology* (transport
        and worker count) is part of the manifest too, and a resume
        requesting a different one is rejected: continuing a run under
        a silently different topology is how "it resumed fine on my
        laptop" bugs are born.  Pass ``allow_topology_change=True`` to
        deliberately move a run (results stay bit-identical — topology
        never touches a trajectory — which is exactly why the switch
        must be explicit, not accidental).  Calling :meth:`run` on the
        result continues the interrupted run and produces a
        :class:`PortfolioResult` bit-identical to an uninterrupted run
        of the same configuration.
        """
        state = RunDir(run_dir).load()
        transport = "remote" if listen is not None else "local"
        if not allow_topology_change:
            if transport != state.transport:
                raise RunDirError(
                    f"run was recorded with transport {state.transport!r} "
                    f"but this resume requests {transport!r}; pass "
                    "allow_topology_change=True (--allow-topology-change) "
                    "to deliberately move it"
                )
            if workers is not None and workers != state.workers:
                raise RunDirError(
                    f"run was recorded with workers={state.workers} but "
                    f"this resume requests workers={workers}; pass "
                    "allow_topology_change=True (--allow-topology-change) "
                    "to deliberately change the topology"
                )
        runner = cls(
            state.circuit,
            state.engines,
            starts=state.starts,
            workers=(
                workers
                if workers is not None
                else (0 if listen is not None else state.workers)
            ),
            seeds=state.seeds,
            budget=state.budget,
            restart_policy=state.restart_policy,
            checkpoint_every=state.checkpoint_every,
            overrides=state.overrides,
            on_event=on_event,
            max_retries=max_retries,
            chunk_timeout=chunk_timeout,
            strict=strict,
            max_respawns=max_respawns,
            run_dir=run_dir,
            fault_plan=fault_plan,
            listen=listen,
            lease_timeout=lease_timeout,
            heartbeat_interval=heartbeat_interval,
            on_listen=on_listen,
            trace=trace,
        )
        runner._resume_state = state
        return runner

    def run(self) -> PortfolioResult:
        """Run the portfolio; returns the winner plus the leaderboard."""
        self._failures = []
        self._incident_counts = {}
        if self._trace is not None:
            self._recorder = TraceRecorder(
                self._trace.directory,
                sample_interval=self._trace.sample_interval,
                stream="coordinator",
            )
        if self._resume_state is None:
            walks = self._initial_walks()
            restored: list[tuple[_Walk, str]] = []
            policy_state: dict | None = None
            if self._fault_plan is not None:
                self._fault_plan.validate_chunks(
                    {
                        walk_id: walk_chunk_count(walk.spec, walk.chunk)
                        for walk_id, walk in walks.items()
                    }
                )
            if self._run_dir is not None:
                self._run_state = self._fresh_run_state(walks)
                self._run_dir.initialize(self._run_state)
        else:
            walks, restored, policy_state = self._restore(self._resume_state)
            self._run_state = self._resume_state
            # a deliberately moved run re-records its topology so the
            # *next* resume validates against reality, not history
            self._run_state.transport = (
                "remote" if self._listen is not None else "local"
            )
            self._run_state.workers = self._workers
        self._live_walks = walks
        self._recorder.event(
            "portfolio.config",
            circuit=self._circuit_name,
            engines=list(self._engines),
            starts=self._starts,
            walks=len(walks),
            budget=self._budget,
            policy=self._policy,
            workers=self._workers,
            resumed=self._resume_state is not None,
        )
        self._ref = reference_cost_model(_circuit_for(self._circuit_name))
        supervisor = _ChunkSupervisor(
            self._max_retries, self._fault_plan, self._strict
        )
        for walk in walks.values():
            if walk.checkpoint is not None and walk.chunk:
                supervisor.preset_chunks(
                    walk.spec.walk_id, walk.checkpoint.step // walk.chunk
                )
        if self._listen is not None:
            # imported lazily: remote.py imports this module at load
            from .remote import RemoteExecutor

            executor = RemoteExecutor(
                self._listen,
                supervisor,
                lease_timeout=self._lease_timeout,
                heartbeat_interval=self._heartbeat_interval,
                chunk_timeout=self._chunk_timeout,
                on_incident=self._incident,
                on_listen=self._on_listen,
                recorder=self._recorder,
            )
        elif self._workers > 1:
            executor = _ProcessExecutor(
                self._workers,
                supervisor,
                chunk_timeout=self._chunk_timeout,
                max_respawns=self._max_respawns,
                on_incident=self._incident,
                recorder=self._recorder,
            )
        else:
            executor = _InlineExecutor(supervisor)
        started = time.perf_counter()
        try:
            with self._recorder.span("portfolio.walks", policy=self._policy):
                if self._policy == "rebalance":
                    outcomes = self._run_rebalance(
                        walks, executor, restored, policy_state
                    )
                else:
                    outcomes = self._run_independent(walks, executor, restored)
            if not outcomes:
                # degrading to an empty leaderboard is not degrading —
                # it is failing, and it must say so loudly
                first = self._failures[0] if self._failures else None
                raise RuntimeError(
                    "every walk in the portfolio failed"
                    + (f"; first failure:\n{first.detail}" if first else "")
                )
            with self._recorder.span("portfolio.polish"):
                self._polish(outcomes, executor)
        finally:
            # executor.close() emits its worker-utilization events, so
            # it must run before the recorder is flushed
            executor.close()
            self._recorder.flush()
        elapsed = time.perf_counter() - started

        # Deterministic aggregation: the leaderboard (and therefore the
        # winner) is a pure function of the walk results, totally
        # ordered by (ref_cost, walk_id) so ties cannot flip between
        # runs or scheduling orders.
        leaderboard = sorted(outcomes, key=lambda o: (o.ref_cost, o.spec.walk_id))
        winner = leaderboard[0]
        # per-term telemetry for the row people act on; the ranking
        # itself only ever needed the totals
        winner.ref_breakdown = self._ref.breakdown_placement(winner.placement)
        result = PortfolioResult(
            placement=winner.placement,
            cost=winner.ref_cost,
            winner=winner,
            leaderboard=leaderboard,
            total_steps=sum(o.steps for o in leaderboard),
            elapsed_s=elapsed,
            # remote runs report the distinct workers that actually
            # joined (1 = the coordinator went inline), not the local
            # pool size, which is always 0 under --listen
            workers=max(
                1,
                executor.peer_count
                if self._listen is not None
                else self._workers,
            ),
            failures=list(self._failures),
            retries=self._incident_counts.get("retry", 0),
            respawns=(
                self._incident_counts.get("respawn", 0)
                + self._incident_counts.get("timeout", 0)
            ),
        )
        self._recorder.event(
            "portfolio.result",
            cost=result.cost,
            winner=winner.spec.walk_id,
            walks=len(leaderboard),
            failed=len(result.failures),
            total_steps=result.total_steps,
            retries=result.retries,
            respawns=result.respawns,
            wall={"elapsed_s": round(elapsed, 6), "workers": result.workers},
        )
        self._recorder.close()
        self._recorder = NULL_RECORDER
        if self._run_dir is not None and self._run_state is not None:
            self._run_state.completed = True
            self._run_dir.save_manifest(self._run_state)
        return result

    # -- walk construction ----------------------------------------------------

    def _initial_walks(self) -> dict[int, _Walk]:
        per_walk = self._budget // self._starts if self._budget else None
        walks: dict[int, _Walk] = {}
        for i in range(self._starts):
            engine = self._engines[i % len(self._engines)]
            walks[i] = self._make_walk(i, engine, self._seeds[i], per_walk)
        return walks

    def _make_walk(
        self, walk_id: int, engine: str, seed: int, budget: int | None
    ) -> _Walk:
        overrides = self._overrides
        if budget is not None:
            overrides = compress_overrides(engine, overrides, budget)
        spec = WalkSpec(
            walk_id=walk_id,
            circuit=self._circuit_name,
            engine=engine,
            seed=seed,
            overrides=overrides,
        )
        total = walk_total_steps(spec)
        chunk = self._checkpoint_every or max(1, ceil(total / _DEFAULT_ROUNDS))
        return _Walk(spec=spec, total_steps=total, chunk=chunk)

    # -- persistence ----------------------------------------------------------

    def _fresh_run_state(self, walks: dict[int, _Walk]) -> RunState:
        return RunState(
            circuit=self._circuit_name,
            engines=self._engines,
            starts=self._starts,
            workers=self._workers,
            transport="remote" if self._listen is not None else "local",
            seeds=list(self._seeds),
            budget=self._budget,
            restart_policy=self._policy,
            checkpoint_every=self._checkpoint_every,
            overrides=self._overrides,
            walks={
                walk_id: self._walk_record(walk)
                for walk_id, walk in walks.items()
            },
        )

    @staticmethod
    def _walk_record(walk: _Walk, status: str = "active") -> WalkRecord:
        return WalkRecord(
            walk_id=walk.spec.walk_id,
            engine=walk.spec.engine,
            seed=walk.spec.seed,
            overrides=walk.spec.overrides,
            total_steps=walk.total_steps,
            chunk=walk.chunk,
            status=status,
            elapsed_s=walk.elapsed_s,
            retries=walk.retries,
        )

    def _persist_walk(
        self, walk: _Walk, status: str = "active", save_manifest: bool = True
    ) -> None:
        """Snapshot one walk's checkpoint + manifest record."""
        if self._run_dir is None or self._run_state is None:
            return
        record = self._run_state.walks.get(walk.spec.walk_id)
        if record is None:
            record = self._walk_record(walk)
            self._run_state.walks[walk.spec.walk_id] = record
        if walk.checkpoint is not None:
            record.checkpoint_file = self._run_dir.save_walk_checkpoint(
                walk.spec.walk_id, walk.checkpoint
            )
        record.status = status
        record.elapsed_s = walk.elapsed_s
        record.retries = walk.retries
        if save_manifest:
            self._run_dir.save_manifest(self._run_state)

    def _persist_round(
        self, active: dict[int, _Walk], policy_state: dict
    ) -> None:
        """Rebalance round barrier: snapshot every active walk at once.

        Mid-round snapshots would be inconsistent — the kill/respawn
        decision reads *every* active walk, so resuming with some walks
        a chunk ahead would replay into a different decision.  At the
        barrier the whole set is frozen together.
        """
        if self._run_dir is None or self._run_state is None:
            return
        for walk in active.values():
            self._persist_walk(walk, status="active", save_manifest=False)
        self._run_state.policy_state = policy_state
        self._run_dir.save_manifest(self._run_state)

    def _restore(
        self, state: RunState
    ) -> tuple[dict[int, _Walk], list[tuple[_Walk, str]], dict | None]:
        """Rebuild coordinator state from a persisted manifest."""
        walks: dict[int, _Walk] = {}
        restored: list[tuple[_Walk, str]] = []
        specs: dict[int, WalkSpec] = {}
        for walk_id in sorted(state.walks):
            record = state.walks[walk_id]
            spec = WalkSpec(
                walk_id=walk_id,
                circuit=self._circuit_name,
                engine=record.engine,
                seed=record.seed,
                overrides=record.overrides,
            )
            specs[walk_id] = spec
            walk = _Walk(
                spec=spec, total_steps=record.total_steps, chunk=record.chunk
            )
            walk.elapsed_s = record.elapsed_s
            walk.retries = record.retries
            checkpoint = self._run_dir.load_walk_checkpoint(record)
            if checkpoint is not None:
                verify_walk_checkpoint(spec, checkpoint)
                walk.checkpoint = checkpoint
            if record.status == "active":
                walks[walk_id] = walk
            elif record.status in (FINISHED, KILLED):
                if walk.checkpoint is None:
                    raise RunDirError(
                        f"walk {walk_id} is recorded {record.status} but has "
                        "no checkpoint to rebuild its leaderboard row from"
                    )
                restored.append((walk, record.status))
            # FAILED walks are rebuilt from the failure records below
        for failure in state.failures:
            spec = specs.get(failure.walk_id)
            if spec is None:
                raise RunDirError(
                    f"failure record for walk {failure.walk_id} has no "
                    "matching walk record"
                )
            self._failures.append(
                WalkFailure(
                    spec=spec,
                    reason=failure.reason,
                    detail=failure.detail,
                    attempts=failure.attempts,
                    steps=failure.steps,
                )
            )
        return walks, restored, state.policy_state

    # -- policies -------------------------------------------------------------

    def _run_independent(
        self,
        walks: dict[int, _Walk],
        executor,
        restored: list[tuple[_Walk, str]],
    ) -> list[WalkOutcome]:
        """Every walk runs its full schedule; chunks pipeline freely."""
        outcomes: list[WalkOutcome] = [
            self._outcome(walk, status) for walk, status in restored
        ]
        pending = 0
        for walk_id in sorted(walks):
            walk = walks[walk_id]
            if walk.checkpoint is not None and walk.checkpoint.finished:
                # a resumed manifest can hold a finished-but-still-active
                # walk if the run died between snapshot and status flip
                outcomes.append(self._outcome(walk, FINISHED))
                self._persist_walk(walk, status=FINISHED)
                continue
            executor.dispatch(self._next_task(walk))
            pending += 1
        while pending:
            result = executor.collect()
            if isinstance(result, ChunkFailure):
                self._quarantine(walks[result.walk_id], result)
                pending -= 1
                continue
            walk = walks[result.walk_id]
            self._note_chunk(walk, result)
            self._emit_progress(walk)
            if result.checkpoint.finished:
                outcomes.append(self._outcome(walk, FINISHED))
                self._persist_walk(walk, status=FINISHED)
                pending -= 1
            else:
                self._persist_walk(walk)
                executor.dispatch(self._next_task(walk))
        return outcomes

    def _run_rebalance(
        self,
        walks: dict[int, _Walk],
        executor,
        restored: list[tuple[_Walk, str]],
        policy_state: dict | None,
    ) -> list[WalkOutcome]:
        """Checkpoint rounds: advance all, kill the worst half, respawn.

        Each round is a barrier — every active walk reaches its next
        checkpoint before any decision — so the kill/respawn sequence
        depends only on walk results, never on worker scheduling.  A
        walk quarantined mid-round simply leaves the active set: its
        budget is spent (not pooled), and the ranking that follows sees
        only survivors.
        """
        outcomes: list[WalkOutcome] = [
            self._outcome(walk, status) for walk, status in restored
        ]
        active = dict(walks)
        if policy_state is not None:
            next_walk_id = int(policy_state["next_walk_id"])
            next_seed = int(policy_state["next_seed"])
            engine_cursor = int(policy_state["engine_cursor"])
        else:
            next_walk_id = (max(active) + 1) if active else self._starts
            next_seed = max(self._seeds) + 1
            engine_cursor = self._starts  # continue the round-robin
        while active:
            for walk_id in sorted(active):
                executor.dispatch(self._next_task(active[walk_id]))
            quarantined: list[int] = []
            for _ in range(len(active)):
                result = executor.collect()
                if isinstance(result, ChunkFailure):
                    self._quarantine(active[result.walk_id], result)
                    quarantined.append(result.walk_id)
                    continue
                walk = active[result.walk_id]
                self._note_chunk(walk, result)
                self._emit_progress(walk)
            for walk_id in quarantined:
                del active[walk_id]
            for walk_id in sorted(active):
                if active[walk_id].checkpoint.finished:
                    walk = active.pop(walk_id)
                    outcomes.append(self._outcome(walk, FINISHED))
                    self._persist_walk(walk, status=FINISHED, save_manifest=False)
            if len(active) >= 2:
                # rank by (reference cost of the best state, walk_id) —
                # the engines anneal different objectives, so kill
                # decisions use the shared yardstick; the worst half
                # dies and its unspent budget funds fresh seeds
                ranked = sorted(
                    active.values(),
                    key=lambda w: (self._walk_ref_cost(w), w.spec.walk_id),
                )
                victims = ranked[len(ranked) - len(ranked) // 2 :]
                pooled = 0
                for victim in victims:
                    pooled += victim.total_steps - victim.checkpoint.step
                    outcomes.append(self._outcome(victim, KILLED))
                    self._persist_walk(victim, status=KILLED, save_manifest=False)
                    del active[victim.spec.walk_id]
                    self._emit_progress(victim, status=KILLED)
                to_spawn = len(victims)
                while to_spawn and pooled:
                    engine = self._engines[engine_cursor % len(self._engines)]
                    share = pooled // to_spawn
                    try:
                        fresh = self._make_walk(
                            next_walk_id, engine, next_seed, share
                        )
                    except ValueError:
                        break  # share below one step per epoch: budget exhausted
                    active[next_walk_id] = fresh
                    self._live_walks[next_walk_id] = fresh
                    pooled -= fresh.total_steps
                    next_walk_id += 1
                    next_seed += 1
                    engine_cursor += 1
                    to_spawn -= 1
                    self._emit_progress(fresh, status="spawned")
            self._persist_round(
                active,
                {
                    "next_walk_id": next_walk_id,
                    "next_seed": next_seed,
                    "engine_cursor": engine_cursor,
                },
            )
        return outcomes

    def _polish(self, outcomes: list[WalkOutcome], executor) -> None:
        """Spend the budget's compression slack refining the winner.

        Splitting a budget into equal compressed schedules leaves
        ``budget - sum(walk totals)`` steps on the floor (epoch
        rounding).  When that slack covers at least one short cold
        schedule, it funds a *polish walk*: re-anneal the current
        winner's best state from a low initial temperature — iterated
        local search rather than a fresh start.  Deterministic like
        every other walk (fixed seed offset, fabricated step-0
        checkpoint), and free: the portfolio still never exceeds its
        budget.  A failed polish chunk is reported but never costs the
        already-final winner.
        """
        if self._budget is None or not outcomes:
            return
        # steps a quarantined walk completed before failing are spent
        # budget too — without charging them the polish walk would push
        # total work past the budget on degraded runs
        spent = sum(o.steps for o in outcomes) + sum(f.steps for f in self._failures)
        slack = self._budget - spent
        winner = min(outcomes, key=lambda o: (o.ref_cost, o.spec.walk_id))
        # stay a valid cooling schedule under any override set: the
        # polish start must sit strictly above the walk's t_final
        t_final = build_config(winner.spec.engine, 0, self._overrides).t_final
        polish_t0 = max(_POLISH_T0, 10.0 * t_final)
        overrides = self._overrides + (("t_initial", polish_t0),)
        try:
            overrides = compress_overrides(winner.spec.engine, overrides, slack)
        except ValueError:
            return  # slack below one step per epoch: nothing to spend
        used = {o.spec.walk_id for o in outcomes}
        used.update(f.spec.walk_id for f in self._failures)
        spec = WalkSpec(
            walk_id=max(used) + 1,
            circuit=self._circuit_name,
            engine=winner.spec.engine,
            seed=winner.spec.seed + _POLISH_SEED_OFFSET,
            overrides=overrides,
        )
        total = walk_total_steps(spec)
        stats = AnnealingStats(
            initial_cost=winner.best_cost, best_cost=winner.best_cost
        )
        checkpoint = WalkCheckpoint(
            step=0,
            total_steps=total,
            t_scale=1.0,  # the schedule is already cold: no warmup rescale
            state=winner.best_state,
            current_cost=winner.best_cost,
            best_state=winner.best_state,
            best_cost=winner.best_cost,
            rng_state=random.Random(spec.seed).getstate(),
            stats=stats,
        )
        walk = _Walk(spec=spec, total_steps=total, chunk=total, checkpoint=checkpoint)
        self._live_walks[spec.walk_id] = walk
        executor.dispatch(
            ChunkTask(
                spec=spec, checkpoint=checkpoint, max_steps=None,
                trace=self._trace,
            )
        )
        result = executor.collect()
        if isinstance(result, ChunkFailure):
            # the winner stands; the polish was a free refinement only
            self._quarantine(walk, result)
            return
        self._note_chunk(walk, result)
        self._emit_progress(walk, status="polish")
        outcomes.append(self._outcome(walk, "polish"))

    # -- helpers --------------------------------------------------------------

    def _next_task(self, walk: _Walk) -> ChunkTask:
        return ChunkTask(
            spec=walk.spec, checkpoint=walk.checkpoint, max_steps=walk.chunk,
            trace=self._trace,
        )

    def _note_chunk(self, walk: _Walk, result: ChunkResult) -> None:
        """Fold one collected chunk into the walk's bookkeeping and the
        coordinator trace stream."""
        walk.checkpoint = result.checkpoint
        walk.elapsed_s += result.elapsed_s
        self._recorder.event(
            "portfolio.chunk",
            walk=walk.spec.walk_id,
            step=result.checkpoint.step,
            best=result.checkpoint.best_cost,
            wall={"exec_s": result.elapsed_s},
        )

    def _quarantine(self, walk: _Walk, failure: ChunkFailure) -> None:
        """Record a walk the executor gave up on; the run degrades."""
        steps = walk.checkpoint.step if walk.checkpoint is not None else 0
        record = WalkFailure(
            spec=walk.spec,
            reason=failure.reason,
            detail=failure.detail,
            attempts=failure.attempts,
            steps=steps,
        )
        self._failures.append(record)
        self._incident_counts["quarantine"] = (
            self._incident_counts.get("quarantine", 0) + 1
        )
        self._recorder.count(
            "portfolio.quarantine", walk=walk.spec.walk_id, reason=failure.reason
        )
        self._emit_progress(walk, status=FAILED)
        if self._run_dir is not None and self._run_state is not None:
            self._persist_walk(walk, status=FAILED, save_manifest=False)
            self._run_state.failures.append(
                FailureRecord(
                    walk_id=walk.spec.walk_id,
                    reason=record.reason,
                    detail=record.detail,
                    attempts=record.attempts,
                    steps=record.steps,
                )
            )
            self._run_dir.save_manifest(self._run_state)

    def _incident(self, walk_id: int | None, kind: str, detail: str) -> None:
        """Executor supervision incidents -> counters + progress events."""
        self._incident_counts[kind] = self._incident_counts.get(kind, 0) + 1
        walk = self._live_walks.get(walk_id) if walk_id is not None else None
        if walk is not None and kind == "retry":
            walk.retries += 1
        self._recorder.count(
            "portfolio." + kind, walk=-1 if walk_id is None else walk_id
        )
        if self._on_event is None or walk is None:
            return
        self._emit_progress(walk, status=kind)

    def _walk_ref_cost(self, walk: _Walk) -> float:
        """Reference cost of the walk's best state (memoized: it only
        changes when the walk's best cost does)."""
        checkpoint = walk.checkpoint
        if walk._ref_at != checkpoint.best_cost:
            placer, _ = _placer_engine_for(walk.spec)
            walk.ref_placement = placer.finalize(checkpoint.best_state)
            walk.ref_cost = self._ref.evaluate_placement(walk.ref_placement)
            walk._ref_at = checkpoint.best_cost
        return walk.ref_cost

    def _outcome(self, walk: _Walk, status: str) -> WalkOutcome:
        checkpoint = walk.checkpoint
        self._walk_ref_cost(walk)  # memoized finalize + reference cost
        return WalkOutcome(
            spec=walk.spec,
            best_cost=checkpoint.best_cost,
            ref_cost=walk.ref_cost,
            placement=walk.ref_placement,
            steps=checkpoint.step,
            total_steps=walk.total_steps,
            status=status,
            stats=checkpoint.stats,
            best_state=checkpoint.best_state,
            elapsed_s=walk.elapsed_s,
            retries=walk.retries,
        )

    def _emit_progress(self, walk: _Walk, status: str = "running") -> None:
        if self._on_event is None:
            return
        checkpoint = walk.checkpoint
        self._on_event(
            ProgressEvent(
                walk_id=walk.spec.walk_id,
                engine=walk.spec.engine,
                seed=walk.spec.seed,
                step=checkpoint.step if checkpoint else 0,
                total_steps=walk.total_steps,
                best_cost=checkpoint.best_cost if checkpoint else float("inf"),
                status=status,
            )
        )
