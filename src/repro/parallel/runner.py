"""Multi-start placement portfolio across processes.

:class:`PortfolioRunner` fans one placement problem out over many
independent annealing walks — across engines, across seeds, across
worker processes — and returns the best placement plus a full
leaderboard.  The design constraints, in order:

**Spawn safety.**  Workers never unpickle a live placer.  A walk is a
:class:`~repro.parallel.jobs.WalkSpec` — ``(circuit name, engine name,
seed, config overrides)`` — and each worker rebuilds circuit + placer +
engine from the spec (memoized per process), then drives it through the
checkpoint API of :class:`~repro.anneal.IncrementalAnnealer`.

**Chunked walks.**  A walk executes as a chain of
:class:`~repro.parallel.jobs.ChunkTask`\\ s, each advancing the walk by
``checkpoint_every`` steps and freezing it into a pickled
:class:`~repro.anneal.WalkCheckpoint`.  Chunk completions stream back
over the result queue as progress events; chunk boundaries never change
a trajectory (chunked == monolithic, bit for bit), so the runner can
slice walks for streaming and restart policies without touching the
answer.

**Determinism.**  A walk's trajectory depends only on its spec — never
on which worker ran it or when.  Restart decisions happen at round
barriers and rank walks by ``(best_cost, walk_id)``; the leaderboard is
sorted by the same total order.  Same specs -> same winner, regardless
of worker count or OS scheduling.

**Restart policies.**

* ``independent`` — every start runs its full schedule; classic
  multi-start annealing.
* ``rebalance`` — at every checkpoint round the worst half of the
  active walks is killed and their *unspent* step budget is pooled and
  handed to fresh seeds (with schedules compressed to the new budget),
  so step budget chases the promising region of the portfolio instead
  of being buried with walks that started badly.
"""

from __future__ import annotations

import multiprocessing
import queue
import random
import time
import traceback
from collections import deque
from dataclasses import dataclass
from math import ceil
from typing import Callable, Iterable

from ..anneal import AnnealingStats, IncrementalAnnealer, WalkCheckpoint
from ..circuit import Circuit
from ..workloads import resolve_workload
from .engines import (
    ENGINE_NAMES,
    build_config,
    build_placer,
    compress_overrides,
    reference_cost_model,
    validate_engines,
    walk_total_steps,
)
from .jobs import (
    FINISHED,
    KILLED,
    ChunkResult,
    ChunkTask,
    PortfolioResult,
    ProgressEvent,
    WalkOutcome,
    WalkSpec,
)

RESTART_POLICIES = ("independent", "rebalance")

#: checkpoint rounds per walk when ``checkpoint_every`` is not given
_DEFAULT_ROUNDS = 4

#: initial temperature of the budget-slack polish walk: cold enough to
#: refine rather than re-explore, warm enough to cross small barriers
_POLISH_T0 = 0.05

#: seed offset separating polish draws from every sweep seed
_POLISH_SEED_OFFSET = 100_003


# -- worker side --------------------------------------------------------------
#
# Everything below runs identically in a spawned worker process and in
# the in-process executor (workers <= 1), so parallel and serial runs
# share one execution path and one answer.

#: per-process placer/engine memo: (circuit, engine, overrides) -> pair
_BUILD_CACHE: dict = {}


def _placer_engine_for(spec: WalkSpec):
    """Rebuild (memoized) the placer and incremental engine for a spec.

    The cache key drops the seed: a placer's walk API touches its
    config's seed nowhere (randomness comes from the RNG the walk
    carries), so walks differing only by seed share one rebuild.
    """
    key = (spec.circuit, spec.engine, spec.overrides)
    pair = _BUILD_CACHE.get(key)
    if pair is None:
        circuit = _circuit_for(spec.circuit)
        placer = build_placer(circuit, spec)
        pair = (placer, placer.engine())
        _BUILD_CACHE[key] = pair
    return pair


_CIRCUIT_CACHE: dict[str, Circuit] = {}


def _circuit_for(name: str) -> Circuit:
    circuit = _CIRCUIT_CACHE.get(name)
    if circuit is None:
        circuit = _CIRCUIT_CACHE[name] = resolve_workload(name)
    return circuit


def _execute(task: ChunkTask) -> ChunkResult:
    """Run one chunk of a walk (fresh or resumed) and freeze it again."""
    spec = task.spec
    placer, engine = _placer_engine_for(spec)
    rng = random.Random(spec.seed)
    annealer = IncrementalAnnealer(engine, placer.schedule(), rng)
    if task.checkpoint is None:
        # same draw order as a placer's own run(): initial state first,
        # then warmup — a 1-start portfolio walks the exact run() walk
        engine.reset(placer.initial_state(rng))
        checkpoint = annealer.begin()
        checkpoint = annealer.advance(
            checkpoint, task.max_steps, _engine_synced=True
        )
    else:
        checkpoint = annealer.advance(task.checkpoint, task.max_steps)
    return ChunkResult(walk_id=spec.walk_id, checkpoint=checkpoint)


def _worker_main(task_queue, result_queue) -> None:
    """Worker loop: pull chunk tasks until the ``None`` sentinel."""
    while True:
        task = task_queue.get()
        if task is None:
            return
        try:
            result_queue.put(("ok", _execute(task)))
        except Exception:  # surfaced (with traceback) by the coordinator
            result_queue.put(("error", task.spec.walk_id, traceback.format_exc()))


# -- executors ----------------------------------------------------------------


class _InlineExecutor:
    """Serial executor: dispatch enqueues, collect runs one task.

    FIFO order makes serial runs reproducible step for step; because
    trajectories are scheduling-independent anyway, its results are
    identical to the process executor's.
    """

    def __init__(self) -> None:
        self._queue: deque[ChunkTask] = deque()

    def dispatch(self, task: ChunkTask) -> None:
        self._queue.append(task)

    def collect(self) -> ChunkResult:
        return _execute(self._queue.popleft())

    def close(self) -> None:
        self._queue.clear()


class _ProcessExecutor:
    """Spawn-based worker pool fed over a task queue.

    ``spawn`` (never ``fork``) so workers import the package fresh —
    no inherited locks, no accidentally shared placer state, and the
    same behavior on every platform.
    """

    def __init__(self, workers: int) -> None:
        ctx = multiprocessing.get_context("spawn")
        self._task_queue = ctx.Queue()
        self._result_queue = ctx.Queue()
        self._procs = [
            ctx.Process(
                target=_worker_main,
                args=(self._task_queue, self._result_queue),
                daemon=True,
            )
            for _ in range(workers)
        ]
        for proc in self._procs:
            proc.start()

    def dispatch(self, task: ChunkTask) -> None:
        self._task_queue.put(task)

    def collect(self) -> ChunkResult:
        while True:
            try:
                message = self._result_queue.get(timeout=1.0)
                break
            except queue.Empty:
                # never block on a dead pool (e.g. workers that failed
                # during interpreter bootstrap before reaching the loop)
                if not any(proc.is_alive() for proc in self._procs):
                    raise RuntimeError(
                        "all portfolio workers exited without producing results"
                    ) from None
        if message[0] == "error":
            _, walk_id, tb = message
            raise RuntimeError(f"worker failed on walk {walk_id}:\n{tb}")
        return message[1]

    def close(self) -> None:
        for _ in self._procs:
            self._task_queue.put(None)
        for proc in self._procs:
            proc.join(timeout=10)
            if proc.is_alive():  # pragma: no cover - hung worker
                proc.terminate()
        self._task_queue.close()
        self._result_queue.close()


# -- coordinator --------------------------------------------------------------


@dataclass
class _Walk:
    """Coordinator-side bookkeeping for one walk."""

    spec: WalkSpec
    total_steps: int
    chunk: int
    checkpoint: WalkCheckpoint | None = None
    #: finalized placement + reference cost of the best state, memoized
    #: per best_cost value (kill rounds rank walks every round; only
    #: walks whose best actually changed repack)
    ref_cost: float = float("inf")
    ref_placement: object = None
    _ref_at: float | None = None


class PortfolioRunner:
    """Fan a placement job out over a portfolio of annealing walks.

    Parameters
    ----------
    circuit:
        Workload *name* resolved through
        :func:`repro.workloads.resolve_workload` — a built-in
        (``miller_opamp``), a generated family (``gen:n=500,seed=7``)
        or an on-disk benchmark (``file:bench.blocks``).  A name, not
        an object, so the runner itself is spawn-safe: workers
        re-resolve the string.
    engines:
        Engine names to cycle starts over (default: all four of
        ``bstar`` / ``hbtree`` / ``seqpair`` / ``slicing``).
    starts:
        Number of walks; walk *i* runs ``engines[i % len(engines)]``
        with seed ``seeds[i]``.
    workers:
        ``<= 1`` runs in-process (deterministic serial execution, no
        multiprocessing); ``N > 1`` spawns ``N`` worker processes.
    seeds:
        Explicit seed sweep (defaults to ``base_seed + i``).  Restart
        policies draw fresh seeds after the sweep.
    budget:
        Total annealing steps across the whole portfolio.  When given,
        each start's schedule is compressed to ``budget // starts``
        steps; when ``None`` every start runs its engine's full
        schedule.  (Warmup sampling — 32 proposals per walk, exactly as
        in a single :meth:`run`-style anneal — is outside the budget.)
    restart_policy:
        ``"independent"`` or ``"rebalance"`` (see module docstring).
    checkpoint_every:
        Steps per chunk (progress granularity, and the kill/respawn
        cadence under ``rebalance``).  Default: a quarter of the walk's
        schedule.
    overrides:
        Config overrides applied to every walk (e.g. schedule knobs).
    on_event:
        Callback receiving a :class:`ProgressEvent` after every chunk,
        kill and spawn — the streamed per-worker progress feed.
    """

    def __init__(
        self,
        circuit: str,
        engines: Iterable[str] | None = None,
        *,
        starts: int = 8,
        workers: int = 0,
        base_seed: int = 0,
        seeds: Iterable[int] | None = None,
        budget: int | None = None,
        restart_policy: str = "independent",
        checkpoint_every: int | None = None,
        overrides: tuple[tuple[str, object], ...] = (),
        on_event: Callable[[ProgressEvent], None] | None = None,
    ) -> None:
        if starts < 1:
            raise ValueError("starts must be >= 1")
        if workers < 0:
            raise ValueError("workers must be >= 0")
        if restart_policy not in RESTART_POLICIES:
            raise ValueError(
                f"unknown restart policy {restart_policy!r}; "
                f"try: {', '.join(RESTART_POLICIES)}"
            )
        if budget is not None and budget < starts:
            raise ValueError("budget must allow at least one step per start")
        self._circuit_name = circuit
        # fail fast on unknown names; the coordinator cache keeps the
        # built circuit for run() (sized circuits cost ~1s to rebuild)
        _circuit_for(circuit)
        self._engines = validate_engines(
            tuple(engines) if engines is not None else ENGINE_NAMES
        )
        self._starts = starts
        self._workers = workers
        self._seeds = list(seeds) if seeds is not None else [
            base_seed + i for i in range(starts)
        ]
        if len(self._seeds) < starts:
            raise ValueError(f"need {starts} seeds, got {len(self._seeds)}")
        self._budget = budget
        self._policy = restart_policy
        self._checkpoint_every = checkpoint_every
        self._overrides = tuple(overrides)
        self._on_event = on_event

    # -- public ---------------------------------------------------------------

    def run(self) -> PortfolioResult:
        """Run the portfolio; returns the winner plus the leaderboard."""
        walks = self._initial_walks()
        self._ref = reference_cost_model(_circuit_for(self._circuit_name))
        executor = (
            _ProcessExecutor(self._workers)
            if self._workers > 1
            else _InlineExecutor()
        )
        started = time.perf_counter()
        try:
            if self._policy == "rebalance":
                outcomes = self._run_rebalance(walks, executor)
            else:
                outcomes = self._run_independent(walks, executor)
            self._polish(outcomes, executor)
        finally:
            executor.close()
        elapsed = time.perf_counter() - started

        # Deterministic aggregation: the leaderboard (and therefore the
        # winner) is a pure function of the walk results, totally
        # ordered by (ref_cost, walk_id) so ties cannot flip between
        # runs or scheduling orders.
        leaderboard = sorted(outcomes, key=lambda o: (o.ref_cost, o.spec.walk_id))
        winner = leaderboard[0]
        # per-term telemetry for the row people act on; the ranking
        # itself only ever needed the totals
        winner.ref_breakdown = self._ref.breakdown_placement(winner.placement)
        return PortfolioResult(
            placement=winner.placement,
            cost=winner.ref_cost,
            winner=winner,
            leaderboard=leaderboard,
            total_steps=sum(o.steps for o in leaderboard),
            elapsed_s=elapsed,
            workers=max(1, self._workers),
        )

    # -- walk construction ----------------------------------------------------

    def _initial_walks(self) -> dict[int, _Walk]:
        per_walk = self._budget // self._starts if self._budget else None
        walks: dict[int, _Walk] = {}
        for i in range(self._starts):
            engine = self._engines[i % len(self._engines)]
            walks[i] = self._make_walk(i, engine, self._seeds[i], per_walk)
        return walks

    def _make_walk(
        self, walk_id: int, engine: str, seed: int, budget: int | None
    ) -> _Walk:
        overrides = self._overrides
        if budget is not None:
            overrides = compress_overrides(engine, overrides, budget)
        spec = WalkSpec(
            walk_id=walk_id,
            circuit=self._circuit_name,
            engine=engine,
            seed=seed,
            overrides=overrides,
        )
        total = walk_total_steps(spec)
        chunk = self._checkpoint_every or max(1, ceil(total / _DEFAULT_ROUNDS))
        return _Walk(spec=spec, total_steps=total, chunk=chunk)

    # -- policies -------------------------------------------------------------

    def _run_independent(self, walks: dict[int, _Walk], executor) -> list[WalkOutcome]:
        """Every walk runs its full schedule; chunks pipeline freely."""
        outcomes: list[WalkOutcome] = []
        for walk_id in sorted(walks):
            executor.dispatch(self._next_task(walks[walk_id]))
        pending = len(walks)
        while pending:
            result = executor.collect()
            walk = walks[result.walk_id]
            walk.checkpoint = result.checkpoint
            self._emit_progress(walk)
            if result.checkpoint.finished:
                outcomes.append(self._outcome(walk, FINISHED))
                pending -= 1
            else:
                executor.dispatch(self._next_task(walk))
        return outcomes

    def _run_rebalance(self, walks: dict[int, _Walk], executor) -> list[WalkOutcome]:
        """Checkpoint rounds: advance all, kill the worst half, respawn.

        Each round is a barrier — every active walk reaches its next
        checkpoint before any decision — so the kill/respawn sequence
        depends only on walk results, never on worker scheduling.
        """
        outcomes: list[WalkOutcome] = []
        active = dict(walks)
        next_walk_id = max(active) + 1
        next_seed = max(self._seeds) + 1
        engine_cursor = self._starts  # continue the round-robin
        while active:
            for walk_id in sorted(active):
                executor.dispatch(self._next_task(active[walk_id]))
            for _ in range(len(active)):
                result = executor.collect()
                walk = active[result.walk_id]
                walk.checkpoint = result.checkpoint
                self._emit_progress(walk)
            for walk_id in sorted(active):
                if active[walk_id].checkpoint.finished:
                    outcomes.append(self._outcome(active.pop(walk_id), FINISHED))
            if len(active) < 2:
                continue
            # rank by (reference cost of the best state, walk_id) — the
            # engines anneal different objectives, so kill decisions use
            # the shared yardstick; the worst half dies and its unspent
            # budget funds fresh seeds
            ranked = sorted(
                active.values(),
                key=lambda w: (self._walk_ref_cost(w), w.spec.walk_id),
            )
            victims = ranked[len(ranked) - len(ranked) // 2 :]
            pooled = 0
            for victim in victims:
                pooled += victim.total_steps - victim.checkpoint.step
                outcomes.append(self._outcome(victim, KILLED))
                del active[victim.spec.walk_id]
                self._emit_progress(victim, status=KILLED)
            to_spawn = len(victims)
            while to_spawn and pooled:
                engine = self._engines[engine_cursor % len(self._engines)]
                share = pooled // to_spawn
                try:
                    fresh = self._make_walk(next_walk_id, engine, next_seed, share)
                except ValueError:
                    break  # share below one step per epoch: budget exhausted
                active[next_walk_id] = fresh
                pooled -= fresh.total_steps
                next_walk_id += 1
                next_seed += 1
                engine_cursor += 1
                to_spawn -= 1
                self._emit_progress(fresh, status="spawned")
        return outcomes

    def _polish(self, outcomes: list[WalkOutcome], executor) -> None:
        """Spend the budget's compression slack refining the winner.

        Splitting a budget into equal compressed schedules leaves
        ``budget - sum(walk totals)`` steps on the floor (epoch
        rounding).  When that slack covers at least one short cold
        schedule, it funds a *polish walk*: re-anneal the current
        winner's best state from a low initial temperature — iterated
        local search rather than a fresh start.  Deterministic like
        every other walk (fixed seed offset, fabricated step-0
        checkpoint), and free: the portfolio still never exceeds its
        budget.
        """
        if self._budget is None or not outcomes:
            return
        slack = self._budget - sum(o.steps for o in outcomes)
        winner = min(outcomes, key=lambda o: (o.ref_cost, o.spec.walk_id))
        # stay a valid cooling schedule under any override set: the
        # polish start must sit strictly above the walk's t_final
        t_final = build_config(winner.spec.engine, 0, self._overrides).t_final
        polish_t0 = max(_POLISH_T0, 10.0 * t_final)
        overrides = self._overrides + (("t_initial", polish_t0),)
        try:
            overrides = compress_overrides(winner.spec.engine, overrides, slack)
        except ValueError:
            return  # slack below one step per epoch: nothing to spend
        spec = WalkSpec(
            walk_id=max(o.spec.walk_id for o in outcomes) + 1,
            circuit=self._circuit_name,
            engine=winner.spec.engine,
            seed=winner.spec.seed + _POLISH_SEED_OFFSET,
            overrides=overrides,
        )
        total = walk_total_steps(spec)
        stats = AnnealingStats(
            initial_cost=winner.best_cost, best_cost=winner.best_cost
        )
        checkpoint = WalkCheckpoint(
            step=0,
            total_steps=total,
            t_scale=1.0,  # the schedule is already cold: no warmup rescale
            state=winner.best_state,
            current_cost=winner.best_cost,
            best_state=winner.best_state,
            best_cost=winner.best_cost,
            rng_state=random.Random(spec.seed).getstate(),
            stats=stats,
        )
        walk = _Walk(spec=spec, total_steps=total, chunk=total, checkpoint=checkpoint)
        executor.dispatch(ChunkTask(spec=spec, checkpoint=checkpoint, max_steps=None))
        walk.checkpoint = executor.collect().checkpoint
        self._emit_progress(walk, status="polish")
        outcomes.append(self._outcome(walk, "polish"))

    # -- helpers --------------------------------------------------------------

    def _next_task(self, walk: _Walk) -> ChunkTask:
        return ChunkTask(
            spec=walk.spec, checkpoint=walk.checkpoint, max_steps=walk.chunk
        )

    def _walk_ref_cost(self, walk: _Walk) -> float:
        """Reference cost of the walk's best state (memoized: it only
        changes when the walk's best cost does)."""
        checkpoint = walk.checkpoint
        if walk._ref_at != checkpoint.best_cost:
            placer, _ = _placer_engine_for(walk.spec)
            walk.ref_placement = placer.finalize(checkpoint.best_state)
            walk.ref_cost = self._ref.evaluate_placement(walk.ref_placement)
            walk._ref_at = checkpoint.best_cost
        return walk.ref_cost

    def _outcome(self, walk: _Walk, status: str) -> WalkOutcome:
        checkpoint = walk.checkpoint
        self._walk_ref_cost(walk)  # memoized finalize + reference cost
        return WalkOutcome(
            spec=walk.spec,
            best_cost=checkpoint.best_cost,
            ref_cost=walk.ref_cost,
            placement=walk.ref_placement,
            steps=checkpoint.step,
            total_steps=walk.total_steps,
            status=status,
            stats=checkpoint.stats,
            best_state=checkpoint.best_state,
        )

    def _emit_progress(self, walk: _Walk, status: str = "running") -> None:
        if self._on_event is None:
            return
        checkpoint = walk.checkpoint
        self._on_event(
            ProgressEvent(
                walk_id=walk.spec.walk_id,
                engine=walk.spec.engine,
                seed=walk.spec.seed,
                step=checkpoint.step if checkpoint else 0,
                total_steps=walk.total_steps,
                best_cost=checkpoint.best_cost if checkpoint else float("inf"),
                status=status,
            )
        )
