"""repro — analog layout synthesis via topological approaches.

Reproduction of Graeb et al., *Analog Layout Synthesis — Recent Advances
in Topological Approaches*, DATE 2009.  The package provides:

* :mod:`repro.geometry` — rectangles, modules, placements, nets;
* :mod:`repro.circuit` — netlists, layout constraints, circuit hierarchy
  and the benchmark circuit library;
* :mod:`repro.seqpair` — sequence-pair placement with symmetric-feasible
  codes (paper section II);
* :mod:`repro.bstar` — B*-tree, ASF-B*-tree and hierarchical B*-tree
  placement (section III);
* :mod:`repro.shapes` — shape functions, enhanced shape functions and
  deterministic hierarchical placement (section IV);
* :mod:`repro.sizing` — layout-aware sizing with layout templates and
  in-loop parasitic extraction (section V);
* :mod:`repro.anneal` — the shared simulated-annealing engine;
* :mod:`repro.cost` — the unified cost subsystem: one declarative,
  delta-capable objective shared by every placer, the portfolio's
  reference ranking and the CLI;
* :mod:`repro.perf` — the flat-coordinate evaluation kernel the
  annealing hot loops run on (bit-identical to the object tier);
* :mod:`repro.analysis` — search-space combinatorics and rendering.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
