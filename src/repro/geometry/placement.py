"""Placements: modules assigned to concrete rectangles.

A :class:`Placement` is the common output format of every placer in this
library (sequence-pair, B*-tree, hierarchical, deterministic).  It maps
module names to :class:`PlacedModule` records and offers the quality
metrics used throughout the paper: bounding-box area, dead space, the
Table-I *area usage* ratio, and constraint-compliance checks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

from .module import Module, ModuleSet
from .orientation import Orientation
from .rect import Rect, any_overlap


@dataclass(frozen=True, slots=True)
class PlacedModule:
    """A module fixed at a location, variant and orientation."""

    module: Module
    rect: Rect
    variant: int = 0
    orientation: Orientation = Orientation.R0

    def __post_init__(self) -> None:
        w, h = self.module.footprint(self.variant, self.orientation)
        if abs(w - self.rect.width) > 1e-6 or abs(h - self.rect.height) > 1e-6:
            raise ValueError(
                f"rect {self.rect.width:g}x{self.rect.height:g} does not match "
                f"module {self.module.name!r} footprint {w:g}x{h:g}"
            )

    @property
    def name(self) -> str:
        return self.module.name

    def translated(self, dx: float, dy: float) -> "PlacedModule":
        return PlacedModule(self.module, self.rect.translated(dx, dy), self.variant, self.orientation)

    def mirrored_x(self, axis: float) -> "PlacedModule":
        """Mirror about the vertical line ``x = axis`` (footprint unchanged)."""
        return PlacedModule(
            self.module,
            self.rect.mirrored_x(axis),
            self.variant,
            self.orientation.mirrored_y(),
        )


@dataclass(frozen=True)
class Placement:
    """An immutable placement of a set of modules."""

    placed: tuple[PlacedModule, ...]
    _by_name: dict[str, PlacedModule] = field(compare=False, hash=False, default_factory=dict)
    _bbox: "Rect | None" = field(compare=False, hash=False, default=None, repr=False)

    def __post_init__(self) -> None:
        by_name = {p.name: p for p in self.placed}
        if len(by_name) != len(self.placed):
            raise ValueError("duplicate modules in placement")
        object.__setattr__(self, "_by_name", by_name)

    # -- constructors ------------------------------------------------------

    @classmethod
    def of(cls, placed: Iterable[PlacedModule]) -> "Placement":
        return cls(tuple(placed))

    @classmethod
    def empty(cls) -> "Placement":
        return cls(())

    # -- container protocol --------------------------------------------------

    def __len__(self) -> int:
        return len(self.placed)

    def __iter__(self) -> Iterator[PlacedModule]:
        return iter(self.placed)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __getitem__(self, name: str) -> PlacedModule:
        return self._by_name[name]

    def rects(self) -> list[Rect]:
        return [p.rect for p in self.placed]

    def positions(self) -> Mapping[str, Rect]:
        """Read-only name → rect view."""
        return {p.name: p.rect for p in self.placed}

    # -- metrics -------------------------------------------------------------

    def bounding_box(self) -> Rect:
        """Bounding rectangle of all placed modules (cached lazily —
        the placement is immutable, so one scan serves every later
        ``area``/``width``/``height`` access)."""
        bb = self._bbox
        if bb is None:
            if not self.placed:
                bb = Rect(0.0, 0.0, 0.0, 0.0)
            else:
                bb = Rect.bounding(p.rect for p in self.placed)
            object.__setattr__(self, "_bbox", bb)
        return bb

    @property
    def area(self) -> float:
        """Area of the bounding rectangle."""
        return self.bounding_box().area

    @property
    def width(self) -> float:
        return self.bounding_box().width

    @property
    def height(self) -> float:
        return self.bounding_box().height

    def module_area(self) -> float:
        """Sum of placed module footprints."""
        return sum(p.rect.area for p in self.placed)

    def area_usage(self) -> float:
        """Table-I metric: bounding-rectangle area / total module area.

        1.0 means a perfectly dense packing; the paper reports values such
        as 111.74% for this ratio.
        """
        module_area = self.module_area()
        if module_area == 0:
            return 1.0
        return self.area / module_area

    def dead_space(self) -> float:
        """Bounding-box area not covered by modules."""
        return self.area - self.module_area()

    # -- validity ------------------------------------------------------------

    def is_overlap_free(self, *, tol: float = 1e-9) -> bool:
        """True when no two modules overlap by more than ``tol``."""
        return not any_overlap(self.rects(), tol=tol)

    def overlapping_pairs(self, *, tol: float = 1e-9) -> list[tuple[str, str]]:
        """All pairs of module names whose rectangles overlap (O(n^2))."""
        out = []
        for i, a in enumerate(self.placed):
            for b in self.placed[i + 1:]:
                inter = a.rect.intersection(b.rect)
                if inter is not None and inter.width > tol and inter.height > tol:
                    out.append((a.name, b.name))
        return out

    # -- transforms ------------------------------------------------------------

    def translated(self, dx: float, dy: float) -> "Placement":
        return Placement.of(p.translated(dx, dy) for p in self.placed)

    def normalized(self) -> "Placement":
        """Translate so the bounding box has its lower-left corner at (0, 0)."""
        if not self.placed:
            return self
        bb = self.bounding_box()
        return self.translated(-bb.x0, -bb.y0)

    def mirrored_x(self, axis: float) -> "Placement":
        return Placement.of(p.mirrored_x(axis) for p in self.placed)

    def merged_with(self, other: "Placement") -> "Placement":
        """Union of two placements over disjoint module sets."""
        return Placement(self.placed + other.placed)

    def subset(self, names: Iterable[str]) -> "Placement":
        """Placement restricted to the given module names."""
        wanted = set(names)
        return Placement.of(p for p in self.placed if p.name in wanted)

    def restricted_to_modules(self, modules: ModuleSet) -> "Placement":
        return self.subset(modules.names())
