"""Placeable modules.

A *module* is the atomic unit of placement: a device, a device stack, or a
previously-placed sub-block.  Hard modules have a fixed footprint (up to
orientation); soft modules expose a discrete set of shape variants, as
produced e.g. by different folding factors of a MOS transistor or by the
shape function of a sub-block.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .orientation import Orientation, oriented_size


@dataclass(frozen=True, slots=True)
class ShapeVariant:
    """One realizable footprint of a module.

    ``tag`` carries implementation information (e.g. the folding factor
    that produced this variant) so downstream consumers — notably the
    layout-aware sizing templates — can recover how to draw the module.
    """

    width: float
    height: float

    tag: str = ""

    def __post_init__(self) -> None:
        # `not (x > 0)` also catches NaN, which `x <= 0` would let through
        if not (self.width > 0 and self.height > 0):
            raise ValueError(f"non-positive shape variant {self.width}x{self.height}")

    @property
    def area(self) -> float:
        return self.width * self.height

    def oriented(self, orientation: Orientation) -> tuple[float, float]:
        """Footprint (w, h) of this variant under ``orientation``."""
        return oriented_size(self.width, self.height, orientation)


@dataclass(frozen=True, slots=True)
class Module:
    """A placeable block with one or more shape variants.

    Parameters
    ----------
    name:
        Unique identifier within a placement problem.
    variants:
        Non-empty tuple of realizable footprints.  A hard module has
        exactly one.
    rotatable:
        Whether the placer may apply width/height-swapping orientations.
        Analog devices whose matching depends on orientation (e.g. members
        of a common-centroid group) are typically not rotatable.
    """

    name: str
    variants: tuple[ShapeVariant, ...]
    rotatable: bool = True

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("module needs a non-empty name")
        if not self.variants:
            raise ValueError(f"module {self.name!r} needs at least one shape variant")

    # -- constructors ------------------------------------------------------

    @classmethod
    def hard(cls, name: str, width: float, height: float, *, rotatable: bool = True) -> "Module":
        """A module with a single fixed footprint."""
        return cls(name, (ShapeVariant(width, height),), rotatable)

    @classmethod
    def soft(
        cls,
        name: str,
        area: float,
        aspect_ratios: tuple[float, ...] = (0.5, 1.0, 2.0),
        *,
        rotatable: bool = True,
    ) -> "Module":
        """A module of fixed area realizable at several aspect ratios.

        ``aspect_ratios`` are height/width ratios; each yields one variant.
        """
        if area <= 0:
            raise ValueError("soft module needs positive area")
        variants = []
        for ar in aspect_ratios:
            if ar <= 0:
                raise ValueError(f"non-positive aspect ratio {ar}")
            width = (area / ar) ** 0.5
            variants.append(ShapeVariant(width, width * ar, tag=f"ar={ar:g}"))
        return cls(name, tuple(variants), rotatable)

    # -- queries -----------------------------------------------------------

    @property
    def is_hard(self) -> bool:
        return len(self.variants) == 1

    @property
    def width(self) -> float:
        """Width of the first (default) variant."""
        return self.variants[0].width

    @property
    def height(self) -> float:
        """Height of the first (default) variant."""
        return self.variants[0].height

    @property
    def area(self) -> float:
        """Area of the first (default) variant."""
        return self.variants[0].area

    def min_area(self) -> float:
        """Smallest variant area (for lower-bound computations)."""
        return min(v.area for v in self.variants)

    def footprint(self, variant: int = 0, orientation: Orientation = Orientation.R0) -> tuple[float, float]:
        """Footprint (w, h) of variant ``variant`` under ``orientation``."""
        return self.variants[variant].oriented(orientation)


@dataclass(frozen=True, slots=True)
class ModuleSet:
    """An ordered, name-indexed collection of modules."""

    modules: tuple[Module, ...]
    _index: dict[str, int] = field(compare=False, hash=False, default_factory=dict)

    def __post_init__(self) -> None:
        index = {m.name: i for i, m in enumerate(self.modules)}
        if len(index) != len(self.modules):
            raise ValueError("duplicate module names")
        # frozen dataclass: populate the cached index via object.__setattr__
        object.__setattr__(self, "_index", index)

    @classmethod
    def of(cls, modules: list[Module] | tuple[Module, ...]) -> "ModuleSet":
        return cls(tuple(modules))

    def __len__(self) -> int:
        return len(self.modules)

    def __iter__(self):
        return iter(self.modules)

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def __getitem__(self, name: str) -> Module:
        return self.modules[self._index[name]]

    def names(self) -> tuple[str, ...]:
        return tuple(m.name for m in self.modules)

    def total_module_area(self) -> float:
        """Sum of default-variant areas — the denominator of Table I's
        *area usage* metric."""
        return sum(m.area for m in self.modules)
