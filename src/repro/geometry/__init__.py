"""Geometric substrate: rectangles, modules, placements and nets."""

from .module import Module, ModuleSet, ShapeVariant
from .net import Net, clique_nets_from_pairs, total_hpwl
from .orientation import (
    ALL_ORIENTATIONS,
    PACKING_ORIENTATIONS,
    Orientation,
    oriented_size,
)
from .outline import WellReport, union_area, union_perimeter, well_report
from .placement import PlacedModule, Placement
from .rect import Point, Rect, any_overlap, total_area

__all__ = [
    "ALL_ORIENTATIONS",
    "PACKING_ORIENTATIONS",
    "Module",
    "ModuleSet",
    "Net",
    "Orientation",
    "PlacedModule",
    "Placement",
    "Point",
    "Rect",
    "ShapeVariant",
    "WellReport",
    "any_overlap",
    "clique_nets_from_pairs",
    "oriented_size",
    "total_area",
    "total_hpwl",
    "union_area",
    "union_perimeter",
    "well_report",
]
