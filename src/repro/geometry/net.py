"""Nets and wirelength estimation.

Analog placers optimize a weighted combination of area and estimated
wirelength.  We use the standard half-perimeter wirelength (HPWL) over
module centers, the same estimator used by the annealing placers the
paper surveys (ILAC, KOAN/ANAGRAM II, PUPPY-A, LAYLA).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from .placement import Placement


@dataclass(frozen=True, slots=True)
class Net:
    """A named net connecting two or more modules.

    ``weight`` allows critical nets (e.g. the differential signal path)
    to count more in the wirelength objective.
    """

    name: str
    pins: tuple[str, ...]
    weight: float = 1.0

    def __post_init__(self) -> None:
        if len(self.pins) < 2:
            raise ValueError(f"net {self.name!r} needs at least two pins")
        if self.weight < 0:
            raise ValueError(f"net {self.name!r} has negative weight")

    def hpwl(self, placement: Placement) -> float:
        """Half-perimeter wirelength over the pins placed in ``placement``.

        Pins on modules absent from the placement are ignored; a net with
        fewer than two placed pins contributes zero.
        """
        xs: list[float] = []
        ys: list[float] = []
        for pin in self.pins:
            if pin in placement:
                c = placement[pin].rect.center
                xs.append(c.x)
                ys.append(c.y)
        if len(xs) < 2:
            return 0.0
        return (max(xs) - min(xs)) + (max(ys) - min(ys))


def total_hpwl(nets: Iterable[Net], placement: Placement) -> float:
    """Weighted sum of HPWL over all nets."""
    return sum(net.weight * net.hpwl(placement) for net in nets)


def clique_nets_from_pairs(pairs: Iterable[tuple[str, str]], *, prefix: str = "n") -> list[Net]:
    """Build two-pin nets from module-name pairs (test/benchmark helper)."""
    return [Net(f"{prefix}{i}", (a, b)) for i, (a, b) in enumerate(pairs)]
