"""Module orientations (the eight symmetries of the rectangle).

Analog placement only needs the subgroup that matters for packing —
whether width and height are swapped — plus mirror information used when
building symmetric placements.  We model the full dihedral group D4 so
layout templates and symmetry islands can express mirrored devices
exactly.
"""

from __future__ import annotations

from enum import Enum


class Orientation(Enum):
    """The eight axis-aligned orientations of a rectangle.

    Names follow the usual LEF/DEF convention:

    * ``R0``/``R90``/``R180``/``R270`` — counter-clockwise rotations;
    * ``MX`` — mirrored about the x axis, ``MY`` — about the y axis;
    * ``MX90``/``MY90`` — mirror then rotate by 90 degrees.
    """

    R0 = "R0"
    R90 = "R90"
    R180 = "R180"
    R270 = "R270"
    MX = "MX"
    MY = "MY"
    MX90 = "MX90"
    MY90 = "MY90"

    @property
    def swaps_wh(self) -> bool:
        """True if this orientation exchanges width and height."""
        return self in _SWAPPING

    @property
    def is_mirrored(self) -> bool:
        """True for the four reflected (improper) orientations."""
        return self in _MIRRORED

    def rotated_ccw(self) -> "Orientation":
        """Compose with a counter-clockwise quarter turn."""
        return _ROTATE_CCW[self]

    def mirrored_y(self) -> "Orientation":
        """Compose with a mirror about the y (vertical) axis."""
        return _MIRROR_Y[self]

    def mirrored_x(self) -> "Orientation":
        """Compose with a mirror about the x (horizontal) axis."""
        return _MIRROR_X[self]


_SWAPPING = {Orientation.R90, Orientation.R270, Orientation.MX90, Orientation.MY90}
_MIRRORED = {Orientation.MX, Orientation.MY, Orientation.MX90, Orientation.MY90}

_ROTATE_CCW = {
    Orientation.R0: Orientation.R90,
    Orientation.R90: Orientation.R180,
    Orientation.R180: Orientation.R270,
    Orientation.R270: Orientation.R0,
    Orientation.MX: Orientation.MX90,
    Orientation.MX90: Orientation.MY,
    Orientation.MY: Orientation.MY90,
    Orientation.MY90: Orientation.MX,
}

_MIRROR_Y = {
    Orientation.R0: Orientation.MY,
    Orientation.MY: Orientation.R0,
    Orientation.R90: Orientation.MY90,
    Orientation.MY90: Orientation.R90,
    Orientation.R180: Orientation.MX,
    Orientation.MX: Orientation.R180,
    Orientation.R270: Orientation.MX90,
    Orientation.MX90: Orientation.R270,
}

_MIRROR_X = {
    Orientation.R0: Orientation.MX,
    Orientation.MX: Orientation.R0,
    Orientation.R90: Orientation.MX90,
    Orientation.MX90: Orientation.R90,
    Orientation.R180: Orientation.MY,
    Orientation.MY: Orientation.R180,
    Orientation.R270: Orientation.MY90,
    Orientation.MY90: Orientation.R270,
}

#: Orientations that only matter for packing (width/height swap or not).
PACKING_ORIENTATIONS = (Orientation.R0, Orientation.R90)

#: The full dihedral group, for template generation and symmetry islands.
ALL_ORIENTATIONS = tuple(Orientation)


def oriented_size(width: float, height: float, orientation: Orientation) -> tuple[float, float]:
    """Size of a ``width x height`` box under ``orientation``."""
    if orientation.swaps_wh:
        return height, width
    return width, height
