"""Rectilinear union geometry: areas, perimeters, wells and guard rings.

Section III (Fig. 3c): modules under a proximity constraint "share a
connected substrate/well region or [are] surrounded by a common guard
ring to reduce the layout area"; the shared outline "need not be
rectangular".  These helpers compute exact union areas/perimeters of
axis-aligned rectangle sets via coordinate compression, and from them
the well / guard-ring areas that quantify the sharing benefit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from .rect import Rect


def _compress(rects: Sequence[Rect]) -> tuple[list[float], list[float], list[list[bool]]]:
    """Coordinate-compressed coverage grid of a rectangle union."""
    xs = sorted({v for r in rects for v in (r.x0, r.x1)})
    ys = sorted({v for r in rects for v in (r.y0, r.y1)})
    covered = [[False] * (len(ys) - 1) for _ in range(len(xs) - 1)]
    for r in rects:
        if r.width == 0 or r.height == 0:
            continue
        i0, i1 = xs.index(r.x0), xs.index(r.x1)
        j0, j1 = ys.index(r.y0), ys.index(r.y1)
        for i in range(i0, i1):
            for j in range(j0, j1):
                covered[i][j] = True
    return xs, ys, covered


def union_area(rects: Iterable[Rect]) -> float:
    """Exact area of the union of axis-aligned rectangles."""
    rects = [r for r in rects if r.width > 0 and r.height > 0]
    if not rects:
        return 0.0
    xs, ys, covered = _compress(rects)
    total = 0.0
    for i in range(len(xs) - 1):
        dx = xs[i + 1] - xs[i]
        for j in range(len(ys) - 1):
            if covered[i][j]:
                total += dx * (ys[j + 1] - ys[j])
    return total


def union_perimeter(rects: Iterable[Rect]) -> float:
    """Exact perimeter of the union (outer boundary + hole boundaries)."""
    rects = [r for r in rects if r.width > 0 and r.height > 0]
    if not rects:
        return 0.0
    xs, ys, covered = _compress(rects)
    nx, ny = len(xs) - 1, len(ys) - 1

    def cell(i: int, j: int) -> bool:
        if 0 <= i < nx and 0 <= j < ny:
            return covered[i][j]
        return False

    perimeter = 0.0
    for i in range(nx):
        dx = xs[i + 1] - xs[i]
        for j in range(ny):
            if not covered[i][j]:
                continue
            dy = ys[j + 1] - ys[j]
            if not cell(i - 1, j):
                perimeter += dy
            if not cell(i + 1, j):
                perimeter += dy
            if not cell(i, j - 1):
                perimeter += dx
            if not cell(i, j + 1):
                perimeter += dx
    return perimeter


@dataclass(frozen=True, slots=True)
class WellReport:
    """Well/guard-ring accounting for a module cluster."""

    shared_well_area: float      # one well around the whole cluster
    separate_well_area: float    # sum of one standalone well per module
    guard_ring_area: float       # ring of `ring_width` around the shared well
    ring_width: float
    well_margin: float

    @property
    def sharing_saving(self) -> float:
        """Area saved by sharing the well (>= 0 for connected clusters)."""
        return self.separate_well_area - self.shared_well_area


def well_report(
    rects: Sequence[Rect], *, well_margin: float = 1.0, ring_width: float = 1.0
) -> WellReport:
    """Quantify the Fig.-3c sharing benefit for a cluster of modules.

    A well must surround each device by ``well_margin``.  Sharing one
    well region (the union of the inflated footprints — Minkowski sums
    distribute over unions, so this is exact) beats disjoint per-device
    wells whenever devices sit close together; the common guard ring is
    the extra ``ring_width`` band around the shared well.
    """
    if well_margin < 0 or ring_width < 0:
        raise ValueError("margins must be non-negative")
    inflated = [r.inflated(well_margin) for r in rects]
    shared = union_area(inflated)
    separate = sum(r.area for r in inflated)
    ring = union_area([r.inflated(ring_width) for r in inflated]) - shared
    return WellReport(
        shared_well_area=shared,
        separate_well_area=separate,
        guard_ring_area=ring,
        ring_width=ring_width,
        well_margin=well_margin,
    )
