"""Axis-aligned rectangles and points.

The whole library works on axis-aligned geometry in an abstract unit
(conventionally micrometres).  ``Rect`` is the single geometric primitive
shared by placements, contours, templates and parasitic extraction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator


@dataclass(frozen=True, slots=True)
class Point:
    """A point in the layout plane."""

    x: float
    y: float

    def translated(self, dx: float, dy: float) -> "Point":
        """Return this point moved by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def mirrored_x(self, axis: float) -> "Point":
        """Return this point mirrored about the vertical line ``x = axis``."""
        return Point(2.0 * axis - self.x, self.y)

    def mirrored_y(self, axis: float) -> "Point":
        """Return this point mirrored about the horizontal line ``y = axis``."""
        return Point(self.x, 2.0 * axis - self.y)

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to ``other``."""
        return math.hypot(self.x - other.x, self.y - other.y)


@dataclass(frozen=True, slots=True)
class Rect:
    """A closed axis-aligned rectangle ``[x0, x1] x [y0, y1]``.

    Degenerate (zero width/height) rectangles are permitted; negative
    extents are not.
    """

    x0: float
    y0: float
    x1: float
    y1: float

    def __post_init__(self) -> None:
        if self.x1 < self.x0 or self.y1 < self.y0:
            raise ValueError(
                f"malformed Rect: ({self.x0}, {self.y0}, {self.x1}, {self.y1})"
            )

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_size(cls, x: float, y: float, width: float, height: float) -> "Rect":
        """Build a rectangle from its lower-left corner and size."""
        return cls(x, y, x + width, y + height)

    @classmethod
    def bounding(cls, rects: Iterable["Rect"]) -> "Rect":
        """Bounding box of a non-empty iterable of rectangles."""
        it = iter(rects)
        try:
            first = next(it)
        except StopIteration:
            raise ValueError("Rect.bounding() of an empty iterable") from None
        x0, y0, x1, y1 = first.x0, first.y0, first.x1, first.y1
        for r in it:
            x0 = min(x0, r.x0)
            y0 = min(y0, r.y0)
            x1 = max(x1, r.x1)
            y1 = max(y1, r.y1)
        return cls(x0, y0, x1, y1)

    # -- basic properties --------------------------------------------------

    @property
    def width(self) -> float:
        return self.x1 - self.x0

    @property
    def height(self) -> float:
        return self.y1 - self.y0

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> Point:
        return Point((self.x0 + self.x1) / 2.0, (self.y0 + self.y1) / 2.0)

    @property
    def aspect_ratio(self) -> float:
        """Height divided by width (``inf`` for zero width)."""
        if self.width == 0:
            return math.inf
        return self.height / self.width

    # -- predicates --------------------------------------------------------

    def overlaps(self, other: "Rect", *, strict: bool = True) -> bool:
        """True if the rectangles share interior area.

        With ``strict=False`` touching edges also count as an overlap.
        """
        if strict:
            return (
                self.x0 < other.x1
                and other.x0 < self.x1
                and self.y0 < other.y1
                and other.y0 < self.y1
            )
        return (
            self.x0 <= other.x1
            and other.x0 <= self.x1
            and self.y0 <= other.y1
            and other.y0 <= self.y1
        )

    def contains_point(self, p: Point) -> bool:
        """True if ``p`` lies inside or on the boundary."""
        return self.x0 <= p.x <= self.x1 and self.y0 <= p.y <= self.y1

    def contains_rect(self, other: "Rect") -> bool:
        """True if ``other`` lies fully inside (or on the boundary of) self."""
        return (
            self.x0 <= other.x0
            and self.y0 <= other.y0
            and other.x1 <= self.x1
            and other.y1 <= self.y1
        )

    # -- transforms --------------------------------------------------------

    def translated(self, dx: float, dy: float) -> "Rect":
        """Return this rectangle moved by ``(dx, dy)``."""
        return Rect(self.x0 + dx, self.y0 + dy, self.x1 + dx, self.y1 + dy)

    def moved_to(self, x: float, y: float) -> "Rect":
        """Return this rectangle with its lower-left corner at ``(x, y)``."""
        return Rect.from_size(x, y, self.width, self.height)

    def mirrored_x(self, axis: float) -> "Rect":
        """Mirror about the vertical line ``x = axis``."""
        return Rect(2.0 * axis - self.x1, self.y0, 2.0 * axis - self.x0, self.y1)

    def mirrored_y(self, axis: float) -> "Rect":
        """Mirror about the horizontal line ``y = axis``."""
        return Rect(self.x0, 2.0 * axis - self.y1, self.x1, 2.0 * axis - self.y0)

    def intersection(self, other: "Rect") -> "Rect | None":
        """Intersection rectangle, or ``None`` when disjoint."""
        x0 = max(self.x0, other.x0)
        y0 = max(self.y0, other.y0)
        x1 = min(self.x1, other.x1)
        y1 = min(self.y1, other.y1)
        if x1 < x0 or y1 < y0:
            return None
        return Rect(x0, y0, x1, y1)

    def union_bbox(self, other: "Rect") -> "Rect":
        """Bounding box of self and ``other``."""
        return Rect(
            min(self.x0, other.x0),
            min(self.y0, other.y0),
            max(self.x1, other.x1),
            max(self.y1, other.y1),
        )

    def inflated(self, margin: float) -> "Rect":
        """Grow (or shrink, for negative margin) by ``margin`` on all sides."""
        return Rect(
            self.x0 - margin, self.y0 - margin, self.x1 + margin, self.y1 + margin
        )

    def corners(self) -> Iterator[Point]:
        """Iterate the four corners counter-clockwise from lower-left."""
        yield Point(self.x0, self.y0)
        yield Point(self.x1, self.y0)
        yield Point(self.x1, self.y1)
        yield Point(self.x0, self.y1)


def total_area(rects: Iterable[Rect]) -> float:
    """Sum of individual rectangle areas (overlap counted twice)."""
    return sum(r.area for r in rects)


def any_overlap(rects: list[Rect], *, tol: float = 1e-9) -> bool:
    """True if any two rectangles in the list overlap by more than ``tol``.

    Uses a sweep over x-sorted rectangles; adequate for the list sizes
    handled by placement checkers (hundreds of modules).
    """
    order = sorted(range(len(rects)), key=lambda i: rects[i].x0)
    active: list[int] = []
    for i in order:
        r = rects[i]
        active = [j for j in active if rects[j].x1 > r.x0 + tol]
        for j in active:
            o = rects[j]
            if (
                r.x0 + tol < o.x1
                and o.x0 + tol < r.x1
                and r.y0 + tol < o.y1
                and o.y0 + tol < r.y1
            ):
                return True
        active.append(i)
    return False
