"""Shared hypothesis strategies for property-based tests."""

from __future__ import annotations

import random
import string

from hypothesis import strategies as st

from repro.circuit import SymmetryGroup
from repro.geometry import Module, ModuleSet
from repro.seqpair import SequencePair


def names(n: int) -> list[str]:
    """Deterministic distinct module names m0..m{n-1}."""
    return [f"m{i}" for i in range(n)]


@st.composite
def module_sets(draw, min_size: int = 1, max_size: int = 10) -> ModuleSet:
    """Module sets with analog-typical size spread."""
    n = draw(st.integers(min_size, max_size))
    modules = []
    for i in range(n):
        w = draw(st.floats(0.5, 50.0, allow_nan=False, allow_infinity=False))
        h = draw(st.floats(0.5, 50.0, allow_nan=False, allow_infinity=False))
        rotatable = draw(st.booleans())
        modules.append(Module.hard(f"m{i}", w, h, rotatable=rotatable))
    return ModuleSet.of(modules)


@st.composite
def mixed_module_sets(
    draw, min_size: int = 1, max_size: int = 12, soft_fraction: float = 0.4
) -> ModuleSet:
    """Module sets mixing hard (some rotatable, some square) and soft
    (multi-variant) modules — the full override surface the incremental
    engine's rotate/reshape moves exercise."""
    n = draw(st.integers(min_size, max_size))
    modules = []
    for i in range(n):
        if draw(st.floats(0.0, 1.0)) < soft_fraction:
            area = draw(st.floats(4.0, 60.0, allow_nan=False, allow_infinity=False))
            modules.append(Module.soft(f"m{i}", area))
        else:
            w = draw(st.floats(0.5, 20.0, allow_nan=False, allow_infinity=False))
            square = draw(st.booleans())
            h = w if square else draw(
                st.floats(0.5, 20.0, allow_nan=False, allow_infinity=False)
            )
            modules.append(Module.hard(f"m{i}", w, h, rotatable=draw(st.booleans())))
    return ModuleSet.of(modules)


@st.composite
def sequence_pairs(draw, min_size: int = 1, max_size: int = 10) -> SequencePair:
    n = draw(st.integers(min_size, max_size))
    ns = names(n)
    alpha = draw(st.permutations(ns))
    beta = draw(st.permutations(ns))
    return SequencePair(tuple(alpha), tuple(beta))


@st.composite
def symmetric_problems(
    draw, max_pairs: int = 3, max_selfsym: int = 2, max_free: int = 3
) -> tuple[ModuleSet, SymmetryGroup]:
    """A module set plus one symmetry group over part of it.

    Pair members get matched (equal) footprints, as placement symmetry
    requires.
    """
    n_pairs = draw(st.integers(1, max_pairs))
    n_self = draw(st.integers(0, max_selfsym))
    n_free = draw(st.integers(0, max_free))
    modules = []
    pairs = []
    dims = st.floats(1.0, 30.0, allow_nan=False, allow_infinity=False)
    for i in range(n_pairs):
        w, h = draw(dims), draw(dims)
        a, b = f"p{i}a", f"p{i}b"
        modules.append(Module.hard(a, w, h, rotatable=False))
        modules.append(Module.hard(b, w, h, rotatable=False))
        pairs.append((a, b))
    selfsym = []
    for i in range(n_self):
        w, h = draw(dims), draw(dims)
        s = f"s{i}"
        modules.append(Module.hard(s, w, h, rotatable=False))
        selfsym.append(s)
    for i in range(n_free):
        w, h = draw(dims), draw(dims)
        modules.append(Module.hard(f"f{i}", w, h, rotatable=False))
    group = SymmetryGroup("g", tuple(pairs), tuple(selfsym))
    return ModuleSet.of(modules), group


@st.composite
def seeded_rng(draw) -> random.Random:
    return random.Random(draw(st.integers(0, 2**31)))
