"""Checkpointed walks are bit-identical to monolithic runs.

The portfolio runner slices annealing walks into chunks (pausing,
pickling and resuming them across processes), so the checkpoint API
must reproduce ``IncrementalAnnealer.run`` exactly — same best state,
same best cost, same statistics — for any chunking, including chunks
resumed on a freshly rebuilt engine.
"""

import pickle
import random

import pytest

from repro.anneal import (
    GeometricSchedule,
    IncrementalAnnealer,
    StateEngine,
    WalkCheckpoint,
)
from repro.bstar import BStarPlacerConfig
from repro.circuit import simple_testcase
from repro.perf import IncrementalBStarEngine

SCHEDULE = GeometricSchedule(t_initial=1.0, t_final=1e-2, alpha=0.7, steps_per_epoch=20)


# -- a tiny 1-D toy problem over the functional adapter -----------------------


def _toy_annealer(seed: int) -> IncrementalAnnealer:
    def cost(x: float) -> float:
        return (x - 3.0) ** 2

    class Moves:
        def propose(self, state, rng):
            return state + rng.uniform(-1.0, 1.0)

    engine = StateEngine(cost, Moves(), 10.0)
    return IncrementalAnnealer(engine, SCHEDULE, random.Random(seed))


def _bstar_annealer(seed: int) -> IncrementalAnnealer:
    circuit = simple_testcase(12, seed=1)
    rng = random.Random(seed)
    engine = IncrementalBStarEngine(
        circuit.modules(), circuit.nets, (), BStarPlacerConfig(seed=seed)
    )
    engine.reset(engine.initial_state(rng))
    return IncrementalAnnealer(engine, SCHEDULE, rng)


@pytest.mark.parametrize("make", [_toy_annealer, _bstar_annealer])
@pytest.mark.parametrize("chunk", [1, 7, 64, 10_000])
def test_chunked_equals_monolithic(make, chunk):
    mono = make(seed=5).run()

    annealer = make(seed=5)
    checkpoint = annealer.begin()
    while not checkpoint.finished:
        checkpoint = annealer.advance(checkpoint, chunk)

    assert checkpoint.best_cost == mono.best_cost
    assert checkpoint.stats == mono.stats
    assert checkpoint.step == checkpoint.total_steps


def test_pickled_resume_on_rebuilt_engine_is_identical():
    """A checkpoint hopping 'processes' (pickle + fresh engine) changes
    nothing — the exact contract the portfolio workers rely on."""
    mono = _bstar_annealer(seed=9).run()

    checkpoint = _bstar_annealer(seed=9).begin()
    while not checkpoint.finished:
        checkpoint = pickle.loads(pickle.dumps(checkpoint))
        fresh = _bstar_annealer(seed=9)  # new engine, new rng
        checkpoint = fresh.advance(checkpoint, 37)

    assert checkpoint.best_cost == mono.best_cost
    assert checkpoint.stats == mono.stats


def test_advance_on_finished_checkpoint_is_a_noop():
    annealer = _toy_annealer(seed=3)
    checkpoint = annealer.begin()
    done = annealer.advance(checkpoint)
    assert done.finished
    assert annealer.advance(done, 10) is done


def test_advance_rejects_mismatched_schedule():
    checkpoint = _toy_annealer(seed=3).begin()
    other = IncrementalAnnealer(
        StateEngine(lambda x: x * x, None, 0.0),
        GeometricSchedule(t_initial=1.0, t_final=1e-2, alpha=0.7, steps_per_epoch=7),
        random.Random(0),
    )
    with pytest.raises(ValueError, match="schedule spans"):
        other.advance(checkpoint, 1)


def test_checkpoint_is_immutable_across_advance():
    """advance returns fresh checkpoints; earlier ones stay resumable."""
    annealer = _toy_annealer(seed=11)
    first = annealer.begin()
    mid = annealer.advance(first, 50)
    end_a = annealer.advance(mid)
    # resuming from the same mid checkpoint again reproduces the tail
    end_b = _toy_annealer(seed=11).advance(mid)
    assert first.step == 0 and mid.step == 50
    assert end_a.best_cost == end_b.best_cost
    assert end_a.stats == end_b.stats


def test_run_still_matches_begin_advance_composition():
    mono = _toy_annealer(seed=2).run()
    annealer = _toy_annealer(seed=2)
    checkpoint = annealer.advance(annealer.begin())
    assert isinstance(checkpoint, WalkCheckpoint)
    assert mono.best_cost == checkpoint.best_cost
    assert mono.stats == checkpoint.stats
