"""Tests for cooling schedules."""

import pytest

from repro.anneal import (
    GeometricSchedule,
    LinearSchedule,
    initial_temperature_from_samples,
)


class TestGeometricSchedule:
    def test_monotone_decrease(self):
        s = GeometricSchedule(t_initial=1.0, t_final=1e-3, alpha=0.9, steps_per_epoch=10)
        temps = [s.temperature(k) for k in range(0, s.total_steps, 10)]
        assert all(a >= b for a, b in zip(temps, temps[1:]))

    def test_starts_at_t_initial(self):
        s = GeometricSchedule(t_initial=2.0)
        assert s.temperature(0) == 2.0

    def test_epoch_granularity(self):
        s = GeometricSchedule(t_initial=1.0, alpha=0.5, steps_per_epoch=4)
        assert s.temperature(0) == s.temperature(3)
        assert s.temperature(4) == pytest.approx(0.5)

    def test_reaches_final(self):
        s = GeometricSchedule(t_initial=1.0, t_final=0.01, alpha=0.9, steps_per_epoch=1)
        assert s.temperature(s.total_steps - 1) <= 0.01 / 0.9 + 1e-12

    def test_validation(self):
        with pytest.raises(ValueError):
            GeometricSchedule(alpha=1.5)
        with pytest.raises(ValueError):
            GeometricSchedule(t_initial=1e-5, t_final=1.0)
        with pytest.raises(ValueError):
            GeometricSchedule(steps_per_epoch=0)


class TestLinearSchedule:
    def test_endpoints(self):
        s = LinearSchedule(t_initial=1.0, t_final=0.0, steps=100)
        assert s.temperature(0) == 1.0
        assert s.temperature(100) == pytest.approx(0.0)

    def test_clamps_beyond_end(self):
        s = LinearSchedule(t_initial=1.0, t_final=0.1, steps=10)
        assert s.temperature(1000) == pytest.approx(0.1)

    def test_midpoint(self):
        s = LinearSchedule(t_initial=1.0, t_final=0.0, steps=10)
        assert s.temperature(5) == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            LinearSchedule(steps=0)
        with pytest.raises(ValueError):
            LinearSchedule(t_initial=0.0, t_final=1.0)


class TestWarmup:
    def test_accepts_target_probability(self):
        import math

        t0 = initial_temperature_from_samples([2.0, 2.0], acceptance=0.9)
        assert math.exp(-2.0 / t0) == pytest.approx(0.9)

    def test_ignores_downhill(self):
        t_with = initial_temperature_from_samples([2.0, -5.0, 2.0])
        t_only = initial_temperature_from_samples([2.0, 2.0])
        assert t_with == pytest.approx(t_only)

    def test_all_downhill_fallback(self):
        assert initial_temperature_from_samples([-1.0, -2.0]) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            initial_temperature_from_samples([1.0], acceptance=1.5)
