"""Tests for the generic annealing engine."""

import random

import pytest

from repro.anneal import (
    Annealer,
    FunctionMoveSet,
    GeometricSchedule,
    WeightedMoveSet,
)


def quadratic_cost(x: float) -> float:
    return (x - 3.0) ** 2


def gaussian_step(x: float, rng: random.Random) -> float:
    return x + rng.gauss(0.0, 0.5)


class TestAnnealer:
    def test_optimizes_quadratic(self):
        annealer = Annealer(
            quadratic_cost,
            FunctionMoveSet(gaussian_step),
            GeometricSchedule(t_initial=1.0, t_final=1e-5, alpha=0.9, steps_per_epoch=50),
            random.Random(0),
        )
        result = annealer.run(20.0)
        assert abs(result.best_state - 3.0) < 0.5
        assert result.best_cost < 0.25

    def test_best_never_worse_than_initial(self):
        annealer = Annealer(
            quadratic_cost, FunctionMoveSet(gaussian_step), rng=random.Random(1)
        )
        result = annealer.run(10.0)
        assert result.best_cost <= quadratic_cost(10.0)

    def test_deterministic_given_seed(self):
        def run(seed):
            return Annealer(
                quadratic_cost,
                FunctionMoveSet(gaussian_step),
                GeometricSchedule(t_final=0.01, steps_per_epoch=10),
                random.Random(seed),
            ).run(5.0)

        a, b = run(42), run(42)
        assert a.best_state == b.best_state
        assert a.best_cost == b.best_cost

    def test_stats_counters(self):
        schedule = GeometricSchedule(t_final=0.01, steps_per_epoch=10)
        annealer = Annealer(
            quadratic_cost, FunctionMoveSet(gaussian_step), schedule, random.Random(2)
        )
        result = annealer.run(5.0)
        stats = result.stats
        assert stats.steps == schedule.total_steps
        assert 0 < stats.accepted <= stats.steps
        assert 0.0 < stats.acceptance_ratio <= 1.0
        assert stats.best_cost == result.best_cost

    def test_trace(self):
        annealer = Annealer(
            quadratic_cost,
            FunctionMoveSet(gaussian_step),
            GeometricSchedule(t_final=0.1, steps_per_epoch=10),
            random.Random(3),
            trace_every=10,
        )
        result = annealer.run(5.0)
        assert len(result.stats.cost_trace) > 0

    def test_handles_infinite_cost_moves(self):
        def cost(x):
            return float("inf") if x < 0 else x

        annealer = Annealer(
            cost, FunctionMoveSet(gaussian_step), rng=random.Random(4), auto_t0=False
        )
        result = annealer.run(2.0)
        assert result.best_cost < 2.0
        assert result.best_state >= 0


class TestWeightedMoveSet:
    def test_mixes_moves(self):
        ws = WeightedMoveSet(
            [
                (1.0, FunctionMoveSet(lambda x, rng: x + 1)),
                (1.0, FunctionMoveSet(lambda x, rng: x - 1)),
            ]
        )
        rng = random.Random(0)
        deltas = {ws.propose(0, rng) for _ in range(50)}
        assert deltas == {-1, 1}

    def test_zero_weight_excluded(self):
        ws = WeightedMoveSet(
            [
                (1.0, FunctionMoveSet(lambda x, rng: x + 1)),
                (0.0, FunctionMoveSet(lambda x, rng: x - 1)),
            ]
        )
        rng = random.Random(0)
        assert all(ws.propose(0, rng) == 1 for _ in range(30))

    def test_validation(self):
        with pytest.raises(ValueError):
            WeightedMoveSet([])
        with pytest.raises(ValueError):
            WeightedMoveSet([(-1.0, FunctionMoveSet(lambda x, rng: x))])
