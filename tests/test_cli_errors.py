"""CLI error paths: wrong input must exit non-zero with a usable message.

Complements ``tests/test_cli.py`` (which covers the happy paths): every
mis-typed circuit, engine, seed or portfolio flag must terminate with a
non-zero exit code and point the user at valid values — never a
traceback.  Also covers the ``--starts``/``--workers`` portfolio flags
end to end.
"""

import pytest

from repro.cli import main


def exit_code(excinfo) -> int:
    code = excinfo.value.code
    if code is None:
        return 0
    return code if isinstance(code, int) else 1


class TestBadInput:
    def test_unknown_circuit_names_the_alternatives(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["place", "not-a-circuit"])
        assert exit_code(excinfo) != 0
        assert "miller_opamp" in str(excinfo.value)  # suggests valid names

    def test_unknown_engine_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["place", "miller_opamp", "--engine", "magic"])
        assert exit_code(excinfo) == 2
        assert "seqpair" in capsys.readouterr().err  # lists the choices

    def test_non_integer_seed_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["place", "miller_opamp", "--seed", "banana"])
        assert exit_code(excinfo) == 2
        assert "--seed" in capsys.readouterr().err

    def test_unknown_circuit_on_route_too(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["route", "not-a-circuit"])
        assert exit_code(excinfo) != 0


class TestPortfolioFlags:
    def test_zero_starts_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["place", "miller_opamp", "--starts", "0"])
        assert exit_code(excinfo) == 2
        assert "must be >= 1" in capsys.readouterr().err

    def test_negative_workers_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["place", "miller_opamp", "--workers", "-1"])
        assert exit_code(excinfo) == 2
        assert "must be >= 0" in capsys.readouterr().err

    def test_unknown_restart_policy_exits_2(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["place", "miller_opamp", "--starts", "2", "--restart-policy", "x"])
        assert exit_code(excinfo) == 2

    def test_unknown_portfolio_engine_is_rejected_with_hint(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["place", "miller_opamp", "--starts", "2", "--engines", "magic"])
        assert exit_code(excinfo) != 0
        assert "magic" in str(excinfo.value)

    def test_deterministic_engine_cannot_join_a_portfolio(self):
        with pytest.raises(SystemExit) as excinfo:
            main(
                ["place", "miller_opamp", "--starts", "2", "--engines", "deterministic"]
            )
        assert exit_code(excinfo) != 0
        assert "deterministic" in str(excinfo.value)

    def test_budget_too_small_for_starts_is_a_clean_error(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["place", "miller_opamp", "--starts", "4", "--budget", "2"])
        assert exit_code(excinfo) != 0

    def test_budget_below_one_step_per_epoch_is_a_clean_error(self):
        """Raised from run() (after schedule compression), not from the
        constructor — must still surface as a message, never a traceback."""
        with pytest.raises(SystemExit) as excinfo:
            main(["place", "miller_opamp", "--starts", "4", "--budget", "10"])
        assert exit_code(excinfo) != 0
        assert "below one step per epoch" in str(excinfo.value)


class TestPortfolioRuns:
    def test_starts_flag_prints_a_leaderboard_and_places(self, capsys):
        code = main(
            ["place", "miller_opamp", "--starts", "2", "--engines", "hbtree",
             "--budget", "800", "--progress"]
        )
        out = capsys.readouterr().out
        assert code == 0                               # hbtree keeps constraints
        assert "portfolio: " in out and "rank" in out  # leaderboard
        assert "walk " in out                          # --progress stream
        assert "area usage" in out                     # rendered winner

    def test_portfolio_flags_opt_in_without_starts(self, capsys):
        """--engines/--budget alone must run the portfolio, not be
        silently ignored in favor of a default hbtree single run."""
        code = main(
            ["place", "miller_opamp", "--engines", "hbtree", "--budget", "800"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "portfolio: " in out

    def test_bstar_engine_available_single_run(self, capsys):
        # the flat engine ignores symmetry (that is the hierarchical
        # placer's job), so only the report is asserted, not exit 0
        code = main(["place", "miller_opamp", "--engine", "bstar", "--seed", "1"])
        out = capsys.readouterr().out
        assert "area usage" in out
        assert code in (0, 1)
