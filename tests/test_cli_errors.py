"""CLI error paths: wrong input must exit non-zero with a usable message.

Complements ``tests/test_cli.py`` (which covers the happy paths): every
mis-typed circuit, engine, seed or portfolio flag must terminate with a
non-zero exit code and point the user at valid values — never a
traceback.  Also covers the ``--starts``/``--workers`` portfolio flags
end to end.
"""

import pytest

from repro.cli import main


def exit_code(excinfo) -> int:
    code = excinfo.value.code
    if code is None:
        return 0
    return code if isinstance(code, int) else 1


class TestBadInput:
    def test_unknown_circuit_names_the_alternatives(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["place", "not-a-circuit"])
        assert exit_code(excinfo) != 0
        assert "miller_opamp" in str(excinfo.value)  # suggests valid names

    def test_unknown_engine_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["place", "miller_opamp", "--engine", "magic"])
        assert exit_code(excinfo) == 2
        assert "seqpair" in capsys.readouterr().err  # lists the choices

    def test_non_integer_seed_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["place", "miller_opamp", "--seed", "banana"])
        assert exit_code(excinfo) == 2
        assert "--seed" in capsys.readouterr().err

    def test_unknown_circuit_on_route_too(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["route", "not-a-circuit"])
        assert exit_code(excinfo) != 0


class TestPortfolioFlags:
    def test_zero_starts_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["place", "miller_opamp", "--starts", "0"])
        assert exit_code(excinfo) == 2
        assert "must be >= 1" in capsys.readouterr().err

    def test_negative_workers_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["place", "miller_opamp", "--workers", "-1"])
        assert exit_code(excinfo) == 2
        assert "must be >= 0" in capsys.readouterr().err

    def test_unknown_restart_policy_exits_2(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["place", "miller_opamp", "--starts", "2", "--restart-policy", "x"])
        assert exit_code(excinfo) == 2

    def test_unknown_portfolio_engine_is_rejected_with_hint(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["place", "miller_opamp", "--starts", "2", "--engines", "magic"])
        assert exit_code(excinfo) != 0
        assert "magic" in str(excinfo.value)

    def test_deterministic_engine_cannot_join_a_portfolio(self):
        with pytest.raises(SystemExit) as excinfo:
            main(
                ["place", "miller_opamp", "--starts", "2", "--engines", "deterministic"]
            )
        assert exit_code(excinfo) != 0
        assert "deterministic" in str(excinfo.value)

    def test_budget_too_small_for_starts_is_a_clean_error(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["place", "miller_opamp", "--starts", "4", "--budget", "2"])
        assert exit_code(excinfo) != 0

    def test_budget_below_one_step_per_epoch_is_a_clean_error(self):
        """Raised from run() (after schedule compression), not from the
        constructor — must still surface as a message, never a traceback."""
        with pytest.raises(SystemExit) as excinfo:
            main(["place", "miller_opamp", "--starts", "4", "--budget", "10"])
        assert exit_code(excinfo) != 0
        assert "below one step per epoch" in str(excinfo.value)


class TestResilienceFlags:
    def test_negative_max_retries_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["place", "miller_opamp", "--max-retries", "-1"])
        assert exit_code(excinfo) == 2
        assert "must be >= 0" in capsys.readouterr().err

    def test_zero_chunk_timeout_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["place", "miller_opamp", "--chunk-timeout", "0"])
        assert exit_code(excinfo) == 2
        assert "must be > 0" in capsys.readouterr().err

    def test_chunk_timeout_without_workers_is_a_clean_error(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["place", "miller_opamp", "--starts", "2", "--chunk-timeout", "5"])
        assert exit_code(excinfo) != 0
        assert "workers > 1" in str(excinfo.value)

    def test_resume_requires_a_run_dir(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["place", "miller_opamp", "--resume"])
        assert exit_code(excinfo) != 0
        assert "requires --run-dir" in str(excinfo.value)

    def test_resume_of_an_empty_directory_is_a_clean_error(self, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main(["place", "--resume", "--run-dir", str(tmp_path / "nope")])
        assert exit_code(excinfo) != 0
        assert "holds no portfolio run" in str(excinfo.value)

    def test_fresh_run_into_an_occupied_run_dir_is_a_clean_error(
        self, tmp_path, capsys
    ):
        run_dir = str(tmp_path / "rd")
        assert (
            main(
                ["place", "miller_opamp", "--starts", "2", "--engines", "hbtree",
                 "--budget", "800", "--run-dir", run_dir]
            )
            == 0
        )
        capsys.readouterr()
        with pytest.raises(SystemExit) as excinfo:
            main(
                ["place", "miller_opamp", "--starts", "2", "--engines", "hbtree",
                 "--budget", "800", "--run-dir", run_dir]
            )
        assert exit_code(excinfo) != 0
        assert "already holds a portfolio run" in str(excinfo.value)

    def test_resume_with_a_contradicting_circuit_is_rejected(
        self, tmp_path, capsys
    ):
        run_dir = str(tmp_path / "rd")
        assert (
            main(
                ["place", "miller_opamp", "--starts", "2", "--engines", "hbtree",
                 "--budget", "800", "--run-dir", run_dir]
            )
            == 0
        )
        capsys.readouterr()
        with pytest.raises(SystemExit) as excinfo:
            main(["place", "comparator_v2", "--resume", "--run-dir", run_dir])
        assert exit_code(excinfo) != 0
        assert "drop the circuit argument" in str(excinfo.value)

    def test_run_dir_then_resume_happy_path(self, tmp_path, capsys):
        """A completed run can be resumed (idempotently) straight from
        the CLI; the circuit comes from the manifest."""
        run_dir = str(tmp_path / "rd")
        code = main(
            ["place", "miller_opamp", "--starts", "2", "--engines", "hbtree",
             "--budget", "800", "--run-dir", run_dir]
        )
        first = capsys.readouterr().out
        assert code == 0
        code = main(["place", "--resume", "--run-dir", run_dir])
        second = capsys.readouterr().out
        assert code == 0
        assert "portfolio: " in second
        # identical leaderboard line for line (timings differ)
        first_rows = [l for l in first.splitlines() if l.lstrip()[:1].isdigit()]
        second_rows = [l for l in second.splitlines() if l.lstrip()[:1].isdigit()]
        assert first_rows == second_rows

    def test_quarantined_walk_shows_in_the_banner(self, capsys, monkeypatch):
        """A degraded run must say so: the summary banner counts the
        failures and prints one FAILED line per quarantined walk."""
        import repro.parallel.runner as runner_mod

        real_execute = runner_mod._execute

        def flaky_execute(task):
            if task.spec.walk_id == 1:
                raise RuntimeError("injected chunk failure")
            return real_execute(task)

        monkeypatch.setattr(runner_mod, "_execute", flaky_execute)
        code = main(
            ["place", "miller_opamp", "--starts", "3", "--engines", "hbtree",
             "--budget", "900"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "1 failed" in out
        assert "walk 1" in out and "FAILED (error)" in out

    def test_every_walk_failing_is_a_clean_error(self, monkeypatch):
        import repro.parallel.runner as runner_mod

        def doomed_execute(task):
            raise RuntimeError("injected chunk failure")

        monkeypatch.setattr(runner_mod, "_execute", doomed_execute)
        with pytest.raises(SystemExit) as excinfo:
            main(["place", "miller_opamp", "--starts", "2", "--engines", "hbtree",
                  "--budget", "800"])
        assert exit_code(excinfo) != 0
        assert "every walk in the portfolio failed" in str(excinfo.value)

    def test_strict_aborts_on_the_first_failure(self, monkeypatch):
        import repro.parallel.runner as runner_mod

        def doomed_execute(task):
            raise RuntimeError("injected chunk failure")

        monkeypatch.setattr(runner_mod, "_execute", doomed_execute)
        with pytest.raises((SystemExit, RuntimeError)) as excinfo:
            main(["place", "miller_opamp", "--starts", "2", "--engines", "hbtree",
                  "--budget", "800", "--strict"])
        assert "injected chunk failure" in str(excinfo.value)


class TestPortfolioRuns:
    def test_starts_flag_prints_a_leaderboard_and_places(self, capsys):
        code = main(
            ["place", "miller_opamp", "--starts", "2", "--engines", "hbtree",
             "--budget", "800", "--progress"]
        )
        out = capsys.readouterr().out
        assert code == 0                               # hbtree keeps constraints
        assert "portfolio: " in out and "rank" in out  # leaderboard
        assert "walk " in out                          # --progress stream
        assert "area usage" in out                     # rendered winner

    def test_portfolio_flags_opt_in_without_starts(self, capsys):
        """--engines/--budget alone must run the portfolio, not be
        silently ignored in favor of a default hbtree single run."""
        code = main(
            ["place", "miller_opamp", "--engines", "hbtree", "--budget", "800"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "portfolio: " in out

    def test_bstar_engine_available_single_run(self, capsys):
        # the flat engine ignores symmetry (that is the hierarchical
        # placer's job), so only the report is asserted, not exit 0
        code = main(["place", "miller_opamp", "--engine", "bstar", "--seed", "1"])
        out = capsys.readouterr().out
        assert "area usage" in out
        assert code in (0, 1)
