"""The portfolio runner: determinism, policies, budgets, multiprocessing.

Everything here runs serially (workers=0) except the one spawn smoke
test at the bottom — serial and multiprocess execution share the chunk
execution path, and the smoke test locks that they agree byte for
byte.
"""

import pickle

import pytest

from repro.parallel import (
    ENGINE_NAMES,
    PortfolioRunner,
    WalkSpec,
    build_placer_by_name,
)
from repro.parallel.jobs import FINISHED, KILLED

#: short schedules so a walk is a few hundred steps
FAST = (("alpha", 0.7), ("steps_per_epoch", 20), ("t_final", 1e-2))


def run_portfolio(**kwargs):
    kwargs.setdefault("overrides", FAST)
    return PortfolioRunner("miller_opamp", **kwargs).run()


class TestDeterminism:
    def test_same_sweep_same_winner_byte_for_byte(self):
        a = run_portfolio(starts=4)
        b = run_portfolio(starts=4)
        assert a.cost == b.cost
        assert pickle.dumps(a.placement) == pickle.dumps(b.placement)
        assert [(o.spec.walk_id, o.best_cost, o.status) for o in a.leaderboard] == [
            (o.spec.walk_id, o.best_cost, o.status) for o in b.leaderboard
        ]

    def test_leaderboard_is_totally_ordered_by_ref_cost(self):
        result = run_portfolio(starts=4)
        keys = [(o.ref_cost, o.spec.walk_id) for o in result.leaderboard]
        assert keys == sorted(keys)
        assert result.cost == result.leaderboard[0].ref_cost

    @pytest.mark.parametrize("engine", ENGINE_NAMES)
    def test_one_start_equals_the_placers_own_run(self, engine):
        """A 1-start portfolio IS the plain placer run, bit for bit."""
        single = build_placer_by_name(
            WalkSpec(0, "miller_opamp", engine, 5, FAST)
        ).run()
        result = run_portfolio(engines=(engine,), starts=1, base_seed=5)
        row = result.leaderboard[0]
        assert row.best_cost == single.cost
        # placements are value-equal (pickle blobs may differ in lazy
        # bounding-box caches, which compare equal but serialize when set)
        assert row.placement == single.placement


class TestMultiStartQuality:
    @pytest.mark.parametrize("engine", ENGINE_NAMES)
    def test_full_budget_portfolio_never_loses_to_a_contained_single_run(
        self, engine
    ):
        """With full per-start budgets the sweep contains the baseline
        seed, so the per-engine best is <= that single run — always."""
        single = build_placer_by_name(
            WalkSpec(0, "miller_opamp", engine, 0, FAST)
        ).run()
        result = run_portfolio(engines=(engine,), starts=4, base_seed=0)
        assert result.best_by_engine()[engine].best_cost <= single.cost


class TestBudget:
    def test_budget_is_an_upper_bound_on_total_steps(self):
        result = run_portfolio(starts=4, budget=800)
        assert result.total_steps <= 800

    def test_budget_slack_funds_a_polish_walk(self):
        result = run_portfolio(starts=4, budget=900)
        statuses = [o.status for o in result.leaderboard]
        assert "polish" in statuses
        assert result.total_steps <= 900

    def test_polish_never_worsens_the_winner(self):
        result = run_portfolio(starts=4, budget=900)
        finished = [o for o in result.leaderboard if o.status == FINISHED]
        assert result.cost <= min(o.ref_cost for o in finished)

    def test_budget_below_one_step_per_start_rejected(self):
        with pytest.raises(ValueError, match="at least one step per start"):
            run_portfolio(starts=4, budget=3)

    def test_polish_survives_a_warm_t_final_override(self):
        """A t_final above the default polish start temperature must not
        crash the run after the whole budget was spent (regression)."""
        result = run_portfolio(
            starts=2,
            engines=("bstar",),
            budget=800,
            overrides=(("t_final", 0.1), ("alpha", 0.7), ("steps_per_epoch", 20)),
        )
        assert result.total_steps <= 800
        assert result.leaderboard


class TestRebalance:
    def test_kills_and_respawns_deterministically(self):
        a = run_portfolio(starts=4, restart_policy="rebalance", budget=800)
        b = run_portfolio(starts=4, restart_policy="rebalance", budget=800)
        assert [o.spec for o in a.leaderboard] == [o.spec for o in b.leaderboard]
        assert pickle.dumps(a.placement) == pickle.dumps(b.placement)
        statuses = {o.status for o in a.leaderboard}
        assert KILLED in statuses  # the worst half actually died

    def test_respawned_walks_use_fresh_seeds(self):
        result = run_portfolio(starts=4, restart_policy="rebalance", budget=800)
        sweep = {0, 1, 2, 3}
        fresh = [
            o
            for o in result.leaderboard
            if o.spec.seed not in sweep and o.status in (FINISHED, KILLED)
        ]
        killed = [o for o in result.leaderboard if o.status == KILLED]
        # pooled budget from kills funds walks outside the original sweep
        assert len(result.leaderboard) > 4
        assert killed and fresh

    def test_budget_is_conserved(self):
        result = run_portfolio(starts=4, restart_policy="rebalance", budget=800)
        assert result.total_steps <= 800


class TestEvents:
    def test_progress_streams_every_chunk_and_decision(self):
        events = []
        run_portfolio(starts=2, budget=400, on_event=events.append)
        assert events
        running = [e for e in events if e.status == "running"]
        assert running and all(e.step > 0 for e in running)
        assert any(e.status == "polish" for e in events)
        # a walk reports monotonically increasing steps
        per_walk = {}
        for event in running:
            assert event.step >= per_walk.get(event.walk_id, 0)
            per_walk[event.walk_id] = event.step


class TestValidation:
    def test_unknown_circuit(self):
        with pytest.raises(KeyError, match="unknown workload"):
            PortfolioRunner("not-a-circuit")

    def test_unknown_engine(self):
        with pytest.raises(ValueError, match="unknown engine"):
            PortfolioRunner("miller_opamp", ("magic",))

    def test_unknown_policy(self):
        with pytest.raises(ValueError, match="restart policy"):
            PortfolioRunner("miller_opamp", restart_policy="chaotic")

    def test_bad_counts(self):
        with pytest.raises(ValueError, match="starts"):
            PortfolioRunner("miller_opamp", starts=0)
        with pytest.raises(ValueError, match="workers"):
            PortfolioRunner("miller_opamp", workers=-1)

    def test_explicit_seed_sweep_must_cover_starts(self):
        with pytest.raises(ValueError, match="seeds"):
            PortfolioRunner("miller_opamp", starts=3, seeds=[1, 2])


class TestMultiprocessing:
    def test_spawned_workers_match_serial_byte_for_byte(self):
        serial = run_portfolio(starts=2, engines=("bstar", "hbtree"), budget=400)
        spawned = run_portfolio(
            starts=2, engines=("bstar", "hbtree"), budget=400, workers=2
        )
        assert spawned.workers == 2
        assert spawned.cost == serial.cost
        assert pickle.dumps(spawned.placement) == pickle.dumps(serial.placement)
        assert [(o.spec, o.best_cost, o.status) for o in spawned.leaderboard] == [
            (o.spec, o.best_cost, o.status) for o in serial.leaderboard
        ]
