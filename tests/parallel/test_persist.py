"""Run persistence: snapshot, crash, resume — bit-identically.

The contract under test (see ``repro/parallel/persist.py`` and the
"Fault tolerance" section of docs/parallel.md): a portfolio run with a
``run_dir`` can be killed at *any* point and resumed to the exact
result an uninterrupted run produces.  That holds because snapshots
are only taken at points where the remaining work is a pure function
of the saved state — per chunk for the independent policy, per round
barrier for rebalance — and each snapshot is an atomic write-rename.

Interrupts are simulated two ways: an exception bomb planted in the
progress callback (deterministic, covers many cut points cheaply) and
a real ``SIGKILL`` of a CLI subprocess mid-run (covers the actual
crash path end to end).
"""

import hashlib
import json
import os
import pickle
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.parallel import (
    PortfolioRunner,
    RunDir,
    RunDirError,
)

FAST = (("alpha", 0.7), ("steps_per_epoch", 20), ("t_final", 1e-2))


def fingerprint(result):
    """Full-result fingerprint: leaderboard rows, winner cost, and a
    hash of the winner placement (bit-identity, not approximation)."""
    rows = tuple(
        (o.spec.walk_id, o.spec.engine, o.spec.seed, o.best_cost, o.ref_cost, o.status)
        for o in result.leaderboard
    )
    board = hashlib.sha256(repr(rows).encode()).hexdigest()
    placement = hashlib.sha256(pickle.dumps(result.placement)).hexdigest()
    return (board, result.cost, placement)


class _Interrupt(Exception):
    """Planted mid-run to simulate a crash at a chosen progress event."""


def bombed_run(tmp_path, n_events, **kwargs):
    """Run a portfolio that dies after ``n_events`` progress events;
    returns the run directory it left behind."""
    run_dir = tmp_path / f"run_after_{n_events}"
    seen = 0

    def bomb(event) -> None:
        nonlocal seen
        seen += 1
        if seen >= n_events:
            raise _Interrupt(f"crash after event {n_events}")

    kwargs.setdefault("overrides", FAST)
    runner = PortfolioRunner(
        "miller_opamp", run_dir=str(run_dir), on_event=bomb, **kwargs
    )
    with pytest.raises(_Interrupt):
        runner.run()
    return run_dir


class TestResumeBitIdentity:
    @pytest.mark.parametrize("n_events", [2, 5, 9])
    def test_independent_resume_matches_uninterrupted(self, tmp_path, n_events):
        base = PortfolioRunner(
            "miller_opamp", starts=4, budget=800, overrides=FAST
        ).run()
        run_dir = bombed_run(tmp_path, n_events, starts=4, budget=800)
        resumed = PortfolioRunner.resume(run_dir).run()
        assert fingerprint(resumed) == fingerprint(base)

    @pytest.mark.parametrize("n_events", [2, 5, 9])
    def test_rebalance_resume_matches_uninterrupted(self, tmp_path, n_events):
        kwargs = dict(
            starts=4, budget=800, restart_policy="rebalance", overrides=FAST
        )
        base = PortfolioRunner("miller_opamp", **kwargs).run()
        run_dir = bombed_run(
            tmp_path, n_events, starts=4, budget=800, restart_policy="rebalance"
        )
        resumed = PortfolioRunner.resume(run_dir).run()
        assert fingerprint(resumed) == fingerprint(base)

    def test_resume_survives_a_second_crash(self, tmp_path):
        """Crash, resume, crash again, resume again — still identical."""
        base = PortfolioRunner(
            "miller_opamp", starts=4, budget=800, overrides=FAST
        ).run()
        run_dir = bombed_run(tmp_path, 3, starts=4, budget=800)
        seen = 0

        def bomb(event) -> None:
            nonlocal seen
            seen += 1
            if seen >= 3:
                raise _Interrupt("second crash")

        with pytest.raises(_Interrupt):
            PortfolioRunner.resume(run_dir, on_event=bomb).run()
        resumed = PortfolioRunner.resume(run_dir).run()
        assert fingerprint(resumed) == fingerprint(base)

    def test_completed_run_resume_is_idempotent(self, tmp_path):
        run_dir = tmp_path / "done"
        first = PortfolioRunner(
            "miller_opamp",
            starts=3,
            budget=600,
            overrides=FAST,
            run_dir=str(run_dir),
        ).run()
        again = PortfolioRunner.resume(run_dir).run()
        assert fingerprint(again) == fingerprint(first)

    def test_run_dir_does_not_perturb_the_result(self, tmp_path):
        base = PortfolioRunner(
            "miller_opamp", starts=4, budget=800, overrides=FAST
        ).run()
        persisted = PortfolioRunner(
            "miller_opamp",
            starts=4,
            budget=800,
            overrides=FAST,
            run_dir=str(tmp_path / "rd"),
        ).run()
        assert fingerprint(persisted) == fingerprint(base)


class TestRunDirValidation:
    def test_fresh_run_refuses_an_occupied_directory(self, tmp_path):
        run_dir = tmp_path / "rd"
        PortfolioRunner(
            "miller_opamp", starts=2, overrides=FAST, run_dir=str(run_dir)
        ).run()
        with pytest.raises(RunDirError, match="already holds a portfolio run"):
            PortfolioRunner(
                "miller_opamp", starts=2, overrides=FAST, run_dir=str(run_dir)
            ).run()

    def test_resume_of_a_missing_run_fails_cleanly(self, tmp_path):
        with pytest.raises(RunDirError, match="holds no portfolio run"):
            PortfolioRunner.resume(tmp_path / "nope")

    def test_manifest_version_mismatch_is_rejected(self, tmp_path):
        run_dir = tmp_path / "rd"
        PortfolioRunner(
            "miller_opamp", starts=2, overrides=FAST, run_dir=str(run_dir)
        ).run()
        manifest = run_dir / "manifest.json"
        payload = json.loads(manifest.read_text())
        payload["version"] = 999
        manifest.write_text(json.dumps(payload))
        with pytest.raises(RunDirError, match="version"):
            PortfolioRunner.resume(run_dir)

    def test_corrupt_manifest_is_rejected(self, tmp_path):
        run_dir = tmp_path / "rd"
        PortfolioRunner(
            "miller_opamp", starts=2, overrides=FAST, run_dir=str(run_dir)
        ).run()
        (run_dir / "manifest.json").write_text("{not json")
        with pytest.raises(RunDirError):
            PortfolioRunner.resume(run_dir)

    def test_corrupt_checkpoint_is_rejected(self, tmp_path):
        run_dir = bombed_run(tmp_path, 3, starts=2, budget=600)
        ckpt = next(run_dir.glob("walk_*.ckpt"))
        ckpt.write_bytes(pickle.dumps({"version": 999, "checkpoint": None}))
        with pytest.raises((RunDirError, ValueError)):
            PortfolioRunner.resume(run_dir).run()

    def test_atomic_writes_leave_no_temp_droppings(self, tmp_path):
        run_dir = tmp_path / "rd"
        PortfolioRunner(
            "miller_opamp", starts=3, budget=600, overrides=FAST, run_dir=str(run_dir)
        ).run()
        leftovers = [p.name for p in run_dir.iterdir() if ".tmp" in p.name]
        assert leftovers == []

    def test_run_dir_load_roundtrip(self, tmp_path):
        run_dir = tmp_path / "rd"
        PortfolioRunner(
            "miller_opamp", starts=3, budget=600, overrides=FAST, run_dir=str(run_dir)
        ).run()
        state = RunDir(run_dir).load()
        assert state.circuit == "miller_opamp"
        assert state.starts == 3
        assert state.budget == 600
        assert state.completed is True
        assert set(state.walks) >= {0, 1, 2}


class TestTopologyRecord:
    """Satellite: the manifest records the executor topology and
    ``resume`` refuses to silently continue under a different one."""

    def _finished_run_dir(self, tmp_path, **kwargs):
        run_dir = tmp_path / "rd"
        kwargs.setdefault("starts", 2)
        kwargs.setdefault("overrides", FAST)
        PortfolioRunner("miller_opamp", run_dir=str(run_dir), **kwargs).run()
        return run_dir

    def test_manifest_records_local_topology(self, tmp_path):
        run_dir = self._finished_run_dir(tmp_path)
        state = RunDir(run_dir).load()
        assert state.transport == "local"
        assert state.workers == 0

    def test_manifest_records_remote_topology(self, tmp_path):
        # no workers connect: the run degrades to inline but the
        # recorded topology is still the requested one
        run_dir = tmp_path / "rd"
        PortfolioRunner(
            "miller_opamp",
            starts=2,
            overrides=FAST,
            run_dir=str(run_dir),
            listen=("127.0.0.1", 0),
            lease_timeout=0.3,
        ).run()
        state = RunDir(run_dir).load()
        assert state.transport == "remote"

    def test_resume_rejects_worker_count_mismatch(self, tmp_path):
        run_dir = bombed_run(tmp_path, 3, starts=2, budget=600)
        with pytest.raises(RunDirError, match="workers=0.*workers=4"):
            PortfolioRunner.resume(run_dir, workers=4)

    def test_resume_rejects_transport_mismatch(self, tmp_path):
        run_dir = bombed_run(tmp_path, 3, starts=2, budget=600)
        with pytest.raises(RunDirError, match="transport 'local'.*'remote'"):
            PortfolioRunner.resume(run_dir, listen=("127.0.0.1", 0))

    def test_resume_default_keeps_recorded_topology(self, tmp_path):
        # workers=None means "whatever the manifest says": no mismatch
        run_dir = bombed_run(tmp_path, 3, starts=2, budget=600)
        result = PortfolioRunner.resume(run_dir).run()
        assert result.leaderboard

    def test_allow_topology_change_moves_the_run(self, tmp_path):
        """An explicit topology change resumes bit-identically — the
        transport schedules work, it never touches a trajectory — and
        re-records the new topology for the next resume."""
        base = PortfolioRunner(
            "miller_opamp", starts=2, budget=600, overrides=FAST
        ).run()
        run_dir = bombed_run(tmp_path, 3, starts=2, budget=600)
        resumed = PortfolioRunner.resume(
            run_dir,
            listen=("127.0.0.1", 0),
            lease_timeout=0.3,
            allow_topology_change=True,
        ).run()  # degrades to inline: nobody connects
        assert fingerprint(resumed) == fingerprint(base)
        assert RunDir(run_dir).load().transport == "remote"

    def test_pre_topology_manifest_reads_as_local(self, tmp_path):
        # manifests written before the remote tier existed carry no
        # transport key; they were by definition local runs
        run_dir = self._finished_run_dir(tmp_path)
        manifest = run_dir / "manifest.json"
        payload = json.loads(manifest.read_text())
        del payload["config"]["transport"]
        manifest.write_text(json.dumps(payload))
        assert RunDir(run_dir).load().transport == "local"

    def test_unknown_transport_is_rejected(self, tmp_path):
        run_dir = self._finished_run_dir(tmp_path)
        manifest = run_dir / "manifest.json"
        payload = json.loads(manifest.read_text())
        payload["config"]["transport"] = "carrier-pigeon"
        manifest.write_text(json.dumps(payload))
        with pytest.raises(RunDirError, match="carrier-pigeon"):
            RunDir(run_dir).load()


class TestKillAndResume:
    def test_sigkilled_cli_run_resumes_bit_identically(self, tmp_path):
        """The end-to-end crash drill: start ``place --run-dir`` as a
        real subprocess, SIGKILL it once checkpoints exist, resume via
        the API, and demand the uninterrupted result."""
        run_dir = tmp_path / "rd"
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[2] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "place",
                "miller_opamp",
                "--starts",
                "3",
                "--run-dir",
                str(run_dir),
            ],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        try:
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                if proc.poll() is not None:
                    break  # finished before we could kill it: still a
                    # valid (idempotent-resume) scenario
                if len(list(run_dir.glob("walk_*.ckpt"))) >= 2:
                    proc.send_signal(signal.SIGKILL)
                    break
                time.sleep(0.01)
            proc.wait(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=60)
        # full default schedules, exactly the CLI's configuration
        base = PortfolioRunner("miller_opamp", ("hbtree",), starts=3).run()
        resumed = PortfolioRunner.resume(run_dir).run()
        assert fingerprint(resumed) == fingerprint(base)
