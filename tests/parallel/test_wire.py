"""Wire framing for the distributed tier (repro.parallel.net).

Pure protocol-layer tests: addresses, frame packing, the incremental
decoder's handling of split/coalesced/corrupt byte streams, and the
blocking worker-side stream over a socketpair.  No coordinator, no
chunks — the executor-level behavior lives in test_remote.py.
"""

from __future__ import annotations

import pickle
import socket
import struct
import threading

import pytest

from repro.parallel.net import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    ConnectionClosed,
    FrameDecoder,
    MessageStream,
    ProtocolError,
    bound_address,
    connect_socket,
    format_address,
    listen_socket,
    pack_frame,
    parse_address,
)


class TestAddresses:
    def test_host_port_parses(self):
        assert parse_address("127.0.0.1:7000") == ("127.0.0.1", 7000)

    def test_port_zero_is_valid(self):
        # ephemeral-port form used by tests and the smoke tool
        assert parse_address("localhost:0") == ("localhost", 0)

    def test_ipv6_literal_splits_on_last_colon(self):
        assert parse_address("[::1]:9000") == ("::1", 9000)

    def test_unix_prefix_selects_a_path(self):
        assert parse_address("unix:/tmp/run.sock") == "/tmp/run.sock"

    @pytest.mark.parametrize(
        "bad", ["", "nocolon", ":7000", "host:", "host:abc", "host:70000", "unix:"]
    )
    def test_malformed_addresses_are_rejected(self, bad):
        with pytest.raises(ValueError):
            parse_address(bad)

    def test_format_is_the_inverse(self):
        for text in ("127.0.0.1:7000", "unix:/tmp/run.sock"):
            assert format_address(parse_address(text)) == text

    def test_listen_resolves_ephemeral_port(self):
        sock = listen_socket(("127.0.0.1", 0))
        try:
            host, port = bound_address(sock)
            assert host == "127.0.0.1"
            assert port > 0
        finally:
            sock.close()

    def test_unix_socket_roundtrip(self, tmp_path):
        path = str(tmp_path / "run.sock")
        server = listen_socket(path)
        try:
            assert bound_address(server) == path
            client = connect_socket(path, timeout=5.0)
            client.close()
        finally:
            server.close()


class TestFrames:
    def test_roundtrip_through_the_decoder(self):
        frame = pack_frame("hello", {"version": PROTOCOL_VERSION, "name": "w0"})
        decoder = FrameDecoder()
        assert decoder.feed(frame) == [
            ("hello", {"version": PROTOCOL_VERSION, "name": "w0"})
        ]

    def test_split_delivery_buffers_partial_frames(self):
        # sockets deliver arbitrary byte runs: one byte at a time must
        # decode to exactly the same messages as one big read
        frame = pack_frame("heartbeat", {}) + pack_frame("task", {"task_id": 3})
        decoder = FrameDecoder()
        messages = []
        for i in range(len(frame)):
            messages.extend(decoder.feed(frame[i : i + 1]))
        assert messages == [("heartbeat", {}), ("task", {"task_id": 3})]

    def test_coalesced_frames_all_come_back(self):
        frames = b"".join(pack_frame("heartbeat", {"n": i}) for i in range(5))
        assert len(FrameDecoder().feed(frames)) == 5

    def test_bad_magic_is_a_protocol_error(self):
        with pytest.raises(ProtocolError, match="magic"):
            FrameDecoder().feed(b"HTTP/1.1 200 OK\r\n\r\n")

    def test_absurd_length_is_a_protocol_error(self):
        header = struct.pack("!4sI", b"RPP\x01", MAX_FRAME_BYTES + 1)
        with pytest.raises(ProtocolError, match="limit"):
            FrameDecoder().feed(header)

    def test_undecodable_payload_is_a_protocol_error(self):
        blob = b"\x00not pickle"
        header = struct.pack("!4sI", b"RPP\x01", len(blob))
        with pytest.raises(ProtocolError, match="payload"):
            FrameDecoder().feed(header + blob)

    def test_non_message_payload_is_a_protocol_error(self):
        # well-formed pickle, wrong shape: not a (str, dict) message
        blob = pickle.dumps((1, 2))
        header = struct.pack("!4sI", b"RPP\x01", len(blob))
        with pytest.raises(ProtocolError, match="malformed"):
            FrameDecoder().feed(header + blob)


class TestMessageStream:
    def _pair(self):
        a, b = socket.socketpair()
        return MessageStream(a), MessageStream(b)

    def test_send_recv_roundtrip(self):
        left, right = self._pair()
        try:
            left.send("result", task_id=7, attempt=1)
            assert right.recv(timeout=5.0) == (
                "result",
                {"task_id": 7, "attempt": 1},
            )
        finally:
            left.close()
            right.close()

    def test_recv_timeout_returns_none(self):
        left, right = self._pair()
        try:
            assert right.recv(timeout=0.05) is None
        finally:
            left.close()
            right.close()

    def test_eof_raises_connection_closed(self):
        left, right = self._pair()
        left.close()
        try:
            with pytest.raises(ConnectionClosed):
                right.recv(timeout=5.0)
        finally:
            right.close()

    def test_concurrent_senders_never_interleave_frames(self):
        # the heartbeat thread and the task loop share one socket; the
        # send lock must keep every frame contiguous on the wire
        left, right = self._pair()
        try:
            threads = [
                threading.Thread(
                    target=lambda i=i: [
                        left.send("heartbeat", sender=i) for _ in range(50)
                    ]
                )
                for i in range(4)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            got = [right.recv(timeout=5.0) for _ in range(200)]
            assert all(kind == "heartbeat" for kind, _ in got)
        finally:
            left.close()
            right.close()
