"""Telemetry is pure observation: traced runs are byte-identical.

The flight recorder (docs/observability.md) draws nothing from the
rng and perturbs no float — so for every execution tier a run with
``--trace`` armed must land the exact leaderboard of the untraced
run.  This file locks that for serial, 2-worker multiprocess, and
loopback-remote portfolios, and pins the null recorder's zero-cost
contract: with telemetry off the hot loop makes *zero* recorder
calls per step.
"""

from __future__ import annotations

import pickle
import random
import threading

import pytest

from repro.anneal import GeometricSchedule, IncrementalAnnealer
from repro.bstar import BStarPlacerConfig
from repro.parallel import PortfolioRunner, WorkerClient
from repro.perf import IncrementalBStarEngine
from repro.telemetry import DEFAULT_SAMPLE_INTERVAL, NullRecorder

CIRCUIT = "gen:n=12,seed=1"
ENGINES = ("bstar", "hbtree")
STARTS = 4
FAST = (("alpha", 0.7), ("steps_per_epoch", 20), ("t_final", 1e-2))
JOIN_S = 120.0


def board(result):
    return [
        (o.spec.walk_id, o.best_cost, o.ref_cost, o.status)
        for o in result.leaderboard
    ]


def _run(**kwargs):
    return PortfolioRunner(
        CIRCUIT, ENGINES, starts=STARTS, overrides=FAST, **kwargs
    ).run()


@pytest.fixture(scope="module")
def untraced():
    return _run()


class TestTracedRunsAreByteIdentical:
    def test_serial(self, untraced, tmp_path):
        traced = _run(trace=tmp_path / "t")
        assert board(traced) == board(untraced)
        assert traced.cost == untraced.cost
        assert pickle.dumps(traced.placement) == pickle.dumps(untraced.placement)

    def test_two_workers(self, untraced, tmp_path):
        traced = _run(workers=2, trace=tmp_path / "t")
        assert board(traced) == board(untraced)
        assert pickle.dumps(traced.placement) == pickle.dumps(untraced.placement)

    def test_loopback_remote(self, untraced, tmp_path):
        threads: list[threading.Thread] = []

        def on_listen(address) -> None:
            for i in range(2):
                thread = threading.Thread(
                    target=WorkerClient(address, name=f"trace-w{i}").run,
                    daemon=True,
                )
                thread.start()
                threads.append(thread)

        traced = _run(
            listen=("127.0.0.1", 0), on_listen=on_listen, trace=tmp_path / "t"
        )
        for thread in threads:
            thread.join(timeout=JOIN_S)
            assert not thread.is_alive(), "loopback worker failed to exit"
        assert board(traced) == board(untraced)
        assert pickle.dumps(traced.placement) == pickle.dumps(untraced.placement)

    def test_traced_summary_reports_rates_and_health(self, tmp_path):
        result = _run(trace=tmp_path / "t")
        summary = result.summary()
        assert "steps/s" in summary  # per-walk rate column
        # clean run: the health suffix (chunk retries / respawns) stays
        # out of the banner because both counters are zero
        assert result.retries == 0 and result.respawns == 0
        assert "retr" not in summary
        import dataclasses

        noisy = dataclasses.replace(result, retries=2, respawns=1)
        assert "2 chunk retries, 1 respawn" in noisy.summary()


class _CountingRecorder(NullRecorder):
    """Null recorder that tallies every probe it receives."""

    __slots__ = ("calls",)

    def __init__(self):
        self.calls = 0

    def count(self, name, value=1, **fields):
        self.calls += 1

    def gauge(self, name, value, **fields):
        self.calls += 1

    def observe(self, name, value, **fields):
        self.calls += 1

    def event(self, name, wall=None, **fields):
        self.calls += 1


class _EnabledCountingRecorder(_CountingRecorder):
    """Same tally, but advertises itself as collecting."""

    __slots__ = ()
    enabled = True
    sample_interval = DEFAULT_SAMPLE_INTERVAL


def _annealer(recorder):
    config = BStarPlacerConfig(seed=0, alpha=0.85, t_final=1e-2)
    rng = random.Random(config.seed)
    modules, nets = _problem(24)
    engine = IncrementalBStarEngine(modules, nets, (), config)
    engine.reset(engine.initial_state(rng))
    schedule = GeometricSchedule(
        t_initial=config.t_initial,
        t_final=config.t_final,
        alpha=config.alpha,
        steps_per_epoch=config.steps_per_epoch,
    )
    annealer = IncrementalAnnealer(engine, schedule, rng)
    annealer.set_recorder(recorder)
    return annealer


def _problem(n, seed=0):
    from repro.geometry import Module, ModuleSet, Net

    rng = random.Random(seed)
    modules = ModuleSet.of(
        [Module.hard(f"m{i}", rng.uniform(1, 10), rng.uniform(1, 10)) for i in range(n)]
    )
    names = modules.names()
    nets = []
    for i in range(n):
        a, b = names[rng.randrange(n)], names[rng.randrange(n)]
        if a != b:
            nets.append(Net(f"n{i}", (a, b)))
    return modules, tuple(nets)


class TestNullRecorderCost:
    def test_disabled_recorder_sees_zero_probes(self):
        """With telemetry off the step loop must never touch the
        recorder: the ``enabled`` flag is hoisted once per chunk and
        every per-step probe sits behind it."""
        recorder = _CountingRecorder()
        annealer = _annealer(recorder)
        outcome = annealer.run()
        assert outcome.stats.steps > 0
        assert recorder.calls == 0

    def test_enabled_recorder_probe_count_is_sampled_not_per_step(self):
        """Collection costs O(steps / sample_interval) probes plus one
        chunk summary — never O(steps)."""
        recorder = _EnabledCountingRecorder()
        annealer = _annealer(recorder)
        outcome = annealer.run()
        steps = outcome.stats.steps
        assert steps > DEFAULT_SAMPLE_INTERVAL
        # sampled events + chunk summaries; far below one per step
        budget = steps // DEFAULT_SAMPLE_INTERVAL + 2
        assert 0 < recorder.calls <= budget
