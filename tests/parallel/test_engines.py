"""Engine registry: specs rebuild placers, budgets compress correctly."""

import pytest

from repro.circuit import miller_opamp
from repro.parallel import (
    ENGINE_NAMES,
    WalkSpec,
    build_placer,
    build_placer_by_name,
    compress_overrides,
    reference_cost,
    validate_engines,
    walk_total_steps,
)

FAST = (("alpha", 0.7), ("steps_per_epoch", 20), ("t_final", 1e-2))


def spec_for(engine: str, seed: int = 0, overrides=FAST) -> WalkSpec:
    return WalkSpec(0, "miller_opamp", engine, seed, overrides)


class TestRegistry:
    def test_engine_names_cover_all_annealing_placers(self):
        assert set(ENGINE_NAMES) == {"bstar", "hbtree", "seqpair", "slicing"}

    @pytest.mark.parametrize("engine", ENGINE_NAMES)
    def test_build_placer_exposes_the_walk_api(self, engine):
        placer = build_placer_by_name(spec_for(engine))
        for method in ("schedule", "engine", "initial_state", "finalize", "run"):
            assert callable(getattr(placer, method))

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            validate_engines(("bstar", "magic"))
        with pytest.raises(ValueError, match="at least one"):
            validate_engines(())

    def test_unknown_circuit_rejected(self):
        with pytest.raises(KeyError, match="unknown workload"):
            build_placer_by_name(WalkSpec(0, "nope", "bstar", 0, ()))


class TestBudgets:
    @pytest.mark.parametrize("engine", ENGINE_NAMES)
    def test_walk_total_matches_the_placer_schedule(self, engine):
        spec = spec_for(engine)
        placer = build_placer_by_name(spec)
        assert walk_total_steps(spec) == placer.schedule().total_steps

    @pytest.mark.parametrize("budget", [150, 600, 10_000])
    def test_compressed_schedule_fits_the_budget(self, budget):
        overrides = compress_overrides("bstar", FAST, budget)
        spec = spec_for("bstar", overrides=overrides)
        assert 0 < walk_total_steps(spec) <= budget

    def test_compression_below_one_step_per_epoch_raises(self):
        with pytest.raises(ValueError, match="below one step per epoch"):
            compress_overrides("bstar", FAST, 3)

    def test_compression_overrides_replace_steps_per_epoch(self):
        overrides = compress_overrides("bstar", FAST, 600)
        keys = [k for k, _ in overrides]
        assert keys.count("steps_per_epoch") == 1


class TestReferenceCost:
    def test_scores_every_engines_placement_on_one_scale(self):
        circuit = miller_opamp()
        ref = reference_cost(circuit)
        costs = {}
        for engine in ENGINE_NAMES:
            placer = build_placer(circuit, spec_for(engine))
            result = placer.run()
            costs[engine] = ref(result.placement)
        assert all(c > 0 and c != float("inf") for c in costs.values())

    def test_is_the_bstar_objective_plus_violation_penalties(self):
        # same formula, same weights: the flat placer's own cost plus
        # 2.0 per violated constraint IS the reference cost
        circuit = miller_opamp()
        placer = build_placer(circuit, spec_for("bstar"))
        result = placer.run()
        violations = circuit.constraints().violations(result.placement)
        assert reference_cost(circuit)(result.placement) == pytest.approx(
            result.cost + 2.0 * len(violations), rel=1e-9
        )

    def test_constraint_violations_demote_a_placement(self):
        circuit = miller_opamp()
        ref = reference_cost(circuit)
        clean = build_placer(circuit, spec_for("hbtree")).run().placement
        flat = build_placer(circuit, spec_for("bstar")).run().placement
        if circuit.constraints().violations(flat):
            assert ref(flat) > ref(clean)
