"""Distributed execution tier (repro.parallel.remote).

The contract under test is the tentpole one: a loopback distributed
run — any number of workers, any injected network failure — produces a
leaderboard *byte-identical* to the fault-free serial run, and always
terminates (recovery is bounded by the lease deadline, so every join
here carries a hard timeout).

Two worker harnesses:

* **thread workers** — ``WorkerClient.run()`` on a daemon thread.
  Fast, and exactly the code path a remote process runs; used for the
  socket-level faults (``disconnect``, ``stall-heartbeat``,
  ``duplicate-result``).
* **process workers** — ``run_worker`` in a subprocess.  Required for
  ``die`` (``os._exit`` would take the test process down from a
  thread) and for killing a worker from outside mid-run.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

import repro
from repro.parallel import (
    ChunkTask,
    Fault,
    FaultPlan,
    WalkSpec,
    WorkerClient,
)
from repro.parallel.net import (
    MessageStream,
    bound_address,
    connect_socket,
    format_address,
    listen_socket,
)
from repro.parallel.remote import RemoteExecutor
from repro.parallel.runner import PortfolioRunner, _ChunkSupervisor

CIRCUIT = "gen:n=12,seed=1"
ENGINES = ("bstar", "hbtree")
STARTS = 4
#: fast schedules: whole-portfolio serial run ~0.1s
FAST = (("alpha", 0.7), ("steps_per_epoch", 20), ("t_final", 1e-2))

#: short lease so stall/expiry tests stay fast; heartbeats well inside
LEASE_S = 1.5
#: hard cap on any distributed run in this file — a run that needs
#: longer has hung, which is itself the bug being tested for
JOIN_S = 120.0


def board(result):
    return [
        (o.spec.walk_id, o.best_cost, o.ref_cost, o.status)
        for o in result.leaderboard
    ]


@pytest.fixture(scope="module")
def serial_board():
    result = PortfolioRunner(
        CIRCUIT, ENGINES, starts=STARTS, overrides=FAST
    ).run()
    return board(result)


def _runner(**kwargs):
    return PortfolioRunner(
        CIRCUIT, ENGINES, starts=STARTS, overrides=FAST, **kwargs
    )


def _start_coordinator(**kwargs):
    """Run a listening runner on a thread; returns (bound address,
    result box, thread).  The box holds ``res`` or ``exc`` at join."""
    ready = threading.Event()
    box: dict = {}

    def on_listen(address) -> None:
        box["addr"] = address
        ready.set()

    runner = _runner(listen=("127.0.0.1", 0), on_listen=on_listen, **kwargs)

    def drive() -> None:
        try:
            box["res"] = runner.run()
        except BaseException as exc:  # surfaced by the test at join
            box["exc"] = exc
            ready.set()

    thread = threading.Thread(target=drive, daemon=True)
    thread.start()
    assert ready.wait(30), "coordinator never bound its socket"
    if "exc" in box:
        raise box["exc"]
    return box["addr"], box, thread


def _join(box, thread):
    thread.join(timeout=JOIN_S)
    assert not thread.is_alive(), "distributed run hung past the join cap"
    if "exc" in box:
        raise box["exc"]
    return box["res"]


def _thread_worker(address, name):
    thread = threading.Thread(
        target=WorkerClient(address, name=name).run, daemon=True
    )
    thread.start()
    return thread


def _spawn_worker(address, name) -> subprocess.Popen:
    """One real worker process (required for die/kill scenarios)."""
    code = (
        "import sys\n"
        "from repro.parallel.remote import run_worker\n"
        f"sys.exit(run_worker({format_address(address)!r}, name={name!r}))\n"
    )
    env = dict(os.environ)
    src = str(Path(repro.__file__).resolve().parents[1])
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen([sys.executable, "-c", code], env=env)


def _reap(procs) -> None:
    for proc in procs:
        try:
            proc.wait(timeout=30)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait(timeout=10)


class TestLoopbackIdentity:
    def test_two_thread_workers_match_serial(self, serial_board):
        addr, box, thread = _start_coordinator(lease_timeout=LEASE_S)
        for i in range(2):
            _thread_worker(addr, f"w{i}")
        assert board(_join(box, thread)) == serial_board

    def test_two_process_workers_match_serial(self, serial_board):
        addr, box, thread = _start_coordinator(lease_timeout=LEASE_S)
        procs = [_spawn_worker(addr, f"p{i}") for i in range(2)]
        try:
            result = _join(box, thread)
        finally:
            _reap(procs)
        assert board(result) == serial_board
        # orderly shutdown: both workers got the shutdown frame
        assert [p.returncode for p in procs] == [0, 0]

    def test_single_worker_matches_serial(self, serial_board):
        # worker count is scheduling, never arithmetic
        addr, box, thread = _start_coordinator(lease_timeout=LEASE_S)
        _thread_worker(addr, "solo")
        assert board(_join(box, thread)) == serial_board


class TestNetworkFaults:
    @pytest.mark.parametrize(
        "kind", ["disconnect", "stall-heartbeat", "duplicate-result"]
    )
    def test_fault_recovers_byte_identically(self, kind, serial_board):
        plan = FaultPlan([Fault(1, 1, kind)])
        addr, box, thread = _start_coordinator(
            lease_timeout=LEASE_S, fault_plan=plan
        )
        for i in range(2):
            _thread_worker(addr, f"w{i}")
        result = _join(box, thread)
        assert board(result) == serial_board
        # recovery, not quarantine: the retried chunk ran clean
        assert not result.failures

    def test_stall_heartbeat_recovery_is_lease_bounded(self, serial_board):
        # the lease must expire (and the chunk re-dispatch) while the
        # stalled worker is still silent — the run finishes well before
        # the staller would have answered on its own
        plan = FaultPlan([Fault(0, 1, "stall-heartbeat")])
        started = time.monotonic()
        addr, box, thread = _start_coordinator(
            lease_timeout=LEASE_S, fault_plan=plan
        )
        for i in range(2):
            _thread_worker(addr, f"w{i}")
        result = _join(box, thread)
        elapsed = time.monotonic() - started
        assert board(result) == serial_board
        # stall sleeps LEASE_S * 1.5 and the serial run is ~0.1s: a run
        # gated on the *lease* finishes around LEASE_S; one gated on
        # the staller could not finish before its sleep ends.  The cap
        # is loose (CI boxes are slow) but still excludes unbounded
        # waiting on a partitioned worker.
        assert elapsed < JOIN_S / 2

    def test_die_fault_under_process_workers(self, serial_board):
        # the worker holding walk 1 chunk 1 os._exit()s mid-lease; EOF
        # reclaims the lease and the survivor replays the chunk
        plan = FaultPlan([Fault(1, 1, "die")])
        addr, box, thread = _start_coordinator(
            lease_timeout=LEASE_S, fault_plan=plan
        )
        procs = [_spawn_worker(addr, f"p{i}") for i in range(2)]
        try:
            result = _join(box, thread)
        finally:
            _reap(procs)
        assert board(result) == serial_board
        assert not result.failures

    def test_random_fault_plans_always_converge(self, serial_board):
        """Property-style sweep: random mixes of die / disconnect /
        stall-heartbeat across a loopback 2-worker run never change the
        leaderboard.  Seeded, so a failure names its plan exactly."""
        import random as random_mod

        kinds = ("die", "disconnect", "stall-heartbeat")
        for seed in range(3):
            rng = random_mod.Random(seed)
            sites = rng.sample(
                [(w, c) for w in range(STARTS) for c in range(1, 4)],
                k=rng.randint(1, 3),
            )
            plan = FaultPlan(
                [Fault(w, c, rng.choice(kinds)) for w, c in sites]
            )
            addr, box, thread = _start_coordinator(
                lease_timeout=LEASE_S, fault_plan=plan
            )
            procs = [_spawn_worker(addr, f"p{i}") for i in range(2)]
            try:
                result = _join(box, thread)
            finally:
                _reap(procs)
            assert board(result) == serial_board, f"plan diverged: {plan!r}"
            assert not result.failures, f"plan quarantined a walk: {plan!r}"


class TestDegradation:
    def test_no_workers_degrades_to_inline(self, serial_board):
        # nobody ever connects: after the fallback grace the
        # coordinator executes every chunk itself — slower, never wrong
        result = _runner(listen=("127.0.0.1", 0), lease_timeout=0.3).run()
        assert board(result) == serial_board

    def test_killed_worker_mid_run_recovers(self, serial_board):
        # SIGKILL one of two workers once chunks are flowing: its lease
        # reclaims on EOF and the survivor finishes the run
        chunks_seen = threading.Event()
        events = []

        def on_event(event) -> None:
            events.append(event)
            if len(events) >= 2:
                chunks_seen.set()

        addr, box, thread = _start_coordinator(
            lease_timeout=LEASE_S, on_event=on_event
        )
        procs = [_spawn_worker(addr, f"p{i}") for i in range(2)]
        try:
            assert chunks_seen.wait(60), "no chunks completed"
            procs[0].send_signal(signal.SIGKILL)
            result = _join(box, thread)
        finally:
            _reap(procs)
        assert board(result) == serial_board
        assert not result.failures

    def test_sole_worker_killed_falls_back_inline(self, serial_board):
        # the only worker dies and never returns: the run must degrade
        # to coordinator-side execution rather than hang
        chunks_seen = threading.Event()

        def on_event(event) -> None:
            chunks_seen.set()

        addr, box, thread = _start_coordinator(
            lease_timeout=0.5, on_event=on_event
        )
        proc = _spawn_worker(addr, "doomed")
        try:
            assert chunks_seen.wait(60), "no chunks completed"
            proc.send_signal(signal.SIGKILL)
            result = _join(box, thread)
        finally:
            _reap([proc])
        assert board(result) == serial_board


class TestHandshake:
    def test_wrong_version_peer_is_rejected(self):
        """A peer speaking a different protocol version gets a reject
        frame at hello time, and the run proceeds without it."""
        supervisor = _ChunkSupervisor(2, None, False)
        executor = RemoteExecutor(
            ("127.0.0.1", 0), supervisor, lease_timeout=LEASE_S
        )
        try:
            address = bound_address(executor._listener)
            spec = WalkSpec(0, CIRCUIT, "bstar", 0, FAST)
            executor.dispatch(
                ChunkTask(spec=spec, checkpoint=None, max_steps=20)
            )
            box: dict = {}
            collector = threading.Thread(
                target=lambda: box.update(out=executor.collect()), daemon=True
            )
            collector.start()
            # the imposter: right framing, wrong version
            imposter = MessageStream(connect_socket(address, timeout=5.0))
            imposter.send("hello", version=9999, name="imposter")
            kind, payload = imposter.recv(timeout=10.0)
            assert kind == "reject"
            assert "9999" in payload["reason"]
            imposter.close()
            # a well-versioned worker still completes the chunk
            _thread_worker(address, "honest")
            collector.join(timeout=JOIN_S)
            assert not collector.is_alive()
            assert box["out"].walk_id == 0
        finally:
            executor.close()

    def test_rejected_client_exits_with_code_2(self):
        """A coordinator that rejects the handshake ends the client
        with the distinctive version-mismatch exit code."""
        server = listen_socket(("127.0.0.1", 0))

        def coordinator() -> None:
            sock, _ = server.accept()
            stream = MessageStream(sock)
            assert stream.recv(timeout=10.0)[0] == "hello"
            stream.send("reject", reason="protocol version mismatch")
            stream.close()

        thread = threading.Thread(target=coordinator, daemon=True)
        thread.start()
        try:
            client = WorkerClient(
                bound_address(server), name="old", max_reconnects=0
            )
            assert client.run() == 2
        finally:
            thread.join(timeout=10)
            server.close()


class TestValidation:
    def test_listen_excludes_local_workers(self):
        with pytest.raises(ValueError, match="mutually exclusive"):
            _runner(listen=("127.0.0.1", 0), workers=4)

    def test_network_faults_need_listen(self):
        plan = FaultPlan([Fault(0, 0, "disconnect")])
        with pytest.raises(ValueError, match="listen"):
            _runner(fault_plan=plan, workers=2)

    def test_remote_hang_needs_chunk_timeout(self):
        # a hung remote chunk still heartbeats; only the hard per-chunk
        # deadline can revoke its lease
        plan = FaultPlan([Fault(0, 0, "hang")])
        with pytest.raises(ValueError, match="chunk_timeout"):
            _runner(fault_plan=plan, listen=("127.0.0.1", 0))

    def test_heartbeat_must_beat_the_lease(self):
        with pytest.raises(ValueError, match="shorter than lease_timeout"):
            _runner(
                listen=("127.0.0.1", 0),
                lease_timeout=1.0,
                heartbeat_interval=1.0,
            )

    def test_chunk_timeout_allowed_with_listen(self):
        # previously chunk_timeout required local workers; the remote
        # tier is the other executor that can preempt a chunk
        runner = _runner(listen=("127.0.0.1", 0), chunk_timeout=30.0)
        assert runner is not None

    def test_die_allowed_with_listen(self):
        plan = FaultPlan([Fault(0, 0, "die")])
        runner = _runner(fault_plan=plan, listen=("127.0.0.1", 0))
        assert runner is not None
