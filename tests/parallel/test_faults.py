"""Fault-tolerant execution: retry, quarantine, supervision, timeouts.

Every failure mode is injected deterministically through a
:class:`FaultPlan` (see ``repro/parallel/faults.py``), so the retry /
quarantine / respawn machinery is exercised bit-reproducibly.  The
load-bearing invariants:

* a *transient* fault (retry succeeds) leaves the result byte-identical
  to a fault-free run — re-running a chunk is a pure function replay;
* a *deterministic* fault quarantines its walk and the survivors'
  leaderboard rows match the fault-free run's rows exactly;
* worker death (``die``), wedged workers (``hang`` + timeout) and an
  externally SIGKILLed task-holder all end in a finished run, never a
  hang.

Process-pool cases run under ``workers=2`` (the minimum that exercises
supervision); everything else runs inline for speed.
"""

import multiprocessing
import os
import signal
import threading
import time

import pytest

from repro.parallel import (
    FAILED,
    PortfolioRunner,
    ChunkTask,
    Fault,
    FaultInjected,
    FaultPlan,
    WalkSpec,
)
from repro.parallel.jobs import ChunkFailure, ChunkResult
from repro.parallel.runner import (
    _ChunkSupervisor,
    _ProcessExecutor,
    _WorkerHandle,
    _execute,
)

#: short schedules so a walk is a few hundred steps
FAST = (("alpha", 0.7), ("steps_per_epoch", 20), ("t_final", 1e-2))


def run_portfolio(**kwargs):
    kwargs.setdefault("overrides", FAST)
    return PortfolioRunner("miller_opamp", **kwargs).run()


def board(result):
    return [
        (o.spec.walk_id, o.spec.engine, o.spec.seed, o.best_cost, o.ref_cost, o.status)
        for o in result.leaderboard
    ]


class TestFaultPlan:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            Fault(0, 0, "explode")

    def test_negative_targets_rejected(self):
        with pytest.raises(ValueError, match="walk_id"):
            Fault(-1, 0, "raise")
        with pytest.raises(ValueError, match="chunk"):
            Fault(0, -1, "raise")
        with pytest.raises(ValueError, match="attempts"):
            Fault(0, 0, "raise", attempts=(-1,))

    def test_duplicate_site_rejected(self):
        with pytest.raises(ValueError, match="duplicate fault"):
            FaultPlan([Fault(0, 1, "raise"), Fault(0, 1, "die")])

    def test_fires_on_attempts(self):
        transient = Fault(0, 0, "raise")  # attempts defaults to (0,)
        assert transient.fires_on(0) and not transient.fires_on(1)
        always = Fault(0, 0, "raise", attempts=None)
        assert always.fires_on(0) and always.fires_on(7)
        plan = FaultPlan([Fault(2, 1, "raise", attempts=(1,))])
        assert plan.fault_for(2, 1, 0) is None
        assert plan.fault_for(2, 1, 1) == "raise"
        assert plan.fault_for(2, 0, 1) is None  # different chunk

    def test_needs_processes(self):
        assert not FaultPlan([Fault(0, 0, "raise")]).needs_processes
        assert FaultPlan([Fault(0, 0, "die")]).needs_processes
        assert FaultPlan([Fault(0, 0, "hang")]).needs_processes

    def test_needs_network(self):
        assert not FaultPlan([Fault(0, 0, "die")]).needs_network
        for kind in ("disconnect", "stall-heartbeat", "duplicate-result"):
            assert FaultPlan([Fault(0, 0, kind)]).needs_network

    def test_has_kind(self):
        plan = FaultPlan([Fault(0, 0, "die"), Fault(1, 0, "disconnect")])
        assert plan.has_kind("die") and plan.has_kind("disconnect")
        assert not plan.has_kind("hang")

    def test_hang_or_die_requires_workers(self):
        with pytest.raises(ValueError, match="workers > 1"):
            PortfolioRunner(
                "miller_opamp",
                overrides=FAST,
                fault_plan=FaultPlan([Fault(0, 0, "die")]),
            )

    def test_fault_past_last_chunk_rejected_at_run(self):
        plan = FaultPlan([Fault(0, 99, "raise")])
        plan.validate_chunks({1: 4})  # unknown walk ids are left alone
        with pytest.raises(ValueError, match="would never fire"):
            run_portfolio(starts=2, fault_plan=plan)


class TestRetryAndQuarantine:
    def test_transient_fault_is_byte_identical_to_fault_free(self):
        base = run_portfolio(starts=4)
        faulted = run_portfolio(
            starts=4, fault_plan=FaultPlan([Fault(1, 1, "raise")])
        )
        assert board(faulted) == board(base)
        assert not faulted.failures

    def test_deterministic_fault_quarantines_the_walk(self):
        base = run_portfolio(starts=4)
        result = run_portfolio(
            starts=4,
            fault_plan=FaultPlan([Fault(1, 1, "raise", attempts=None)]),
        )
        assert len(result.failures) == 1
        failure = result.failures[0]
        assert failure.spec.walk_id == 1
        assert failure.reason == "error"
        assert failure.attempts == 3  # 1 + max_retries (default 2)
        assert "FaultInjected" in failure.detail
        assert failure.steps > 0  # chunk 1 failed, chunk 0 landed
        # the survivors' rows are exactly the fault-free rows
        assert board(result) == [row for row in board(base) if row[0] != 1]

    def test_failure_surfaces_in_summary_and_events(self):
        events = []
        result = run_portfolio(
            starts=4,
            on_event=events.append,
            fault_plan=FaultPlan([Fault(1, 0, "raise", attempts=None)]),
        )
        text = result.summary()
        assert "1 failed" in text
        assert "walk 1 [hbtree/1] FAILED (error)" in text
        failed = [e for e in events if e.status == FAILED]
        assert [e.walk_id for e in failed] == [1]

    def test_max_retries_zero_quarantines_first_failure(self):
        result = run_portfolio(
            starts=2,
            max_retries=0,
            fault_plan=FaultPlan([Fault(0, 0, "raise")]),  # transient!
        )
        # with no retries even a transient fault is terminal
        assert len(result.failures) == 1
        assert result.failures[0].attempts == 1

    def test_strict_reraises_the_original_exception_inline(self):
        with pytest.raises(FaultInjected):
            run_portfolio(
                starts=2,
                strict=True,
                fault_plan=FaultPlan([Fault(0, 0, "raise")]),
            )

    def test_every_walk_failing_raises(self):
        with pytest.raises(RuntimeError, match="every walk in the portfolio failed"):
            run_portfolio(
                starts=2,
                fault_plan=FaultPlan(
                    [
                        Fault(0, 0, "raise", attempts=None),
                        Fault(1, 0, "raise", attempts=None),
                    ]
                ),
            )

    def test_rebalance_budget_accounting_under_faults(self):
        """A failed walk forfeits its unspent budget: steps across the
        leaderboard plus steps the failed walks completed never exceed
        the budget, and the degraded run stays deterministic."""
        kwargs = dict(
            starts=4,
            budget=800,
            restart_policy="rebalance",
            fault_plan=FaultPlan([Fault(2, 1, "raise", attempts=None)]),
        )
        a = run_portfolio(**kwargs)
        b = run_portfolio(**kwargs)
        assert board(a) == board(b)
        assert [f.spec.walk_id for f in a.failures] == [2]
        spent = a.total_steps + sum(f.steps for f in a.failures)
        assert spent <= 800

    def test_polish_failure_keeps_the_winner(self):
        """The polish walk rides the fault machinery too: when it is
        quarantined the already-final winner stands."""
        base = run_portfolio(starts=3, budget=500)
        polish = [o for o in base.leaderboard if o.status == "polish"]
        assert polish, "config must leave slack for a polish walk"
        polish_id = polish[0].spec.walk_id
        result = run_portfolio(
            starts=3,
            budget=500,
            fault_plan=FaultPlan([Fault(polish_id, 0, "raise", attempts=None)]),
        )
        assert result.cost == base.cost
        assert [f.spec.walk_id for f in result.failures] == [polish_id]


class TestInvalidKnobs:
    def test_negative_max_retries_rejected(self):
        with pytest.raises(ValueError, match="max_retries"):
            PortfolioRunner("miller_opamp", max_retries=-1)

    def test_chunk_timeout_requires_processes(self):
        with pytest.raises(ValueError, match="workers > 1"):
            PortfolioRunner("miller_opamp", chunk_timeout=5.0)

    def test_non_positive_chunk_timeout_rejected(self):
        with pytest.raises(ValueError, match="chunk_timeout"):
            PortfolioRunner("miller_opamp", workers=2, chunk_timeout=0.0)

    def test_negative_max_respawns_rejected(self):
        with pytest.raises(ValueError, match="max_respawns"):
            PortfolioRunner("miller_opamp", workers=2, max_respawns=-1)


class TestProcessSupervision:
    """Spawn-pool failure modes: each test pays real process startup."""

    def test_worker_death_respawns_and_stays_byte_identical(self):
        base = run_portfolio(starts=4)
        faulted = run_portfolio(
            starts=4,
            workers=2,
            on_event=(events := []).append,
            fault_plan=FaultPlan([Fault(2, 0, "die")]),
        )
        assert board(faulted) == board(base)
        assert not faulted.failures
        # the lost chunk was retried (the retry incident is the visible
        # trace of death -> respawn -> re-dispatch)
        assert any(e.walk_id == 2 and e.status == "retry" for e in events)

    def test_hung_chunk_is_killed_by_the_timeout(self):
        base = run_portfolio(starts=4)
        result = run_portfolio(
            starts=4,
            workers=2,
            chunk_timeout=5.0,
            max_retries=0,
            fault_plan=FaultPlan([Fault(3, 0, "hang", attempts=None)]),
        )
        assert len(result.failures) == 1
        assert result.failures[0].reason == "timeout"
        assert result.failures[0].spec.walk_id == 3
        assert board(result) == [row for row in board(base) if row[0] != 3]

    def test_strict_process_failure_names_the_walk(self):
        with pytest.raises(RuntimeError, match="worker failed on walk 0"):
            run_portfolio(
                starts=2,
                workers=2,
                strict=True,
                fault_plan=FaultPlan([Fault(0, 0, "raise")]),
            )

    def test_sigkilled_task_holder_does_not_hang_collect(self):
        """Regression: some workers alive, the task-holder SIGKILLed.

        The coordinator must notice the death (pipe EOF), respawn, and
        re-dispatch the lost chunk — ``collect`` historically span
        forever because liveness was only checked when *no* results
        were pending anywhere."""
        spec0 = WalkSpec(0, "miller_opamp", "bstar", 0, FAST)
        spec1 = WalkSpec(1, "miller_opamp", "hbtree", 1, FAST)
        supervisor = _ChunkSupervisor(
            max_retries=2,
            fault_plan=FaultPlan([Fault(0, 0, "hang")]),  # parks the holder
            strict=False,
        )
        executor = _ProcessExecutor(2, supervisor)
        try:
            executor.dispatch(ChunkTask(spec=spec0, checkpoint=None, max_steps=40))
            executor.dispatch(ChunkTask(spec=spec1, checkpoint=None, max_steps=40))
            first = _collect_with_deadline(executor)  # walk 1: healthy worker
            assert isinstance(first, ChunkResult) and first.walk_id == 1
            holder = next(
                worker_id
                for worker_id, inflight in executor._owner.items()
                if inflight.task.spec.walk_id == 0
            )
            os.kill(executor._workers[holder].proc.pid, signal.SIGKILL)
            second = _collect_with_deadline(executor)
            # the retry (attempt 1) is not armed, so the chunk lands
            assert isinstance(second, ChunkResult) and second.walk_id == 0
        finally:
            executor.close()

    def test_close_with_sigkilled_workers_does_not_deadlock(self):
        supervisor = _ChunkSupervisor(max_retries=0, fault_plan=None, strict=False)
        executor = _ProcessExecutor(2, supervisor)
        for handle in executor._workers.values():
            handle.proc.join(timeout=0.1)  # let spawn finish starting
            os.kill(handle.proc.pid, signal.SIGKILL)
        started = time.monotonic()
        executor.close()
        assert time.monotonic() - started < 15

    def test_respawn_budget_exhaustion_raises_not_hangs(self):
        """Workers dying faster than the respawn cap must end in the
        all-workers-exited error, never a silent spin."""
        with pytest.raises(RuntimeError, match="all portfolio workers exited"):
            run_portfolio(
                starts=4,
                workers=2,
                max_respawns=1,
                max_retries=5,
                fault_plan=FaultPlan(
                    [
                        Fault(0, 0, "die", attempts=None),
                        Fault(1, 0, "die", attempts=None),
                        Fault(2, 0, "die", attempts=None),
                    ]
                ),
            )


class _FakeProc:
    """Stand-in worker process for driving _ProcessExecutor by hand."""

    pid = -1
    exitcode = None

    def is_alive(self) -> bool:
        return True

    def join(self, timeout=None) -> None:
        pass


class _FakeQueue:
    """Task-queue stub that just records what the coordinator sent."""

    def __init__(self) -> None:
        self.items: list = []

    def put(self, item) -> None:
        self.items.append(item)


class TestStaleResultEpoch:
    """Satellite regression: results from superseded attempts.

    A re-dispatched chunk (its predecessor timed out, or its worker was
    declared dead) can race the predecessor's late answer.  Every
    dispatch is stamped with its ``(task_id, attempt)`` epoch and the
    coordinator discards any result echoing a stale stamp — counting it
    would double-book the walk's progress and hand the *next* chunk a
    wrong checkpoint.
    """

    def _rigged_executor(self):
        """A 0-worker pool plus one hand-driven fake worker, so the test
        can write arbitrary (including stale) result messages into the
        exact pipe ``collect`` reads."""
        supervisor = _ChunkSupervisor(max_retries=2, fault_plan=None, strict=False)
        executor = _ProcessExecutor(0, supervisor)
        recv_conn, send_conn = multiprocessing.Pipe(duplex=False)
        handle = _WorkerHandle(0, _FakeProc(), _FakeQueue(), recv_conn)
        executor._workers[0] = handle
        executor._idle.append(0)
        return executor, handle, send_conn

    def _teardown(self, executor, send_conn) -> None:
        send_conn.close()
        for handle in executor._workers.values():
            handle.conn.close()
        executor._workers.clear()
        executor._idle.clear()
        executor._owner.clear()
        executor.close()

    def test_stale_attempt_result_is_discarded(self):
        executor, handle, send_conn = self._rigged_executor()
        try:
            spec = WalkSpec(0, "miller_opamp", "bstar", 0, FAST)
            executor.dispatch(ChunkTask(spec=spec, checkpoint=None, max_steps=40))
            task_id, attempt, armed = handle.task_queue.items[0]
            bogus = ChunkResult(walk_id=0, checkpoint="NOT A CHECKPOINT")
            # the predecessor's late answer: same task, superseded epoch
            send_conn.send(("ok", task_id, attempt + 1, bogus))
            genuine = _execute(armed)
            send_conn.send(("ok", task_id, attempt, genuine))
            out = _collect_with_deadline(executor)
            assert isinstance(out, ChunkResult)
            assert out.checkpoint.step == genuine.checkpoint.step
            assert out.checkpoint.best_cost == genuine.checkpoint.best_cost
        finally:
            self._teardown(executor, send_conn)

    def test_stale_task_id_result_is_discarded(self):
        executor, handle, send_conn = self._rigged_executor()
        try:
            spec = WalkSpec(0, "miller_opamp", "bstar", 0, FAST)
            executor.dispatch(ChunkTask(spec=spec, checkpoint=None, max_steps=40))
            task_id, attempt, armed = handle.task_queue.items[0]
            bogus = ChunkResult(walk_id=0, checkpoint="NOT A CHECKPOINT")
            # an answer to a task that was never this dispatch at all
            send_conn.send(("ok", task_id + 99, attempt, bogus))
            genuine = _execute(armed)
            send_conn.send(("ok", task_id, attempt, genuine))
            out = _collect_with_deadline(executor)
            assert isinstance(out, ChunkResult)
            assert out.checkpoint.step == genuine.checkpoint.step
        finally:
            self._teardown(executor, send_conn)

    def test_supervisor_epoch_bookkeeping(self):
        supervisor = _ChunkSupervisor(max_retries=2, fault_plan=None, strict=False)
        chunk = supervisor.begin_chunk(5)
        assert supervisor.is_current(5, chunk, 0)
        assert not supervisor.is_current(5, chunk, 1)  # future attempt
        assert supervisor.record_failure(5)  # attempt 0 burned -> retry
        assert supervisor.is_current(5, chunk, 1)
        assert not supervisor.is_current(5, chunk, 0)  # superseded
        next_chunk = supervisor.begin_chunk(5)
        assert not supervisor.is_current(5, chunk, 1)  # old chunk
        assert supervisor.is_current(5, next_chunk, 0)


def _collect_with_deadline(executor, timeout_s: float = 90.0):
    """Run ``executor.collect()`` under a hard deadline so a supervision
    regression fails the test instead of hanging the suite."""
    box: list = []

    def run() -> None:
        try:
            box.append(executor.collect())
        except BaseException as exc:  # surfaced below
            box.append(exc)

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    thread.join(timeout=timeout_s)
    assert box, f"collect() hung for {timeout_s}s"
    result = box[0]
    if isinstance(result, BaseException):
        raise result
    assert isinstance(result, (ChunkResult, ChunkFailure))
    return result
