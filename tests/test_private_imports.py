"""Tier-1 wiring for ``tools/check_private_imports.py``.

The unified cost layer exists precisely so no package has to reach
into another's underscore names (the portfolio once imported
``bstar.placer._CostModel``); this test keeps the tree clean forever
and pins the checker's own detection logic against synthetic trees.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))

import check_private_imports  # noqa: E402


class TestRepoIsClean:
    def test_src_has_no_cross_package_private_imports(self):
        assert check_private_imports.scan() == []

    def test_main_exit_code_clean(self, capsys):
        assert check_private_imports.main([]) == 0
        assert "no cross-package private imports" in capsys.readouterr().out

    def test_workloads_package_is_covered(self):
        """The checker discovers packages by walking src/repro — newly
        added packages (here: workloads) must actually be visited, and a
        violation planted in one must be flagged (checked on a copy)."""
        src = REPO_ROOT / "src"
        scanned = sorted((src / "repro" / "workloads").rglob("*.py"))
        assert scanned, "repro/workloads not found where the checker scans"
        for path in scanned:
            # check_file on the real files: clean, and no crash
            assert check_private_imports.check_file(path, src, "repro") == []

    def test_planted_workloads_violation_is_flagged(self, tmp_path):
        src = _write_tree(
            tmp_path,
            {
                "repro/__init__.py": "",
                "repro/circuit/__init__.py": "_hidden = 1\n",
                "repro/workloads/__init__.py": "",
                "repro/workloads/registry.py": (
                    "from ..circuit import _hidden\n"
                ),
            },
        )
        violations = check_private_imports.scan(src)
        assert len(violations) == 1
        assert "repro/workloads/registry.py" in violations[0].replace("\\", "/")


def _write_tree(root: Path, files: dict[str, str]) -> Path:
    for rel, content in files.items():
        path = root / "src" / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(content)
    return root / "src"


class TestDetection:
    def test_flags_cross_package_private_import(self, tmp_path, capsys):
        src = _write_tree(
            tmp_path,
            {
                "repro/__init__.py": "",
                "repro/alpha/__init__.py": "",
                "repro/alpha/mod.py": "_secret = 1\n",
                "repro/beta/__init__.py": "from ..alpha.mod import _secret\n",
            },
        )
        violations = check_private_imports.scan(src)
        assert len(violations) == 1
        assert "from repro.alpha.mod import _secret" in violations[0]
        assert check_private_imports.main([str(src)]) == 1
        assert "_secret" in capsys.readouterr().out

    def test_absolute_form_is_flagged_too(self, tmp_path):
        src = _write_tree(
            tmp_path,
            {
                "repro/__init__.py": "",
                "repro/alpha/__init__.py": "_x = 1\n",
                "repro/beta/__init__.py": "from repro.alpha import _x\n",
            },
        )
        assert len(check_private_imports.scan(src)) == 1

    def test_same_package_private_import_is_fine(self, tmp_path):
        src = _write_tree(
            tmp_path,
            {
                "repro/__init__.py": "",
                "repro/alpha/__init__.py": "",
                "repro/alpha/helpers.py": "_shared = 2\n",
                "repro/alpha/mod.py": "from .helpers import _shared\n",
            },
        )
        assert check_private_imports.scan(src) == []

    def test_public_and_external_imports_are_ignored(self, tmp_path):
        src = _write_tree(
            tmp_path,
            {
                "repro/__init__.py": "",
                "repro/alpha/__init__.py": "public = 1\n",
                "repro/beta/__init__.py": (
                    "from os.path import _joinrealpath  # stdlib: not ours\n"
                    "from ..alpha import public\n"
                    "from dataclasses import dataclass\n"
                ),
            },
        )
        assert check_private_imports.scan(src) == []

    def test_dunder_names_are_exempt(self, tmp_path):
        src = _write_tree(
            tmp_path,
            {
                "repro/__init__.py": "__version__ = '1'\n",
                "repro/alpha/__init__.py": "from .. import __version__\n",
            },
        )
        assert check_private_imports.scan(src) == []
