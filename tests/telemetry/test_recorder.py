"""The flight recorder's write side (repro.telemetry.recorder).

Covers the event wire format (fields/wall split, header line, schema
pin), the bind/span/flush lifecycle, and the null recorder's strict
no-op contract.  The read side lives in
``tests/analysis/test_trace.py``; the zero-per-step cost property is
pinned in ``tests/parallel/test_trace_identity.py``.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.telemetry import (
    DEFAULT_SAMPLE_INTERVAL,
    NULL_RECORDER,
    NullRecorder,
    TRACE_SCHEMA,
    TraceConfig,
    TraceRecorder,
)


def events_of(path):
    return [json.loads(line) for line in path.read_text().splitlines()]


class TestTraceRecorder:
    def test_header_is_first_line_and_pins_schema(self, tmp_path):
        with TraceRecorder(tmp_path, stream="s") as rec:
            rec.count("hits")
        head = events_of(rec.path)[0]
        assert head["kind"] == "header"
        assert head["fields"] == {"schema": TRACE_SCHEMA, "stream": "s"}

    def test_every_event_splits_fields_from_wall(self, tmp_path):
        with TraceRecorder(tmp_path, stream="s") as rec:
            rec.count("hits", walk=3)
            rec.gauge("temp", 0.5, step=100)
            rec.observe("repack", 7)
            rec.event("custom", wall={"elapsed_s": 1.0}, step=2)
        kinds = {}
        for event in events_of(rec.path)[1:]:
            kinds[event["kind"]] = event
            # deterministic content never leaks into wall and vice versa
            assert set(event["wall"]) >= {"t", "seq", "pid"}
            assert event["wall"]["pid"] == os.getpid()
            assert "t" not in event["fields"]
        assert kinds["count"]["fields"] == {"value": 1, "walk": 3}
        assert kinds["gauge"]["fields"] == {"value": 0.5, "step": 100}
        assert kinds["hist"]["fields"] == {"value": 7}
        assert kinds["event"]["fields"] == {"step": 2}
        assert kinds["event"]["wall"]["elapsed_s"] == 1.0

    def test_seq_is_a_per_stream_counter(self, tmp_path):
        with TraceRecorder(tmp_path, stream="s") as rec:
            for _ in range(5):
                rec.count("hits")
        seqs = [e["wall"]["seq"] for e in events_of(rec.path)]
        assert seqs == list(range(6))  # header + 5 counts

    def test_bind_stamps_labels_and_shares_the_stream(self, tmp_path):
        with TraceRecorder(tmp_path, stream="s") as rec:
            bound = rec.bind(walk=1, engine="bstar")
            bound.event("anneal.sample", step=0)
            bound.bind(chunk=2).count("x")
        events = events_of(rec.path)[1:]
        assert events[0]["fields"] == {"walk": 1, "engine": "bstar", "step": 0}
        assert events[1]["fields"] == {
            "walk": 1,
            "engine": "bstar",
            "chunk": 2,
            "value": 1,
        }
        # one file, one sequence: the view wrote through the parent
        assert [e["wall"]["seq"] for e in events] == [1, 2]

    def test_span_times_the_block_and_records_ok(self, tmp_path):
        with TraceRecorder(tmp_path, stream="s") as rec:
            with rec.span("phase", policy="independent"):
                pass
            with pytest.raises(RuntimeError):
                with rec.span("phase"):
                    raise RuntimeError("boom")
        good, bad = events_of(rec.path)[1:]
        assert good["kind"] == bad["kind"] == "span"
        assert good["fields"] == {"policy": "independent", "ok": True}
        assert bad["fields"] == {"ok": False}
        assert good["wall"]["elapsed_s"] >= 0.0

    def test_reopening_a_stream_appends(self, tmp_path):
        with TraceRecorder(tmp_path, stream="s") as rec:
            rec.count("a")
        with TraceRecorder(tmp_path, stream="s") as rec:
            rec.count("b")
        names = [e["name"] for e in events_of(rec.path)]
        assert names == ["trace", "a", "trace", "b"]

    def test_close_is_idempotent(self, tmp_path):
        rec = TraceRecorder(tmp_path, stream="s")
        rec.close()
        rec.close()

    def test_sample_interval_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError, match="sample_interval"):
            TraceRecorder(tmp_path, sample_interval=0)
        with pytest.raises(ValueError, match="sample_interval"):
            TraceConfig(directory=str(tmp_path), sample_interval=0)


class TestTraceConfig:
    def test_is_plain_picklable_data(self, tmp_path):
        import pickle

        config = TraceConfig(directory=str(tmp_path))
        assert config.sample_interval == DEFAULT_SAMPLE_INTERVAL
        assert pickle.loads(pickle.dumps(config)) == config


class TestNullRecorder:
    def test_disabled_and_zero_interval(self):
        assert NULL_RECORDER.enabled is False
        assert NULL_RECORDER.sample_interval == 0

    def test_probes_are_no_ops_and_bind_allocates_nothing(self):
        rec = NullRecorder()
        assert rec.bind(walk=1) is rec
        rec.count("x")
        rec.gauge("x", 1.0)
        rec.observe("x", 2)
        rec.event("x", wall={"w": 1}, step=0)
        rec.flush()
        rec.close()

    def test_span_is_a_free_context_manager(self):
        with NULL_RECORDER.span("phase", policy="p") as span:
            assert span is NULL_RECORDER.span("other")  # shared singleton

    def test_slots_forbid_accidental_state(self):
        with pytest.raises(AttributeError):
            NullRecorder().stash = 1
