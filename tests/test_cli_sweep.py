"""CLI ``repro sweep``: narrowed runs, --json as API, the exit-3 gate."""

from __future__ import annotations

import json

import pytest

from repro.analysis.sweep import SCHEMA, validate_matrix
from repro.cli import main

#: a deliberately tiny narrowed run — one gen workload, two engines,
#: small budget — so every test finishes in well under a second
NARROW = [
    "sweep",
    "--workloads", "gen:n=8,seed=2",
    "--engines", "bstar,hbtree",
    "--budget", "150",
]


def run_json(argv, capsys):
    code = main(argv)
    return code, json.loads(capsys.readouterr().out)


class TestSweepCommand:
    def test_narrowed_json_run_emits_schema_valid_matrix(self, capsys):
        code, doc = run_json([*NARROW, "--json"], capsys)
        assert code == 0
        matrix = doc["matrix"]
        assert matrix["schema"] == SCHEMA
        assert validate_matrix(matrix) == []
        # 2 serial cells + the portfolio over both engines
        assert [c["engine"] for c in matrix["cells"]] == [
            "bstar", "hbtree", "portfolio",
        ]
        assert all(c["ok"] for c in matrix["cells"])
        # narrowed runs never gate against the committed baseline
        assert doc["diff"] is None

    def test_narrowed_text_run_notes_the_skipped_diff(self, capsys):
        code = main(NARROW)
        out = capsys.readouterr().out
        assert code == 0
        assert "quality matrix" in out
        assert "diff skipped: narrowed/non-quick" in out

    def test_out_flag_writes_the_matrix(self, tmp_path, capsys):
        out_path = tmp_path / "m.json"
        code = main([*NARROW, "--out", str(out_path), "--no-diff"])
        capsys.readouterr()
        assert code == 0
        assert validate_matrix(json.loads(out_path.read_text())) == []

    def test_self_baseline_diffs_clean(self, tmp_path, capsys):
        """A matrix diffed against its own re-run passes: determinism
        plus the inclusive tolerance bound, end to end through the CLI."""
        baseline = tmp_path / "base.json"
        assert main([*NARROW, "--out", str(baseline), "--no-diff"]) == 0
        capsys.readouterr()
        code, doc = run_json(
            [*NARROW, "--baseline", str(baseline), "--json"], capsys
        )
        assert code == 0
        assert doc["diff"]["ok"] is True
        assert doc["diff"]["unchanged"] == 3
        assert doc["diff"]["regressions"] == []

    def test_worsened_baseline_cell_exits_3_naming_the_cell(self, tmp_path, capsys):
        """The acceptance scenario: worsen one committed cell and the
        gate must exit non-zero naming the (workload, engine)."""
        baseline = tmp_path / "base.json"
        assert main([*NARROW, "--out", str(baseline), "--no-diff"]) == 0
        capsys.readouterr()
        doctored = json.loads(baseline.read_text())
        victim = doctored["cells"][0]
        # the fresh run's cost will exceed this shrunken bound
        victim["ref_cost"] /= 2.0
        baseline.write_text(json.dumps(doctored))
        code, doc = run_json(
            [*NARROW, "--baseline", str(baseline), "--json"], capsys
        )
        assert code == 3
        assert doc["diff"]["ok"] is False
        assert len(doc["diff"]["regressions"]) == 1
        assert (
            f"({victim['workload']}, {victim['engine']})"
            in doc["diff"]["regressions"][0]
        )

    def test_invalid_baseline_is_a_usage_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{\"schema\": \"nope\"}")
        with pytest.raises(SystemExit, match="not a valid quality matrix"):
            main([*NARROW, "--baseline", str(bad)])

    def test_unknown_engine_is_a_usage_error(self):
        with pytest.raises(SystemExit, match="unknown engine"):
            main(["sweep", "--engines", "quantum"])

    def test_unknown_workload_is_recorded_not_fatal(self, capsys):
        code, doc = run_json(
            [
                "sweep", "--workloads", "nope", "--engines", "bstar",
                "--budget", "150", "--json",
            ],
            capsys,
        )
        # the cell fails, but an unknown workload is a data problem the
        # matrix records, not a crash — and with no diff there is no gate
        assert code == 0
        cells = doc["matrix"]["cells"]
        assert [c["ok"] for c in cells] == [False]
        assert "unknown workload" in cells[0]["error"]
