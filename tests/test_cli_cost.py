"""CLI cost flags: ``--cost-weights`` and ``--cost-report``.

Happy paths (weights reach the engine configs, reports show per-term
contributions, the portfolio path threads weights as overrides) and the
error paths (unknown terms, non-numeric weights, terms an engine does
not declare) — all exiting with usable messages, never tracebacks.
"""

import pytest

from repro.cli import _parse_cost_weights, main


def exit_code(excinfo) -> int:
    code = excinfo.value.code
    if code is None:
        return 0
    return code if isinstance(code, int) else 1


class TestParsing:
    def test_parses_terms_and_values(self):
        assert _parse_cost_weights("area=2,wirelength=0.25") == {
            "area": 2.0,
            "wirelength": 0.25,
        }

    def test_tolerates_spaces_and_empty_entries(self):
        assert _parse_cost_weights(" area = 2 ,, aspect=1 ") == {
            "area": 2.0,
            "aspect": 1.0,
        }

    def test_none_means_no_overrides(self):
        assert _parse_cost_weights(None) == {}

    def test_unknown_term_lists_catalog(self):
        with pytest.raises(SystemExit) as excinfo:
            _parse_cost_weights("blobs=1")
        message = str(excinfo.value)
        assert "blobs" in message
        assert "area, wirelength, aspect, proximity" in message

    def test_missing_equals_is_explained(self):
        with pytest.raises(SystemExit) as excinfo:
            _parse_cost_weights("area")
        assert "term=value" in str(excinfo.value)

    def test_non_numeric_weight_is_explained(self):
        with pytest.raises(SystemExit) as excinfo:
            _parse_cost_weights("area=heavy")
        assert "not a number" in str(excinfo.value)


class TestSingleRun:
    def test_weights_change_the_anneal(self, capsys):
        main(["place", "fig2", "--engine", "hbtree", "--seed", "1"])
        base = capsys.readouterr().out
        main(
            [
                "place", "fig2", "--engine", "hbtree", "--seed", "1",
                "--cost-weights", "wirelength=0,aspect=0,proximity=0",
            ]
        )
        reweighted = capsys.readouterr().out
        assert base != reweighted  # the objective actually changed

    def test_cost_report_lists_every_reference_term(self, capsys):
        code = main(
            ["place", "fig2", "--engine", "hbtree", "--seed", "1", "--cost-report"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "cost report (reference model):" in out
        for term in ("area", "wirelength", "aspect", "violations", "total"):
            assert term in out

    def test_unsupported_term_names_engine_and_subset(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["place", "fig2", "--engine", "slicing", "--cost-weights", "aspect=1"])
        message = str(excinfo.value)
        assert "slicing" in message
        assert "area, wirelength" in message

    def test_deterministic_engine_rejects_weights(self):
        with pytest.raises(SystemExit) as excinfo:
            main(
                [
                    "place", "fig2", "--engine", "deterministic",
                    "--cost-weights", "area=2",
                ]
            )
        assert "does not anneal a weighted cost" in str(excinfo.value)


class TestRegistryConsistency:
    def test_weighted_configs_match_parallel_registry(self):
        """cli._WEIGHTED_CONFIGS duplicates the parallel registry's
        config classes (single runs must not import repro.parallel);
        this pins the two against each other so they cannot drift."""
        from repro.cli import _WEIGHTED_CONFIGS
        from repro.parallel.engines import ENGINE_NAMES, build_config

        assert set(_WEIGHTED_CONFIGS) == set(ENGINE_NAMES)
        for engine, config_cls in _WEIGHTED_CONFIGS.items():
            assert type(build_config(engine, 0, ())) is config_cls


class TestPortfolioPath:
    def test_weights_thread_into_portfolio_overrides(self, capsys):
        main(
            [
                "place", "fig2", "--engines", "seqpair,hbtree", "--starts", "2",
                "--budget", "600", "--seed", "3",
                "--cost-weights", "wirelength=1.0",
                "--cost-report",
            ]
        )
        out = capsys.readouterr().out
        assert "portfolio:" in out
        assert "winner cost terms:" in out  # leaderboard breakdown line
        assert "cost report (reference model):" in out

    def test_portfolio_rejects_term_an_engine_lacks(self):
        with pytest.raises(SystemExit) as excinfo:
            main(
                [
                    "place", "fig2", "--engines", "seqpair,slicing", "--starts", "2",
                    "--cost-weights", "aspect=0.5",
                ]
            )
        assert "slicing" in str(excinfo.value)
