"""Tests for the contour structure and B*-tree packing."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bstar import BStarTree, Contour, pack, pack_sizes
from repro.geometry import Module, ModuleSet, Orientation
from tests.strategies import module_sets, names


class TestContour:
    def test_initially_flat(self):
        c = Contour()
        assert c.height_over(0, 100) == 0.0
        assert c.max_height() == 0.0

    def test_place_raises_height(self):
        c = Contour()
        c.place(0, 5, 3.0)
        assert c.height_over(0, 5) == 3.0
        assert c.height_over(5, 10) == 0.0
        assert c.height_over(2, 7) == 3.0

    def test_stacking(self):
        c = Contour()
        c.place(0, 4, 2.0)
        c.place(2, 6, 5.0)
        assert c.height_over(0, 2) == 2.0
        assert c.height_over(2, 6) == 5.0
        assert c.max_height() == 5.0

    def test_profile_merges_equal_heights(self):
        c = Contour()
        c.place(0, 2, 3.0)
        c.place(2, 4, 3.0)
        finite = [s for s in c.profile() if s[2] > 0]
        assert finite == [(0.0, 4.0, 3.0)]

    def test_empty_interval_rejected(self):
        c = Contour()
        with pytest.raises(ValueError):
            c.height_over(3, 3)
        with pytest.raises(ValueError):
            c.place(3, 3, 1.0)


class TestPackingKnownShapes:
    def test_left_chain_is_row(self):
        mods = ModuleSet.of([Module.hard(n, 2, 3) for n in names(3)])
        t = BStarTree.chain(names(3), direction="left")
        p = pack(t, mods)
        assert [p[n].rect.x0 for n in names(3)] == [0.0, 2.0, 4.0]
        assert all(p[n].rect.y0 == 0.0 for n in names(3))

    def test_right_chain_is_stack(self):
        mods = ModuleSet.of([Module.hard(n, 2, 3) for n in names(3)])
        t = BStarTree.chain(names(3), direction="right")
        p = pack(t, mods)
        assert [p[n].rect.y0 for n in names(3)] == [0.0, 3.0, 6.0]
        assert all(p[n].rect.x0 == 0.0 for n in names(3))

    def test_right_child_drops_onto_contour(self):
        # root wide and flat, left child tall, right child should sit on root only
        mods = ModuleSet.of(
            [Module.hard("r", 4, 1), Module.hard("l", 2, 5), Module.hard("u", 3, 1)]
        )
        t = BStarTree("r")
        t.insert("l", "r", "left")
        t.insert("u", "r", "right")
        p = pack(t, mods)
        assert p["l"].rect.x0 == 4.0
        assert p["u"].rect.x0 == 0.0
        assert p["u"].rect.y0 == 1.0  # on top of the root, not the tall sibling

    def test_orientation(self):
        mods = ModuleSet.of([Module.hard("a", 2, 6)])
        t = BStarTree.chain(["a"])
        p = pack(t, mods, orientations={"a": Orientation.R90})
        assert p["a"].rect.width == 6.0

    def test_pack_sizes_raw(self):
        t = BStarTree.chain(["a", "b"], direction="left")
        rects = pack_sizes(t, {"a": (2.0, 2.0), "b": (3.0, 1.0)})
        assert rects["b"].x0 == 2.0


class TestPackingProperties:
    @given(module_sets(min_size=1, max_size=12), st.integers(0, 10**6))
    @settings(max_examples=80, deadline=None)
    def test_always_overlap_free_and_anchored(self, mods, seed):
        t = BStarTree.random(mods.names(), random.Random(seed))
        p = pack(t, mods)
        assert p.is_overlap_free()
        bb = p.bounding_box()
        assert bb.x0 == 0.0
        assert bb.y0 == 0.0

    @given(module_sets(min_size=2, max_size=10), st.integers(0, 10**6))
    @settings(max_examples=40, deadline=None)
    def test_left_child_abuts_parent_x(self, mods, seed):
        t = BStarTree.random(mods.names(), random.Random(seed))
        p = pack(t, mods)
        for node in t.nodes():
            left = t.left[node]
            if left is not None:
                assert p[left].rect.x0 == pytest.approx(p[node].rect.x1)
            right = t.right[node]
            if right is not None:
                assert p[right].rect.x0 == pytest.approx(p[node].rect.x0)

    @given(module_sets(min_size=1, max_size=10), st.integers(0, 10**6))
    @settings(max_examples=40, deadline=None)
    def test_modules_rest_on_something(self, mods, seed):
        """Bottom-compaction: every module touches y=0 or another
        module's top edge."""
        t = BStarTree.random(mods.names(), random.Random(seed))
        p = pack(t, mods)
        for pm in p:
            if pm.rect.y0 == 0.0:
                continue
            supported = any(
                other.rect.y1 == pytest.approx(pm.rect.y0)
                and other.rect.x0 < pm.rect.x1
                and pm.rect.x0 < other.rect.x1
                for other in p
                if other.name != pm.name
            )
            assert supported, f"{pm.name} floats in the air"
