"""Tests for ASF-B*-trees (symmetry islands)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bstar import ASFBStarTree, ASFMoveSet
from repro.circuit import SymmetryGroup
from repro.geometry import Module, ModuleSet
from tests.strategies import symmetric_problems


def island_problem():
    mods = ModuleSet.of(
        [
            Module.hard("a", 3, 2, rotatable=False),
            Module.hard("b", 3, 2, rotatable=False),
            Module.hard("c", 2, 4, rotatable=False),
            Module.hard("d", 2, 4, rotatable=False),
            Module.hard("s", 4, 2, rotatable=False),
        ]
    )
    group = SymmetryGroup("g", pairs=(("a", "b"), ("c", "d")), self_symmetric=("s",))
    return mods, group


class TestASFConstruction:
    def test_initial_is_valid(self):
        mods, group = island_problem()
        asf = ASFBStarTree.initial(group, random.Random(0))
        asf.validate()

    def test_tree_spans_representatives(self):
        mods, group = island_problem()
        asf = ASFBStarTree.initial(group, random.Random(1))
        assert set(asf.tree.nodes()) == {"b", "d", "s"}

    def test_selfsym_root_spine(self):
        mods, group = island_problem()
        for seed in range(10):
            asf = ASFBStarTree.initial(group, random.Random(seed))
            assert asf.tree.root == "s"


class TestIslandPacking:
    def test_island_is_exactly_symmetric(self):
        mods, group = island_problem()
        for seed in range(20):
            asf = ASFBStarTree.initial(group, random.Random(seed))
            island = asf.pack(mods)
            assert island.is_overlap_free()
            assert group.symmetry_error(island) == pytest.approx(0.0, abs=1e-9)

    def test_axis_at_zero(self):
        mods, group = island_problem()
        asf = ASFBStarTree.initial(group, random.Random(3))
        island = asf.pack(mods)
        assert group.axis_of(island) == pytest.approx(0.0, abs=1e-9)

    def test_selfsym_straddles_axis(self):
        mods, group = island_problem()
        asf = ASFBStarTree.initial(group, random.Random(4))
        island = asf.pack(mods)
        rect = island["s"].rect
        assert rect.x0 == pytest.approx(-rect.x1)

    def test_all_modules_present(self):
        mods, group = island_problem()
        asf = ASFBStarTree.initial(group, random.Random(5))
        island = asf.pack(mods)
        assert set(p.name for p in island) == {"a", "b", "c", "d", "s"}

    def test_pairs_only_group(self):
        mods = ModuleSet.of(
            [Module.hard("a", 2, 2, rotatable=False), Module.hard("b", 2, 2, rotatable=False)]
        )
        group = SymmetryGroup("g", pairs=(("a", "b"),))
        asf = ASFBStarTree.initial(group, random.Random(0))
        island = asf.pack(mods)
        assert island.is_overlap_free()
        assert group.symmetry_error(island) == pytest.approx(0.0, abs=1e-9)

    @given(symmetric_problems(max_free=0), st.integers(0, 10**6))
    @settings(max_examples=60, deadline=None)
    def test_random_groups_always_symmetric(self, problem, seed):
        mods, group = problem
        asf = ASFBStarTree.initial(group, random.Random(seed))
        asf.validate()
        island = asf.pack(mods)
        assert island.is_overlap_free()
        assert group.symmetry_error(island) <= 1e-9


class TestASFMoves:
    @given(symmetric_problems(max_free=0), st.integers(0, 10**6))
    @settings(max_examples=40, deadline=None)
    def test_moves_preserve_validity_and_symmetry(self, problem, seed):
        mods, group = problem
        moves = ASFMoveSet(mods, group)
        rng = random.Random(seed)
        state = moves.initial_state(rng)
        for _ in range(15):
            state = moves.propose(state, rng)
            state.validate()
            island = state.pack(mods)
            assert island.is_overlap_free()
            assert group.symmetry_error(island) <= 1e-9

    def test_moves_do_not_mutate(self):
        mods, group = island_problem()
        moves = ASFMoveSet(mods, group)
        rng = random.Random(0)
        state = moves.initial_state(rng)
        before = sorted(state.tree.left.items())
        for _ in range(10):
            moves.propose(state, rng)
        assert sorted(state.tree.left.items()) == before
