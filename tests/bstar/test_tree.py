"""Tests for the B*-tree data structure."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bstar import BStarTree
from tests.strategies import names


class TestConstruction:
    def test_empty(self):
        t = BStarTree()
        assert len(t) == 0
        t.validate()

    def test_chain_left_is_row(self):
        t = BStarTree.chain(["a", "b", "c"], direction="left")
        t.validate()
        assert t.root == "a"
        assert t.left["a"] == "b"
        assert t.left["b"] == "c"
        assert t.right["a"] is None

    def test_chain_right_is_stack(self):
        t = BStarTree.chain(["a", "b"], direction="right")
        assert t.right["a"] == "b"

    def test_chain_bad_direction(self):
        with pytest.raises(ValueError):
            BStarTree.chain(["a"], direction="up")

    def test_random_spans_all(self):
        t = BStarTree.random(names(10), random.Random(0))
        t.validate()
        assert set(t.nodes()) == set(names(10))

    def test_preorder_starts_at_root(self):
        t = BStarTree.chain(["a", "b", "c"])
        assert next(iter(t.preorder())) == "a"
        assert list(t.preorder()) == ["a", "b", "c"]


class TestInsertRemove:
    def test_insert_pushes_down(self):
        t = BStarTree.chain(["a", "b"])  # b is left child of a
        t.insert("c", "a", "left")
        t.validate()
        assert t.left["a"] == "c"
        assert t.left["c"] == "b"

    def test_insert_duplicate_rejected(self):
        t = BStarTree.chain(["a"])
        with pytest.raises(ValueError):
            t.insert("a", "a", "left")

    def test_insert_root(self):
        t = BStarTree.chain(["a"])
        t.insert_root("r")
        t.validate()
        assert t.root == "r"
        assert t.left["r"] == "a"

    def test_remove_leaf(self):
        t = BStarTree.chain(["a", "b"])
        t.remove("b")
        t.validate()
        assert len(t) == 1
        assert t.left["a"] is None

    def test_remove_internal_promotes(self):
        t = BStarTree.chain(["a", "b", "c"])
        t.remove("b")
        t.validate()
        assert set(t.nodes()) == {"a", "c"}
        assert t.left["a"] == "c"

    def test_remove_root(self):
        t = BStarTree.chain(["a", "b"])
        t.remove("a")
        t.validate()
        assert t.root == "b"

    def test_remove_last_node(self):
        t = BStarTree.chain(["a"])
        t.remove("a")
        assert t.root is None
        t.validate()

    def test_remove_missing_raises(self):
        with pytest.raises(KeyError):
            BStarTree.chain(["a"]).remove("z")

    def test_move(self):
        t = BStarTree.chain(["a", "b", "c"])
        t.move("c", "a", "right")
        t.validate()
        assert t.right["a"] == "c"


class TestSwap:
    def test_swap_non_adjacent(self):
        t = BStarTree.chain(["a", "b", "c", "d"])
        t.swap_nodes("b", "d")
        t.validate()
        assert t.left["a"] == "d"
        assert t.left["d"] == "c"
        assert t.left["c"] == "b"

    def test_swap_adjacent_parent_child(self):
        t = BStarTree.chain(["a", "b", "c"])
        t.swap_nodes("a", "b")
        t.validate()
        assert t.root == "b"
        assert t.left["b"] == "a"
        assert t.left["a"] == "c"

    def test_swap_root_with_leaf(self):
        t = BStarTree.chain(["a", "b", "c"])
        t.swap_nodes("a", "c")
        t.validate()
        assert t.root == "c"

    def test_swap_same_is_noop(self):
        t = BStarTree.chain(["a", "b"])
        t.swap_nodes("a", "a")
        t.validate()
        assert t.root == "a"


class TestClone:
    def test_clone_independent(self):
        t = BStarTree.chain(["a", "b"])
        c = t.clone()
        c.remove("b")
        assert "b" in t
        assert "b" not in c


class TestRandomOperationSequences:
    @given(st.integers(2, 10), st.integers(0, 10**6), st.lists(st.integers(0, 2), min_size=1, max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_invariants_hold_under_any_op_sequence(self, n, seed, ops):
        """Property: any sequence of move/swap/remove+insert operations
        keeps the tree a valid B*-tree over the same node set."""
        rng = random.Random(seed)
        ns = names(n)
        t = BStarTree.random(ns, rng)
        for op in ops:
            if op == 0 and len(t) >= 2:  # swap
                a, b = rng.sample(ns, 2)
                t.swap_nodes(a, b)
            elif op == 1 and len(t) >= 2:  # move
                name = rng.choice(ns)
                t.remove(name)
                parent = rng.choice(list(t.nodes()))
                t.insert(name, parent, rng.choice(("left", "right")))
            else:  # insert-root rotation
                name = rng.choice(ns)
                t.remove(name)
                t.insert_root(name, rng.choice(("left", "right")))
            t.validate()
            assert set(t.nodes()) == set(ns)


class TestRemoveChainSplice:
    """remove() splices the preferred-child chain directly; lock it
    against the definitional promotion-swap formulation."""

    @staticmethod
    def _reference_remove(tree: BStarTree, name: str) -> None:
        # the pre-splice implementation: promote until `name` is a leaf
        while True:
            left, right = tree.left[name], tree.right[name]
            if left is None and right is None:
                break
            child = left if left is not None else right
            tree._swap_positions(name, child)
        parent = tree.parent[name]
        if parent is None:
            tree.root = None
        elif tree.left[parent] == name:
            tree.left[parent] = None
        else:
            tree.right[parent] = None
        del tree.left[name]
        del tree.right[name]
        del tree.parent[name]

    @given(st.integers(1, 25), st.integers(0, 10**6))
    @settings(max_examples=120, deadline=None)
    def test_matches_promotion_swaps(self, n, seed):
        rng = random.Random(seed)
        ns = names(n)
        fast = BStarTree.random(ns, rng)
        reference = fast.clone()
        victim = rng.choice(ns)
        fast.remove(victim)
        self._reference_remove(reference, victim)
        assert fast.root == reference.root
        assert fast.left == reference.left
        assert fast.right == reference.right
        assert fast.parent == reference.parent
        fast.validate()
